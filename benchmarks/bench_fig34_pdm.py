"""Bench F3/F4: regenerate Figs. 3-4 — PDM ladder and widened dynamic range."""

from conftest import emit

from repro.experiments import fig34_pdm


def test_fig34_pdm_scheme(benchmark):
    result = benchmark.pedantic(
        fig34_pdm.run, kwargs={"repetitions": 8192}, rounds=1, iterations=1
    )
    emit(
        "Figs. 3-4 — PDM (paper: 5f_m=6f_s Vernier ladder widens the linear "
        "region; f_m=f_s removes PDM's effect)",
        result.report(),
    )
    assert result.dynamic_range_widened()
    assert not result.degenerate_is_effective
