"""Bench T-LAT: detection latency — the 50 us point and GHz scaling."""

from conftest import emit

from repro.experiments import tab_latency


def test_detection_latency(benchmark):
    result = benchmark.pedantic(tab_latency.run, rounds=1, iterations=1)
    emit(
        "Detection latency (paper: authentication + tamper detection within "
        "50 us at 156.25 MHz; GHz clocks reach memory-operation time frame)",
        result.report(),
    )
    assert result.prototype_matches_paper()
    assert result.scales_inversely_with_clock()
