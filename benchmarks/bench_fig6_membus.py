"""Bench F6: the protected memory bus — transparency, detection, cold boot."""

from conftest import emit

from repro.experiments import fig6_membus


def test_fig6_protected_memory(benchmark):
    result = benchmark.pedantic(
        fig6_membus.run, kwargs={"n_requests": 2000}, rounds=1, iterations=1
    )
    emit(
        "Fig. 6 — protected memory bus (paper: monitoring transparent to "
        "traffic; attacks detected within the monitoring period; cold-boot "
        "reads blocked)",
        result.report(),
    )
    assert result.transparency_holds
    assert result.probe_detected
    assert result.cold_boot_blocked
