"""Sharded fleet-scan throughput: the fleet executor's perf pin.

A 64-bus fleet scanned through ``FleetScanExecutor`` partitions across a
process pool; each shard runs the same ``capture_stack`` batch engine a
one-core scan would.  This bench times a full fleet scan serial
(``shards=1``) versus sharded (``shards=4``, process backend) and pins a
>= 2x throughput gain — gated on the machine actually having >= 4 cores,
because on fewer cores the parallel backend cannot win by construction.

Two things are asserted unconditionally, on any machine:

* the serial and sharded scans are byte-identical (``canonical_bytes``),
  so the speedup is never bought with a different answer;
* both backends complete the full 64-bus scan.

Results are written to ``benchmarks/BENCH_fleet.json`` (machine-readable)
so the scan-throughput trajectory can be tracked across commits.
"""

import os
import time

import numpy as np

from repro.core import (
    Authenticator,
    FleetScanExecutor,
    TamperDetector,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

from conftest import emit, smoke_mode

N_BUSES = 64
SHARDS = 4
CAPTURES_PER_CHECK = 64
FIRST_SEED = 900
ROOT_SEED = 11
SPEEDUP_FLOOR = 2.0
#: Weaker floor enforced when the host has cores for *some* overlap
#: (>= 2) but fewer than the shard count — a 4-shard scan on 2 cores
#: tops out near 2x, so demanding the full floor there would be gating
#: on hardware, not on the code.
PARTIAL_SPEEDUP_FLOOR = 1.2


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def affinity_cores():
    """The scheduler-visible core set, or None where unsupported."""
    try:
        return sorted(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return None


def resolved_speedup_floor(cores: int):
    """The honest floor for this host, or None when one core ungates it."""
    if cores >= SHARDS:
        return SPEEDUP_FLOOR
    if cores >= 2:
        return PARTIAL_SPEEDUP_FLOOR
    return None


def _make_executor(lines, shards, backend):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=CAPTURES_PER_CHECK,
        shards=shards,
        backend=backend,
        seed=ROOT_SEED,
    )
    for line in lines:
        executor.register(line)
    return executor


def _best_scan_time(executor, rounds=3):
    best = np.inf
    outcome = None
    for _ in range(rounds):
        start = time.perf_counter()
        outcome = executor.scan()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def test_fleet_scan_throughput(benchmark, record_fleet_result):
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(N_BUSES, first_seed=FIRST_SEED)
    cores = available_cores()

    with _make_executor(lines, 1, "serial") as serial, \
            _make_executor(lines, SHARDS, "process") as sharded:
        serial.enroll(n_captures=4)
        sharded.enroll(n_captures=4)
        # Warm both backends' reflection caches so the timed scans
        # measure estimation throughput, not one-off physics solves.
        serial.scan()
        sharded.scan()

        serial_s, serial_outcome = _best_scan_time(serial)
        sharded_s, sharded_outcome = _best_scan_time(sharded)
        benchmark(sharded.scan)

    # Correctness before speed: the partition must be invisible.
    assert serial_outcome.canonical_bytes() == \
        sharded_outcome.canonical_bytes()
    assert len(serial_outcome.records) == N_BUSES
    assert len(sharded_outcome.records) == N_BUSES

    speedup = serial_s / sharded_s
    floor = resolved_speedup_floor(cores)
    gate_speedup = floor is not None and not smoke_mode()
    record_fleet_result(
        "fleet_scan_throughput",
        {
            "n_buses": N_BUSES,
            "shards": SHARDS,
            "captures_per_check": CAPTURES_PER_CHECK,
            "cores_available": cores,
            "os_cpu_count": os.cpu_count(),
            "sched_affinity": affinity_cores(),
            "serial_scan_s": serial_s,
            "sharded_scan_s": sharded_s,
            "speedup": speedup,
            "speedup_floor": floor,
            "speedup_floor_full": SPEEDUP_FLOOR,
            "speedup_gated": gate_speedup,
            "byte_identical": True,
        },
    )
    emit(
        "FLEET SCAN THROUGHPUT — serial vs 4-shard process pool",
        f"fleet size               : {N_BUSES} buses\n"
        f"captures per check       : {CAPTURES_PER_CHECK}\n"
        f"cores available          : {cores} "
        f"(cpu_count={os.cpu_count()}, affinity={affinity_cores()})\n"
        f"serial scan              : {serial_s * 1e3:10.1f} ms\n"
        f"{SHARDS}-shard scan             : {sharded_s * 1e3:10.1f} ms\n"
        f"speedup                  : {speedup:10.2f}x "
        f"(floor: {floor}x, "
        f"{'enforced' if gate_speedup else f'not enforced on {cores} core(s)'})"
        "\nserial/sharded outcomes  : byte-identical",
    )
    if gate_speedup:
        assert speedup >= floor
