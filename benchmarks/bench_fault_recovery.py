"""Fault-recovery dispatch: correctness-first pins plus a cost record.

Two unconditional pins on any machine:

* a fleet scan whose worker is killed mid-scan (a real ``os._exit``, so
  the pool genuinely breaks) completes through the recovery ladder and
  is **byte-identical** to the all-healthy serial scan;
* the healthy path is untouched by the machinery: a fault-free scan
  reports zero retries, fallbacks, and pool rebuilds — the
  workload-derived timeouts never misfire on real work.

The recovery cost (wall time of the degraded scan vs the healthy one,
rebuild count) is recorded to ``benchmarks/BENCH_fleet.json`` so the
failure-path trajectory is tracked across commits, but not gated: it is
dominated by process fork latency, which is machine noise.
"""

import time

from repro.core import (
    Authenticator,
    FaultInjector,
    FaultSpec,
    FleetScanExecutor,
    RetryPolicy,
    TamperDetector,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

from conftest import emit

N_BUSES = 8
SHARDS = 2
CAPTURES_PER_CHECK = 16
FIRST_SEED = 900
ROOT_SEED = 11


def _make_executor(lines, shards, backend, injector=None):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=CAPTURES_PER_CHECK,
        shards=shards,
        backend=backend,
        seed=ROOT_SEED,
        retry_policy=RetryPolicy(backoff_base_s=0.05),
        fault_injector=injector,
    )
    for line in lines:
        executor.register(line)
    return executor


def test_fault_recovery_cost(benchmark, record_fleet_result):
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(N_BUSES, first_seed=FIRST_SEED)

    injector = FaultInjector(
        specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                         attempts=(0,)),)
    )
    with _make_executor(lines, 1, "serial") as healthy, \
            _make_executor(lines, SHARDS, "process",
                           injector=injector) as faulted:
        healthy.enroll(n_captures=4)
        faulted.enroll(n_captures=4)

        start = time.perf_counter()
        healthy_outcome = healthy.scan()
        healthy_s = time.perf_counter() - start

        # Scan 1 of both executors: the byte-identity pin.  Seed streams
        # advance per scan, so only same-numbered scans are comparable —
        # the benchmark rounds below re-measure recovery cost only.
        start = time.perf_counter()
        recovered_outcome = faulted.scan()
        recovered_s = time.perf_counter() - start
        benchmark(faulted.scan)

        health = faulted.telemetry.snapshot()["health"]
        healthy_health = healthy.telemetry.snapshot()["health"]

    # Correctness first: recovery is invisible in the records.
    assert recovered_outcome.degraded
    assert recovered_outcome.canonical_bytes() == \
        healthy_outcome.canonical_bytes()
    assert health["pool_rebuilds"] >= 1
    assert health["retries"] >= 1
    # And the healthy path never pays for the machinery.
    assert not healthy_outcome.degraded
    assert healthy_health["retries"] == 0
    assert healthy_health["serial_fallbacks"] == 0
    assert healthy_health["pool_rebuilds"] == 0

    record_fleet_result(
        "fault_recovery",
        {
            "n_buses": N_BUSES,
            "shards": SHARDS,
            "captures_per_check": CAPTURES_PER_CHECK,
            "healthy_serial_scan_s": healthy_s,
            "crash_recovered_scan_s": recovered_s,
            "pool_rebuilds": health["pool_rebuilds"],
            "retries": health["retries"],
            "serial_fallbacks": health["serial_fallbacks"],
            "byte_identical": True,
        },
    )
    emit(
        "FAULT RECOVERY — one worker killed mid-scan, scan still lands",
        f"fleet size               : {N_BUSES} buses\n"
        f"healthy serial scan      : {healthy_s * 1e3:10.1f} ms\n"
        f"crash-recovered scan     : {recovered_s * 1e3:10.1f} ms "
        f"({health['retries']} retries, "
        f"{health['pool_rebuilds']} pool rebuild(s))\n"
        "recovered outcome        : byte-identical to healthy\n"
        "healthy-path overhead    : zero retries / rebuilds / fallbacks",
    )
