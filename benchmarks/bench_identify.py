"""1:N identification throughput: sketch index vs brute-force scoring.

The ``FingerprintStore`` answers "which enrolled bus is this?" with a
coarse ``(M, D)`` sketch mat-vec feeding exact rescoring on a top-K
shortlist; brute force is the exact ``(M, N)`` score over every template.
This bench enrolls fleets of 10^3 and 10^4 synthetic IIPs (10^5 with
``REPRO_FULL_SCALE=1``), fires noisy genuine queries through both paths,
and pins:

* **answer identity** — rank-1 (and acceptance) from the sketch path is
  identical to brute force on every clean query, at every size, on any
  machine — the index is a shortcut, never a different answer;
* **>= 10x speedup at 10^4 enrolled lines** — gated off under
  ``REPRO_BENCH_SMOKE=1`` like every wall-clock floor (shared CI runners
  cannot hold perf ratios), enforced elsewhere.

Templates are synthetic (correlated Gaussian records, canonicalised by
``Fingerprint``) rather than physics solves: the store never looks inside
a template, so index throughput scaling only needs realistic shapes, and
10^4 physics enrollments would swamp the harness.  Results land in
``benchmarks/BENCH_identify.json``.
"""

import time

import numpy as np
from scipy.ndimage import gaussian_filter1d

from repro.core import Fingerprint, FingerprintStore
from repro.core.itdr import IIPCapture
from repro.signals.waveform import Waveform

from conftest import emit, smoke_mode

RECORD_LENGTH = 512
DT = 11.16e-12
N_QUERIES = 64
NOISE_RMS = 0.05  # relative to the unit-norm template
SPEEDUP_FLOOR = 10.0
SPEEDUP_GATE_SIZE = 10_000


def store_sizes() -> list:
    if smoke_mode():
        return [256, 2048]
    import os

    sizes = [1_000, 10_000]
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        sizes.append(100_000)
    return sizes


def synthetic_rows(n: int, rng: np.random.Generator) -> np.ndarray:
    """``(n, RECORD_LENGTH)`` correlated records shaped like IIPs.

    Smoothed white noise concentrates energy at low-mid frequencies the
    way reflection profiles do; canonicalisation happens in the
    ``Fingerprint`` constructor.
    """
    rows = rng.standard_normal((n, RECORD_LENGTH))
    return gaussian_filter1d(rows, sigma=3.0, axis=1, mode="wrap")


def build_store(rows: np.ndarray) -> FingerprintStore:
    store = FingerprintStore()
    store.enroll_many(
        [
            Fingerprint(name=f"bus-{i:06d}", samples=row, dt=DT)
            for i, row in enumerate(rows)
        ]
    )
    return store


def make_queries(
    store: FingerprintStore, rows: np.ndarray, rng: np.random.Generator
) -> list:
    """Noisy genuine captures of randomly chosen enrolled lines."""
    picks = rng.choice(len(rows), size=N_QUERIES, replace=False)
    queries = []
    for i in picks:
        template = store.current(f"bus-{i:06d}").samples
        noisy = template + NOISE_RMS * np.linalg.norm(template) \
            * rng.standard_normal(RECORD_LENGTH) / np.sqrt(RECORD_LENGTH)
        queries.append(
            IIPCapture(
                waveform=Waveform(noisy, DT),
                line_name=f"bus-{i:06d}",
                n_triggers=0,
                duration_s=0.0,
            )
        )
    return queries


def time_path(store, queries, method: str, repeats: int = 3):
    """(best identifications/sec, results) for one lookup path."""
    best = np.inf
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = [store.identify(q, method=method) for q in queries]
        best = min(best, time.perf_counter() - start)
    return len(queries) / best, results


def test_identify_throughput_vs_store_size(record_identify_result):
    rng = np.random.default_rng(2024)
    report_lines = []
    for size in store_sizes():
        rows = synthetic_rows(size, rng)
        store = build_store(rows)
        assert len(store) == size
        queries = make_queries(store, rows, rng)

        sketch_ips, sketch_results = time_path(store, queries, "sketch")
        brute_ips, brute_results = time_path(store, queries, "brute")

        # Answer identity on every clean query: same rank-1 bus, same
        # acceptance, scores equal to the last ulp (BLAS accumulates the
        # shortlist gather and the full mat-vec with shape-dependent
        # blocking) — the index never changes the answer, only the work.
        for q, rs, rb in zip(queries, sketch_results, brute_results):
            assert rs.bus == rb.bus == q.line_name
            assert abs(rs.score - rb.score) <= 1e-12
            assert rs.accepted == rb.accepted

        speedup = sketch_ips / brute_ips
        gate = size >= SPEEDUP_GATE_SIZE and not smoke_mode()
        record_identify_result(
            f"identify_{size}",
            {
                "store_size": size,
                "record_length": RECORD_LENGTH,
                "n_queries": N_QUERIES,
                "shortlist_size": store.shortlist_size,
                "sketch_dim": store.sketch.dim(RECORD_LENGTH),
                "sketch_ids_per_s": sketch_ips,
                "brute_ids_per_s": brute_ips,
                "speedup": speedup,
                "speedup_floor": SPEEDUP_FLOOR,
                "speedup_gated": gate,
                "rank1_identical_to_brute": True,
            },
        )
        report_lines.append(
            f"M={size:>7}: sketch {sketch_ips:10.0f} ids/s   "
            f"brute {brute_ips:10.0f} ids/s   speedup {speedup:6.2f}x"
            f"{'   (floor enforced)' if gate else ''}"
        )
        if gate:
            assert speedup >= SPEEDUP_FLOOR, (
                f"sketch index only {speedup:.2f}x over brute force at "
                f"M={size} (floor {SPEEDUP_FLOOR}x)"
            )
    emit(
        "1:N IDENTIFICATION — sketch index vs brute force",
        "\n".join(report_lines)
        + f"\nqueries per size         : {N_QUERIES} "
        f"(noise {NOISE_RMS:.2f} rel RMS)\n"
        "rank-1 vs brute force    : identical on every query",
    )
