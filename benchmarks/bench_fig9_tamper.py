"""Bench F9: regenerate Fig. 9 — tamper signatures, detection, localisation."""

from conftest import emit

from repro.experiments import fig9_tamper


def test_fig9_tamper_suite(benchmark):
    result = benchmark.pedantic(
        fig9_tamper.run, kwargs={"averaging": 256}, rounds=1, iterations=1
    )
    emit(
        "Fig. 9 — tamper suite (paper: all attacks detected; magnetic probe "
        "smallest signature and localisable; wire-tap damage permanent)",
        result.report(),
    )
    assert result.all_detected()
    assert result.ordering_holds()
    located = [
        s for s in result.studies if s.localisation_error_m is not None
    ]
    assert all(s.localisation_error_m < 0.05 for s in located)
