"""Bench F7: regenerate Fig. 7(a/b) — genuine/impostor distributions, ROC, EER."""

from conftest import emit

from repro.experiments import fig7_auth


def test_fig7_authentication(benchmark, scale):
    result = benchmark.pedantic(
        fig7_auth.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit("Fig. 7 — authentication (paper: EER < 0.06% at room temperature)",
         result.report())
    assert result.meets_paper_band()
    summary = result.scores.summary()
    assert summary["genuine_mean"] > summary["impostor_max"]
