"""Loop-vs-batch capture throughput: the unification's perf pin.

``capture_averaged(n_captures=64)`` used to run 64 sequential ``capture``
calls in Python, re-running the comparator per reference level every time;
it now makes one ``capture_stack`` call — one physics solve plus one
``(64, N)`` numpy pass.  This bench measures captures/sec both ways and
asserts the batch engine stays at least 5x ahead of the seed's loop
implementation, so a regression in the hot path fails loudly.
"""

import time

import numpy as np

from repro.core.config import prototype_itdr, prototype_line_factory
from repro.env.emi import nearby_digital_circuit

from conftest import emit, smoke_mode

N_CAPTURES = 64


def _setup():
    factory = prototype_line_factory()
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(0))
    # Warm the reflection cache so both paths time estimation, not physics.
    itdr.true_reflection(line)
    return line, itdr


def _loop_averaged(itdr, line, n_captures):
    """The seed implementation: n sequential captures, averaged."""
    waves = [itdr.capture(line).waveform.samples for _ in range(n_captures)]
    return np.mean(waves, axis=0)


def _time_captures_per_sec(fn, n_captures, min_rounds=5):
    best = np.inf
    for _ in range(min_rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n_captures / best


def test_batch_averaging_at_least_5x_loop(benchmark):
    line, itdr = _setup()
    loop_rate = _time_captures_per_sec(
        lambda: _loop_averaged(itdr, line, N_CAPTURES), N_CAPTURES
    )
    batch_rate = _time_captures_per_sec(
        lambda: itdr.capture_averaged(line, N_CAPTURES), N_CAPTURES
    )
    capture = benchmark(itdr.capture_averaged, line, N_CAPTURES)
    speedup = batch_rate / loop_rate
    emit(
        "CAPTURE THROUGHPUT — loop vs batch engine",
        f"averaging depth          : {N_CAPTURES} captures\n"
        f"seed loop implementation : {loop_rate:10.0f} captures/sec\n"
        f"batch engine             : {batch_rate:10.0f} captures/sec\n"
        f"speedup                  : {speedup:10.1f}x (floor: 5x)",
    )
    assert len(capture.waveform) == itdr.record_length(line)
    if not smoke_mode():
        assert speedup >= 5.0


def test_batch_interference_no_regression(benchmark):
    """The per-trial EMI path rides the batch engine without regressing.

    Interference shifts the comparator mean on every individual trial, so
    this path is dominated by drawing C*N*R aggressor samples — work that
    is inherently per-element and costs the same whether captures are
    looped or batched.  The unification's win here is capability (EMI now
    reaches every batch path) and consistency, not throughput; the pin is
    therefore no-regression, not a speedup floor.
    """
    line, itdr = _setup()
    env = nearby_digital_circuit()
    loop_rate = _time_captures_per_sec(
        lambda: np.mean(
            [
                itdr.capture(line, interference=env).waveform.samples
                for _ in range(N_CAPTURES)
            ],
            axis=0,
        ),
        N_CAPTURES,
        min_rounds=3,
    )
    batch_rate = _time_captures_per_sec(
        lambda: itdr.capture_averaged(line, N_CAPTURES, interference=env),
        N_CAPTURES,
        min_rounds=3,
    )
    result = benchmark(
        itdr.capture_averaged, line, N_CAPTURES, interference=env
    )
    emit(
        "CAPTURE THROUGHPUT — EMI path",
        f"seed loop implementation : {loop_rate:10.0f} captures/sec\n"
        f"batch engine             : {batch_rate:10.0f} captures/sec\n"
        f"speedup                  : {batch_rate / loop_rate:10.1f}x",
    )
    assert len(result.waveform) == itdr.record_length(line)
    if not smoke_mode():
        assert batch_rate > 0.8 * loop_rate


def test_calibration_throughput(benchmark):
    """Enrollment rides the same engine: one batch call per fingerprint."""
    from repro.core.fingerprint import Fingerprint

    line, itdr = _setup()

    def calibrate():
        return Fingerprint.from_stack(
            itdr.capture_stack(line, N_CAPTURES),
            dt=itdr.pll.phase_step,
            name=line.name,
        )

    fingerprint = benchmark(calibrate)
    assert fingerprint.n_captures == N_CAPTURES
