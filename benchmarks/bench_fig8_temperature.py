"""Bench F8: regenerate Fig. 8 — the 23->75 C genuine-distribution shift."""

from conftest import emit

from repro.experiments import fig8_temperature


def test_fig8_temperature_swing(benchmark, scale):
    result = benchmark.pedantic(
        fig8_temperature.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(
        "Fig. 8 — temperature swing (paper: EER 0.06% -> 0.14%, genuine "
        "distribution moves left)",
        result.report(),
    )
    assert result.shape_holds()
    assert result.hot_eer <= 0.02  # still a small fraction of a percent
