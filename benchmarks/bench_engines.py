"""Micro-benchmarks: simulator throughput (not a paper artefact).

These time the hot paths so performance regressions in the physics and
measurement engines are visible: lattice step loop, Born batch rendering,
single capture, and the vectorised batch-capture path the statistical
experiments live on.
"""

import numpy as np

from repro.core.config import prototype_itdr, prototype_line_factory
from repro.txline.propagation import BornEngine, LatticeEngine


def _setup():
    factory = prototype_line_factory()
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(0))
    return line, itdr


def test_lattice_impulse_throughput(benchmark):
    line, _ = _setup()
    profile = line.full_profile
    engine = LatticeEngine(round_trips=3)
    result = benchmark(engine.impulse_sequence, profile)
    assert len(result) > 0


def test_born_batch_throughput(benchmark):
    line, _ = _setup()
    profile = line.full_profile
    engine = BornEngine(grid_dt=float(np.mean(profile.tau)))
    z = np.tile(profile.z, (256, 1))
    tau = np.tile(profile.tau, (256, 1))
    result = benchmark(
        engine.batch_impulse_sequences,
        z,
        tau,
        profile.load_reflection(),
        profile.loss_per_segment,
        400,
    )
    assert result.shape == (256, 400)


def test_single_capture_throughput(benchmark):
    line, itdr = _setup()
    capture = benchmark(itdr.capture, line)
    assert len(capture.waveform) > 0


def test_batch_capture_throughput(benchmark):
    line, itdr = _setup()
    result = benchmark(itdr.capture_batch, line, 1024)
    assert result.shape[0] == 1024
