"""Bench R1: monitoring-runtime abstraction overhead on the Fig. 6 workload.

The unified runtime routed membus monitoring through ``MonitorRuntime``
(cadence arithmetic, canonical events, telemetry sinks) instead of an
inline loop.  This bench replays the pre-refactor loop — endpoints driven
directly, events appended to a plain list, period arithmetic by hand —
against the runtime-driven ``ProtectedMemorySystem.run`` on a Fig. 6-scale
trace, and pins the abstraction cost below 10%.

Both paths do identical physics (same seeds, same trace, same number of
monitoring decisions); the delta is pure bookkeeping.
"""

import time

from conftest import emit, smoke_mode

from repro.core.runtime import MonitorEvent
from repro.experiments.fig6_membus import build_system

N_REQUESTS = 4000
#: Shallower averaging than the Fig. 6 default so several monitoring
#: decisions land inside the trace (the default period is longer than a
#: 2000-request run, which would leave nothing to compare).
CAPTURES_PER_CHECK = 4
ROUNDS = 3
MAX_OVERHEAD = 1.10

SEED = 10


def make_workload():
    """A freshly calibrated system plus its materialised request trace."""
    system, gen = build_system(
        seed=SEED, captures_per_check=CAPTURES_PER_CHECK
    )
    return system, list(gen.random(N_REQUESTS, write_fraction=0.4))


def inline_run(system, requests):
    """The pre-refactor monitoring loop, verbatim.

    Clean-run semantics only (no timeline, no lane override, single
    monitored lane) — exactly what the runtime path executes below.
    """
    controller = system.controller
    completed, events = [], []
    for request in requests:
        controller.enqueue(request)
    next_capture = system.capture_period_s
    while controller.pending():
        t = system.bus.cycles_to_seconds(controller.current_cycle)
        while t >= next_capture:
            for side, endpoint in (
                ("cpu", system.cpu_endpoint),
                ("module", system.module_endpoint),
            ):
                result = endpoint.monitor_capture(system.bus.line)
                events.append(
                    MonitorEvent(
                        time_s=next_capture,
                        side=side,
                        action=result.action,
                        score=result.auth.score,
                        tampered=result.tamper.tampered,
                        location_m=result.tamper.location_m,
                    )
                )
            next_capture += system.capture_period_s
        record = controller.issue_next()
        if record is None:
            continue
        completed.append(record)
    return completed, events


def best_of(fn):
    """Best-of-ROUNDS wall time; each round gets a fresh workload."""
    best = float("inf")
    outcome = None
    for _ in range(ROUNDS):
        system, requests = make_workload()
        start = time.perf_counter()
        outcome = fn(system, requests)
        best = min(best, time.perf_counter() - start)
    return best, outcome


def test_runtime_overhead_under_ten_percent(benchmark):
    # Bracket the benchmarked runs with inline measurements so slow drift
    # (thermal/turbo) cancels out of the ratio.
    inline_before, (inline_completed, inline_events) = best_of(inline_run)

    def protected_run(system, requests):
        return system.run(requests)

    def setup():
        return make_workload(), {}

    result = benchmark.pedantic(
        protected_run, setup=setup, rounds=ROUNDS, iterations=1
    )
    if benchmark.stats is not None:
        runtime_s = benchmark.stats.stats.min
    else:  # --benchmark-disable (the CI smoke run): time it ourselves
        runtime_s, _ = best_of(lambda system, requests: system.run(requests))
    inline_after, _ = best_of(inline_run)
    inline_s = min(inline_before, inline_after)

    # The replica is faithful: same traffic, same number of decisions.
    assert len(result.completed) == len(inline_completed)
    assert len(result.events) == len(inline_events)
    assert result.alerts() == [] and not any(
        e.is_alert for e in inline_events
    )

    ratio = runtime_s / inline_s
    emit(
        "R1 — runtime abstraction overhead (refactor contract: the cadence/"
        "event-log/telemetry layer adds <10% to a Fig. 6-scale run)",
        f"requests per run     : {N_REQUESTS}\n"
        f"monitoring decisions : {len(result.events)}\n"
        f"inline loop (best)   : {inline_s * 1e3:.1f} ms\n"
        f"runtime-driven (best): {runtime_s * 1e3:.1f} ms\n"
        f"ratio                : {ratio:.3f}x (budget {MAX_OVERHEAD:.2f}x)",
    )
    assert smoke_mode() or ratio <= MAX_OVERHEAD, (
        f"runtime path is {ratio:.3f}x the inline loop "
        f"(budget {MAX_OVERHEAD:.2f}x)"
    )
