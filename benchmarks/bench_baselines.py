"""Bench A-BASE: DIVOT vs prior countermeasures (section V comparison)."""

from conftest import emit

from repro.experiments import baseline_comparison


def test_baseline_comparison(benchmark):
    result = benchmark.pedantic(
        baseline_comparison.run,
        kwargs={"divot_averaging": 256},
        rounds=1,
        iterations=1,
    )
    emit(
        "Prior-art comparison (paper section V: only DIVOT is concurrent, "
        "runtime, integrated, and sensitive to non-contact EM probes)",
        result.report(),
    )
    assert result.divot_dominates()
