"""Batched lattice kernel + FFT convolution: the physics-solve perf pin.

The exact Goupillaud lattice used to be a scalar Python loop — orders of
magnitude slower than the Born engine's vectorised echo pass, which is why
every hot path defaulted to the approximate model.  This bench pins the
batched kernel's win: stepping ``C`` capture rows through one vectorised
k-loop must be at least 10x faster per sequence than the scalar reference
at ``C=256`` — and bit-for-bit identical to it, so the speedup is never
bought with different physics.

The second pin covers the shared convolution helper: the method choice
(direct vs FFT) is a pure function of operand sizes, the FFT path beats
the O(N*M) direct product at capture-path sizes, and a fleet scan whose
capture convolutions land on the FFT path stays byte-identical across
shard counts — determinism survives the faster math.

The third pin covers the fused count-only capture kernel: steady-state
captures (monitoring checks, enrollment stacks, fleet scans) skip the
dense probability-grid render and draw comparator counts straight from
cached per-level CDF tables.  At the monitoring scale — one capture per
check, warm caches — the fused path must be at least 5x the grid path
in captures/sec while staying bit-for-bit identical to it, and must
perform zero dense renders once warm.

Results are written to ``benchmarks/BENCH_physics.json`` so the solver
throughput trajectory can be tracked across commits.  Under
``REPRO_BENCH_SMOKE=1`` the sizes shrink and wall-clock floors are not
enforced (shared CI runners); correctness and byte-identity always are.
"""

import dataclasses
import time

import numpy as np

from repro.core import (
    Authenticator,
    FleetScanExecutor,
    TamperDetector,
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.itdr import ITDR
from repro.signals import conv_method, convolve_full
from repro.txline.materials import FR4
from repro.txline.profile import ImpedanceProfile
from repro.txline.propagation import LatticeEngine

from conftest import emit, smoke_mode

TAU = 11.16e-12
BATCH_C = 64 if smoke_mode() else 256
SEGMENTS = 64
N_SCALAR = 8 if smoke_mode() else 32
SPEEDUP_FLOOR = 10.0


def _lattice_states(rng):
    z = 50.0 * (1.0 + 0.02 * rng.standard_normal((BATCH_C, SEGMENTS)))
    tau = np.full((BATCH_C, SEGMENTS), TAU)
    r_load = rng.uniform(-0.05, 0.05, BATCH_C)
    r_src = rng.uniform(-0.05, 0.05, BATCH_C)
    return z, tau, r_load, r_src


def _best_time(fn, rounds=3):
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_lattice_at_least_10x_scalar(benchmark, record_physics_result):
    rng = np.random.default_rng(0)
    z, tau, r_load, r_src = _lattice_states(rng)
    engine = LatticeEngine()
    loss = 0.995

    profiles = [
        ImpedanceProfile(
            z=z[i],
            tau=tau[i],
            z_source=float(rng.uniform(45.0, 55.0)),
            z_load=float(rng.uniform(45.0, 55.0)),
            loss_per_segment=loss,
        )
        for i in range(N_SCALAR)
    ]
    # The scalar-covered rows use the exact coefficients the profiles
    # resolve to, so the bitwise comparison below is apples to apples.
    for i, p in enumerate(profiles):
        r_load[i] = p.load_reflection()
        r_src[i] = p.source_reflection()
    n_steps = engine._default_steps(SEGMENTS)

    scalar_s = _best_time(
        lambda: [
            engine.scalar_impulse_sequence(p, n_steps=n_steps)
            for p in profiles
        ]
    )
    batch_s = _best_time(
        lambda: engine.batch_impulse_sequences(
            z, tau, r_load, loss, r_src=r_src, n_steps=n_steps
        )
    )
    benchmark(
        engine.batch_impulse_sequences,
        z, tau, r_load, loss, r_src=r_src, n_steps=n_steps,
    )

    scalar_rate = N_SCALAR / scalar_s
    batch_rate = BATCH_C / batch_s
    speedup = batch_rate / scalar_rate

    # The speedup must never be bought with different physics: the rows
    # the scalar reference covered are bit-for-bit identical.
    batched = engine.batch_impulse_sequences(
        z, tau, r_load, loss, r_src=r_src, n_steps=n_steps
    )
    for i, p in enumerate(profiles):
        reference = engine.scalar_impulse_sequence(p, n_steps=n_steps)
        assert batched[i].tobytes() == reference.samples.tobytes()

    record_physics_result(
        "lattice_impulse_throughput",
        {
            "batch_c": BATCH_C,
            "segments": SEGMENTS,
            "n_steps": n_steps,
            "scalar_sequences_per_s": scalar_rate,
            "batch_sequences_per_s": batch_rate,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_gated": not smoke_mode(),
        },
    )
    emit(
        "PHYSICS KERNELS — scalar loop vs batched lattice",
        f"batch size               : C={BATCH_C}, S={SEGMENTS}, "
        f"{n_steps} steps\n"
        f"scalar reference         : {scalar_rate:10.1f} sequences/sec\n"
        f"batched kernel           : {batch_rate:10.1f} sequences/sec\n"
        f"speedup                  : {speedup:10.1f}x "
        f"(floor: {SPEEDUP_FLOOR:.0f}x"
        f"{', not enforced in smoke mode' if smoke_mode() else ''})",
    )
    if not smoke_mode():
        assert speedup >= SPEEDUP_FLOOR


FUSED_SPEEDUP_FLOOR = 5.0
FUSED_ROUNDS = 60 if smoke_mode() else 300
FUSED_STACKS = (1, 4, 64)


def test_fused_capture_kernel_at_least_5x_grid(record_physics_result):
    """Count-only captures beat the dense-grid path 5x at monitor scale.

    Both iTDRs are warmed first (reflection solve + CDF tables cached),
    then timed over repeated ``capture_stack`` calls — exactly the
    steady-state monitoring loop.  The speedup must never be bought with
    different statistics: the fused stacks are bit-for-bit the grid
    stacks, and the fused iTDR performs zero dense renders while timed.
    """
    line = prototype_line_factory().manufacture(seed=900)

    def rate(itdr, n_captures):
        itdr.capture_stack(line, n_captures)  # warm every cache
        start = time.perf_counter()
        for _ in range(FUSED_ROUNDS):
            itdr.capture_stack(line, n_captures)
        return FUSED_ROUNDS * n_captures / (time.perf_counter() - start)

    rows = {}
    for n_captures in FUSED_STACKS:
        grid_rate = rate(
            prototype_itdr(
                rng=np.random.default_rng(2), capture_kernel="grid"
            ),
            n_captures,
        )
        fused = prototype_itdr(rng=np.random.default_rng(2))
        fused_rate = rate(fused, n_captures)
        rows[n_captures] = (grid_rate, fused_rate)

    # Bit-identity and zero dense renders in the steady state.
    fused = prototype_itdr(rng=np.random.default_rng(3))
    grid = prototype_itdr(rng=np.random.default_rng(3), capture_kernel="grid")
    assert (
        fused.capture_stack(line, 8).tobytes()
        == grid.capture_stack(line, 8).tobytes()
    )
    before = fused.kernel_stats.snapshot()
    fused.capture_stack(line, 8)
    delta = fused.kernel_stats.delta(before)
    assert delta["dense_renders"] == 0 and delta["grid_calls"] == 0

    monitor_grid, monitor_fused = rows[1]
    speedup = monitor_fused / monitor_grid
    record_physics_result(
        "fused_capture_kernel",
        {
            "rounds": FUSED_ROUNDS,
            "per_stack": {
                str(c): {
                    "grid_captures_per_s": g,
                    "fused_captures_per_s": f,
                    "speedup": f / g,
                }
                for c, (g, f) in rows.items()
            },
            "monitor_scale_speedup": speedup,
            "speedup_floor": FUSED_SPEEDUP_FLOOR,
            "speedup_gated": not smoke_mode(),
            "byte_identical": True,
            "dense_renders_steady_state": 0,
        },
    )
    emit(
        "PHYSICS KERNELS — dense-grid vs fused count-only captures",
        "\n".join(
            f"C={c:3d}  grid {g:10.0f} cap/s   fused {f:10.0f} cap/s   "
            f"{f / g:6.2f}x"
            for c, (g, f) in rows.items()
        )
        + f"\nmonitor-scale speedup    : {speedup:10.1f}x "
        f"(floor: {FUSED_SPEEDUP_FLOOR:.0f}x"
        f"{', not enforced in smoke mode' if smoke_mode() else ''})"
        "\nfused vs grid stacks     : byte-identical, 0 dense renders",
    )
    if not smoke_mode():
        assert speedup >= FUSED_SPEEDUP_FLOOR


def test_fft_convolution_beats_direct_at_size(record_physics_result):
    """At large operand sizes the helper picks FFT and outruns O(N*M)."""
    rng = np.random.default_rng(1)
    n, m = (2048, 256) if smoke_mode() else (16384, 1024)
    a = rng.standard_normal(n)
    b = rng.standard_normal(m)
    assert conv_method(n, m) == "fft"

    direct_s = _best_time(lambda: np.convolve(a, b))
    helper_s = _best_time(lambda: convolve_full(a, b))
    assert np.allclose(convolve_full(a, b), np.convolve(a, b), atol=1e-9)

    record_physics_result(
        "fft_convolution",
        {
            "n": n,
            "m": m,
            "method": conv_method(n, m),
            "direct_s": direct_s,
            "fft_s": helper_s,
            "speedup": direct_s / helper_s,
            "speedup_gated": not smoke_mode(),
        },
    )
    emit(
        "PHYSICS KERNELS — direct vs FFT convolution",
        f"operands                 : {n} x {m} "
        f"(method: {conv_method(n, m)})\n"
        f"np.convolve (direct)     : {direct_s * 1e3:10.2f} ms\n"
        f"convolve_full (FFT)      : {helper_s * 1e3:10.2f} ms\n"
        f"speedup                  : {direct_s / helper_s:10.1f}x",
    )
    if not smoke_mode():
        assert helper_s < direct_s


def test_fleet_byte_identity_with_fft_capture_path(record_physics_result):
    """Shard-count invisibility survives the FFT convolution path.

    A 3x-longer probe edge pushes the capture convolution over the
    direct-cost ceiling, so every solve in this fleet runs through
    ``fftconvolve``.  Serial ``shards=1`` and process ``shards=2`` scans
    must still produce byte-identical outcomes — the FFT method choice is
    a pure function of sizes, never of partitioning.
    """
    base = prototype_itdr_config()
    config = dataclasses.replace(
        base, edge_rise_time=base.edge_rise_time * 3
    )
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(3, first_seed=950)
    probe = ITDR(config).probe_edge()
    n_out = ITDR(config).record_length(lines[0])
    assert conv_method(n_out, len(probe)) == "fft"

    def make(shards, backend):
        detector = TamperDetector(
            threshold=2.5e-3,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=probe.duration,
        )
        executor = FleetScanExecutor(
            Authenticator(0.85),
            detector,
            itdr_config=config,
            captures_per_check=4,
            shards=shards,
            backend=backend,
            seed=13,
        )
        for line in lines:
            executor.register(line)
        return executor

    with make(1, "serial") as serial:
        serial.enroll(n_captures=4)
        serial_outcome = serial.scan()
    with make(2, "process") as sharded:
        sharded.enroll(n_captures=4)
        sharded_outcome = sharded.scan()

    identical = (
        serial_outcome.canonical_bytes() == sharded_outcome.canonical_bytes()
    )
    record_physics_result(
        "fleet_fft_byte_identity",
        {
            "n_buses": len(lines),
            "conv_sizes": [n_out, len(probe)],
            "conv_method": conv_method(n_out, len(probe)),
            "byte_identical": identical,
        },
    )
    emit(
        "PHYSICS KERNELS — fleet byte-identity on the FFT path",
        f"capture convolution      : {n_out} x {len(probe)} samples "
        f"(method: {conv_method(n_out, len(probe))})\n"
        f"serial vs 2-shard scan   : "
        f"{'byte-identical' if identical else 'DIVERGED'}",
    )
    assert identical
