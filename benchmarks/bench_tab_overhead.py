"""Bench T-OVH: hardware overhead — 71 registers / 124 LUTs and scaling."""

from conftest import emit

from repro.experiments import tab_overhead


def test_hardware_overhead(benchmark):
    result = benchmark.pedantic(tab_overhead.run, rounds=1, iterations=1)
    emit(
        "Hardware overhead (paper: 71 registers, 124 LUTs, ~80% counters, "
        ">90% shareable)",
        result.report_text(),
    )
    assert result.matches_paper_totals()
    assert result.counter_dominated()
    assert result.report.shared_fraction > 0.90
