"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one paper figure/table (see DESIGN.md
section 4): it runs the corresponding ``repro.experiments`` module, prints
the same rows/series the paper reports, and asserts the shape predicates.
pytest-benchmark times the experiment itself.

Scale: benches default to a reduced-but-meaningful scale so the whole
harness finishes in minutes.  Set ``REPRO_FULL_SCALE=1`` to run the paper's
full 6-lines x 8192-measurements protocol.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import FULL, ExperimentScale

BENCH_FLEET_JSON = Path(__file__).resolve().parent / "BENCH_fleet.json"

_fleet_results = {}


@pytest.fixture
def record_fleet_result():
    """Collect one bench's machine-readable row for ``BENCH_fleet.json``.

    The fleet-scan bench calls this with a name and a JSON-serialisable
    dict; everything recorded over the session is written out at exit so
    the scan-throughput trajectory can be tracked across commits.
    """

    def _record(name: str, payload: dict) -> None:
        _fleet_results[name] = payload

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _fleet_results:
        BENCH_FLEET_JSON.write_text(
            json.dumps(_fleet_results, indent=2, sort_keys=True) + "\n"
        )


def harness_scale() -> ExperimentScale:
    """The scale benches run at (env-var switchable to paper scale)."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return FULL
    return ExperimentScale(n_lines=6, n_measurements=1024, n_enroll=16)


@pytest.fixture
def scale():
    """Experiment scale fixture shared by the statistical benches."""
    return harness_scale()


def emit(title: str, body: str) -> None:
    """Print a bench's reproduction report (captured into bench output)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
