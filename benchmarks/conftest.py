"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one paper figure/table (see DESIGN.md
section 4): it runs the corresponding ``repro.experiments`` module, prints
the same rows/series the paper reports, and asserts the shape predicates.
pytest-benchmark times the experiment itself.

Scale: benches default to a reduced-but-meaningful scale so the whole
harness finishes in minutes.  Set ``REPRO_FULL_SCALE=1`` to run the paper's
full 6-lines x 8192-measurements protocol.  Set ``REPRO_BENCH_SMOKE=1``
(the CI smoke step) to shrink workloads further and drop the wall-clock
speedup floors — shared CI runners are too noisy to enforce perf ratios,
but every bench still runs end to end, so an API break or a determinism
regression fails fast in CI while the perf pins stay meaningful on
dedicated hardware.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import FULL, ExperimentScale

BENCH_FLEET_JSON = Path(__file__).resolve().parent / "BENCH_fleet.json"
BENCH_PHYSICS_JSON = Path(__file__).resolve().parent / "BENCH_physics.json"
BENCH_IDENTIFY_JSON = Path(__file__).resolve().parent / "BENCH_identify.json"
BENCH_CAMPAIGNS_JSON = Path(__file__).resolve().parent / "BENCH_campaigns.json"
BENCH_TRANSPORT_JSON = Path(__file__).resolve().parent / "BENCH_transport.json"

_fleet_results = {}
_physics_results = {}
_identify_results = {}
_campaign_results = {}
_transport_results = {}


def smoke_mode() -> bool:
    """Whether the harness runs as a CI smoke test (tiny sizes, no
    wall-clock floors)."""
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.fixture
def record_fleet_result():
    """Collect one bench's machine-readable row for ``BENCH_fleet.json``.

    The fleet-scan bench calls this with a name and a JSON-serialisable
    dict; everything recorded over the session is written out at exit so
    the scan-throughput trajectory can be tracked across commits.
    """

    def _record(name: str, payload: dict) -> None:
        _fleet_results[name] = payload

    return _record


@pytest.fixture
def record_physics_result():
    """Collect one bench's machine-readable row for ``BENCH_physics.json``.

    The physics-kernel bench records lattice/conv throughput rows here so
    the solver-speed trajectory can be tracked across commits, next to the
    fleet-scan numbers.
    """

    def _record(name: str, payload: dict) -> None:
        _physics_results[name] = payload

    return _record


@pytest.fixture
def record_identify_result():
    """Collect one bench's machine-readable row for ``BENCH_identify.json``.

    The 1:N identification bench records identifications/sec vs store
    size here, so the index-vs-brute-force trajectory can be tracked
    across commits next to the fleet and physics numbers.
    """

    def _record(name: str, payload: dict) -> None:
        _identify_results[name] = payload

    return _record


@pytest.fixture
def record_campaign_result():
    """Collect one bench's machine-readable row for ``BENCH_campaigns.json``.

    The adaptive-campaign bench records rounds/sec and per-protocol
    frontier summaries here, so the attacker-vs-detector trajectory can
    be tracked across commits next to the other bench families.
    """

    def _record(name: str, payload: dict) -> None:
        _campaign_results[name] = payload

    return _record


@pytest.fixture
def record_transport_result():
    """Collect one bench's machine-readable row for ``BENCH_transport.json``.

    The shard-transport bench records serialized-bytes-per-scan and
    end-to-end throughput for the pickle reference path versus the
    shared-memory descriptor path, so the serialization-tax trajectory
    can be tracked across commits next to the other bench families.
    """

    def _record(name: str, payload: dict) -> None:
        _transport_results[name] = payload

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _fleet_results:
        BENCH_FLEET_JSON.write_text(
            json.dumps(_fleet_results, indent=2, sort_keys=True) + "\n"
        )
    if _physics_results:
        BENCH_PHYSICS_JSON.write_text(
            json.dumps(_physics_results, indent=2, sort_keys=True) + "\n"
        )
    if _identify_results:
        BENCH_IDENTIFY_JSON.write_text(
            json.dumps(_identify_results, indent=2, sort_keys=True) + "\n"
        )
    if _campaign_results:
        BENCH_CAMPAIGNS_JSON.write_text(
            json.dumps(_campaign_results, indent=2, sort_keys=True) + "\n"
        )
    if _transport_results:
        BENCH_TRANSPORT_JSON.write_text(
            json.dumps(_transport_results, indent=2, sort_keys=True) + "\n"
        )


def harness_scale() -> ExperimentScale:
    """The scale benches run at (env-var switchable to paper scale)."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return FULL
    if smoke_mode():
        return ExperimentScale(n_lines=4, n_measurements=256, n_enroll=8)
    return ExperimentScale(n_lines=6, n_measurements=1024, n_enroll=16)


@pytest.fixture
def scale():
    """Experiment scale fixture shared by the statistical benches."""
    return harness_scale()


def emit(title: str, body: str) -> None:
    """Print a bench's reproduction report (captured into bench output)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
