"""Bench E-VIB/E-EMI: vibration and EMI robustness (section IV-C text)."""

from conftest import emit

from repro.experiments import env_robustness
from repro.experiments.common import ExperimentScale


def test_env_robustness(benchmark, scale):
    # EMI runs capture-by-capture (per-trial aggressor sampling), so cap
    # its measurement count to keep the bench tractable.
    emi_scale = ExperimentScale(
        n_lines=min(scale.n_lines, 4),
        n_measurements=min(scale.n_measurements, 512),
        n_enroll=scale.n_enroll,
    )
    result = benchmark.pedantic(
        env_robustness.run, kwargs={"scale": emi_scale}, rounds=1, iterations=1
    )
    emit(
        "Environmental robustness (paper: vibration EER 0.27%, EMI stays "
        "0.06%)",
        result.report(),
    )
    assert result.ordering_holds()
