"""Bench A-ABL/A-MULTI: design-choice ablations from DESIGN.md section 5."""

from conftest import emit

from repro.experiments import (
    ablation_ets,
    ablation_multiwire,
    ablation_pdm,
    ablation_trigger,
)
from repro.experiments.common import ExperimentScale


def test_ablation_pdm(benchmark):
    result = benchmark.pedantic(
        ablation_pdm.run, kwargs={"repetitions": 4800}, rounds=1, iterations=1
    )
    emit("Ablation — PDM on/off and ladder density", result.report())
    assert result.pdm_wins_on_wide_signals()
    assert result.dense_ladder_wins()


def test_ablation_trigger(benchmark):
    result = benchmark.pedantic(ablation_trigger.run, rounds=1, iterations=1)
    emit(
        "Ablation — trigger gating (paper II-E: ungated rising/falling "
        "edges cancel)",
        result.report(),
    )
    assert result.cancellation_demonstrated()


def test_ablation_ets_step(benchmark):
    result = benchmark.pedantic(ablation_ets.run, rounds=1, iterations=1)
    emit("Ablation — ETS phase-step size", result.report())
    assert result.finer_is_sharper()


def test_ablation_multiwire(benchmark, scale):
    mw_scale = ExperimentScale(
        n_lines=4,
        n_measurements=min(scale.n_measurements, 1024),
        n_enroll=scale.n_enroll,
    )
    result = benchmark.pedantic(
        ablation_multiwire.run, kwargs={"scale": mw_scale}, rounds=1, iterations=1
    )
    emit(
        "Ablation — multi-wire fusion (paper IV-C: monitoring multiple "
        "wires can exponentially increase accuracy)",
        result.report(),
    )
    assert result.accuracy_improves()
