"""Bench F5: regenerate Fig. 5 / section II-D — ETS rate and resolution."""

from conftest import emit

from repro.experiments import fig5_ets


def test_fig5_ets(benchmark):
    result = benchmark.pedantic(fig5_ets.run, rounds=1, iterations=1)
    emit(
        "Fig. 5 — ETS (paper: 11.16 ps step, >80 GSa/s equivalent, "
        "0.837 mm spatial resolution)",
        result.report(),
    )
    assert result.matches_paper_numbers()
    assert result.reconstruction_error == 0.0
