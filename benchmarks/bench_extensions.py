"""Bench X-CLONE / X-JIT / X-LINK: extension studies beyond the paper.

Cloning (the unclonability curve behind section III's no-ROM-secrecy
claim), PLL jitter sensitivity (behind the prototype's "timing stability"
clock choice), and the serial-I/O-link deployment (the paper's stated
future work).
"""

import numpy as np
from conftest import emit

from repro.attacks import AttackTimeline, WireTap
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr, prototype_line_factory
from repro.core.tamper import TamperDetector
from repro.experiments import ext_cloning, ext_jitter
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.txline.materials import FR4


def test_cloning_study(benchmark):
    result = benchmark.pedantic(ext_cloning.run, rounds=1, iterations=1)
    emit(
        "Unclonability study (paper III: a stolen fingerprint is useless "
        "off its exact Tx-line)",
        result.report(),
    )
    assert result.unclonability_holds()
    bests = [best for _, best, _ in result.tier_rows]
    assert bests == sorted(bests)  # capability monotonicity


def test_jitter_study(benchmark):
    result = benchmark.pedantic(ext_jitter.run, rounds=1, iterations=1)
    emit(
        "PLL jitter study (prototype clocked 'for the sake of timing "
        "stability')",
        result.report(),
    )
    assert result.clean_is_best()
    assert result.degrades_beyond_phase_step()


def _protected_link():
    factory = prototype_line_factory()
    line = factory.manufacture(seed=60, name="serdes-lane0")
    link = SerialLink(line, bit_rate=5e9)
    tx = prototype_itdr(rng=np.random.default_rng(1))
    rx = prototype_itdr(rng=np.random.default_rng(2))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=tx.probe_edge().duration,
    )
    plink = ProtectedSerialLink(
        link, tx, rx, Authenticator(0.85), detector, captures_per_check=8
    )
    plink.calibrate()
    return plink


def test_serial_link_session(benchmark):
    plink = _protected_link()
    rng = np.random.default_rng(3)
    frames = [
        Frame(sequence=i % 256, payload=tuple(rng.integers(0, 256, 64)))
        for i in range(3000)
    ]
    onset = plink.check_period_s * 1.5
    timeline = AttackTimeline().add(WireTap(0.12), start_s=onset)
    result = benchmark.pedantic(
        plink.send, args=(frames,), kwargs={"timeline": timeline},
        rounds=1, iterations=1,
    )
    latency = result.detection_latency(onset)
    emit(
        "Protected serial link (future work: DIVOT on I/O buses)",
        "\n".join(
            [
                f"frames sent           : {len(frames)}",
                f"delivered before block: {len(result.delivered)}",
                f"monitoring checks     : {result.checks_run} "
                f"(period {plink.check_period_s * 1e6:.1f} us, traffic-fed)",
                f"wire-tap onset        : {onset * 1e6:.1f} us",
                "detection latency     : "
                + ("not detected" if latency is None else f"{latency * 1e6:.1f} us"),
                f"8b/10b trigger rate   : "
                f"{plink.link.measured_trigger_rate() / plink.link.bit_rate:.4f}/bit",
            ]
        ),
    )
    assert latency is not None


def test_sharing_study(benchmark):
    from repro.experiments import ext_sharing

    result = benchmark.pedantic(ext_sharing.run, rounds=1, iterations=1)
    emit(
        "Shared-datapath scaling (paper: >90% of a DIVOT detector "
        "multiplexes; the flip side is linear scan latency)",
        result.report(),
    )
    assert result.resources_flat_latency_linear()
    assert result.attack_found_in_one_scan


def test_adaptation_study(benchmark):
    from repro.experiments import ext_adaptation

    result = benchmark.pedantic(ext_adaptation.run, rounds=1, iterations=1)
    emit(
        "Drift-hardened deployments (temperature-compensated enrollment; "
        "rolling re-enrollment against aging)",
        result.report(),
    )
    assert result.compensation_helps()
    assert result.adaptation_tracks_aging()
    assert result.impostor_never_updates


def test_stack_composition(benchmark):
    from repro.experiments import ext_stack

    result = benchmark.pedantic(ext_stack.run, rounds=1, iterations=1)
    emit(
        "Protection-stack composition (paper V: encryption is orthogonal; "
        "integrate it for another layer)",
        result.report(),
    )
    assert result.composition_wins()
    assert result.divot_costs_nothing()


def test_enrollment_depth(benchmark):
    from repro.experiments import ext_enrollment

    result = benchmark.pedantic(ext_enrollment.run, rounds=1, iterations=1)
    emit(
        "Enrollment-depth study (how much installation-time calibration "
        "the paper's 'calibration process' needs)",
        result.report(),
    )
    assert result.deeper_is_better()


def test_sensitivity_tradeoff(benchmark):
    from repro.experiments import ext_sensitivity

    result = benchmark.pedantic(ext_sensitivity.run, rounds=1, iterations=1)
    emit(
        "Averaging depth vs tamper sensitivity (quantifying the latency "
        "the quietest attack costs)",
        result.report(),
    )
    assert result.margin_grows_with_averaging()
    assert result.detection_depth() > 0
