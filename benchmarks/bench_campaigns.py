"""Adaptive campaign throughput: the attacker-vs-detector loop's pin.

X-CAMPAIGN's whole value is iteration: every round re-proposes attacks,
re-scans the fleet, and re-judges — so campaign wall-clock is round
latency times adaptation depth.  This bench times one full suite run
(every stock strategy against every default protocol) and records
rounds/sec plus the per-protocol frontier summaries to
``benchmarks/BENCH_campaigns.json``.

Asserted unconditionally, on any machine:

* serial and sharded campaigns are byte-identical (determinism is a
  correctness property, not a perf property);
* the adaptive profile-fitting cloner beats the one-shot baseline on
  at least one operating point per protocol (the clone gap).
"""

import time

from repro.campaigns import Campaign, CampaignSuite
from repro.core.runtime import Telemetry

from conftest import emit, smoke_mode

SEED = 7


def _suite_params():
    if smoke_mode():
        return ("jtag",), 3
    return ("jtag", "spi", "i2c"), 5


def test_campaign_suite_throughput(benchmark, record_campaign_result):
    protocols, n_rounds = _suite_params()
    telemetry = Telemetry()
    suite = CampaignSuite(
        protocols=protocols,
        seed=SEED,
        n_rounds=n_rounds,
        shards=2,
        telemetry=telemetry,
    )
    start = time.perf_counter()
    outcomes = suite.run()
    wall_s = time.perf_counter() - start

    serial = Campaign(
        protocols[0], seed=SEED, n_rounds=n_rounds, shards=1,
        backend="serial",
    ).run()
    assert (
        serial.canonical_bytes() == outcomes[protocols[0]].canonical_bytes()
    )

    snapshot = telemetry.snapshot()
    for protocol in protocols:
        assert snapshot["campaigns"][f"{protocol}/clone_gap"]["gap"] > 0

    n_arms = len(outcomes[protocols[0]].arms)
    total_rounds = len(protocols) * n_arms * n_rounds
    rounds_per_s = total_rounds / wall_s

    benchmark(
        lambda: Campaign(
            protocols[0], seed=SEED, n_rounds=n_rounds
        ).run()
    )

    record_campaign_result(
        "campaign_suite_throughput",
        {
            "protocols": list(protocols),
            "n_rounds": n_rounds,
            "n_arms": n_arms,
            "suite_wall_s": wall_s,
            "rounds_per_s": rounds_per_s,
            "byte_identical": True,
            "clone_gap": {
                protocol: snapshot["campaigns"][f"{protocol}/clone_gap"][
                    "gap"
                ]
                for protocol in protocols
            },
            "auc": {
                f"{protocol}/{report.strategy}": report.auc
                for protocol in protocols
                for report in outcomes[protocol].arms
            },
        },
    )
    emit(
        "ADAPTIVE CAMPAIGN SUITE — attacker-vs-detector loop throughput",
        f"protocols                : {', '.join(protocols)}\n"
        f"arms x rounds            : {n_arms} x {n_rounds}\n"
        f"suite wall time          : {wall_s * 1e3:10.1f} ms\n"
        f"adaptive rounds / sec    : {rounds_per_s:10.1f}\n"
        "serial/sharded outcomes  : byte-identical\n"
        "clone gap (per protocol) : "
        + ", ".join(
            f"{p}="
            f"{snapshot['campaigns'][f'{p}/clone_gap']['gap']:.2f}"
            for p in protocols
        ),
    )
