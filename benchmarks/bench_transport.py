"""Shard-transport cost: pickled payloads vs shared-memory descriptors.

Every fleet dispatch used to serialize full ``TransmissionLine``
profiles and enrolled fingerprints into every shard task — bytes
proportional to ``buses x points`` per scan.  The shared-memory
transport replaces the bulk with O(1) arena descriptors, so the pickle
stream crossing the process boundary shrinks to ~O(buses).  This bench
measures both:

* **serialized bytes per scan** — the exact pickle size of one scan's
  shard tasks under ``transport="pickle"`` versus ``transport="shm"``,
  pinned at a >= 10x reduction at monitor scale (the descriptor bytes
  do not grow with the record length, the payload bytes do);
* **end-to-end throughput** — best-of-N wall time of a full fleet scan
  on the process backend under both transports, pinned to "shm is no
  worse than pickle" within a noise margin (on a single core there is
  no parallel win to hide behind, so this is a direct measurement of
  the serialization tax removed minus the arena bookkeeping added).

Byte-identity of the outcomes across the two transports is asserted
unconditionally — the speedup is never bought with a different answer.

Results are written to ``benchmarks/BENCH_transport.json``.  Under
``REPRO_BENCH_SMOKE=1`` the fleet shrinks and the wall-clock gate is
dropped (shared CI runners are too noisy for perf ratios) but the
bytes-reduction and byte-identity predicates still run end to end.
"""

import pickle
import time

import numpy as np

from repro.core import (
    Authenticator,
    FleetScanExecutor,
    TamperDetector,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.fleet import _BusWork
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

from conftest import emit, smoke_mode

FIRST_SEED = 950
ROOT_SEED = 17
SHARDS = 4
BYTES_REDUCTION_FLOOR = 10.0
#: shm must not be slower than pickle beyond this noise margin.
THROUGHPUT_SLACK = 1.25


def _scale():
    if smoke_mode():
        return 6, 4  # buses, captures_per_check
    return 32, 32


def _make_executor(lines, transport, backend="process"):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    _, captures = _scale()
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=captures,
        shards=SHARDS,
        backend=backend,
        transport=transport,
        seed=ROOT_SEED,
    )
    for line in lines:
        executor.register(line)
    return executor


def _scan_task_bytes(executor):
    """Exact pickle size of one scan's outbound shard tasks.

    Builds the same tasks a scan would dispatch (same work list, same
    transport preparation) and measures what the process boundary
    would carry.  Run *after* the timed scans: it consumes one
    operation's seed streams.
    """
    streams = executor._operation_streams(None)
    work = [
        _BusWork(
            index=i,
            name=name,
            line=line,
            seed=streams[i],
            fingerprint=executor._fingerprints[name],
        )
        for i, (name, line) in enumerate(executor._buses.items())
    ]
    tasks = executor._make_tasks("scan", work)
    return sum(len(pickle.dumps(task, protocol=5)) for task in tasks)


def _best_scan_time(executor, rounds=3):
    best = np.inf
    outcome = None
    for _ in range(rounds):
        start = time.perf_counter()
        outcome = executor.scan()
        best = min(best, time.perf_counter() - start)
    return best, outcome


def test_transport_bytes_and_throughput(benchmark, record_transport_result):
    n_buses, captures = _scale()
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(n_buses, first_seed=FIRST_SEED)

    with _make_executor(lines, "pickle") as pickled, \
            _make_executor(lines, "shm") as shm:
        pickled.enroll(n_captures=4)
        shm.enroll(n_captures=4)
        # Warm reflection caches and the worker-side payload digest
        # cache, so the timed scans measure steady-state transport cost.
        pickle_warm = pickled.scan()
        shm_warm = shm.scan()

        pickle_s, pickle_outcome = _best_scan_time(pickled)
        shm_s, shm_outcome = _best_scan_time(shm)
        benchmark(shm.scan)

        pickle_bytes = _scan_task_bytes(pickled)
        shm_bytes = _scan_task_bytes(shm)
        transport_health = shm.telemetry.snapshot()["health"]["transport"]

    # Correctness before speed: the transport must be invisible.
    assert pickle_warm.canonical_bytes() == shm_warm.canonical_bytes()
    assert pickle_outcome.canonical_bytes() == shm_outcome.canonical_bytes()
    assert len(shm_outcome.records) == n_buses

    reduction = pickle_bytes / shm_bytes
    slowdown = shm_s / pickle_s
    gate_throughput = not smoke_mode()
    record_transport_result(
        "transport_scan",
        {
            "n_buses": n_buses,
            "shards": SHARDS,
            "captures_per_check": captures,
            "pickle_task_bytes": pickle_bytes,
            "shm_task_bytes": shm_bytes,
            "bytes_reduction": reduction,
            "bytes_reduction_floor": BYTES_REDUCTION_FLOOR,
            "pickle_scan_s": pickle_s,
            "shm_scan_s": shm_s,
            "shm_over_pickle": slowdown,
            "throughput_slack": THROUGHPUT_SLACK,
            "throughput_gated": gate_throughput,
            "byte_identical": True,
            "transport_health": transport_health,
        },
    )
    emit(
        "SHARD TRANSPORT — pickled payloads vs shared-memory descriptors",
        f"fleet size               : {n_buses} buses x {captures} captures\n"
        f"pickle task bytes / scan : {pickle_bytes:12d}\n"
        f"shm task bytes / scan    : {shm_bytes:12d}\n"
        f"serialized-bytes ratio   : {reduction:10.1f}x "
        f"(floor: {BYTES_REDUCTION_FLOOR}x)\n"
        f"pickle scan              : {pickle_s * 1e3:10.1f} ms\n"
        f"shm scan                 : {shm_s * 1e3:10.1f} ms\n"
        f"shm / pickle wall        : {slowdown:10.2f} "
        f"(ceiling: {THROUGHPUT_SLACK}, "
        f"{'enforced' if gate_throughput else 'not enforced in smoke'})\n"
        f"segments created/reused  : {transport_health['segments_created']}"
        f"/{transport_health['segments_reused']}\n"
        f"bytes moved/referenced   : {transport_health['bytes_moved']}"
        f"/{transport_health['bytes_referenced']}\n"
        "pickle/shm outcomes      : byte-identical",
    )
    if smoke_mode():
        # Tiny records shrink the payload side too; the descriptor
        # path must still win, just not by the monitor-scale margin.
        assert reduction > 1.0
    else:
        assert reduction >= BYTES_REDUCTION_FLOOR
    if gate_throughput:
        assert slowdown <= THROUGHPUT_SLACK
