"""Bench F2: regenerate Fig. 2 — the APC transfer curve and 2-sigma window."""

from conftest import emit

from repro.experiments import fig2_apc


def test_fig2_apc_transfer(benchmark):
    result = benchmark.pedantic(
        fig2_apc.run, kwargs={"repetitions": 8192}, rounds=1, iterations=1
    )
    emit(
        "Fig. 2 — APC transfer curve (paper: CDF-shaped p(V), +/-2 sigma "
        "linear window)",
        result.report(),
    )
    assert result.window_is_two_sigma()
    assert result.max_probability_error < 0.03
