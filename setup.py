"""Legacy shim so `pip install -e .` works without PEP 660 wheel support."""
from setuptools import setup

setup()
