"""Layering enforcement: the import graph obeys docs/ARCHITECTURE.md.

Walks every module under ``src/repro`` with ``ast`` (no imports are
executed), resolves absolute and relative imports to package names, and
pins the documented dependency rules: ``signals`` imports nothing from
the package, ``txline`` sees only ``signals``, ``core`` never imports
applications, and the monitoring runtime sits inside ``core``.
"""

import ast
from pathlib import Path
from typing import Dict, List, Set

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"
PKG = SRC / "repro"

#: Every package a layer is allowed to import from (its own is implied).
ALLOWED: Dict[str, Set[str]] = {
    "signals": set(),
    "txline": {"signals"},
    "env": {"signals", "txline"},
    "attacks": {"signals", "txline"},
    "core": {"signals", "txline", "env", "attacks"},
    "analysis": {"signals", "txline", "env", "attacks", "core"},
    "protocols": {"signals", "txline", "env", "attacks", "core"},
    "baselines": {"signals", "txline", "env", "attacks", "core", "analysis"},
    "campaigns": {
        "signals", "txline", "env", "attacks", "core", "analysis",
        "protocols",
    },
    "membus": {
        "signals", "txline", "env", "attacks", "core", "analysis",
        "protocols",
    },
    "iolink": {
        "signals", "txline", "env", "attacks", "core", "analysis",
        "protocols",
    },
}

APPLICATIONS = {"membus", "iolink", "baselines"}


def module_parts(path: Path) -> List[str]:
    """Dotted-path components of a module file (``__init__`` kept)."""
    return list(path.relative_to(SRC).with_suffix("").parts)


def imported_modules(path: Path) -> Set[str]:
    """Absolute dotted names of everything ``path`` imports."""
    tree = ast.parse(path.read_text())
    parts = module_parts(path)
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                found.add(node.module or "")
            else:
                # Relative import: strip ``level`` components off this
                # module's own dotted path (``__init__`` counts as one).
                base = parts[: len(parts) - node.level]
                suffix = node.module.split(".") if node.module else []
                found.add(".".join(base + suffix))
    return found


def repro_packages_imported(path: Path) -> Set[str]:
    """Top-level repro sub-packages ``path`` imports from."""
    packages = set()
    for name in imported_modules(path):
        pieces = name.split(".")
        if pieces[0] == "repro" and len(pieces) > 1:
            packages.add(pieces[1])
    return packages


def modules_of(package: str) -> List[Path]:
    files = sorted((PKG / package).rglob("*.py"))
    assert files, f"package {package!r} has no modules"
    return files


class TestImportLayers:
    @pytest.mark.parametrize("package", sorted(ALLOWED))
    def test_layer_obeys_dependency_rules(self, package):
        allowed = ALLOWED[package] | {package}
        for path in modules_of(package):
            imported = repro_packages_imported(path)
            excess = imported - allowed
            assert not excess, (
                f"{path.relative_to(SRC)} imports {sorted(excess)}; "
                f"{package} may only see {sorted(allowed)}"
            )

    def test_core_never_imports_applications(self):
        for path in modules_of("core"):
            imported = repro_packages_imported(path)
            assert not (imported & APPLICATIONS), (
                f"{path.relative_to(SRC)} reaches into an application "
                f"layer: {sorted(imported & APPLICATIONS)}"
            )
            assert "experiments" not in imported

    def test_protocols_never_imports_applications(self):
        """The protocol layer discovers application-owned specs by dotted
        name (``importlib``), never by static import — so it can sit
        below the applications that register with it."""
        for path in modules_of("protocols"):
            imported = repro_packages_imported(path)
            assert not (imported & APPLICATIONS), (
                f"{path.relative_to(SRC)} reaches into an application "
                f"layer: {sorted(imported & APPLICATIONS)}"
            )

    def test_applications_never_import_each_other_or_experiments(self):
        for app in sorted(APPLICATIONS):
            forbidden = (APPLICATIONS - {app}) | {"experiments"}
            for path in modules_of(app):
                imported = repro_packages_imported(path)
                assert not (imported & forbidden), (
                    f"{path.relative_to(SRC)} imports "
                    f"{sorted(imported & forbidden)}"
                )

    def test_runtime_sits_in_core(self):
        """The monitoring runtime is a core subpackage seeing only core
        and the layers below it."""
        runtime = PKG / "core" / "runtime"
        assert (runtime / "__init__.py").exists()
        allowed = ALLOWED["core"] | {"core"}
        for path in sorted(runtime.rglob("*.py")):
            imported = repro_packages_imported(path)
            assert imported <= allowed, (
                f"{path.relative_to(SRC)} imports {sorted(imported)}"
            )

    def test_every_workload_drives_the_runtime(self):
        """The three traffic-bearing applications are runtime consumers —
        none keeps a hand-rolled monitoring loop."""
        for module in [
            PKG / "membus" / "system.py",
            PKG / "iolink" / "protected.py",
            PKG / "core" / "manager.py",
        ]:
            imported = imported_modules(module)
            assert any("runtime" in name.split(".") for name in imported), (
                f"{module.relative_to(SRC)} does not import the runtime"
            )

    def test_signals_imports_nothing_external_but_numpy_stack(self):
        """The substrate layer stays dependency-light (numpy/scipy only)."""
        stdlib_ok = {
            "numpy", "scipy", "math", "cmath", "itertools", "functools",
            "dataclasses", "typing", "enum", "collections", "abc",
            "__future__",
        }
        for path in modules_of("signals"):
            for name in imported_modules(path):
                top = name.split(".")[0]
                assert top in stdlib_ok | {"repro", "signals", ""}, (
                    f"{path.relative_to(SRC)} imports {name}"
                )
