"""Meta-tests: the documentation and the code must agree.

DESIGN.md's experiment index, EXPERIMENTS.md's sections, the run_all
suite, and the benchmark files all name the same experiments; these tests
fail when one of them drifts.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

#: Experiment ids promised by DESIGN.md section 4.
EXPERIMENT_IDS = [
    "F2", "F3/F4", "F5", "F7a", "F7b", "F8", "E-VIB", "E-EMI",
    "F9bc", "F9ef", "F9hi", "T-OVH", "T-LAT", "F6", "A-BASE", "A-MULTI",
    "X-CLONE", "X-JIT", "X-LINK", "X-SHARE", "X-ADAPT", "X-STACK",
    "X-ENROLL", "X-SENS", "X-CAMPAIGN",
]


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text()

    @pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
    def test_every_experiment_listed(self, design, exp_id):
        assert exp_id in design

    def test_no_title_mismatch_flag(self, design):
        """DESIGN.md confirms the paper text matched the claimed title."""
        assert "No\ntitle-collision mismatch" in design or (
            "no" in design.lower() and "title-collision" in design.lower()
        )

    def test_every_named_module_exists(self, design):
        """Module paths cited in the experiment index exist on disk."""
        import re

        for match in re.finditer(r"`(experiments/[a-z0-9_]+\.py)`", design):
            assert (REPO / "src" / "repro" / match.group(1)).exists(), (
                match.group(1)
            )


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def experiments_md(self):
        return (REPO / "EXPERIMENTS.md").read_text()

    @pytest.mark.parametrize(
        "section",
        ["## F7", "## F8", "## F9", "## F6", "## T-OVH", "## T-LAT",
         "## A-BASE", "## A-MULTI", "## X-CLONE", "## X-JIT", "## X-LINK",
         "## X-SHARE", "## X-ADAPT", "## X-STACK", "## X-ENROLL",
         "## X-SENS", "## X-CAMPAIGN",
         "## Deviations"],
    )
    def test_sections_present(self, experiments_md, section):
        assert section in experiments_md

    def test_paper_headline_numbers_quoted(self, experiments_md):
        for figure in ["0.06", "0.14", "0.27", "71", "124", "50 µs"]:
            assert figure in experiments_md


class TestRunAllSuite:
    def test_suite_matches_experiment_modules(self):
        """Every experiment module with a run() is wired into run_all."""
        from repro.experiments.common import ExperimentScale
        from repro.experiments.run_all import build_suite

        suite_names = " ".join(
            name
            for name, _ in build_suite(
                ExperimentScale(n_lines=2, n_measurements=10, n_enroll=2)
            )
        )
        for token in ["F2", "F5", "F7", "F8", "F9", "F6", "T-OVH", "T-LAT",
                      "A-BASE", "A-MULTI", "A-PDM", "A-TRIG", "A-ETS",
                      "X-CLONE", "X-JIT", "X-SHARE", "X-ADAPT", "X-STACK",
                      "X-CAMPAIGN"]:
            assert token in suite_names

    def test_bench_files_cover_experiment_families(self):
        bench_names = " ".join(
            p.name for p in (REPO / "benchmarks").glob("bench_*.py")
        )
        for family in ["fig2", "fig34", "fig5", "fig6", "fig7", "fig8",
                       "fig9", "tab_overhead", "tab_latency", "baselines",
                       "ablations", "extensions", "env_robustness"]:
            assert family in bench_names

    def test_examples_exist(self):
        examples = {p.name for p in (REPO / "examples").glob("*.py")}
        assert "quickstart.py" in examples
        assert len(examples) >= 5


class TestReadme:
    def test_readme_commands_are_real(self):
        readme = (REPO / "README.md").read_text()
        assert "pytest tests/" in readme
        assert "pytest benchmarks/ --benchmark-only" in readme
        assert "repro.experiments.run_all" in readme

    def test_quickstart_snippet_runs(self):
        """The README's quickstart code block executes as written."""
        import re

        readme = (REPO / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
        assert match is not None
        exec(compile(match.group(1), "<readme>", "exec"), {})
