"""Unit tests for impedance profiles and the correlated-field generator."""

import numpy as np
import pytest

from repro.txline.profile import ImpedanceProfile, correlated_field


def make_profile(n=10, z0=50.0, tau=1e-11, **kwargs):
    return ImpedanceProfile(
        z=np.full(n, z0), tau=np.full(n, tau), **kwargs
    )


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ImpedanceProfile(z=np.ones(3), tau=np.ones(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ImpedanceProfile(z=np.zeros(0), tau=np.zeros(0))

    def test_rejects_nonpositive_impedance(self):
        with pytest.raises(ValueError):
            ImpedanceProfile(z=np.array([50.0, -1.0]), tau=np.ones(2))

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            ImpedanceProfile(z=np.ones(2) * 50, tau=np.array([1e-11, 0.0]))

    def test_rejects_bad_terminations(self):
        with pytest.raises(ValueError):
            make_profile(z_source=0.0)
        with pytest.raises(ValueError):
            make_profile(z_load=-5.0)

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            make_profile(loss_per_segment=0.0)
        with pytest.raises(ValueError):
            make_profile(loss_per_segment=1.5)


class TestDerivedQuantities:
    def test_delays(self):
        p = make_profile(n=4, tau=2e-11)
        assert p.one_way_delay == pytest.approx(8e-11)
        assert p.round_trip_delay == pytest.approx(16e-11)

    def test_uniform_line_has_no_interior_reflections(self):
        p = make_profile(n=5)
        assert np.allclose(p.reflection_coefficients(), 0.0)

    def test_reflection_sign_convention(self):
        p = ImpedanceProfile(
            z=np.array([50.0, 60.0]), tau=np.full(2, 1e-11)
        )
        r = p.reflection_coefficients()
        assert r[0] == pytest.approx((60 - 50) / (60 + 50))

    def test_matched_load_zero_reflection(self):
        p = make_profile(z_load=50.0)
        assert p.load_reflection() == pytest.approx(0.0)

    def test_open_load_reflects_positive(self):
        p = make_profile(z_load=1e9)
        assert p.load_reflection() == pytest.approx(1.0, rel=1e-6)

    def test_short_load_reflects_negative(self):
        p = make_profile(z_load=1e-6)
        assert p.load_reflection() == pytest.approx(-1.0, rel=1e-4)

    def test_source_reflection_antisymmetry(self):
        """Matched source reflects nothing back."""
        p = make_profile(z_source=50.0)
        assert p.source_reflection() == pytest.approx(0.0)

    def test_launch_coefficient_divider(self):
        p = make_profile(z_source=50.0, z0=50.0)
        assert p.launch_coefficient() == pytest.approx(0.5)

    def test_segment_positions(self):
        p = make_profile(n=3, tau=1e-11)
        v = 1.5e8
        assert np.allclose(p.segment_positions(v), [0.0, 1.5e-3, 3.0e-3])

    def test_segment_positions_rejects_bad_velocity(self):
        with pytest.raises(ValueError):
            make_profile().segment_positions(0.0)


class TestDerivedProfiles:
    def test_with_impedance_keeps_geometry(self):
        p = make_profile(n=4)
        q = p.with_impedance(np.full(4, 75.0))
        assert np.allclose(q.z, 75.0)
        assert np.array_equal(q.tau, p.tau)

    def test_with_impedance_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            make_profile(n=4).with_impedance(np.ones(3))

    def test_with_load(self):
        q = make_profile().with_load(75.0)
        assert q.z_load == 75.0

    def test_scaled_common_mode(self):
        p = make_profile()
        q = p.scaled(impedance_scale=0.99, delay_scale=1.01)
        assert np.allclose(q.z, p.z * 0.99)
        assert np.allclose(q.tau, p.tau * 1.01)
        # The load scales with the line so matched stays matched.
        assert q.load_reflection() == pytest.approx(p.load_reflection())

    def test_scaled_field(self):
        p = make_profile(n=3)
        field = np.array([0.0, 0.01, -0.01])
        q = p.scaled(impedance_field=field)
        assert np.allclose(q.z, p.z * (1 + field))

    def test_scaled_rejects_wrong_field_shape(self):
        with pytest.raises(ValueError):
            make_profile(n=3).scaled(impedance_field=np.zeros(2))

    def test_scaled_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError):
            make_profile().scaled(impedance_scale=0.0)

    def test_immutability(self):
        p = make_profile()
        with pytest.raises(Exception):
            p.z_load = 75.0


class TestCorrelatedField:
    def test_target_sigma(self, rng):
        field = correlated_field(50_000, sigma=0.01, correlation_length=5, rng=rng)
        assert field.std() == pytest.approx(0.01, rel=0.05)

    def test_zero_mean(self, rng):
        field = correlated_field(50_000, 0.01, 5, rng)
        assert abs(field.mean()) < 0.001

    def test_correlation_length_smooths(self, rng):
        rough = correlated_field(10_000, 1.0, 1, np.random.default_rng(0))
        smooth = correlated_field(10_000, 1.0, 20, np.random.default_rng(0))
        assert np.std(np.diff(smooth)) < np.std(np.diff(rough))

    def test_deterministic_given_seed(self):
        a = correlated_field(100, 0.01, 3, np.random.default_rng(5))
        b = correlated_field(100, 0.01, 3, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            correlated_field(0, 0.01, 3, rng)
        with pytest.raises(ValueError):
            correlated_field(10, -0.01, 3, rng)
        with pytest.raises(ValueError):
            correlated_field(10, 0.01, 0, rng)
