"""Unit tests for line manufacturing and the TransmissionLine object."""

import numpy as np
import pytest

from repro.signals.waveform import Waveform
from repro.txline.factory import LineFactory, LineGeometry
from repro.txline.termination import ReceiverPackage


class TestGeometry:
    def test_segment_counts(self):
        geo = LineGeometry()
        # 25 cm at 1.674 mm pitch.
        assert geo.n_trace_segments == pytest.approx(149, abs=1)
        assert geo.n_launch_segments == pytest.approx(21, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LineGeometry(length_m=0.0)
        with pytest.raises(ValueError):
            LineGeometry(launch_length_m=-0.01)
        with pytest.raises(ValueError):
            LineGeometry(nominal_impedance=0.0)


class TestFactory:
    def test_same_seed_same_line(self, factory):
        a = factory.manufacture(seed=42)
        b = factory.manufacture(seed=42)
        assert np.array_equal(a.board_profile.z, b.board_profile.z)

    def test_different_seeds_different_fingerprints(self, factory):
        a = factory.manufacture(seed=1)
        b = factory.manufacture(seed=2)
        assert not np.allclose(a.board_profile.z, b.board_profile.z)

    def test_impedance_near_nominal(self, factory):
        line = factory.manufacture(seed=3)
        trace = line.board_profile.z[factory.geometry.n_launch_segments :]
        assert abs(trace.mean() - 50.0) < 2.0
        assert trace.std() / 50.0 == pytest.approx(
            factory.impedance_sigma, rel=0.5
        )

    def test_round_trip_matches_paper_span(self, factory):
        """25 cm + launch: a ~3.8 ns round trip, the Fig. 9 time span."""
        line = factory.manufacture(seed=1)
        rt = line.board_profile.round_trip_delay
        assert 3.5e-9 < rt < 4.1e-9

    def test_batch_naming_and_count(self, factory):
        lines = factory.manufacture_batch(3, first_seed=10)
        assert [l.name for l in lines] == ["line-10", "line-11", "line-12"]

    def test_batch_rejects_zero(self, factory):
        with pytest.raises(ValueError):
            factory.manufacture_batch(0)

    def test_receiver_attachment(self, factory_with_receiver):
        line = factory_with_receiver.manufacture(seed=1)
        assert line.receiver is not None
        assert line.full_profile.n_segments > line.board_profile.n_segments

    def test_validation(self):
        with pytest.raises(ValueError):
            LineFactory(impedance_sigma=-0.01)
        with pytest.raises(ValueError):
            LineFactory(correlation_length_m=0.0)

    def test_segment_delay_matches_ets_step(self, factory):
        """The default pitch aligns one segment to one 11.16 ps phase step."""
        assert factory.segment_delay == pytest.approx(11.16e-12, rel=0.01)


class TestTransmissionLine:
    def test_full_profile_without_receiver(self, line):
        assert line.full_profile.n_segments == line.board_profile.n_segments

    def test_profile_under_applies_modifier_chain(self, line):
        class Doubler:
            def modify(self, profile):
                return profile.with_impedance(profile.z * 2)

        p = line.profile_under([Doubler()])
        assert np.allclose(p.z, line.board_profile.z * 2)

    def test_profile_under_order_matters(self, line):
        class AddTen:
            def modify(self, profile):
                return profile.with_impedance(profile.z + 10.0)

        class Double:
            def modify(self, profile):
                return profile.with_impedance(profile.z * 2)

        p1 = line.profile_under([AddTen(), Double()])
        p2 = line.profile_under([Double(), AddTen()])
        assert not np.allclose(p1.z, p2.z)

    def test_reflected_waveform_engines(self, line):
        tau = float(np.mean(line.board_profile.tau))
        incident = Waveform(np.ones(20), dt=tau)
        born = line.reflected_waveform(incident, engine="born", n_out=400)
        lattice = line.reflected_waveform(incident, engine="lattice")
        n = min(len(born), len(lattice))
        assert np.allclose(born.samples[:n], lattice.samples[:n], atol=2e-4)

    def test_reflected_waveform_rejects_bad_engine(self, line):
        tau = float(np.mean(line.board_profile.tau))
        with pytest.raises(ValueError):
            line.reflected_waveform(Waveform(np.ones(4), dt=tau), engine="x")

    def test_swap_receiver_changes_profile_not_board(self, populated_line):
        new_pkg = ReceiverPackage(seed=123).instance_variation()
        swapped = populated_line.swap_receiver(new_pkg)
        assert np.array_equal(
            swapped.board_profile.z, populated_line.board_profile.z
        )
        assert swapped.full_profile.z_load != populated_line.full_profile.z_load

    def test_batch_reflected_waveforms_shape(self, line):
        tau = float(np.mean(line.board_profile.tau))
        incident = Waveform(np.ones(10), dt=tau)
        p = line.full_profile
        out = line.batch_reflected_waveforms(
            incident,
            np.stack([p.z, p.z * 1.01]),
            np.stack([p.tau, p.tau]),
            n_out=380,
        )
        assert out.shape == (2, 380)
