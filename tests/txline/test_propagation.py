"""Unit tests for the propagation engines — the physics core.

The key validation: the fast first-order Born engine matches the exact
lattice simulation on realistic (small-reflection) lines, and both satisfy
basic transmission-line physics (timing, amplitudes, sign conventions).
"""

import numpy as np
import pytest

from repro.signals.waveform import Waveform
from repro.txline.profile import ImpedanceProfile
from repro.txline.propagation import BornEngine, LatticeEngine, reflected_waveform

TAU = 11.16e-12


def uniform_profile(n=50, z0=50.0, z_load=50.0, z_source=50.0, loss=1.0):
    return ImpedanceProfile(
        z=np.full(n, z0),
        tau=np.full(n, TAU),
        z_source=z_source,
        z_load=z_load,
        loss_per_segment=loss,
    )


def single_bump_profile(n=50, bump_at=20, bump=55.0):
    z = np.full(n, 50.0)
    z[bump_at:] = bump  # one step discontinuity
    return ImpedanceProfile(
        z=z, tau=np.full(n, TAU), z_source=50.0, z_load=float(z[-1])
    )


class TestLatticeBasics:
    def test_matched_uniform_line_reflects_nothing(self):
        h = LatticeEngine().impulse_sequence(uniform_profile())
        assert np.allclose(h.samples, 0.0, atol=1e-15)

    def test_step_discontinuity_timing_and_amplitude(self):
        """An impedance step at segment k echoes at 2k steps with the
        textbook reflection coefficient."""
        p = single_bump_profile(bump_at=20, bump=55.0)
        h = LatticeEngine().impulse_sequence(p, n_steps=120)
        expected_r = (55.0 - 50.0) / (55.0 + 50.0)
        k = int(np.argmax(np.abs(h.samples)))
        assert k == 2 * 20
        assert h.samples[k] == pytest.approx(expected_r, rel=1e-9)

    def test_open_load_full_positive_echo(self):
        p = uniform_profile(n=10, z_load=1e9)
        h = LatticeEngine().impulse_sequence(p, n_steps=25)
        assert h.samples[20] == pytest.approx(1.0, rel=1e-6)

    def test_short_load_full_negative_echo(self):
        p = uniform_profile(n=10, z_load=1e-6)
        h = LatticeEngine().impulse_sequence(p, n_steps=25)
        assert h.samples[20] == pytest.approx(-1.0, rel=1e-4)

    def test_loss_attenuates_echo(self):
        lossless = uniform_profile(n=10, z_load=1e9)
        lossy = uniform_profile(n=10, z_load=1e9, loss=0.99)
        h0 = LatticeEngine().impulse_sequence(lossless, n_steps=25)
        h1 = LatticeEngine().impulse_sequence(lossy, n_steps=25)
        r_load = lossy.load_reflection()
        assert abs(h1.samples[20]) == pytest.approx(r_load * 0.99**20, rel=1e-9)
        assert abs(h1.samples[20]) < abs(h0.samples[20])

    def test_multiple_reflections_present(self):
        """Mismatched source + open load ring repeatedly."""
        p = uniform_profile(n=10, z_load=1e9, z_source=10.0)
        h = LatticeEngine(round_trips=4).impulse_sequence(p)
        # Second bounce at 2 round trips: load echo reflects off the source
        # and off the load again.
        assert abs(h.samples[40]) > 0.1

    def test_requires_uniform_tau(self):
        tau = np.full(10, TAU)
        tau[3] *= 2
        p = ImpedanceProfile(z=np.full(10, 50.0), tau=tau)
        with pytest.raises(ValueError):
            LatticeEngine().impulse_sequence(p)

    def test_energy_bounded(self):
        """Passive line: reflected energy never exceeds incident."""
        rng = np.random.default_rng(0)
        z = 50.0 * (1 + 0.05 * rng.standard_normal(60))
        # Matched source: every arriving backward wave is recorded once and
        # absorbed, so the recorded sum of squares is bounded by the input.
        p = ImpedanceProfile(
            z=z, tau=np.full(60, TAU), z_source=float(z[0]), z_load=1e9
        )
        h = LatticeEngine(round_trips=6).impulse_sequence(p)
        assert np.sum(h.samples**2) <= 1.0 + 1e-9


class TestBornVsLattice:
    def test_agreement_on_manufactured_line(self, line):
        profile = line.full_profile
        grid = float(np.mean(profile.tau))
        h_lat = LatticeEngine(round_trips=3).impulse_sequence(profile)
        h_born = BornEngine(grid_dt=grid).impulse_sequence(
            profile, n_out=len(h_lat)
        )
        peak = np.max(np.abs(h_lat.samples))
        # Residual is the neglected multiple scattering: O(r^2) of the peak.
        assert np.max(np.abs(h_lat.samples - h_born.samples)) < 0.01 * peak

    def test_agreement_single_step(self):
        p = single_bump_profile()
        h_lat = LatticeEngine().impulse_sequence(p, n_steps=110)
        h_born = BornEngine(grid_dt=TAU).impulse_sequence(p, n_out=110)
        assert np.allclose(h_lat.samples, h_born.samples, atol=5e-3)

    def test_born_echo_times_follow_tau(self):
        """Stretched delays move echoes later — the temperature mechanism."""
        p = single_bump_profile()
        engine = BornEngine(grid_dt=TAU)
        t1, _ = engine.echoes(p)
        stretched = ImpedanceProfile(
            z=p.z, tau=p.tau * 1.01, z_source=p.z_source, z_load=p.z_load
        )
        t2, _ = engine.echoes(stretched)
        assert np.all(t2 > t1)


class TestBornBatch:
    def test_batch_matches_single(self, line):
        profile = line.full_profile
        engine = BornEngine(grid_dt=TAU)
        single = engine.impulse_sequence(profile, n_out=400).samples
        batch = engine.batch_impulse_sequences(
            np.stack([profile.z, profile.z]),
            np.stack([profile.tau, profile.tau]),
            profile.load_reflection(),
            profile.loss_per_segment,
            n_out=400,
        )
        assert np.allclose(batch[0], single)
        assert np.allclose(batch[1], single)

    def test_batch_rows_independent(self, line):
        profile = line.full_profile
        engine = BornEngine(grid_dt=TAU)
        z2 = profile.z.copy()
        z2[50:] = z2[50:] * 1.02  # non-uniform: changes reflection ratios
        batch = engine.batch_impulse_sequences(
            np.stack([profile.z, z2]),
            np.stack([profile.tau, profile.tau]),
            profile.load_reflection(),
            profile.loss_per_segment,
            n_out=400,
        )
        assert not np.allclose(batch[0], batch[1])

    def test_shape_validation(self):
        engine = BornEngine(grid_dt=TAU)
        with pytest.raises(ValueError):
            engine.batch_impulse_sequences(
                np.ones((2, 5)), np.ones((3, 5)), 0.0, 1.0
            )

    def test_sub_grid_timing_interpolation(self):
        """An echo between grid points splits across the two bins."""
        p = ImpedanceProfile(
            z=np.array([50.0, 55.0]),
            tau=np.array([TAU * 1.25, TAU]),
        )
        h = BornEngine(grid_dt=TAU).impulse_sequence(p, n_out=8)
        # Echo at t = 2.5 tau -> bins 2 and 3 share it equally.
        assert h.samples[2] == pytest.approx(h.samples[3], rel=1e-9)


class TestResponses:
    def test_step_response_accumulates_reflection(self):
        p = single_bump_profile(bump_at=10, bump=55.0)
        engine = BornEngine(grid_dt=TAU)
        step = Waveform(np.ones(80), dt=TAU)
        resp = engine.reflection_response(p, step, n_out=80)
        r = (55 - 50) / (55 + 50)
        assert resp.samples[40] == pytest.approx(r, rel=0.05)

    def test_dispatcher_engines_agree(self, line):
        profile = line.full_profile
        incident = Waveform(np.ones(30), dt=float(np.mean(profile.tau)))
        born = reflected_waveform(profile, incident, engine="born")
        lattice = reflected_waveform(profile, incident, engine="lattice")
        n = min(len(born), len(lattice))
        assert np.allclose(born.samples[:n], lattice.samples[:n], atol=2e-4)

    def test_dispatcher_rejects_unknown_engine(self, line):
        incident = Waveform(np.ones(4), dt=TAU)
        with pytest.raises(ValueError):
            reflected_waveform(line.full_profile, incident, engine="fdtd")

    def test_born_requires_matching_dt(self, line):
        engine = BornEngine(grid_dt=TAU)
        incident = Waveform(np.ones(4), dt=2 * TAU)
        with pytest.raises(ValueError):
            engine.reflection_response(line.full_profile, incident)

    def test_linearity(self, line):
        """Doubling the incident wave doubles the reflection (LTI claim)."""
        engine = BornEngine(grid_dt=TAU)
        p = line.full_profile
        x = Waveform(np.linspace(0, 1, 40), dt=TAU)
        y1 = engine.reflection_response(p, x, n_out=300)
        y2 = engine.reflection_response(p, x.scaled(2.0), n_out=300)
        assert np.allclose(y2.samples, 2 * y1.samples)


class TestGridValidation:
    """The lattice grid check: forgiving of float noise, loud otherwise."""

    def test_tiny_dt_mismatch_tolerated(self):
        p = single_bump_profile()
        incident = Waveform(np.ones(20), dt=TAU * (1 + 1e-8))
        out = LatticeEngine().reflection_response(p, incident, n_out=60)
        exact = LatticeEngine().reflection_response(
            p, Waveform(np.ones(20), dt=TAU), n_out=60
        )
        assert np.array_equal(out.samples, exact.samples)

    def test_percent_dt_mismatch_raises_with_guidance(self):
        p = single_bump_profile()
        incident = Waveform(np.ones(20), dt=TAU * 1.01)
        with pytest.raises(ValueError, match="does not match"):
            LatticeEngine().reflection_response(p, incident)

    def test_analog_grid_validates_against_grid_dt(self):
        p = single_bump_profile()
        engine = LatticeEngine(grid_dt=TAU / 2)
        good = Waveform(np.ones(20), dt=(TAU / 2) * (1 + 1e-7))
        engine.reflection_response(p, good, n_out=120)
        with pytest.raises(ValueError, match="analog grid_dt"):
            engine.reflection_response(p, Waveform(np.ones(20), dt=TAU))

    def test_transmission_response_validates_too(self):
        p = single_bump_profile()
        LatticeEngine().transmission_response(
            p, Waveform(np.ones(20), dt=TAU * (1 - 1e-8))
        )
        with pytest.raises(ValueError, match="does not match"):
            LatticeEngine().transmission_response(
                p, Waveform(np.ones(20), dt=TAU * 0.99)
            )

    def test_batch_rows_validated_per_row(self):
        """A mixed-delay native batch flags the offending geometry."""
        z = np.tile(np.linspace(49.0, 51.0, 8), (2, 1))
        tau = np.stack([np.full(8, TAU), np.full(8, TAU * 1.01)])
        incident = Waveform(np.ones(6), dt=TAU)
        with pytest.raises(ValueError, match="segment delay"):
            LatticeEngine().batch_reflection_responses(
                z, tau, 0.0, 1.0, incident
            )
