"""Unit tests for terminations and receiver packages."""

import numpy as np
import pytest

from repro.txline.termination import (
    MATCHED,
    OPEN,
    SHORT,
    ReceiverPackage,
    Termination,
    splice_termination,
)


class TestTermination:
    def test_matched_reflects_nothing(self):
        assert MATCHED.reflection_coefficient(50.0) == pytest.approx(0.0)

    def test_open_reflects_positive(self):
        assert OPEN.reflection_coefficient(50.0) == pytest.approx(1.0, rel=1e-3)

    def test_short_reflects_negative(self):
        assert SHORT.reflection_coefficient(50.0) == pytest.approx(-1.0, rel=1e-3)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            Termination(0.0)


class TestReceiverPackage:
    def test_defaults_valid(self):
        pkg = ReceiverPackage()
        assert pkg.input_resistance > 0

    def test_instance_variation_differs_by_seed(self):
        a = ReceiverPackage(seed=1).instance_variation()
        b = ReceiverPackage(seed=2).instance_variation()
        assert a.input_resistance != b.input_resistance

    def test_instance_variation_reproducible(self):
        a = ReceiverPackage(seed=5).instance_variation()
        b = ReceiverPackage(seed=5).instance_variation()
        assert a.input_resistance == b.input_resistance

    def test_variation_is_small(self):
        base = ReceiverPackage(seed=3)
        varied = base.instance_variation(spread=0.04)
        assert abs(varied.input_resistance / base.input_resistance - 1) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverPackage(input_resistance=0.0)
        with pytest.raises(ValueError):
            ReceiverPackage(package_delay=0.0)


class TestSplice:
    def test_none_package_is_identity(self, line):
        p = line.board_profile
        assert splice_termination(p, None) is p

    def test_splice_appends_segments(self, line):
        p = line.board_profile
        pkg = ReceiverPackage()
        spliced = splice_termination(p, pkg)
        assert spliced.n_segments > p.n_segments
        assert spliced.z_load == pkg.input_resistance

    def test_package_segments_carry_package_impedance(self, line):
        p = line.board_profile
        pkg = ReceiverPackage(package_impedance=42.0)
        spliced = splice_termination(p, pkg)
        assert np.allclose(
            spliced.z[p.n_segments :], 42.0
        )

    def test_board_section_untouched(self, line):
        p = line.board_profile
        spliced = splice_termination(p, ReceiverPackage())
        assert np.array_equal(spliced.z[: p.n_segments], p.z)

    def test_package_delay_quantised(self, line):
        p = line.board_profile
        seg_tau = float(np.mean(p.tau))
        pkg = ReceiverPackage(package_delay=3.4 * seg_tau)
        spliced = splice_termination(p, pkg)
        assert spliced.n_segments - p.n_segments == 3
