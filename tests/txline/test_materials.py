"""Unit tests for laminate material models."""

import pytest

from repro.txline.materials import FR4, Laminate, propagation_velocity


class TestPropagationVelocity:
    def test_fr4_velocity_matches_paper(self):
        """The paper quotes ~15 cm/ns on PCB."""
        v = FR4.velocity_at(FR4.t_ref_c)
        assert v == pytest.approx(15e7, rel=0.02)

    def test_vacuum_limit(self):
        assert propagation_velocity(1.0) == pytest.approx(299_792_458.0)

    def test_rejects_nonphysical_dk(self):
        with pytest.raises(ValueError):
            propagation_velocity(0.0)


class TestLaminate:
    def test_dk_rises_with_temperature(self):
        assert FR4.dk_at(75.0) > FR4.dk_at(23.0)

    def test_dk_at_reference_is_dk0(self):
        assert FR4.dk_at(FR4.t_ref_c) == pytest.approx(FR4.dk0)

    def test_impedance_drops_when_hot(self):
        """Higher Dk -> higher C -> lower Z (the Fig. 8 mechanism)."""
        assert FR4.impedance_scale_at(75.0) < 1.0
        assert FR4.impedance_scale_at(FR4.t_ref_c) == pytest.approx(1.0)

    def test_delay_grows_when_hot(self):
        assert FR4.delay_scale_at(75.0) > 1.0

    def test_scales_are_consistent(self):
        """Z ~ 1/sqrt(Dk) and tau ~ sqrt(Dk): their product is 1."""
        t = 60.0
        assert FR4.impedance_scale_at(t) * FR4.delay_scale_at(t) == pytest.approx(1.0)

    def test_attenuation_positive(self):
        assert FR4.attenuation_per_m() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Laminate(name="x", dk0=0.5, tc_dk=1e-4)
        with pytest.raises(ValueError):
            Laminate(name="x", dk0=4.0, tc_dk=1e-4, loss_db_per_m=-1)
        with pytest.raises(ValueError):
            Laminate(name="x", dk0=4.0, tc_dk=1e-4, tc_inhomogeneity=-0.1)

    def test_oven_swing_dk_change_is_percent_scale(self):
        """23->75 C changes Dk by a few percent, per laminate data."""
        rel = FR4.dk_at(75.0) / FR4.dk_at(23.0) - 1.0
        assert 0.005 < rel < 0.05
