"""Shared fixtures: the prototype setup every test group reuses.

Fixtures are seeded so the whole suite is deterministic; expensive objects
(manufactured lines, enrolled fingerprints) are session-scoped.
"""

import numpy as np
import pytest

from repro.core.config import prototype_itdr, prototype_line_factory
from repro.core.fingerprint import Fingerprint


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def factory():
    """The prototype PCB manufacturing model (bare terminated lines)."""
    return prototype_line_factory()


@pytest.fixture(scope="session")
def factory_with_receiver():
    """Manufacturing model for populated lines (receiver chip attached)."""
    return prototype_line_factory(attach_receiver=True)


@pytest.fixture(scope="session")
def line(factory):
    """One manufactured prototype line."""
    return factory.manufacture(seed=1)


@pytest.fixture(scope="session")
def other_line(factory):
    """A second, physically different line (impostor source)."""
    return factory.manufacture(seed=2)


@pytest.fixture(scope="session")
def populated_line(factory_with_receiver):
    """A line with a receiver package at the far end."""
    return factory_with_receiver.manufacture(seed=1)


@pytest.fixture
def itdr():
    """A freshly seeded prototype iTDR."""
    return prototype_itdr(rng=np.random.default_rng(99))


@pytest.fixture(scope="session")
def enrolled_fingerprint(line):
    """A well-averaged fingerprint of the session line."""
    session_itdr = prototype_itdr(rng=np.random.default_rng(7))
    captures = [session_itdr.capture(line) for _ in range(32)]
    return Fingerprint.from_captures(captures)
