"""Shared fixtures: the prototype setup every test group reuses.

Fixtures are seeded so the whole suite is deterministic; expensive objects
(manufactured lines, enrolled fingerprints) are session-scoped.
"""

import pathlib

import numpy as np
import pytest

from repro.core.config import prototype_itdr, prototype_line_factory
from repro.core.fingerprint import Fingerprint
from repro.core.transport import SEGMENT_PREFIX

#: Test modules whose workloads may create shared-memory transport
#: segments; each of their tests is bracketed by a ``/dev/shm``
#: snapshot so a leaked ``repro-`` segment fails the test that made it
#: (see docs/TESTING.md, "Diagnosing leaked shared-memory segments").
_SHM_GUARDED_KEYWORDS = (
    "fleet", "fault", "campaign", "transport", "identify", "protocol",
)


def _repro_segments():
    root = pathlib.Path("/dev/shm")
    if not root.is_dir():
        return set()
    return {p.name for p in root.iterdir()
            if p.name.startswith(SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def shm_leak_guard(request):
    """Fail any fleet/campaign-flavoured test that leaks a segment.

    The transport's lifetime contract says every ``repro-`` segment is
    parent-owned and unlinked by ``ShardArena.close()`` — on executor
    close, and on the terminal rung of the recovery ladder.  Snapshotting
    around each test pins the leak to its origin instead of letting it
    surface as an unrelated failure (or a full ``/dev/shm``) later.
    """
    nodeid = request.node.nodeid.lower()
    if not any(key in nodeid for key in _SHM_GUARDED_KEYWORDS):
        yield
        return
    before = _repro_segments()
    yield
    leaked = _repro_segments() - before
    assert not leaked, (
        f"test leaked shared-memory segments {sorted(leaked)}; every "
        "ShardArena must be closed (executor close() or the recovery "
        "ladder's terminal rung) before the test ends"
    )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def factory():
    """The prototype PCB manufacturing model (bare terminated lines)."""
    return prototype_line_factory()


@pytest.fixture(scope="session")
def factory_with_receiver():
    """Manufacturing model for populated lines (receiver chip attached)."""
    return prototype_line_factory(attach_receiver=True)


@pytest.fixture(scope="session")
def line(factory):
    """One manufactured prototype line."""
    return factory.manufacture(seed=1)


@pytest.fixture(scope="session")
def other_line(factory):
    """A second, physically different line (impostor source)."""
    return factory.manufacture(seed=2)


@pytest.fixture(scope="session")
def populated_line(factory_with_receiver):
    """A line with a receiver package at the far end."""
    return factory_with_receiver.manufacture(seed=1)


@pytest.fixture
def itdr():
    """A freshly seeded prototype iTDR."""
    return prototype_itdr(rng=np.random.default_rng(99))


@pytest.fixture(scope="session")
def enrolled_fingerprint(line):
    """A well-averaged fingerprint of the session line."""
    session_itdr = prototype_itdr(rng=np.random.default_rng(7))
    captures = [session_itdr.capture(line) for _ in range(32)]
    return Fingerprint.from_captures(captures)
