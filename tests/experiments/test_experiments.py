"""Integration tests: every paper experiment runs and its shape holds.

These exercise the exact code the benchmark harness runs, at reduced scale
so the suite stays fast; the shape predicates are the paper's qualitative
claims (see DESIGN.md section 4).
"""

import pytest

import repro.experiments as ex
from repro.experiments.common import ExperimentScale

FAST = ExperimentScale(n_lines=3, n_measurements=200, n_enroll=8)


class TestConceptExperiments:
    def test_fig2_apc_transfer_curve(self):
        result = ex.fig2_apc.run(repetitions=2048, n_points=61)
        assert result.max_probability_error < 0.05
        assert result.window_is_two_sigma()
        assert result.max_voltage_error_in_window < result.noise_sigma
        assert "Fig. 2" in result.report()

    def test_fig34_pdm_widens_window(self):
        result = ex.fig34_pdm.run(repetitions=2048)
        assert result.dynamic_range_widened(minimum_factor=2.0)
        assert not result.degenerate_is_effective
        assert len(result.reference_levels) == 6
        assert "PDM" in result.report()

    def test_fig5_ets_numbers(self):
        result = ex.fig5_ets.run()
        assert result.matches_paper_numbers()
        assert result.reconstruction_error == 0.0
        assert result.steps_per_period == 574
        assert "equivalent time sampling" in result.report().lower()


class TestStatisticalExperiments:
    def test_fig7_authentication(self):
        result = ex.fig7_auth.run(scale=FAST)
        s = result.scores.summary()
        # Clear separation is the paper's central Fig. 7 message.  The
        # impostor std is dominated by across-pair spread, so the robust
        # check compares means against the combined spreads.
        assert s["genuine_mean"] > s["impostor_mean"] + 2 * (
            s["genuine_std"] + s["impostor_std"]
        )
        assert result.eer < 0.02
        assert "Fig. 7" in result.report()

    def test_fig8_temperature_shift(self):
        result = ex.fig8_temperature.run(scale=FAST)
        assert result.shape_holds()
        assert result.genuine_shift > 0
        assert "Fig. 8" in result.report()

    def test_vibration_degrades_eer(self):
        scores_room = ex.fig7_auth.run(scale=FAST).scores
        scores_vib = ex.env_robustness.run_vibration(scale=FAST)
        assert scores_vib.genuine.mean() < scores_room.genuine.mean()

    def test_emi_async_harmless(self):
        small = ExperimentScale(n_lines=2, n_measurements=60, n_enroll=8)
        scores = ex.env_robustness.run_emi(scale=small)
        assert scores.genuine.mean() > scores.impostor.max()


class TestTamperExperiments:
    @pytest.fixture(scope="class")
    def fig9(self):
        return ex.fig9_tamper.run(averaging=96, n_clean=4)

    def test_all_attacks_detected(self, fig9):
        assert fig9.all_detected()

    def test_magnetic_smallest_wiretap_largest(self, fig9):
        assert fig9.ordering_holds()

    def test_localisation(self, fig9):
        for study in fig9.studies:
            if study.true_location_m is not None and study.name != "magnetic-probe":
                assert study.localisation_error_m < 0.04

    def test_residue_permanent(self, fig9):
        residue = next(
            s for s in fig9.studies if s.name == "wire-tap-residue"
        )
        assert residue.detected  # removal does not restore the IIP

    def test_threshold_above_clean_floor(self, fig9):
        assert fig9.threshold > fig9.clean_floor
        assert "Fig. 9" in fig9.report()


class TestSystemExperiments:
    def test_fig6_membus_scenarios(self):
        result = ex.fig6_membus.run(n_requests=600)
        assert result.transparency_holds
        assert result.probe_detected
        assert result.cold_boot_blocked
        assert "Fig. 6" in result.report()

    def test_overhead_matches_paper(self):
        result = ex.tab_overhead.run()
        assert result.matches_paper_totals()
        assert result.counter_dominated()
        # Scaling rows grow slowly with bus count.
        (n1, r1, l1), *_, (n64, r64, l64) = result.scaling
        assert n64 / n1 == 64
        assert l64 < 5 * l1
        assert "71" in result.report_text()

    def test_latency_matches_paper(self):
        result = ex.tab_latency.run()
        assert result.prototype_matches_paper()
        assert result.scales_inversely_with_clock()
        assert "50 us" in result.report()

    def test_baseline_comparison(self):
        # The magnetic probe is the borderline signature; it needs the
        # deeper averaging the paper's 8192-measurement IIPs imply.
        result = ex.baseline_comparison.run(divot_averaging=160)
        assert result.divot_dominates()
        assert result.detection["DIVOT"]["magnetic-probe"]
        assert not result.detection["PAD (ring oscillator)"]["magnetic-probe"]
        assert "Detection matrix" in result.report()


class TestAblations:
    def test_pdm_ablation(self):
        result = ex.ablation_pdm.run(repetitions=2400)
        assert result.pdm_wins_on_wide_signals()
        assert result.dense_ladder_wins()

    def test_trigger_ablation(self):
        result = ex.ablation_trigger.run(n_captures=80)
        assert result.cancellation_demonstrated()
        assert result.prbs_trigger_rate == pytest.approx(0.25, abs=0.01)

    def test_ets_ablation(self):
        result = ex.ablation_ets.run(tau_multipliers=(1, 16, 64), n_probe=30)
        assert result.finer_is_sharper()
        taus = [r[0] for r in result.rows]
        assert taus == sorted(taus)

    def test_multiwire_ablation(self):
        small = ExperimentScale(n_lines=3, n_measurements=250, n_enroll=8)
        result = ex.ablation_multiwire.run(
            wire_counts=(1, 2, 4), scale=small
        )
        assert result.accuracy_improves()
