"""Integration tests for the extension experiments (cloning, jitter)."""

import numpy as np
import pytest

from repro.experiments import ext_cloning, ext_jitter


class TestCloningStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_cloning.run(clones_per_tier=8, n_genuine=120)

    def test_practical_unclonability(self, result):
        assert result.unclonability_holds()
        assert result.margin() > 0

    def test_capability_monotone(self, result):
        """Better fabs produce better clones — the curve's direction."""
        bests = [best for _, best, _ in result.tier_rows]
        assert bests == sorted(bests)

    def test_hobbyist_fails_even_lax_policy(self, result):
        name, best, _ = result.tier_rows[0]
        assert name == "hobbyist"
        assert best < result.threshold_eer

    def test_strict_policy_stricter(self, result):
        assert result.threshold_strict > result.threshold_eer

    def test_clones_below_genuine(self, result):
        genuine_mean = result.genuine_scores.mean()
        for _, best, _ in result.tier_rows:
            assert best < genuine_mean

    def test_report_renders(self, result):
        text = result.report()
        assert "hobbyist" in text and "strict" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ext_cloning.run(clones_per_tier=0)


class TestJitterStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_jitter.run(
            jitter_values_ps=(0.0, 11.16, 150.0), n_captures=120, n_lines=3
        )

    def test_clean_is_best(self, result):
        assert result.clean_is_best()

    def test_degrades_beyond_phase_step(self, result):
        assert result.degrades_beyond_phase_step()

    def test_rows_sorted(self, result):
        jitters = [j for j, _, _ in result.rows]
        assert jitters == sorted(jitters)

    def test_report_renders(self, result):
        assert "jitter" in result.report().lower()

    def test_validation(self):
        with pytest.raises(ValueError):
            ext_jitter.run(jitter_values_ps=(-1.0,))
        with pytest.raises(ValueError):
            ext_jitter.run(n_captures=5)


class TestJitterMechanism:
    def test_zero_jitter_is_identity(self, line):
        from repro.core.config import prototype_itdr

        itdr = prototype_itdr(rng=np.random.default_rng(0))
        v = itdr.true_reflection(line).samples
        assert np.array_equal(itdr._apply_jitter(v), v)

    def test_jitter_smooths_waveform(self, line):
        from repro.core.config import prototype_itdr

        itdr = prototype_itdr(
            rng=np.random.default_rng(0), phase_jitter_rms=50e-12
        )
        v = itdr.true_reflection(line).samples
        jittered = itdr._apply_jitter(v)
        # Smoothing reduces high-frequency content.
        assert np.std(np.diff(jittered)) < np.std(np.diff(v))

    def test_jitter_validation(self):
        from repro.core.itdr import ITDRConfig

        with pytest.raises(ValueError):
            ITDRConfig(phase_jitter_rms=-1e-12)
