"""Integration tests for the sharing and adaptation extension experiments."""

import pytest

from repro.experiments import ext_adaptation, ext_sharing


class TestSharingStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_sharing.run(bus_counts=(1, 2, 8))

    def test_tradeoff_shape(self, result):
        assert result.resources_flat_latency_linear()

    def test_attack_caught(self, result):
        assert result.attack_found_in_one_scan

    def test_resource_rows_match_paper_at_one(self, result):
        n, regs, luts, _ = result.rows[0]
        assert (n, regs, luts) == (1, 71, 124)

    def test_report_renders(self, result):
        assert "scan period" in result.report()

    def test_validation(self):
        with pytest.raises(ValueError):
            ext_sharing.run(bus_counts=(0,))


class TestAdaptationStudy:
    def test_temperature_compensation(self):
        single, dual = ext_adaptation.run_temperature_compensation(
            n_lines=3, n_measurements=400
        )
        assert dual <= single

    def test_aging_tracking(self):
        rows, n_updates, impostor_safe = ext_adaptation.run_aging(
            years=(0.0, 2.0, 4.0, 6.0), checks_per_step=12
        )
        ages = [a for a, _, _ in rows]
        assert ages == sorted(ages)
        static_scores = [s for _, s, _ in rows]
        adaptive_scores = [a for _, _, a in rows]
        # Static decays; adaptive ends above static.
        assert static_scores[-1] < static_scores[0]
        assert adaptive_scores[-1] > static_scores[-1]
        assert n_updates > 0
        assert impostor_safe


class TestEnrollmentStudy:
    def test_depth_sweep(self):
        from repro.experiments import ext_enrollment

        result = ext_enrollment.run(
            depths=(1, 4, 16), n_lines=3, n_measurements=200
        )
        assert result.deeper_is_better()
        # EER is (weakly) non-increasing with depth on this sweep.
        eers = [e for *_, e in result.rows]
        assert eers[-1] <= eers[0]
        assert result.knee_depth() in (1, 4, 16)

    def test_validation(self):
        from repro.experiments import ext_enrollment

        import pytest as _pytest

        with _pytest.raises(ValueError):
            ext_enrollment.run(depths=(0,))
        with _pytest.raises(ValueError):
            ext_enrollment.run(n_lines=1)


class TestSensitivityStudy:
    def test_margin_vs_depth(self):
        from repro.experiments import ext_sensitivity

        result = ext_sensitivity.run(depths=(8, 64, 192), n_clean=4)
        assert result.margin_grows_with_averaging()
        # Latency is exactly linear in the averaging depth.
        ks = [k for k, *_ in result.rows]
        lats = [row[4] for row in result.rows]
        assert lats[1] / lats[0] == pytest.approx(ks[1] / ks[0])

    def test_validation(self):
        from repro.experiments import ext_sensitivity

        with pytest.raises(ValueError):
            ext_sensitivity.run(depths=(0,))
