"""Smoke test for the one-command reproduction runner."""


from repro.experiments.common import ExperimentScale
from repro.experiments.run_all import build_suite, main


class TestBuildSuite:
    def test_covers_every_experiment_family(self):
        scale = ExperimentScale(n_lines=3, n_measurements=100, n_enroll=8)
        names = [name for name, _ in build_suite(scale)]
        for family in ("F2", "F5", "F7", "F8", "F9", "F6", "T-OVH", "T-LAT",
                       "A-BASE", "A-MULTI", "X-CLONE", "X-STACK"):
            assert any(n.startswith(family) for n in names)

    def test_runner_returns_text_and_flag(self):
        scale = ExperimentScale(n_lines=3, n_measurements=100, n_enroll=8)
        suite = dict(build_suite(scale))
        text, ok = suite["F5 ETS"]()
        assert isinstance(text, str) and text
        assert ok is True


class TestMainWritesReport(object):
    def test_output_file(self, tmp_path, monkeypatch, capsys):
        # Monkeypatch the suite down to the two instant experiments so the
        # CLI path is exercised without the full runtime.
        import repro.experiments.run_all as runner

        def tiny_suite(scale):
            return [p for p in build_suite(scale)
                    if p[0] in ("F5 ETS", "T-OVH hardware overhead")]

        monkeypatch.setattr(runner, "build_suite", tiny_suite)
        out = tmp_path / "report.txt"
        code = runner.main(["-o", str(out)])
        assert code == 0
        content = out.read_text()
        assert "SUMMARY" in content
        assert "2/2 experiment shapes hold" in content
