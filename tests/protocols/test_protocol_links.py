"""End-to-end protected sessions for every registered protocol.

Each protocol must hold the full DIVOT story on the generic link: a
clean session runs scheduled checks without false alerts, and the
protocol's canonical attack scenario is detected with latency bounded
by the cadence the traffic sustains.  JTAG's TAP state machine gets its
own unit coverage — the traffic model is only as honest as the
transition table under it.
"""

import numpy as np
import pytest

from repro.protocols import ProtectedLink, registry
from repro.protocols.jtag import (
    JTAG_TRANSITIONS,
    JTAGState,
    TAPController,
    scan_lengths,
    tms_path,
)

ALL_PROTOCOLS = registry.load_all()

#: iTDR seed every session in this file descends from.
SEED = 7


@pytest.fixture(scope="module")
def calibrated_links():
    """One calibrated registry-default link per protocol."""
    links = {}
    for name in ALL_PROTOCOLS:
        link = ProtectedLink.from_registry(name, seed=SEED)
        link.calibrate(n_captures=8)
        links[name] = link
    return links


class TestCleanSessions:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_clean_session_checks_without_false_alerts(
        self, calibrated_links, protocol
    ):
        link = calibrated_links[protocol]
        result = link.session(seed=1)
        assert result.units_sent == link.spec.default_units
        assert result.checks_run >= 1, (
            f"{protocol} default session never completed a check"
        )
        assert result.alerts() == []
        assert result.first_alert_time() is None
        # Check accounting is never free: every check consumed its budget.
        assert result.triggers_consumed == (
            result.checks_run * link.check_cost_triggers
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_sessions_are_reproducible(self, protocol):
        def run():
            link = ProtectedLink.from_registry(protocol, seed=SEED)
            link.calibrate(n_captures=8)
            result = link.session(n_units=link.spec.default_units, seed=1)
            return [
                (e.time_s, e.side, e.action.value, e.score)
                for e in result.events
            ]

        assert run() == run()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_cadence_discipline_matches_the_spec(self, calibrated_links,
                                                 protocol):
        link = calibrated_links[protocol]
        spec = link.spec
        if spec.cadence == "periodic":
            assert link.check_period_s is not None
            assert link.sustained_check_period_s() == link.check_period_s
        else:
            assert link.check_period_s is None
            assert link.sustained_check_period_s() > 0


class TestAttackScenarios:
    """Satellite: the registry-default attack is detected, promptly."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_default_attack_raises_an_alert(self, calibrated_links,
                                            protocol):
        link = calibrated_links[protocol]
        result, timeline = link.attack_session(onset_s=0.0, seed=1)
        assert result.alerts(), (
            f"{protocol}: {link.spec.attack_label} went undetected"
        )
        assert all(e.protocol == protocol for e in result.events)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_detection_latency_is_bounded_by_the_cadence(
        self, calibrated_links, protocol
    ):
        link = calibrated_links[protocol]
        result, _ = link.attack_session(onset_s=0.0, seed=1)
        latency = result.detection_latency(0.0)
        assert latency is not None
        # An attack active from t=0 is caught within two sustained check
        # periods — one period of schedule slack, one of judgement.
        assert latency <= 2 * link.sustained_check_period_s(), protocol

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_default_attack_builds_a_real_attack(self, protocol):
        from repro.attacks.base import Attack

        spec = registry.get(protocol)
        attack = spec.default_attack(None)
        assert isinstance(attack, Attack), (
            f"{protocol} default_attack must build an Attack"
        )
        assert spec.attack_label


class TestTAPStateMachine:
    """IEEE 1149.1 unit coverage for the JTAG traffic model."""

    def test_transition_table_is_total(self):
        assert set(JTAG_TRANSITIONS) == set(JTAGState)
        for state, (on_zero, on_one) in JTAG_TRANSITIONS.items():
            assert isinstance(on_zero, JTAGState), state
            assert isinstance(on_one, JTAGState), state

    def test_five_ones_reset_from_any_state(self):
        for start in JTAGState:
            tap = TAPController()
            tap.state = start
            assert tap.walk([1] * 5) is JTAGState.RESET

    def test_canonical_dr_scan_walk(self):
        tap = TAPController()
        tap.step(0)  # Reset -> Idle
        walk = [
            (1, JTAGState.DRSELECT),
            (0, JTAGState.DRCAPTURE),
            (0, JTAGState.DRSHIFT),
            (0, JTAGState.DRSHIFT),
            (1, JTAGState.DREXIT1),
            (1, JTAGState.DRUPDATE),
            (0, JTAGState.IDLE),
        ]
        for tms, expected in walk:
            assert tap.step(tms) is expected

    def test_tms_path_reaches_every_state(self):
        for start in JTAGState:
            for target in JTAGState:
                path = tms_path(start, target)
                tap = TAPController()
                tap.state = start
                assert tap.walk(path) is target

    def test_scan_lengths_match_real_walks(self):
        from repro.protocols.jtag import _scan_tms

        for kind in ("ir", "dr"):
            for n_bits in (1, 4, 8, 32):
                for pause in (0, 1, 4):
                    tms = _scan_tms(kind, n_bits, pause)
                    assert len(tms) == scan_lengths(kind, n_bits, pause)
                    tap = TAPController()
                    tap.step(0)  # Reset -> Idle
                    assert tap.walk(tms) is JTAGState.IDLE

    def test_step_rejects_non_binary_tms(self):
        with pytest.raises(ValueError):
            TAPController().step(2)


class TestTrafficModels:
    """Wire-level sanity for the three new protocols' traffic."""

    def test_jtag_bursts_are_clock_lane_exact(self):
        spec = registry.get("jtag")
        for burst in spec.traffic_bursts(n_units=100, seed=3):
            assert burst.n_triggers == burst.n_bits  # every cycle triggers
            assert burst.duration_s == burst.n_bits / spec.bit_rate

    def test_spi_bursts_carry_frame_overhead(self):
        from repro.protocols.spi import CS_OVERHEAD_BITS

        spec = registry.get("spi")
        for burst in spec.traffic_bursts(n_units=100, seed=3):
            data_bits = burst.n_bits - CS_OVERHEAD_BITS
            assert data_bits % 8 == 0  # whole command+payload bytes
            assert 0 < burst.n_triggers < data_bits

    def test_i2c_stretching_adds_time_not_triggers(self):
        spec = registry.get("i2c")
        rng = np.random.default_rng(3)
        bursts = list(spec.traffic(rng, 400))
        # Longest unstretched transaction: START/STOP + address group +
        # four data-byte groups of nine bits each.
        max_unstretched = 2 + 9 + 9 * 4
        stretched = [b for b in bursts if b.n_bits > max_unstretched]
        assert stretched, "no clock-stretched transaction in 400 draws"
        for burst in bursts:
            assert burst.n_triggers <= burst.n_bits

    def test_i2c_rejects_reserved_addresses(self):
        from repro.protocols.i2c import i2c_transaction_bits

        with pytest.raises(ValueError):
            i2c_transaction_bits(0x03, read=False, data=[1])
        with pytest.raises(ValueError):
            i2c_transaction_bits(0x7B, read=True, data=[1])
        bits = i2c_transaction_bits(0x50, read=False, data=[0xA5])
        assert len(bits) == 9 + 9  # addr+rw+ack, byte+ack
