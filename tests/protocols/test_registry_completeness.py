"""Registry completeness: no orphan modules, no half-wired protocols.

The pluggable layer only works if its invariants are policed: every
protocol module under ``repro/protocols/`` actually registers a spec,
every application ``protocol`` module registers one, and every
registered spec is fully wired — a working seeded traffic model, a
canonical attack scenario, and coverage by the parametrized telemetry
and link-session suites.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.protocols import registry
from repro.protocols.registry import _INFRASTRUCTURE

SRC = Path(__file__).resolve().parents[2] / "src"
PROTOCOLS_DIR = SRC / "repro" / "protocols"
TESTS_DIR = Path(__file__).resolve().parents[1]

ALL_PROTOCOLS = registry.load_all()


def protocol_modules_on_disk():
    """Dotted names of non-infrastructure modules in the package."""
    return {
        f"repro.protocols.{path.stem}"
        for path in PROTOCOLS_DIR.glob("*.py")
        if path.stem not in _INFRASTRUCTURE
    }


def application_provider_modules():
    """Dotted names of every ``repro.<app>.protocol`` module shipped."""
    found = set()
    for package in (SRC / "repro").iterdir():
        if package.name == "protocols" or not package.is_dir():
            continue
        if (package / "protocol.py").exists():
            found.add(f"repro.{package.name}.protocol")
    return found


def load_test_module(filename):
    """Import a sibling test module by path (no package installation)."""
    spec = importlib.util.spec_from_file_location(
        f"_completeness_{filename.replace('.', '_')}",
        TESTS_DIR / "protocols" / filename,
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestEveryModuleRegisters:
    def test_every_protocol_module_registers_a_spec(self):
        providers = {spec.provider for spec in registry.specs()}
        orphans = protocol_modules_on_disk() - providers
        assert not orphans, (
            f"modules under repro/protocols/ registering nothing: "
            f"{sorted(orphans)} — register a ProtocolSpec or add the "
            f"module to registry._INFRASTRUCTURE"
        )

    def test_every_application_provider_registers_a_spec(self):
        providers = {spec.provider for spec in registry.specs()}
        orphans = application_provider_modules() - providers
        assert not orphans, (
            f"application protocol modules registering nothing: "
            f"{sorted(orphans)}"
        )

    def test_no_spec_comes_from_an_unknown_module(self):
        known = protocol_modules_on_disk() | application_provider_modules()
        for spec in registry.specs():
            assert spec.provider in known, (
                f"{spec.name} registered from unexpected module "
                f"{spec.provider}"
            )


class TestEveryProtocolIsFullyWired:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_has_a_working_seeded_traffic_model(self, protocol):
        spec = registry.get(protocol)
        bursts = list(spec.traffic_bursts(n_units=5, seed=11))
        assert len(bursts) == 5
        assert all(b.duration_s > 0 for b in bursts)
        assert any(b.n_triggers > 0 for b in bursts), (
            f"{protocol} traffic offers the monitor no triggers at all"
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_has_an_attack_scenario(self, protocol):
        from repro.attacks.base import Attack

        spec = registry.get(protocol)
        assert isinstance(spec.default_attack(None), Attack)
        assert spec.attack_label

    def test_covered_by_the_telemetry_shape_suite(self):
        module = load_test_module("../integration/test_runtime_telemetry.py")
        assert module.ALL_PROTOCOLS == ALL_PROTOCOLS, (
            "the telemetry-shape parametrization has drifted from the "
            "registry"
        )

    def test_covered_by_the_link_session_suite(self):
        module = load_test_module("test_protocol_links.py")
        assert module.ALL_PROTOCOLS == ALL_PROTOCOLS, (
            "the link-session parametrization has drifted from the "
            "registry"
        )
