"""A mixed-protocol fleet on the sharded executor.

The registry feeds :func:`~repro.protocols.fleet.build_protocol_fleet`
one bus per protocol (or several); the executor shards, recovers from
faults, and identifies exactly as for a homogeneous fleet — protocol
labels are registration metadata, so canonical scan bytes stay
byte-identical across shard counts while ``Telemetry.snapshot()`` gains
per-protocol cells.
"""

import pytest

from repro.core.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.protocols import (
    build_protocol_fleet,
    default_attacks_by_bus,
    registry,
)

ALL_PROTOCOLS = registry.load_all()

FAST_POLICY = RetryPolicy(
    max_retries=2,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
    shard_timeout_base_s=30.0,
)


def make_fleet(**kwargs):
    kwargs.setdefault("buses_per_protocol", 2)
    kwargs.setdefault("seed", 9)
    return build_protocol_fleet(**kwargs)


@pytest.fixture(scope="module")
def serial_reference():
    """The shards=1 serial artefacts sharded runs must reproduce."""
    with make_fleet(shards=1, backend="serial") as ex:
        ex.enroll(n_captures=4)
        outcome = ex.scan()
        store = ex.build_store()
        identify = ex.identify_scan(store=store)
    return outcome, identify, store.digest()


class TestMixedFleetTopology:
    def test_every_protocol_contributes_buses(self):
        with make_fleet(shards=1, backend="serial") as ex:
            protocols = ex.bus_protocols()
            assert len(protocols) == 2 * len(ALL_PROTOCOLS)
            assert set(protocols.values()) == set(ALL_PROTOCOLS)
            for name, protocol in protocols.items():
                assert name.startswith(protocol)

    def test_subset_and_width_are_respected(self):
        with build_protocol_fleet(
            protocols=["jtag", "spi"], buses_per_protocol=3,
            shards=1, backend="serial",
        ) as ex:
            assert sorted(ex.bus_protocols().values()) == (
                ["jtag"] * 3 + ["spi"] * 3
            )

    def test_rejects_unknown_protocol_and_bad_width(self):
        with pytest.raises(KeyError):
            build_protocol_fleet(protocols=["uart"])
        with pytest.raises(ValueError):
            build_protocol_fleet(buses_per_protocol=0)


class TestShardedScanByteIdentity:
    def test_sharded_scan_matches_serial(self, serial_reference):
        serial_scan, _, _ = serial_reference
        with make_fleet(shards=3, backend="serial") as ex:
            ex.enroll(n_captures=4)
            sharded = ex.scan()
        assert sharded.canonical_bytes() == serial_scan.canonical_bytes()

    def test_records_carry_their_protocol(self, serial_reference):
        serial_scan, _, _ = serial_reference
        by_bus = {r.bus: r.protocol for r in serial_scan.records}
        for bus, protocol in by_bus.items():
            assert protocol in ALL_PROTOCOLS
            assert bus.startswith(protocol)

    def test_identify_scan_matches_serial_and_is_correct(
        self, serial_reference
    ):
        _, serial_identify, digest = serial_reference
        assert serial_identify.rank1_accuracy() == 1.0
        assert serial_identify.store_digest == digest
        for record in serial_identify.records:
            assert record.protocol in ALL_PROTOCOLS
        with make_fleet(shards=4, backend="serial") as ex:
            # Mirror the reference call sequence: the per-bus seed
            # streams advance per dispatch, so byte-identity is defined
            # over identical operation histories.
            ex.enroll(n_captures=4)
            ex.scan()
            sharded = ex.identify_scan(store=ex.build_store())
        assert (
            sharded.canonical_bytes()
            == serial_identify.canonical_bytes()
        )


class TestPerProtocolTelemetry:
    def test_snapshot_grows_one_cell_per_protocol(self, serial_reference):
        with make_fleet(shards=2, backend="serial") as ex:
            ex.enroll(n_captures=4)
            ex.scan()
            snap = ex.telemetry.snapshot()
        assert set(snap["protocols"]) == set(ALL_PROTOCOLS)
        # Two buses of each protocol, one check per bus per scan.
        for protocol, cell in snap["protocols"].items():
            assert cell["checks"] == 2, protocol
        assert sum(
            cell["checks"] for cell in snap["protocols"].values()
        ) == snap["totals"]["checks"]

    def test_attacked_protocols_alert_in_their_own_cells(self):
        with make_fleet(shards=2, backend="serial") as ex:
            ex.enroll(n_captures=4)
            modifiers = default_attacks_by_bus(
                ex, protocols=["iolink", "spi"]
            )
            assert len(modifiers) == 2
            outcome = ex.scan(modifiers_by_bus=modifiers)
            snap = ex.telemetry.snapshot()
        attacked = {ex.bus_protocols()[bus] for bus in modifiers}
        assert attacked == {"iolink", "spi"}
        for protocol in ALL_PROTOCOLS:
            cell = snap["protocols"][protocol]
            flagged = cell["alerts"] + cell["blocks"]
            if protocol in attacked:
                assert flagged >= 1, protocol
            else:
                assert flagged == 0, protocol
        alerted_buses = {bus for bus, _ in outcome.alerts()}
        assert alerted_buses == set(modifiers)


class TestFaultRecovery:
    def test_crashed_shard_recovers_with_protocols_intact(
        self, serial_reference
    ):
        serial_scan, _, _ = serial_reference
        injector = FaultInjector(
            specs=(
                FaultSpec(kind="error", shard=0, mode="scan",
                          attempts=(0,)),
            )
        )
        with make_fleet(
            shards=2, backend="serial",
            retry_policy=FAST_POLICY, fault_injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
        assert outcome.degraded
        assert outcome.canonical_bytes() == serial_scan.canonical_bytes()
        recovered = [r for r in outcome.records if r.recovery is not None]
        assert recovered
        for record in recovered:
            assert record.protocol in ALL_PROTOCOLS
