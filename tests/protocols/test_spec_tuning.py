"""Per-protocol detector tuning: spec fields → links, fleets, campaigns.

PR-8 moved the decision-policy knobs (``captures_per_check``,
``auth_threshold``, ``tamper_threshold``, ``tamper_smooth_window``) onto
:class:`~repro.protocols.spec.ProtocolSpec`.  These tests pin the whole
thread: validation at construction, the policy factories, the defaults
:meth:`ProtectedLink.from_registry` assembles, and the consensus rule
:func:`build_protocol_fleet` applies when specs disagree.
"""

import dataclasses

import pytest

from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.protocols import ProtectedLink, registry
from repro.protocols.fleet import build_protocol_fleet

ALL_PROTOCOLS = registry.load_all()


class TestSpecValidation:
    @pytest.mark.parametrize(
        "field, bad",
        [
            ("captures_per_check", 0),
            ("auth_threshold", 0.0),
            ("auth_threshold", 1.5),
            ("tamper_threshold", 0.0),
            ("tamper_smooth_window", 0),
        ],
    )
    def test_tuning_fields_are_validated(self, field, bad):
        spec = registry.get("jtag")
        with pytest.raises(ValueError):
            dataclasses.replace(spec, **{field: bad})


class TestPolicyFactories:
    def test_authenticator_carries_spec_threshold(self):
        spec = registry.get("jtag")
        tuned = dataclasses.replace(spec, auth_threshold=0.91)
        assert spec.authenticator().threshold == spec.auth_threshold
        assert tuned.authenticator().threshold == 0.91

    def test_tamper_detector_carries_spec_tuning(self):
        itdr = prototype_itdr()
        tuned = dataclasses.replace(
            registry.get("jtag"),
            tamper_threshold=1.0e-3,
            tamper_smooth_window=11,
        )
        detector = tuned.tamper_detector(itdr)
        assert detector.threshold == 1.0e-3
        assert detector.smooth_window == 11


class TestLinkAssembly:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_from_registry_deploys_spec_policies(self, protocol):
        spec = registry.get(protocol)
        link = ProtectedLink.from_registry(protocol, seed=5)
        assert link.captures_per_check == spec.captures_per_check
        for side in spec.sides:
            endpoint = link.endpoint(side)
            assert endpoint.authenticator.threshold == spec.auth_threshold
            assert (
                endpoint.tamper_detector.threshold == spec.tamper_threshold
            )
            assert (
                endpoint.tamper_detector.smooth_window
                == spec.tamper_smooth_window
            )

    def test_explicit_overrides_beat_the_spec(self):
        link = ProtectedLink.from_registry(
            "jtag",
            seed=5,
            authenticator=Authenticator(0.5),
            captures_per_check=9,
        )
        assert link.captures_per_check == 9
        for side in link.spec.sides:
            assert link.endpoint(side).authenticator.threshold == 0.5


class TestFleetConsensus:
    def test_agreeing_specs_build_without_policies(self):
        executor = build_protocol_fleet(buses_per_protocol=1)
        try:
            assert len(executor.bus_protocols()) == len(ALL_PROTOCOLS)
        finally:
            executor.close()

    def test_disagreeing_specs_demand_explicit_policy(self):
        divergent = dataclasses.replace(
            registry.get("jtag"),
            name="jtag-hardened",
            tamper_threshold=1.0e-3,
        )
        registry.register(divergent)
        try:
            with pytest.raises(ValueError, match="tamper_threshold"):
                build_protocol_fleet(
                    protocols=["jtag", "jtag-hardened"],
                    buses_per_protocol=1,
                )
        finally:
            registry.unregister("jtag-hardened")

    def test_explicit_detector_bypasses_consensus(self):
        divergent = dataclasses.replace(
            registry.get("jtag"),
            name="jtag-hardened",
            tamper_threshold=1.0e-3,
        )
        registry.register(divergent)
        try:
            spec = registry.get("jtag")
            executor = build_protocol_fleet(
                protocols=["jtag", "jtag-hardened"],
                buses_per_protocol=1,
                tamper_detector=spec.tamper_detector(prototype_itdr()),
            )
            executor.close()
        finally:
            registry.unregister("jtag-hardened")
