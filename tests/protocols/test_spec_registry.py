"""The protocol spec/registry contract, including seeded-RNG discipline.

Every registered traffic model takes an explicit generator and consumes
randomness only from it: same seed, same wire bits, no global-state
leakage.  The registry itself is checked for discovery, conflict
handling, and provider stamping.
"""

import inspect

import numpy as np
import pytest

from repro.protocols import ProtocolSpec, TrafficBurst, registry
from repro.protocols.spec import DEFAULT_TRAFFIC_SEED

ALL_PROTOCOLS = registry.load_all()


def _dummy_traffic(rng, n_units):
    for _ in range(n_units):
        yield TrafficBurst(
            n_bits=8, n_triggers=2, duration_s=8e-9, kind="unit"
        )


def make_spec(**overrides):
    fields = dict(
        name="dummy",
        title="Dummy lane",
        cadence="trigger-budget",
        sides=("a", "b"),
        endpoint_names=("a-end", "b-end"),
        bit_rate=1e9,
        clock_lane=False,
        traffic=_dummy_traffic,
        default_attack=lambda line: None,
        attack_label="no scenario (test dummy)",
    )
    fields.update(overrides)
    return ProtocolSpec(**fields)


class TestSpecValidation:
    def test_rejects_unknown_cadence(self):
        with pytest.raises(ValueError, match="cadence"):
            make_spec(cadence="sometimes")

    def test_rejects_mismatched_sides_and_endpoints(self):
        with pytest.raises(ValueError, match="endpoint_names"):
            make_spec(sides=("a", "b"), endpoint_names=("only-one",))

    def test_rejects_nonpositive_rates_and_counts(self):
        with pytest.raises(ValueError):
            make_spec(bit_rate=0.0)
        with pytest.raises(ValueError):
            make_spec(captures_per_check=0)
        with pytest.raises(ValueError):
            make_spec(default_units=0)

    def test_burst_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            TrafficBurst(n_bits=-1, n_triggers=0, duration_s=1e-9)
        with pytest.raises(ValueError):
            TrafficBurst(n_bits=1, n_triggers=0, duration_s=-1e-9)


class TestRegistry:
    def test_all_builtins_and_workloads_register(self):
        assert set(ALL_PROTOCOLS) == {
            "membus", "iolink", "jtag", "spi", "i2c"
        }
        assert ALL_PROTOCOLS == sorted(ALL_PROTOCOLS)

    def test_get_unknown_name_lists_what_exists(self):
        with pytest.raises(KeyError, match="jtag"):
            registry.get("uart")

    def test_register_is_idempotent_but_conflicts_loudly(self):
        spec = registry.get("spi")
        assert registry.register(spec) is spec  # same spec: no-op
        clashing = make_spec(name="spi")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(clashing)

    def test_provider_module_is_stamped(self):
        assert registry.get("jtag").provider == "repro.protocols.jtag"
        assert registry.get("membus").provider == "repro.membus.protocol"
        assert registry.get("iolink").provider == "repro.iolink.protocol"


class TestSeededRandomnessDiscipline:
    """Satellite: no protocol consumes unseeded randomness."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_traffic_signature_takes_an_explicit_generator(self, protocol):
        spec = registry.get(protocol)
        params = list(inspect.signature(spec.traffic).parameters)
        assert params[0] == "rng", (
            f"{protocol} traffic model must take the generator first"
        )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_same_seed_means_identical_bursts(self, protocol):
        spec = registry.get(protocol)
        one = list(spec.traffic_bursts(n_units=40, seed=5))
        two = list(spec.traffic_bursts(n_units=40, seed=5))
        other = list(spec.traffic_bursts(n_units=40, seed=6))
        assert one == two
        assert len(one) == 40
        assert one != other, f"{protocol} traffic ignores its seed"

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_rng_and_seed_are_mutually_exclusive(self, protocol):
        spec = registry.get(protocol)
        with pytest.raises(ValueError, match="not both"):
            spec.traffic_bursts(
                n_units=1, rng=np.random.default_rng(0), seed=0
            )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_no_protocol_touches_global_or_fresh_generators(
        self, protocol, monkeypatch
    ):
        """Traffic generation draws only from the generator handed in.

        Every ambient randomness source is booby-trapped: constructing a
        fresh generator or touching numpy's global stream fails the test.
        """
        spec = registry.get(protocol)
        rng = np.random.default_rng(5)

        def boom(*args, **kwargs):
            raise AssertionError(
                f"{protocol} traffic reached for ambient randomness"
            )

        monkeypatch.setattr(np.random, "default_rng", boom)
        for name in ("random", "randint", "rand", "randn", "choice",
                     "integers", "seed"):
            if hasattr(np.random, name):
                monkeypatch.setattr(np.random, name, boom)
        bursts = list(spec.traffic_bursts(n_units=30, rng=rng))
        assert len(bursts) == 30

    def test_default_seed_is_pinned(self):
        """The no-argument path is seeded too — never wall-clock random."""
        for protocol in ALL_PROTOCOLS:
            spec = registry.get(protocol)
            implicit = list(spec.traffic_bursts(n_units=10))
            explicit = list(
                spec.traffic_bursts(n_units=10, seed=DEFAULT_TRAFFIC_SEED)
            )
            assert implicit == explicit, protocol
