"""Unit tests for link-layer framing and the serial lane."""

import pytest

from repro.iolink.frame import Frame, FrameError, crc16_ccitt
from repro.iolink.link import SerialLink


class TestCRC:
    def test_known_vector(self):
        """CRC-16/CCITT-FALSE of '123456789' is 0x29B1."""
        assert crc16_ccitt([ord(c) for c in "123456789"]) == 0x29B1

    def test_empty(self):
        assert crc16_ccitt([]) == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = [1, 2, 3, 4]
        crc = crc16_ccitt(data)
        assert crc16_ccitt([1, 2, 3, 5]) != crc

    def test_byte_range_validation(self):
        with pytest.raises(ValueError):
            crc16_ccitt([300])


class TestFrame:
    def test_roundtrip(self):
        frame = Frame(sequence=7, payload=(1, 2, 3))
        assert Frame.from_bytes(frame.to_bytes()) == frame

    def test_empty_payload(self):
        frame = Frame(sequence=0, payload=())
        assert Frame.from_bytes(frame.to_bytes()) == frame
        assert frame.wire_length == 4

    def test_crc_error_detected(self):
        data = Frame(sequence=1, payload=(9, 9)).to_bytes()
        data[2] ^= 0x01  # corrupt the payload
        with pytest.raises(FrameError):
            Frame.from_bytes(data)

    def test_truncation_detected(self):
        data = Frame(sequence=1, payload=(1, 2, 3)).to_bytes()
        with pytest.raises(FrameError):
            Frame.from_bytes(data[:-1])

    def test_parse_stream(self):
        frames = [Frame(sequence=i, payload=(i,) * i) for i in range(5)]
        stream = []
        for f in frames:
            stream.extend(f.to_bytes())
        assert Frame.parse_stream(stream) == frames

    def test_validation(self):
        with pytest.raises(ValueError):
            Frame(sequence=300, payload=())
        with pytest.raises(ValueError):
            Frame(sequence=0, payload=(999,))
        with pytest.raises(ValueError):
            Frame(sequence=0, payload=tuple([0] * 300))


class TestSerialLink:
    @pytest.fixture
    def link(self, line):
        return SerialLink(line, bit_rate=5e9)

    def test_encode_decode_frames(self, link, rng):
        frames = [
            Frame(sequence=i, payload=tuple(rng.integers(0, 256, 16).tolist()))
            for i in range(8)
        ]
        bits = link.encode_frames(frames)
        assert link.decode_frames(bits) == frames

    def test_transmit_accounting(self, link):
        frame = Frame(sequence=1, payload=tuple(range(32)))
        record = link.transmit([frame])
        assert len(record.bits) == frame.wire_length * 10
        assert record.duration_s == pytest.approx(len(record.bits) / 5e9)
        assert record.n_triggers > 0

    def test_trigger_rate_above_random_data(self, link):
        """8b/10b's structure fires the (1,0) pattern more often than the
        0.25/bit of uncoded random data — a measured code property."""
        rate = link.measured_trigger_rate() / link.bit_rate
        assert 0.25 < rate < 0.40

    def test_time_for_triggers_scales(self, link):
        t1 = link.time_for_triggers(1000)
        t2 = link.time_for_triggers(2000)
        assert t2 == pytest.approx(2 * t1)

    def test_duty_cycle_slows_monitoring(self, link):
        busy = link.time_for_triggers(1000, duty_cycle=1.0)
        idle = link.time_for_triggers(1000, duty_cycle=0.1)
        assert idle == pytest.approx(10 * busy)

    def test_validation(self, line):
        with pytest.raises(ValueError):
            SerialLink(line, bit_rate=0.0)
        link = SerialLink(line)
        with pytest.raises(ValueError):
            link.time_for_triggers(-1)
        with pytest.raises(ValueError):
            link.time_for_triggers(10, duty_cycle=0.0)
