"""Integration tests for the DIVOT-protected serial link."""

import numpy as np
import pytest

from repro.attacks import AttackTimeline, WireTap
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.core.tamper import TamperDetector
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.txline.materials import FR4


def make_protected(line, seed=0, captures_per_check=8):
    link = SerialLink(line, bit_rate=5e9)
    tx = prototype_itdr(rng=np.random.default_rng(seed))
    rx = prototype_itdr(rng=np.random.default_rng(seed + 1))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=tx.probe_edge().duration,
    )
    plink = ProtectedSerialLink(
        link, tx, rx, Authenticator(0.85), detector,
        captures_per_check=captures_per_check,
    )
    plink.calibrate()
    return plink


def make_frames(n, rng, payload_len=64):
    return [
        Frame(
            sequence=i % 256,
            payload=tuple(rng.integers(0, 256, payload_len).tolist()),
        )
        for i in range(n)
    ]


class TestProtectedLink:
    def test_clean_session_delivers_everything(self, line, rng):
        plink = make_protected(line)
        frames = make_frames(200, rng)
        result = plink.send(frames)
        assert result.delivered == frames
        assert result.crc_errors == 0
        assert result.alerts() == []

    def test_monitoring_fed_by_traffic(self, line, rng):
        plink = make_protected(line)
        result = plink.send(make_frames(2000, rng))
        assert result.checks_run >= 2
        assert result.triggers_consumed >= plink.triggers_per_check

    def test_no_traffic_no_monitoring(self, line):
        plink = make_protected(line)
        result = plink.send([])
        assert result.checks_run == 0
        assert result.delivered == []

    def test_wiretap_detected_and_located(self, line, rng):
        plink = make_protected(line)
        onset = plink.check_period_s * 1.5
        timeline = AttackTimeline().add(WireTap(0.12), start_s=onset)
        result = plink.send(make_frames(4000, rng), timeline=timeline)
        latency = result.detection_latency(onset)
        assert latency is not None
        located = [
            e.location_m for e in result.alerts() if e.location_m is not None
        ]
        assert located and min(abs(l - 0.12) for l in located) < 0.04

    def test_blocked_receiver_drops_frames(self, line, other_line, rng):
        plink = make_protected(line)
        # Force the rx endpoint into BLOCK via a foreign-line capture.
        from repro.txline.line import TransmissionLine

        foreign = TransmissionLine(
            name=line.name,
            board_profile=other_line.board_profile,
            material=other_line.material,
        )
        plink.rx_endpoint.monitor_capture(foreign)
        assert plink.rx_endpoint.is_blocked
        result = plink.send(make_frames(20, rng))
        assert len(result.delivered) < 20

    def test_check_period_consistent_with_trigger_rate(self, line):
        plink = make_protected(line)
        expected = plink.link.time_for_triggers(plink.triggers_per_check)
        assert plink.check_period_s == pytest.approx(expected)
