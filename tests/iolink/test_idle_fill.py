"""Unit tests for idle-fill monitoring on quiet links."""

import numpy as np
import pytest

from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.core.tamper import TamperDetector
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.txline.materials import FR4


def make_protected(line, seed=0):
    link = SerialLink(line, bit_rate=5e9)
    tx = prototype_itdr(rng=np.random.default_rng(seed))
    rx = prototype_itdr(rng=np.random.default_rng(seed + 1))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=tx.probe_edge().duration,
    )
    plink = ProtectedSerialLink(
        link, tx, rx, Authenticator(0.85), detector, captures_per_check=8
    )
    plink.calibrate()
    return plink


class TestIdleEncoding:
    def test_idle_bits_conditioned(self, line):
        link = SerialLink(line)
        bits = link.encode_idle(32)
        assert len(bits) == 32 * 10  # 8b/10b overhead
        assert 0.4 < bits.mean() < 0.6

    def test_idle_offers_triggers(self, line):
        link = SerialLink(line)
        bits = link.encode_idle(64)
        assert link.trigger.count_triggers(bits) > 64  # > 1 per symbol

    def test_scrambled_idle(self, line):
        link = SerialLink(line, coding="scrambled-nrz")
        bits = link.encode_idle(32)
        assert len(bits) == 32 * 8

    def test_validation(self, line):
        with pytest.raises(ValueError):
            SerialLink(line).encode_idle(0)


class TestIdleFill:
    def _short_burst(self, rng):
        return [Frame(sequence=0, payload=tuple(rng.integers(0, 256, 16)))]

    def test_bare_short_burst_starves_monitor(self, line, rng):
        plink = make_protected(line, seed=2)
        result = plink.send(self._short_burst(rng))
        assert result.checks_run == 0

    def test_idle_fill_guarantees_a_check(self, line, rng):
        plink = make_protected(line, seed=4)
        result = plink.send(self._short_burst(rng), idle_fill=True)
        assert result.checks_run >= 1
        assert result.alerts() == []

    def test_idle_fill_extends_duration(self, line, rng):
        bare = make_protected(line, seed=6).send(self._short_burst(rng))
        filled = make_protected(line, seed=8).send(
            self._short_burst(rng), idle_fill=True
        )
        assert filled.duration_s > bare.duration_s

    def test_idle_fill_bounded(self, line, rng):
        plink = make_protected(line, seed=10)
        result = plink.send(
            self._short_burst(rng), idle_fill=True, max_idle_s=1e-9
        )
        # The bound is tighter than one check's trigger budget: no check.
        assert result.checks_run == 0

    def test_idle_fill_noop_when_traffic_suffices(self, line, rng):
        plink = make_protected(line, seed=12)
        frames = [
            Frame(sequence=i % 256, payload=tuple(rng.integers(0, 256, 64)))
            for i in range(2000)
        ]
        busy = plink.send(frames, idle_fill=True)
        assert busy.checks_run >= 2  # fed by real traffic, idle unused

    def test_idle_record_validation(self, line):
        plink = make_protected(line, seed=14)
        with pytest.raises(ValueError):
            plink.idle_fill_record(0)
