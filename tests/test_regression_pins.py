"""Regression pins: the calibrated numbers this reproduction stands on.

Each test pins one number DESIGN.md/EXPERIMENTS.md quotes, with tolerance
for statistical wobble.  If refactoring moves any of these, either the
change is a bug or the documentation needs the new value — both worth a
loud failure.
"""

import numpy as np
import pytest

from repro.core.config import (
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)


class TestGeometryPins:
    def test_round_trip_near_3_8_ns(self, line):
        """The Fig. 9 record span."""
        assert line.full_profile.round_trip_delay == pytest.approx(
            3.8e-9, rel=0.05
        )

    def test_segment_pitch_matches_phase_step(self, factory):
        assert factory.segment_delay == pytest.approx(11.16e-12, rel=0.01)

    def test_fr4_velocity(self):
        from repro.txline.materials import FR4

        assert FR4.velocity_at(23.0) == pytest.approx(15e7, rel=0.02)


class TestMeasurementPins:
    def test_operating_point(self):
        cfg = prototype_itdr_config()
        assert cfg.clock_frequency == 156.25e6
        assert cfg.phase_step == 11.16e-12
        assert cfg.repetitions == 24
        assert cfg.noise_sigma == pytest.approx(3e-3)
        assert cfg.pdm_vernier == (5, 6)

    def test_eight_k_measurements_per_capture(self, line, itdr):
        """341-400 points x 24 reps ~ the paper's 8192 measurements."""
        budget = itdr.budget(itdr.record_length(line))
        assert 8000 <= budget.n_triggers <= 10000

    def test_capture_time_near_paper_50us(self, line, itdr):
        budget = itdr.budget(itdr.record_length(line))
        assert 45e-6 <= budget.duration_s <= 65e-6

    def test_equivalent_rate_and_resolution(self, itdr):
        assert itdr.pll.equivalent_sample_rate > 80e9
        assert itdr.pll.spatial_resolution(15e7) == pytest.approx(
            0.837e-3, rel=0.01
        )


class TestStatisticalPins:
    """EER bands at a documented reduced scale (6 lines x 1024)."""

    @pytest.fixture(scope="class")
    def room_scores(self):
        from repro.experiments.common import score_lines

        factory = prototype_line_factory()
        lines = factory.manufacture_batch(6)
        itdr = prototype_itdr(rng=np.random.default_rng(7))
        return score_lines(lines, itdr, 1024, n_enroll=16)

    def test_room_eer_in_band(self, room_scores):
        eer, _ = room_scores.eer()
        assert eer <= 0.002  # paper band: < 0.06%; reduced-scale slack

    def test_genuine_impostor_separation(self, room_scores):
        s = room_scores.summary()
        assert s["genuine_mean"] - s["impostor_mean"] > 0.15

    def test_dprime_band(self, room_scores):
        from repro.analysis.stats import d_prime

        assert d_prime(room_scores.genuine, room_scores.impostor) > 3.0


class TestHardwarePins:
    def test_resource_totals(self):
        from repro.core.resources import ResourceModel

        report = ResourceModel(prototype_itdr_config()).report()
        assert (report.registers, report.luts) == (71, 124)
        assert 0.75 <= report.counter_register_fraction <= 0.85
        assert report.shared_fraction > 0.90

    def test_marginal_bus_cost(self):
        from repro.core.resources import ResourceModel

        regs, luts = ResourceModel(prototype_itdr_config()).report().marginal_cost()
        assert (regs, luts) == (4, 5)


class TestCodePins:
    def test_8b10b_trigger_rate(self, line):
        from repro.iolink import SerialLink

        rate = SerialLink(line).measured_trigger_rate() / 5e9
        assert rate == pytest.approx(0.305, abs=0.01)

    def test_scrambled_trigger_rate(self, line):
        from repro.iolink import SerialLink

        link = SerialLink(line, coding="scrambled-nrz")
        assert link.measured_trigger_rate() / 5e9 == pytest.approx(
            0.25, abs=0.01
        )

    def test_prbs_trigger_rate(self):
        from repro.core.trigger import TriggerGenerator
        from repro.signals.prbs import prbs_bits

        bits = prbs_bits(15, 2**15 - 1)
        rate = TriggerGenerator().count_triggers(bits) / len(bits)
        assert rate == pytest.approx(0.25, abs=0.005)


class TestCampaignPins:
    """One canonical campaign per attack family, pinned at seed 13.

    Campaigns are pure functions of their seed coordinates, so these
    numbers are deterministic — wobble here means the seed-derivation
    contract or the detector pipeline moved, not statistics.
    """

    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.campaigns import Campaign
        from repro.protocols import registry

        registry.load_all()
        return Campaign("jtag", seed=13, n_rounds=4).run()

    def test_canonical_snoop_always_caught(self, outcome):
        report = outcome.arm("canonical")
        assert report.auc == pytest.approx(1.0)
        assert report.first_detection_round == 1
        assert report.rounds[-1].attack_statistic == pytest.approx(
            0.01202436, rel=1e-5
        )

    def test_probe_family_search_evades(self, outcome):
        """The probe-placement searcher parks below the noise floor."""
        from repro.analysis import operating_point

        report = outcome.arm("probe-search")
        assert report.auc == pytest.approx(0.4375)
        assert report.first_detection_round is None
        assert operating_point(report.roc, max_fpr=0.0).tpr == 0.0
        assert report.rounds[-1].attack_statistic == pytest.approx(
            0.00187202, rel=1e-5
        )

    def test_cloning_family_adaptive_decay(self, outcome):
        """The profile-fitting cloner's statistic decays round on round."""
        report = outcome.arm("clone-fit")
        assert report.auc == pytest.approx(0.9375)
        samples = report.attack_samples
        assert samples == sorted(samples, reverse=True)
        assert samples[0] == pytest.approx(0.27291, rel=1e-4)
        assert samples[-1] == pytest.approx(0.04798282, rel=1e-5)
        baseline = outcome.arm("clone-oneshot")
        assert baseline.auc == pytest.approx(1.0)
        assert baseline.rounds[-1].attack_statistic == pytest.approx(
            0.19623091, rel=1e-5
        )

    def test_cloning_family_gap(self, outcome):
        from repro.campaigns import clone_gap

        gap = clone_gap(
            outcome.arm("clone-oneshot"), outcome.arm("clone-fit")
        )
        assert gap["gap"] == pytest.approx(0.75)
        assert gap["tpr_oneshot"] == 1.0
        assert gap["tpr_adaptive"] == pytest.approx(0.25)

    def test_implant_family_partial_evasion(self, outcome):
        from repro.analysis import operating_point

        report = outcome.arm("implant-search")
        assert report.auc == pytest.approx(0.875)
        assert report.first_detection_round == 1
        assert operating_point(report.roc, max_fpr=0.0).tpr == pytest.approx(
            0.75
        )
        assert report.rounds[-1].attack_statistic == pytest.approx(
            0.00286323, rel=1e-5
        )


class TestTamperPins:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.core.fingerprint import Fingerprint
        from repro.core.tamper import TamperDetector
        from repro.txline.materials import FR4

        factory = prototype_line_factory(attach_receiver=True)
        line = factory.manufacture(seed=1)
        itdr = prototype_itdr(rng=np.random.default_rng(0))
        reference = Fingerprint.from_captures(
            [itdr.capture(line) for _ in range(128)]
        )
        detector = TamperDetector(
            threshold=1.0,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        )
        return line, itdr, reference, detector

    def test_attack_signature_ordering(self, setup):
        """Magnetic < residue < snoop < chip-swap < load-mod < wire-tap."""
        from repro.attacks import (
            CapacitiveSnoop,
            ChipSwap,
            LoadModification,
            MagneticProbe,
            WireTap,
        )

        line, itdr, reference, detector = setup
        peaks = {}
        for name, attack in [
            ("magnetic", MagneticProbe(0.12)),
            ("residue", WireTap(0.12).residue()),
            ("snoop", CapacitiveSnoop(0.12)),
            ("chip-swap", ChipSwap(77)),
            ("load-mod", LoadModification()),
            ("wire-tap", WireTap(0.12)),
        ]:
            capture = itdr.capture_averaged(line, 128, modifiers=[attack])
            peaks[name] = float(
                detector.error_profile(capture, reference).samples.max()
            )
        assert peaks["magnetic"] == min(peaks.values())
        assert peaks["wire-tap"] == max(peaks.values())
        assert peaks["magnetic"] < peaks["snoop"] < peaks["wire-tap"]

    def test_chip_swap_localises_to_termination(self, setup):
        from repro.attacks import ChipSwap
        from repro.core.tamper import TamperDetector
        from repro.txline.materials import FR4

        line, itdr, reference, _ = setup
        detector = TamperDetector(
            threshold=1e-3,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        )
        capture = itdr.capture_averaged(line, 128, modifiers=[ChipSwap(77)])
        verdict = detector.check(capture, reference)
        line_length = (
            line.full_profile.one_way_delay * FR4.velocity_at(FR4.t_ref_c)
        )
        assert verdict.tampered
        assert verdict.location_m == pytest.approx(line_length, abs=0.02)
