"""Unit tests for analog-to-probability conversion (paper Eq. 2-3)."""

import numpy as np
import pytest

from repro.core.apc import APCConverter, MixtureCdfInverter, apc_sensitivity
from repro.core.comparator import Comparator

SIGMA = 2e-3


@pytest.fixture
def apc():
    return APCConverter(Comparator(noise_sigma=SIGMA), v_ref=0.0)


class TestMixtureCdfInverter:
    def test_forward_is_gaussian_cdf_for_single_level(self):
        inv = MixtureCdfInverter([0.0], SIGMA)
        assert inv.forward(np.array([0.0]))[0] == pytest.approx(0.5)
        assert inv.forward(np.array([SIGMA]))[0] == pytest.approx(0.8413, abs=1e-3)

    def test_forward_monotone(self):
        inv = MixtureCdfInverter([-SIGMA, 0.0, SIGMA], SIGMA)
        v = np.linspace(-5 * SIGMA, 5 * SIGMA, 200)
        p = inv.forward(v)
        assert np.all(np.diff(p) > 0)

    def test_roundtrip_accuracy(self):
        inv = MixtureCdfInverter([0.0], SIGMA)
        v = np.linspace(-2 * SIGMA, 2 * SIGMA, 31)
        assert np.allclose(inv.invert(inv.forward(v)), v, atol=SIGMA / 40)

    def test_invert_clips_extreme_probabilities(self):
        inv = MixtureCdfInverter([0.0], SIGMA)
        assert np.isfinite(inv.invert(np.array([0.0, 1.0]))).all()

    def test_single_level_linear_window_is_two_sigma(self):
        inv = MixtureCdfInverter([0.0], SIGMA)
        lo, hi = inv.linear_window()
        assert hi - lo == pytest.approx(4 * SIGMA, rel=0.25)

    def test_multi_level_window_wider(self):
        single = MixtureCdfInverter([0.0], SIGMA)
        multi = MixtureCdfInverter(
            [-4 * SIGMA, -2 * SIGMA, 0, 2 * SIGMA, 4 * SIGMA], SIGMA
        )
        s_lo, s_hi = single.linear_window()
        m_lo, m_hi = multi.linear_window()
        assert (m_hi - m_lo) > 2 * (s_hi - s_lo)

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureCdfInverter([], SIGMA)
        with pytest.raises(ValueError):
            MixtureCdfInverter([0.0], 0.0)


class TestAPCConverter:
    def test_estimate_unbiased_at_reference(self, apc, rng):
        est = apc.estimate_voltage(np.zeros(2000), 256, rng)
        assert abs(est.mean()) < SIGMA / 20

    def test_estimate_tracks_signal_in_window(self, apc, rng):
        v = np.linspace(-1.5 * SIGMA, 1.5 * SIGMA, 200)
        est = apc.estimate_voltage(v, 4096, rng)
        assert np.max(np.abs(est - v)) < SIGMA / 4

    def test_estimate_saturates_outside_window(self, apc, rng):
        """The dynamic-range limit PDM exists to fix."""
        v = np.full(100, 10 * SIGMA)
        est = apc.estimate_voltage(v, 256, rng)
        assert np.all(est < 8 * SIGMA)

    def test_more_repetitions_reduce_noise(self, apc):
        v = np.full(500, 0.5 * SIGMA)
        few = apc.estimate_voltage(v, 16, np.random.default_rng(0))
        many = apc.estimate_voltage(v, 1024, np.random.default_rng(0))
        assert many.std() < 0.5 * few.std()

    def test_measure_probability_range(self, apc, rng):
        p = apc.measure_probability(np.zeros(100), 32, rng)
        assert np.all((0 <= p) & (p <= 1))

    def test_repetitions_validated(self, apc, rng):
        with pytest.raises(ValueError):
            apc.measure_probability(np.zeros(3), 0, rng)

    def test_dynamic_range_positive(self, apc):
        assert apc.dynamic_range > 0

    def test_expected_estimate_std_delta_method(self, apc):
        """Predicted std matches Monte Carlo within ~20 %."""
        r = 256
        predicted = apc.expected_estimate_std(0.0, r)
        rng = np.random.default_rng(0)
        est = apc.estimate_voltage(np.zeros(4000), r, rng)
        assert est.std() == pytest.approx(predicted, rel=0.2)

    def test_expected_estimate_std_grows_off_center(self, apc):
        assert apc.expected_estimate_std(1.5 * SIGMA, 64) > apc.expected_estimate_std(
            0.0, 64
        )


class TestSensitivity:
    def test_peak_at_reference(self):
        v = np.linspace(-3 * SIGMA, 3 * SIGMA, 301)
        s = apc_sensitivity(v, 0.0, SIGMA)
        assert v[np.argmax(s)] == pytest.approx(0.0, abs=SIGMA / 10)

    def test_gaussian_peak_value(self):
        s0 = apc_sensitivity(0.0, 0.0, SIGMA)
        assert s0 == pytest.approx(1.0 / (SIGMA * np.sqrt(2 * np.pi)))

    def test_two_sigma_drop(self):
        """At 2 sigma the sensitivity falls to ~13.5 % of peak — the
        paper's working-range argument."""
        ratio = apc_sensitivity(2 * SIGMA, 0.0, SIGMA) / apc_sensitivity(
            0.0, 0.0, SIGMA
        )
        assert ratio == pytest.approx(np.exp(-2.0), rel=1e-6)
