"""The two-level solve memo: SolveCache semantics and ITDR integration.

The process-wide L2 (:mod:`repro.core.solvecache`) and the per-iTDR L1
(``ITDRConfig.reflection_cache_size``) must together guarantee: one
physics solve per distinct electrical state per process, correct
hit/miss/eviction accounting (hits = solves avoided, misses = solves
performed), and telemetry exposure of both the live process counters and
the worker deltas a fleet dispatch ships home.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import SolveCache, process_solve_cache
from repro.core.config import prototype_itdr, prototype_itdr_config
from repro.core.itdr import ITDR, ITDRConfig
from repro.core.runtime import Telemetry


@pytest.fixture(autouse=True)
def fresh_process_cache():
    """Each test sees an empty process memo with zeroed counters."""
    process_solve_cache().clear()
    yield
    process_solve_cache().clear()


class TestSolveCacheUnit:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SolveCache(capacity=0)

    def test_miss_then_hit_counting(self):
        cache = SolveCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0,
            "entries": 1, "capacity": 4,
        }

    def test_record_hit_counts_a_solve_avoided_elsewhere(self):
        cache = SolveCache()
        cache.record_hit()
        cache.record_hit()
        assert cache.stats()["hits"] == 2
        assert len(cache) == 0

    def test_lru_eviction_order_and_counter(self):
        cache = SolveCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" — "b" is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_existing_key_without_growth(self):
        cache = SolveCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes recency, no eviction
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.get("a") == 10

    def test_clear_drops_entries_and_counters(self):
        cache = SolveCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0,
            "entries": 0, "capacity": cache.capacity,
        }

    def test_process_cache_is_a_stable_singleton(self):
        assert process_solve_cache() is process_solve_cache()
        assert isinstance(process_solve_cache(), SolveCache)


class TestITDRIntegration:
    def test_config_validates_cache_size(self):
        with pytest.raises(ValueError):
            ITDRConfig(reflection_cache_size=0)

    def test_default_cache_size_is_sixteen(self):
        assert ITDRConfig().reflection_cache_size == 16

    def test_l1_capacity_follows_config(self, factory):
        config = dataclasses.replace(
            prototype_itdr_config(), reflection_cache_size=2
        )
        itdr = ITDR(config, rng=np.random.default_rng(0))
        lines = factory.manufacture_batch(3, first_seed=900)
        for line in lines:
            itdr.true_reflection(line)
        assert len(itdr._reflection_cache) == 2
        # The L2 still holds all three solves.
        assert len(process_solve_cache()) == 3

    def test_one_solve_per_state_counters(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        first = itdr.true_reflection(line)
        again = itdr.true_reflection(line)
        assert again is first  # L1 returns the identical object
        stats = process_solve_cache().stats()
        assert stats["misses"] == 1  # one physics solve performed
        assert stats["hits"] == 1    # one solve avoided (L1)
        assert stats["entries"] == 1

    def test_identical_itdrs_share_the_l2(self, line):
        a = prototype_itdr(rng=np.random.default_rng(2))
        b = prototype_itdr(rng=np.random.default_rng(3))
        wave_a = a.true_reflection(line)
        wave_b = b.true_reflection(line)
        assert wave_b is wave_a  # the L2 entry, not a re-solve
        stats = process_solve_cache().stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1  # b's lookup hit the L2

    def test_differing_solve_inputs_never_collide(self, line):
        base = prototype_itdr_config()
        a = ITDR(base, rng=np.random.default_rng(4))
        b = ITDR(
            dataclasses.replace(base, coupling=base.coupling * 0.5),
            rng=np.random.default_rng(5),
        )
        wave_a = a.true_reflection(line)
        wave_b = b.true_reflection(line)
        assert wave_b is not wave_a
        assert not np.array_equal(wave_a.samples, wave_b.samples)
        assert process_solve_cache().stats()["misses"] == 2

    def test_engines_are_keyed_separately(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(6))
        itdr.true_reflection(line, engine="born")
        itdr.true_reflection(line, engine="lattice")
        assert process_solve_cache().stats()["misses"] == 2


class TestTelemetryExposure:
    def test_snapshot_reports_live_process_counters(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(7))
        itdr.true_reflection(line)
        itdr.true_reflection(line)
        cache = Telemetry().snapshot()["health"]["solve_cache"]
        assert cache["process"]["misses"] == 1
        assert cache["process"]["hits"] == 1
        assert cache["workers"] == {"hits": 0, "misses": 0, "evictions": 0}

    def test_record_cache_accumulates_worker_deltas(self):
        telemetry = Telemetry()
        telemetry.record_cache({"hits": 3, "misses": 1})
        telemetry.record_cache({"hits": 2, "misses": 0, "evictions": 4})
        workers = telemetry.snapshot()["health"]["solve_cache"]["workers"]
        assert workers == {"hits": 5, "misses": 1, "evictions": 4}
