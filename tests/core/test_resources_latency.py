"""Unit tests for the hardware-overhead and latency models."""

import pytest

from repro.core.config import prototype_itdr_config
from repro.core.latency import LatencyModel
from repro.core.resources import XCZU7EV, ResourceModel


class TestResourceModel:
    def test_prototype_matches_paper_totals(self):
        """The headline utilisation row: 71 registers, 124 LUTs."""
        report = ResourceModel(prototype_itdr_config()).report()
        assert report.registers == 71
        assert report.luts == 124

    def test_counters_dominate(self):
        report = ResourceModel(prototype_itdr_config()).report()
        assert report.counter_register_fraction == pytest.approx(0.80, abs=0.05)

    def test_sharing_over_ninety_percent(self):
        report = ResourceModel(prototype_itdr_config()).report()
        assert report.shared_fraction > 0.90

    def test_utilisation_tiny(self):
        report = ResourceModel(prototype_itdr_config()).report()
        assert report.lut_utilization < 0.01
        assert report.part is XCZU7EV

    def test_marginal_cost_small(self):
        report = ResourceModel(prototype_itdr_config()).report()
        regs, luts = report.marginal_cost()
        assert regs <= 8 and luts <= 10

    def test_multi_bus_scaling_sublinear(self):
        model = ResourceModel(prototype_itdr_config())
        one = model.report(n_itdrs=1)
        many = model.report(n_itdrs=64)
        assert many.luts < 64 * one.luts * 0.2

    def test_larger_config_needs_more_counters(self):
        small = ResourceModel(prototype_itdr_config()).report()
        big = ResourceModel(
            prototype_itdr_config(repetitions=4096), n_record_points=4000
        ).report()
        assert big.registers > small.registers

    def test_rows_cover_all_blocks(self):
        report = ResourceModel(prototype_itdr_config()).report()
        rows = report.rows()
        assert sum(r[1] for r in rows if not r[4]) + sum(
            r[1] for r in rows if r[4]
        ) == report.registers

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceModel(prototype_itdr_config(), n_record_points=0)
        with pytest.raises(ValueError):
            ResourceModel(prototype_itdr_config()).report(n_itdrs=0)


class TestLatencyModel:
    def make(self, n_points=341):
        return LatencyModel(prototype_itdr_config(), n_points=n_points)

    def test_prototype_point_near_fifty_us(self):
        point = self.make().point(156.25e6, clock_lane=True)
        assert 40e-6 < point.detection_latency_s < 75e-6
        # "8,192 measurements": 341 points x 24 reps.
        assert point.n_triggers == 341 * 24

    def test_capture_scales_at_least_inversely_with_clock(self):
        """Faster clocks shorten capture at least proportionally — and
        better once the record spans multiple clock periods (several
        decisions amortise onto one trigger)."""
        model = self.make()
        slow = model.point(156.25e6)
        fast = model.point(1.25e9)
        assert fast.capture_time_s <= slow.capture_time_s / 8 + 1e-12
        assert fast.n_triggers <= slow.n_triggers

    def test_ghz_within_memory_operation_frame(self):
        """At 3.2 GHz the capture finishes in a few microseconds."""
        point = self.make().point(3.2e9)
        assert point.detection_latency_s < 5e-6

    def test_data_lane_four_times_slower(self):
        model = self.make()
        clock = model.point(1e9, clock_lane=True)
        data = model.point(1e9, clock_lane=False)
        assert data.capture_time_s == pytest.approx(4 * clock.capture_time_s)

    def test_repetition_tradeoff_linear(self):
        points = self.make().repetition_tradeoff([12, 24, 48], 156.25e6)
        assert points[1].capture_time_s == pytest.approx(
            2 * points[0].capture_time_s
        )
        assert points[2].capture_time_s == pytest.approx(
            4 * points[0].capture_time_s
        )

    def test_sweep_order_preserved(self):
        clocks = [1e8, 1e9, 1e10]
        points = self.make().sweep(clocks)
        assert [p.clock_frequency for p in points] == clocks

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(prototype_itdr_config(), n_points=0)
        with pytest.raises(ValueError):
            self.make().budget_at(0.0)
        with pytest.raises(ValueError):
            self.make().repetition_tradeoff([0], 1e9)


class TestMemoryBits:
    def test_memory_outside_fabric_totals(self):
        """BRAM blocks carry zero FF/LUT: the 71/124 totals stand."""
        report = ResourceModel(prototype_itdr_config()).report()
        assert report.registers == 71 and report.luts == 124
        assert report.memory_bits > 0

    def test_fingerprint_storage_scales_per_bus(self):
        model = ResourceModel(prototype_itdr_config())
        one = model.report(n_itdrs=1).memory_bits
        four = model.report(n_itdrs=4).memory_bits
        # Fingerprint ROM replicates; the result FIFO is shared.
        assert one < four < 4 * one

    def test_fingerprint_size_follows_record(self):
        small = ResourceModel(
            prototype_itdr_config(), n_record_points=100
        ).report()
        big = ResourceModel(
            prototype_itdr_config(), n_record_points=800
        ).report()
        assert big.memory_bits > small.memory_bits
