"""The unified batch capture engine: equivalence, caching, and API fixes.

Every capture path — single, averaged, calibration, monitoring, multi-lane
— routes through ``ITDR.capture_stack``.  These tests pin the contract that
made the unification safe:

* batched and looped paths are *statistically identical* under a fixed
  seed discipline (same moments, not same draws);
* the reflection cache keys on the content of the resolved electrical
  state, so in-place mutation is always detected, and evicts LRU;
* ``engine`` and ``interference`` reach the physics from every public
  entry point (they were silently dropped or missing before).
"""

import numpy as np
import pytest

from repro.attacks import WireTap
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.core.divot import DivotEndpoint
from repro.core.itdr import ITDR
from repro.core.tamper import TamperDetector
from repro.env.emi import nearby_digital_circuit
from repro.txline.materials import FR4


def make_endpoint(seed=0, threshold=0.85):
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    return DivotEndpoint(
        "engine-test",
        itdr,
        Authenticator(threshold),
        TamperDetector(
            threshold=1.0,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        ),
        captures_per_check=4,
    )


class TestLoopBatchEquivalence:
    """Same seed discipline -> same distribution moments within tolerance."""

    def test_stack_rows_match_single_capture_moments(self, line):
        itdr_loop = prototype_itdr(rng=np.random.default_rng(21))
        itdr_batch = prototype_itdr(rng=np.random.default_rng(22))
        true = itdr_loop.true_reflection(line).samples
        loop = np.stack(
            [itdr_loop.capture(line).waveform.samples for _ in range(200)]
        )
        batch = itdr_batch.capture_stack(line, 200)
        assert batch.shape == loop.shape
        # First and second moments of the estimation error agree.
        assert np.mean(batch - true) == pytest.approx(
            np.mean(loop - true), abs=2e-4
        )
        assert np.std(batch - true) == pytest.approx(
            np.std(loop - true), rel=0.1
        )

    def test_averaged_capture_matches_loop_average(self, line):
        """capture_averaged == mean of independent captures, statistically."""
        itdr_loop = prototype_itdr(rng=np.random.default_rng(23))
        itdr_batch = prototype_itdr(rng=np.random.default_rng(24))
        true = itdr_loop.true_reflection(line).samples
        loop_avg = np.stack(
            [
                np.mean(
                    [
                        itdr_loop.capture(line).waveform.samples
                        for _ in range(8)
                    ],
                    axis=0,
                )
                for _ in range(30)
            ]
        )
        batch_avg = np.stack(
            [
                itdr_batch.capture_averaged(line, 8).waveform.samples
                for _ in range(30)
            ]
        )
        assert np.std(batch_avg - true) == pytest.approx(
            np.std(loop_avg - true), rel=0.15
        )

    def test_averaged_with_interference_matches_loop(self, line):
        itdr_loop = prototype_itdr(rng=np.random.default_rng(25))
        itdr_batch = prototype_itdr(rng=np.random.default_rng(26))
        env = nearby_digital_circuit(amplitude=5e-3)
        true = itdr_loop.true_reflection(line).samples
        loop = np.stack(
            [
                itdr_loop.capture(line, interference=env).waveform.samples
                for _ in range(100)
            ]
        )
        batch = itdr_batch.capture_stack(line, 100, interference=env)
        assert np.mean(batch - true) == pytest.approx(
            np.mean(loop - true), abs=4e-4
        )
        assert np.std(batch - true) == pytest.approx(
            np.std(loop - true), rel=0.15
        )

    def test_jitter_drawn_per_capture_row(self, line):
        """Each batch row gets its own jitter residual, like the loop did."""
        itdr = prototype_itdr(
            rng=np.random.default_rng(27), phase_jitter_rms=10e-12
        )
        stack = itdr.capture_stack(line, 4)
        assert not np.array_equal(stack[0], stack[1])

    def test_capture_batch_interference_supported(self, line, itdr):
        est = itdr.capture_batch(
            line, 8, interference=nearby_digital_circuit()
        )
        assert est.shape == (8, itdr.record_length(line))
        assert np.isfinite(est).all()

    def test_bare_apc_stack_with_interference(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(28), use_pdm=False)
        est = itdr.capture_stack(
            line, 8, interference=nearby_digital_circuit()
        )
        assert np.isfinite(est).all()


class TestEngineThreading:
    """The engine argument reaches the physics from every entry point."""

    def test_capture_averaged_accepts_engine(self, line, itdr):
        cap = itdr.capture_averaged(line, 2, engine="born")
        assert len(cap.waveform) == itdr.record_length(line)

    def test_capture_averaged_rejects_unknown_engine(self, line, itdr):
        with pytest.raises(ValueError):
            itdr.capture_averaged(line, 2, engine="no-such-engine")

    def test_calibrate_threads_engine(self, line):
        with pytest.raises(ValueError):
            make_endpoint().calibrate(line, n_captures=2, engine="bogus")

    def test_monitor_capture_threads_engine(self, line):
        ep = make_endpoint()
        ep.calibrate(line, n_captures=2)
        with pytest.raises(ValueError):
            ep.monitor_capture(line, engine="bogus")

    def test_monitor_multi_threads_engine(self, line):
        ep = make_endpoint()
        ep.calibrate_many([line], n_captures=2)
        with pytest.raises(ValueError):
            ep.monitor_multi([line], engine="bogus")

    def test_capture_stack_threads_engine(self, line, itdr):
        with pytest.raises(ValueError):
            itdr.capture_stack(line, 2, engine="bogus")


class TestMonitorInterference:
    def test_monitor_multi_accepts_interference(self, line):
        ep = make_endpoint(threshold=0.5)
        ep.calibrate_many([line], n_captures=4)
        result = ep.monitor_multi(
            [line], interference=nearby_digital_circuit()
        )
        assert result.capture is not None

    def test_monitor_capture_interference_still_works(self, line):
        ep = make_endpoint(threshold=0.5)
        ep.calibrate(line, n_captures=4)
        result = ep.monitor_capture(
            line, interference=nearby_digital_circuit()
        )
        assert result.capture is not None


class TestSharedDefaultConfig:
    """Regression: default-constructed instruments must not share state."""

    def test_default_configs_are_per_instance(self):
        a = ITDR()
        b = ITDR()
        assert a.config is not b.config
        assert a.config.trigger is not b.config.trigger

    def test_explicit_config_still_honoured(self):
        from repro.core.itdr import ITDRConfig

        config = ITDRConfig(repetitions=48)
        assert ITDR(config).config is config


class TestContentHashCache:
    def test_in_place_mutation_invalidates(self, factory):
        """Mutating a line's profile arrays must trigger a fresh solve."""
        itdr = prototype_itdr(rng=np.random.default_rng(30))
        line = factory.manufacture(seed=700)
        before = itdr.true_reflection(line).samples.copy()
        line.board_profile.z[:] *= 1.05  # in-place tamper with the copper
        after = itdr.true_reflection(line).samples
        assert not np.allclose(before, after)

    def test_modifier_mutation_invalidates(self, factory):
        itdr = prototype_itdr(rng=np.random.default_rng(31))
        line = factory.manufacture(seed=701)
        tap = WireTap(0.12)
        before = itdr.true_reflection(line, [tap]).samples.copy()
        tap.position_m = 0.02  # move the tap without making a new object
        after = itdr.true_reflection(line, [tap]).samples
        assert not np.allclose(before, after)

    def test_equal_content_hits_across_objects(self, factory):
        itdr = prototype_itdr(rng=np.random.default_rng(32))
        a = factory.manufacture(seed=702)
        b = factory.manufacture(seed=702)
        assert itdr.true_reflection(a) is itdr.true_reflection(b)

    def test_eviction_is_lru_not_fifo(self, factory):
        itdr = prototype_itdr(rng=np.random.default_rng(33))
        itdr._reflection_cache_max = 2
        line_a = factory.manufacture(seed=710)
        line_b = factory.manufacture(seed=711)
        line_c = factory.manufacture(seed=712)
        wave_a = itdr.true_reflection(line_a)
        itdr.true_reflection(line_b)
        # Touch A so B becomes least recently used, then insert C.
        itdr.true_reflection(line_a)
        itdr.true_reflection(line_c)
        assert len(itdr._reflection_cache) == 2
        # A survived (a FIFO would have evicted it as the oldest insert).
        assert itdr.true_reflection(line_a) is wave_a

    def test_cache_stays_bounded(self, factory, itdr):
        for seed in range(730, 730 + 2 * itdr._reflection_cache_max):
            itdr.true_reflection(factory.manufacture(seed=seed))
        assert len(itdr._reflection_cache) <= itdr._reflection_cache_max

    def test_profile_content_hash_contract(self, factory):
        p = factory.manufacture(seed=720).full_profile
        q = factory.manufacture(seed=720).full_profile
        r = factory.manufacture(seed=721).full_profile
        assert p.content_hash() == q.content_hash()
        assert p.content_hash() != r.content_hash()
        assert p.with_load(60.0).content_hash() != p.content_hash()
