"""Unit tests for equivalent time sampling and the trigger generator."""

import numpy as np
import pytest

from repro.core.ets import ETSSampler, PhaseSteppingPLL
from repro.core.trigger import TriggerGenerator, trigger_rate
from repro.signals.waveform import Waveform


class TestPhaseSteppingPLL:
    def test_prototype_numbers(self):
        pll = PhaseSteppingPLL()
        assert pll.clock_period == pytest.approx(6.4e-9)
        assert pll.equivalent_sample_rate > 80e9
        assert pll.steps_per_period == 574

    def test_spatial_resolution_paper_value(self):
        """15 cm/ns and 11.16 ps give ~0.837 mm (paper II-D)."""
        pll = PhaseSteppingPLL()
        assert pll.spatial_resolution(15e7) == pytest.approx(0.837e-3, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseSteppingPLL(clock_frequency=0.0)
        with pytest.raises(ValueError):
            PhaseSteppingPLL(phase_step=0.0)
        with pytest.raises(ValueError):
            PhaseSteppingPLL().spatial_resolution(0.0)


class TestETSSampler:
    def make(self, n_phases=4):
        pll = PhaseSteppingPLL(clock_frequency=1.0 / (n_phases * 1e-12),
                               phase_step=1e-12)
        return ETSSampler(pll, n_phases=n_phases)

    def test_acquire_interleave_roundtrip(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(21, dtype=float), dt=1e-12)
        rebuilt = sampler.interleave(sampler.acquire(analog))
        n = len(analog)
        assert np.array_equal(rebuilt.samples[:n], analog.samples)

    def test_realtime_record_is_strided_view(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(12, dtype=float), dt=1e-12)
        rec = sampler.realtime_record(analog, 2)
        assert np.array_equal(rec.samples, [2.0, 6.0, 10.0])

    def test_phase_index_bounds(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(8, dtype=float), dt=1e-12)
        with pytest.raises(ValueError):
            sampler.realtime_record(analog, 4)

    def test_wrong_grid_rejected(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(8, dtype=float), dt=2e-12)
        with pytest.raises(ValueError):
            sampler.realtime_record(analog, 0)

    def test_interleave_count_check(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(8, dtype=float), dt=1e-12)
        with pytest.raises(ValueError):
            sampler.interleave(sampler.acquire(analog)[:2])

    def test_interleave_rejects_mismatched_record_lengths(self):
        """Records that are not the phase-stepped decimations of one
        waveform used to be written through truncating strided slices
        into an uninitialised buffer — garbage samples, no error."""
        sampler = self.make(4)
        analog = Waveform(np.arange(21, dtype=float), dt=1e-12)
        records = list(sampler.acquire(analog))
        short = records[1]
        records[1] = Waveform(short.samples[:-1], short.dt, short.t0)
        with pytest.raises(ValueError, match="record 0"):
            sampler.interleave(records)

    def test_interleave_rejects_wrong_phase_assignment(self):
        """Right total length, wrong per-phase split: phase 0 of a
        21-sample, 4-phase interleave must hold 6 samples, not 5."""
        sampler = self.make(4)
        analog = Waveform(np.arange(21, dtype=float), dt=1e-12)
        records = sampler.acquire(analog)
        rotated = records[1:] + records[:1]
        with pytest.raises(ValueError, match="phase-stepped decimations"):
            sampler.interleave(rotated)

    def test_interleave_rejects_mismatched_grids(self):
        sampler = self.make(4)
        analog = Waveform(np.arange(20, dtype=float), dt=1e-12)
        records = list(sampler.acquire(analog))
        records[2] = Waveform(records[2].samples, dt=2e-12, t0=records[2].t0)
        with pytest.raises(ValueError, match="sample spacing"):
            sampler.interleave(records)

    def test_measurement_passes(self):
        sampler = self.make(8)
        assert sampler.measurement_passes(3) == 3
        assert sampler.measurement_passes(100) == 8
        with pytest.raises(ValueError):
            sampler.measurement_passes(0)


class TestTriggerGenerator:
    def test_pattern_positions(self):
        trig = TriggerGenerator(pattern=(1, 0))
        idx = trig.trigger_indices([1, 0, 0, 1, 0, 1, 1, 0])
        assert list(idx) == [1, 4, 7]

    def test_rising_pattern(self):
        trig = TriggerGenerator(pattern=(0, 1))
        idx = trig.trigger_indices([1, 0, 0, 1, 0, 1])
        assert list(idx) == [3, 5]

    def test_clock_lane_every_cycle(self):
        trig = TriggerGenerator(clock_lane=True)
        assert trig.count_triggers([0] * 10) == 10

    def test_short_stream(self):
        trig = TriggerGenerator()
        assert trig.count_triggers([1]) == 0

    def test_expected_rate_random_data(self):
        trig = TriggerGenerator()
        assert trig.expected_rate(1e9) == pytest.approx(0.25e9)

    def test_expected_rate_clock_lane(self):
        assert trigger_rate(1e9, clock_lane=True) == pytest.approx(1e9)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TriggerGenerator().expected_rate(0.0)

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            TriggerGenerator(pattern=(1, 2))
        with pytest.raises(ValueError):
            TriggerGenerator(pattern=(1, 0, 1))

    def test_prbs_rate_matches_expectation(self):
        from repro.signals.prbs import prbs_bits

        bits = prbs_bits(15, 2**15 - 1)
        rate = TriggerGenerator().count_triggers(bits) / len(bits)
        assert rate == pytest.approx(0.25, abs=0.01)
