"""Unit tests for the 1:N identification store (repro.core.identify)."""

import numpy as np
import pytest

from repro.core import (
    Fingerprint,
    FingerprintStore,
    SketchSpec,
    UpdatePolicy,
)
from repro.core.itdr import IIPCapture
from repro.signals.waveform import Waveform

DT = 11.16e-12
N = 128


def synthetic_fleet(m, rng, n=N):
    """Distinct correlated records, one per synthetic bus."""
    rows = rng.standard_normal((m, n))
    # light smoothing concentrates energy at low frequencies like IIPs
    kernel = np.array([0.25, 0.5, 0.25])
    for _ in range(2):
        rows = np.apply_along_axis(
            lambda r: np.convolve(r, kernel, mode="same"), 1, rows
        )
    return [
        Fingerprint(name=f"bus-{i:04d}", samples=row, dt=DT)
        for i, row in enumerate(rows)
    ]


def capture_of(fp, noise=0.0, rng=None):
    samples = np.array(fp.samples)
    if noise and rng is not None:
        samples = samples + noise * rng.standard_normal(len(samples)) \
            / np.sqrt(len(samples))
    return IIPCapture(
        waveform=Waveform(samples, fp.dt),
        line_name=fp.name,
        n_triggers=0,
        duration_s=0.0,
    )


@pytest.fixture
def np_rng():
    return np.random.default_rng(99)


class TestEnrollment:
    def test_enroll_and_lookup_roundtrip(self, np_rng):
        store = FingerprintStore()
        fleet = synthetic_fleet(6, np_rng)
        digests = store.enroll_many(fleet)
        assert len(store) == 6
        assert store.names() == sorted(fp.name for fp in fleet)
        for fp, digest in zip(fleet, digests):
            assert fp.name in store
            assert store.current(fp.name).digest() == digest

    def test_reenroll_same_content_is_idempotent(self, np_rng):
        store = FingerprintStore()
        (fp,) = synthetic_fleet(1, np_rng)
        first = store.enroll(fp)
        again = store.enroll(Fingerprint(name=fp.name, samples=fp.samples,
                                         dt=fp.dt))
        assert first == again
        assert len(store.versions(fp.name)) == 1

    def test_reenroll_different_content_is_an_error(self, np_rng):
        store = FingerprintStore()
        a, b = synthetic_fleet(2, np_rng)
        store.enroll(a)
        with pytest.raises(ValueError, match="observe"):
            store.enroll(Fingerprint(name=a.name, samples=b.samples, dt=DT))

    def test_grid_mismatches_are_rejected(self, np_rng):
        store = FingerprintStore()
        (fp,) = synthetic_fleet(1, np_rng)
        store.enroll(fp)
        short = np_rng.standard_normal(N // 2)
        with pytest.raises(ValueError, match="record length"):
            store.enroll(Fingerprint(name="short", samples=short, dt=DT))
        with pytest.raises(ValueError, match="dt"):
            store.enroll(
                Fingerprint(
                    name="wrong-dt",
                    samples=np_rng.standard_normal(N),
                    dt=2 * DT,
                )
            )

    def test_growth_past_initial_capacity(self, np_rng):
        """Capacity doubling keeps every enrolled row addressable."""
        store = FingerprintStore(shortlist_size=4)
        fleet = synthetic_fleet(37, np_rng)  # crosses 4 -> 8 -> 16 -> 32 -> 64
        store.enroll_many(fleet)
        for fp in fleet:
            result = store.identify(capture_of(fp))
            assert result.bus == fp.name
            assert result.score == pytest.approx(1.0)


class TestIdentify:
    def test_clean_queries_identify_exactly(self, np_rng):
        store = FingerprintStore(shortlist_size=4)
        fleet = synthetic_fleet(50, np_rng)
        store.enroll_many(fleet)
        for fp in fleet[::7]:
            r = store.identify(capture_of(fp))
            assert (r.bus, r.accepted, r.method) == (fp.name, True, "sketch")

    def test_sketch_matches_brute_on_noisy_queries(self, np_rng):
        store = FingerprintStore(shortlist_size=8)
        fleet = synthetic_fleet(60, np_rng)
        store.enroll_many(fleet)
        for fp in fleet[::5]:
            cap = capture_of(fp, noise=0.05, rng=np_rng)
            rs = store.identify(cap, method="sketch")
            rb = store.identify(cap, method="brute")
            assert rs.bus == rb.bus
            # scores agree to the last ulp (BLAS shape-dependent rounding)
            assert rs.score == pytest.approx(rb.score, abs=1e-12)
            assert rs.accepted == rb.accepted

    def test_small_store_falls_back_to_brute(self, np_rng):
        store = FingerprintStore(shortlist_size=8)
        store.enroll_many(synthetic_fleet(3, np_rng))
        r = store.identify_samples(np_rng.standard_normal(N), DT)
        assert r.method == "brute"  # shortlist covered the whole store
        assert len(r.shortlist) == 3

    def test_identify_stack_matches_scalar_path(self, np_rng):
        store = FingerprintStore(shortlist_size=6)
        fleet = synthetic_fleet(40, np_rng)
        store.enroll_many(fleet)
        picks = fleet[::9]
        stack = np.stack(
            [
                fp.samples + 0.03 * np_rng.standard_normal(N) / np.sqrt(N)
                for fp in picks
            ]
        )
        batched = store.identify_stack(stack, DT)
        for fp, row, res in zip(picks, stack, batched):
            scalar = store.identify_samples(row, DT)
            assert res.bus == scalar.bus == fp.name
            assert res.score == pytest.approx(scalar.score, abs=1e-12)

    def test_query_grid_validation(self, np_rng):
        store = FingerprintStore()
        store.enroll_many(synthetic_fleet(4, np_rng))
        with pytest.raises(ValueError, match="length"):
            store.identify_samples(np_rng.standard_normal(N * 2), DT)
        with pytest.raises(ValueError, match="dt"):
            store.identify_samples(np_rng.standard_normal(N), DT * 3)
        with pytest.raises(ValueError, match="method"):
            store.identify_samples(np_rng.standard_normal(N), DT,
                                   method="psychic")

    def test_empty_store_identify_is_an_error(self, np_rng):
        with pytest.raises(RuntimeError, match="empty"):
            FingerprintStore().identify_samples(
                np_rng.standard_normal(N), DT
            )


class TestObserve:
    def test_genuine_strong_capture_updates_the_template(self, np_rng):
        store = FingerprintStore(policy=UpdatePolicy(alpha=0.2))
        fleet = synthetic_fleet(6, np_rng)
        store.enroll_many(fleet)
        fp = fleet[0]
        before = store.current(fp.name).samples.copy()
        drifted = fp.samples + 0.02 * np_rng.standard_normal(N) / np.sqrt(N)
        result, updated = store.observe(
            IIPCapture(Waveform(drifted, DT), fp.name, 0, 0.0)
        )
        assert result.bus == fp.name and updated
        history = store.versions(fp.name)
        assert [v.origin for v in history] == ["enroll", "update"]
        assert history[-1].score == result.score
        after = store.current(fp.name).samples
        assert not np.array_equal(after, before)
        # unit-norm blend moves the template by at most 2*alpha
        assert np.linalg.norm(after - before) <= 2 * store.policy.alpha

    def test_weak_capture_never_moves_anything(self, np_rng):
        store = FingerprintStore()
        fleet = synthetic_fleet(6, np_rng)
        store.enroll_many(fleet)
        digest = store.digest()
        junk = np_rng.standard_normal(N)
        result, updated = store.observe(
            IIPCapture(Waveform(junk, DT), "junk", 0, 0.0)
        )
        assert not updated and not result.accepted
        assert store.digest() == digest

    def test_version_history_is_trimmed(self, np_rng):
        store = FingerprintStore(
            policy=UpdatePolicy(max_versions=3, alpha=0.05)
        )
        fleet = synthetic_fleet(4, np_rng)
        store.enroll_many(fleet)
        fp = fleet[0]
        for _ in range(6):
            _, updated = store.observe(capture_of(fp, 0.01, np_rng))
            assert updated
        history = store.versions(fp.name)
        assert len(history) == 3
        assert history[-1].version == 6  # counter keeps climbing past trims


class TestSnapshots:
    def _populated(self, np_rng):
        store = FingerprintStore(
            sketch=SketchSpec(n_spectral=6, n_projection=10),
            policy=UpdatePolicy(threshold=0.8),
            shortlist_size=5,
        )
        fleet = synthetic_fleet(8, np_rng)
        store.enroll_many(fleet)
        store.observe(capture_of(fleet[2], 0.02, np_rng))
        return store, fleet

    def test_export_import_export_bitwise(self, np_rng):
        store, _ = self._populated(np_rng)
        first = store.export_json()
        second = FingerprintStore.import_json(first).export_json()
        assert first == second

    def test_restored_store_identifies_identically(self, np_rng):
        store, fleet = self._populated(np_rng)
        clone = FingerprintStore.import_json(store.export_json())
        assert clone.digest() == store.digest()
        for fp in fleet:
            cap = capture_of(fp, 0.04, np_rng)
            a = store.identify(cap)
            b = clone.identify(cap)
            assert (a.bus, a.score, a.shortlist) == (b.bus, b.score,
                                                     b.shortlist)

    def test_digest_is_insertion_order_independent(self, np_rng):
        fleet = synthetic_fleet(8, np_rng)
        forward, backward = FingerprintStore(), FingerprintStore()
        forward.enroll_many(fleet)
        backward.enroll_many(list(reversed(fleet)))
        assert forward.digest() == backward.digest()
        assert forward.export_json() == backward.export_json()

    def test_digest_tracks_every_version_step(self, np_rng):
        store, fleet = self._populated(np_rng)
        before = store.digest()
        _, updated = store.observe(capture_of(fleet[0], 0.01, np_rng))
        assert updated
        assert store.digest() != before


class TestSketchSpec:
    def test_projection_is_deterministic_and_orthonormal(self):
        spec = SketchSpec()
        p1 = spec.projection(N)
        p2 = spec.projection(N)
        assert np.array_equal(p1, p2)
        np.testing.assert_allclose(
            p1 @ p1.T, np.eye(spec.n_projection), atol=1e-12
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SketchSpec(n_spectral=-1)
        with pytest.raises(ValueError):
            SketchSpec(n_spectral=0, n_projection=0)
        with pytest.raises(ValueError):
            UpdatePolicy(alpha=0.0)
        with pytest.raises(ValueError):
            UpdatePolicy(threshold=1.5)
        with pytest.raises(ValueError):
            FingerprintStore(shortlist_size=0)

    def test_short_records_clip_the_sketch(self):
        spec = SketchSpec(n_spectral=8, n_projection=16)
        assert spec.dim(8) == 2 * 4 + 8
        rows = np.random.default_rng(0).standard_normal((3, 8))
        sketch = spec.sketch_rows(rows, spec.projection(8))
        assert sketch.shape == (3, spec.dim(8))
