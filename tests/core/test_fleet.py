"""The sharded fleet executor's determinism and equivalence contracts.

Three pinned guarantees:

(a) serial ``shards=1`` and parallel ``shards=K`` scans of the same fleet
    and seed are byte-identical (``canonical_bytes``), enrollment
    fingerprints included;
(b) the per-bus ``SeedSequence.spawn`` streams are a pure function of
    (seed, operation index, bus index) — never of the shard count;
(c) the telemetry snapshot keeps the PR-2 cross-workload shape with the
    per-shard cells added on top.
"""

import numpy as np
import pytest

from repro.attacks import WireTap
from repro.core import (
    Action,
    Authenticator,
    FleetScanExecutor,
    SharedITDRManager,
    TamperDetector,
    prototype_itdr,
    prototype_itdr_config,
    spawn_bus_streams,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

N_BUSES = 4
FIRST_SEED = 400
ROOT_SEED = 7


def make_detector(config):
    return TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )


def make_executor(factory, shards=1, backend="auto", seed=ROOT_SEED,
                  captures_per_check=8, n_buses=N_BUSES):
    config = prototype_itdr_config()
    executor = FleetScanExecutor(
        Authenticator(0.85),
        make_detector(config),
        itdr_config=config,
        captures_per_check=captures_per_check,
        shards=shards,
        backend=backend,
        seed=seed,
    )
    for line in factory.manufacture_batch(n_buses, first_seed=FIRST_SEED):
        executor.register(line)
    return executor


def run_one(factory, shards, backend, victim_index=2):
    """Enroll, one clean scan, one tapped scan; return the artefacts."""
    with make_executor(factory, shards=shards, backend=backend) as ex:
        fingerprints = ex.enroll(n_captures=8)
        clean = ex.scan()
        victim = ex.bus_names()[victim_index]
        tapped = ex.scan(modifiers_by_bus={victim: [WireTap(0.12)]})
        return ex, fingerprints, clean, tapped


class TestSerialParallelEquivalence:
    """(a): the backend and partition are invisible in the outcome."""

    def test_serial_shard_counts_are_byte_identical(self, factory):
        _, fp1, clean1, tapped1 = run_one(factory, 1, "serial")
        _, fp3, clean3, tapped3 = run_one(factory, 3, "serial")
        assert clean1.canonical_bytes() == clean3.canonical_bytes()
        assert tapped1.canonical_bytes() == tapped3.canonical_bytes()
        for name in fp1:
            assert np.array_equal(fp1[name].samples, fp3[name].samples)

    def test_process_backend_matches_serial_byte_for_byte(self, factory):
        ex1, fp1, clean1, tapped1 = run_one(factory, 1, "serial")
        exp, fpp, cleanp, tappedp = run_one(factory, 2, "process")
        assert clean1.canonical_bytes() == cleanp.canonical_bytes()
        assert tapped1.canonical_bytes() == tappedp.canonical_bytes()
        for name in fp1:
            assert fp1[name].samples.tobytes() == fpp[name].samples.tobytes()
        # The merged event streams agree on everything but shard labels.
        for serial_event, parallel_event in zip(
            ex1.event_log, exp.event_log
        ):
            assert serial_event.time_s == parallel_event.time_s
            assert serial_event.side == parallel_event.side
            assert serial_event.action is parallel_event.action
            assert serial_event.score == parallel_event.score
            assert serial_event.tampered == parallel_event.tampered
            assert serial_event.bus == parallel_event.bus

    def test_rescan_with_same_root_seed_reproduces_itself(self, factory):
        _, _, clean_a, tapped_a = run_one(factory, 2, "serial")
        _, _, clean_b, tapped_b = run_one(factory, 2, "serial")
        assert clean_a.canonical_bytes() == clean_b.canonical_bytes()
        assert tapped_a.canonical_bytes() == tapped_b.canonical_bytes()

    def test_different_seeds_differ(self, factory):
        with make_executor(factory, seed=1) as ex_a:
            ex_a.enroll(n_captures=4)
            scan_a = ex_a.scan()
        with make_executor(factory, seed=2) as ex_b:
            ex_b.enroll(n_captures=4)
            scan_b = ex_b.scan()
        assert scan_a.canonical_bytes() != scan_b.canonical_bytes()


class TestSeedStreams:
    """(b): spawn streams are stable across shard counts per bus."""

    def test_spawn_keys_are_registration_indexed(self):
        streams = spawn_bus_streams(np.random.SeedSequence(ROOT_SEED), 5)
        assert [s.spawn_key for s in streams] == [(i,) for i in range(5)]

    def test_streams_never_depend_on_shard_count(self):
        # The partition is applied after spawning, so the stream bus i
        # consumes is decided before any shard exists.
        for root_seed in (0, 7, 123):
            a = spawn_bus_streams(np.random.SeedSequence(root_seed), 6)
            b = spawn_bus_streams(np.random.SeedSequence(root_seed), 6)
            for stream_a, stream_b in zip(a, b):
                assert (
                    stream_a.generate_state(4).tolist()
                    == stream_b.generate_state(4).tolist()
                )

    def test_successive_operations_get_fresh_streams(self):
        root = np.random.SeedSequence(ROOT_SEED)
        enroll_streams = spawn_bus_streams(root, 3)
        scan_streams = spawn_bus_streams(root, 3)
        enroll_states = {
            tuple(s.generate_state(4).tolist()) for s in enroll_streams
        }
        scan_states = {
            tuple(s.generate_state(4).tolist()) for s in scan_streams
        }
        assert not enroll_states & scan_states

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            spawn_bus_streams(np.random.SeedSequence(0), 0)


class TestTelemetryShape:
    """(c): the PR-2 snapshot contract survives, with shard cells added."""

    CELL_KEYS = {"checks", "proceeds", "blocks", "alerts", "flagged",
                 "tampered", "score"}
    TOP_KEYS = {"endpoints", "buses", "shards", "protocols", "totals",
                "cadence", "health", "detection", "campaigns"}

    def test_snapshot_shape(self, factory):
        ex, _, _, tapped = run_one(factory, 3, "serial")
        snap = ex.telemetry.snapshot()
        assert set(snap) == self.TOP_KEYS
        for cell in [snap["totals"], *snap["endpoints"].values(),
                     *snap["buses"].values(), *snap["shards"].values()]:
            assert set(cell) == self.CELL_KEYS
        assert set(snap["buses"]) == set(ex.bus_names())
        assert set(snap["endpoints"]) == set(ex.bus_names())

    def test_shard_cells_partition_the_totals(self, factory):
        ex, _, _, _ = run_one(factory, 3, "serial")
        snap = ex.telemetry.snapshot()
        assert set(snap["shards"]) == set(range(3))
        assert sum(
            cell["checks"] for cell in snap["shards"].values()
        ) == snap["totals"]["checks"]

    def test_healthy_scans_report_clean_health(self, factory):
        ex, _, _, _ = run_one(factory, 3, "serial")
        health = ex.telemetry.snapshot()["health"]
        # enroll + two scans = three dispatches, none degraded.
        assert health["dispatches"] == 3
        assert health["degraded_dispatches"] == 0
        assert health["retries"] == 0
        assert health["serial_fallbacks"] == 0
        assert health["pool_rebuilds"] == 0
        # Every shard accrues wall time on every dispatch.
        assert set(health["per_shard_wall_s"]) == set(range(3))
        for cell in health["per_shard_wall_s"].values():
            assert cell["dispatches"] == 3
            assert cell["total_s"] >= cell["max_s"] > 0.0

    def test_detection_latency_reads_off_the_cadence_clock(self, factory):
        ex, _, _, tapped = run_one(factory, 2, "serial")
        assert not tapped.all_clear()
        snap = ex.telemetry.snapshot(onset_s=0.0)
        first_alert = snap["detection"]["first_alert_s"]
        assert first_alert is not None
        # Alerts land on visit boundaries of the round-robin clock.
        visit = ex.per_bus_check_time_s()
        assert first_alert == pytest.approx(round(first_alert / visit) * visit)


class TestFleetSemantics:
    def test_clean_fleet_is_all_clear_and_tap_is_flagged_by_name(
        self, factory
    ):
        ex, _, clean, tapped = run_one(factory, 2, "serial")
        assert clean.all_clear()
        victim = ex.bus_names()[2]
        assert [name for name, _ in tapped.alerts()] == [victim]

    def test_block_state_tracks_scan_outcomes(self, factory):
        with make_executor(factory, shards=2, backend="serial") as ex:
            ex.enroll(n_captures=8)
            names = ex.bus_names()
            # Cross-wire a fingerprint: the bus now fails authentication.
            ex._fingerprints[names[0]] = ex._fingerprints[names[1]]
            outcome = ex.scan()
            assert outcome.records[0].action is Action.BLOCK
            assert ex.is_blocked(names[0])
            # Restoring the right reference recovers the bus.
            ex.enroll(n_captures=8)
            recovered = ex.scan()
            assert recovered.all_clear()
            assert not ex.is_blocked(names[0])

    def test_lifecycle_errors(self, factory):
        config = prototype_itdr_config()
        ex = FleetScanExecutor(
            Authenticator(0.85), make_detector(config), itdr_config=config
        )
        with pytest.raises(RuntimeError):
            ex.enroll()
        with pytest.raises(RuntimeError):
            ex.scan()
        line = factory.manufacture(seed=FIRST_SEED)
        ex.register(line)
        with pytest.raises(ValueError):
            ex.register(line)
        with pytest.raises(RuntimeError):
            ex.scan()  # enroll first
        ex.enroll(n_captures=2)
        with pytest.raises(RuntimeError):
            ex.register(factory.manufacture(seed=FIRST_SEED + 1))
        with pytest.raises(KeyError):
            ex.scan(modifiers_by_bus={"no-such-bus": [WireTap(0.1)]})

    def test_constructor_validation(self):
        config = prototype_itdr_config()
        detector = make_detector(config)
        with pytest.raises(ValueError):
            FleetScanExecutor(Authenticator(0.85), detector, shards=0)
        with pytest.raises(ValueError):
            FleetScanExecutor(
                Authenticator(0.85), detector, backend="threads"
            )
        with pytest.raises(ValueError):
            FleetScanExecutor(
                Authenticator(0.85), detector, captures_per_check=0
            )

    def test_manager_exports_its_fleet(self, factory):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        manager = SharedITDRManager(
            itdr,
            Authenticator(0.85),
            make_detector(itdr.config),
            captures_per_check=8,
        )
        for line in factory.manufacture_batch(3, first_seed=FIRST_SEED):
            manager.register(line)
        with manager.fleet(seed=ROOT_SEED, shards=2, backend="serial") as ex:
            assert ex.bus_names() == manager.bus_names()
            assert ex.captures_per_check == manager.captures_per_check
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert len(outcome.records) == manager.n_buses
            # Same sharing trade-off arithmetic as the manager's.
            assert ex.scan_period_s() == pytest.approx(
                manager.scan_period_s()
            )
            report = ex.resource_report()
            assert report.registers == manager.resource_report().registers

    def test_shards_beyond_bus_count_are_harmless(self, factory):
        with make_executor(
            factory, shards=9, backend="serial", n_buses=2
        ) as ex:
            ex.enroll(n_captures=2)
            outcome = ex.scan()
            assert len(outcome.records) == 2
            assert {r.shard for r in outcome.records} <= set(range(9))
