"""Coverage-widening tests: config factories, capture details, caching."""

import numpy as np

from repro.core.config import (
    PROTOTYPE_N_LINES,
    PROTOTYPE_N_MEASUREMENTS,
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.env.emi import nearby_digital_circuit, synchronous_aggressor


class TestConfigFactories:
    def test_paper_constants(self):
        assert PROTOTYPE_N_MEASUREMENTS == 8192
        assert PROTOTYPE_N_LINES == 6

    def test_config_overrides(self):
        config = prototype_itdr_config(repetitions=48, noise_sigma=1e-3)
        assert config.repetitions == 48
        assert config.noise_sigma == 1e-3
        # Untouched fields keep prototype values.
        assert config.clock_frequency == 156.25e6

    def test_itdr_factory_seeding(self, line):
        a = prototype_itdr(rng=np.random.default_rng(5)).capture(line)
        b = prototype_itdr(rng=np.random.default_rng(5)).capture(line)
        assert np.array_equal(a.waveform.samples, b.waveform.samples)

    def test_line_factory_variants(self):
        bare = prototype_line_factory()
        populated = prototype_line_factory(attach_receiver=True)
        assert not bare.attach_receiver
        assert populated.attach_receiver


class TestReflectionCache:
    def test_cache_hit_returns_identical_waveform(self, line, itdr):
        a = itdr.true_reflection(line)
        b = itdr.true_reflection(line)
        assert a is b  # memoised object, not merely equal

    def test_cache_differentiates_modifier_objects(self, line, itdr):
        from repro.attacks import MagneticProbe

        clean = itdr.true_reflection(line)
        probed = itdr.true_reflection(line, [MagneticProbe(0.1)])
        assert not np.array_equal(clean.samples, probed.samples)

    def test_cache_bounded(self, factory, itdr):
        lines = factory.manufacture_batch(20, first_seed=500)
        for l in lines:
            itdr.true_reflection(l)
        assert len(itdr._reflection_cache) <= itdr._reflection_cache_max

    def test_cache_keyed_by_content_not_identity(self, factory, itdr):
        """Two line objects with identical physics share one solve."""
        line_a = factory.manufacture(seed=600)
        line_b = factory.manufacture(seed=600)
        assert line_a is not line_b
        a = itdr.true_reflection(line_a)
        b = itdr.true_reflection(line_b)
        assert a is b  # same content hash -> same memo entry

    def test_capture_noise_independent_despite_cache(self, line, itdr):
        a = itdr.capture(line).waveform.samples
        b = itdr.capture(line).waveform.samples
        assert not np.array_equal(a, b)


class TestInterferenceJitterCombos:
    def test_jitter_with_interference(self, line):
        itdr = prototype_itdr(
            rng=np.random.default_rng(0), phase_jitter_rms=10e-12
        )
        cap = itdr.capture(line, interference=nearby_digital_circuit())
        assert np.isfinite(cap.waveform.samples).all()

    def test_sync_interference_biases_estimate(self, line):
        """A synchronous aggressor shifts the measured waveform; the
        asynchronous one leaves it near the clean estimate."""
        clean_itdr = prototype_itdr(rng=np.random.default_rng(1))
        clean = np.mean(
            [clean_itdr.capture(line).waveform.samples for _ in range(24)],
            axis=0,
        )
        sync_itdr = prototype_itdr(rng=np.random.default_rng(2))
        env = synchronous_aggressor(amplitude=6e-3)
        sync = np.mean(
            [
                sync_itdr.capture(line, interference=env).waveform.samples
                for _ in range(24)
            ],
            axis=0,
        )
        async_itdr = prototype_itdr(rng=np.random.default_rng(3))
        async_env = nearby_digital_circuit(amplitude=6e-3)
        asynchronous = np.mean(
            [
                async_itdr.capture(
                    line, interference=async_env
                ).waveform.samples
                for _ in range(24)
            ],
            axis=0,
        )
        sync_err = np.max(np.abs(sync - clean))
        async_err = np.max(np.abs(asynchronous - clean))
        assert async_err < sync_err


class TestEndpointAlertLog:
    def test_alert_log_grows_only_on_non_proceed(self, line, other_line):
        from repro.core.auth import Authenticator
        from repro.core.divot import DivotEndpoint
        from repro.core.tamper import TamperDetector
        from repro.txline.line import TransmissionLine

        endpoint = DivotEndpoint(
            "log-test",
            prototype_itdr(rng=np.random.default_rng(0)),
            # Averaged checks separate cleanly: genuine ~0.97 vs impostor
            # ~0.85, so 0.92 rejects the foreign line and passes the own.
            Authenticator(0.92),
            TamperDetector(threshold=1.0),
            captures_per_check=8,
        )
        endpoint.calibrate(line, n_captures=4)
        for _ in range(3):
            endpoint.monitor_capture(line)
        assert endpoint.alert_log == []
        foreign = TransmissionLine(
            name=line.name,
            board_profile=other_line.board_profile,
            material=other_line.material,
        )
        endpoint.monitor_capture(foreign)
        assert len(endpoint.alert_log) == 1
