"""The lattice engine as a first-class capture path.

API parity pins: every capture surface (``true_reflection``,
``capture_stack``, ``capture_batch``, the fleet executor) accepts
``engine="lattice"`` and produces records with the same shape and grid as
the Born path, physically close to it (the engines differ only in
multiple-scattering terms), and byte-identical across shard counts —
the determinism contract must hold for both kernels.
"""

import numpy as np
import pytest

from repro.core import (
    Authenticator,
    FleetScanExecutor,
    TamperDetector,
    process_solve_cache,
    prototype_itdr,
    prototype_itdr_config,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4


def make_executor(factory, shards, backend, engine):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=4,
        shards=shards,
        backend=backend,
        seed=11,
        engine=engine,
    )
    for line in factory.manufacture_batch(4, first_seed=700):
        executor.register(line)
    return executor


class TestLatticeCapturePath:
    def test_true_reflection_close_to_born(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(0))
        lattice = itdr.true_reflection(line, engine="lattice")
        born = itdr.true_reflection(line, engine="born")
        assert len(lattice) == len(born) == itdr.record_length(line)
        assert lattice.dt == born.dt
        peak = np.max(np.abs(born.samples))
        assert np.max(np.abs(lattice.samples - born.samples)) < 0.01 * peak
        assert np.corrcoef(lattice.samples, born.samples)[0, 1] > 0.999

    def test_capture_stack_shape_and_grid(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        stack = itdr.capture_stack(line, 5, engine="lattice")
        assert stack.shape == (5, itdr.record_length(line))
        assert np.all(np.isfinite(stack))

    def test_capture_batch_per_row_states(self, line):
        """The z_batch/tau_batch path renders per-row lattice physics on
        the analog grid — uniform per-row stretch moves echoes."""
        itdr = prototype_itdr(rng=np.random.default_rng(2))
        profile = line.full_profile
        c = 3
        z_batch = np.tile(profile.z, (c, 1))
        stretch = 1.0 + 1e-3 * np.arange(c)
        tau_batch = np.tile(profile.tau, (c, 1)) * stretch[:, None]
        out = itdr.capture_batch(
            line, c, z_batch=z_batch, tau_batch=tau_batch, engine="lattice"
        )
        assert out.shape == (c, itdr.record_length(line))

    def test_unknown_engine_rejected(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            itdr.capture_stack(line, 1, engine="fdtd")


class TestLatticeFleetDeterminism:
    def test_lattice_scan_byte_identical_across_shards(self, factory):
        with make_executor(factory, 1, "serial", "lattice") as serial:
            serial.enroll(n_captures=4)
            serial_scan = serial.scan()
        with make_executor(factory, 2, "process", "lattice") as parallel:
            parallel.enroll(n_captures=4)
            parallel_scan = parallel.scan()
        assert serial_scan.canonical_bytes() == parallel_scan.canonical_bytes()

    def test_lattice_and_born_scans_agree_on_actions(self, factory):
        """Same fleet, same seed: the engines may differ in fine waveform
        detail but must agree on every monitoring decision."""
        with make_executor(factory, 1, "serial", "lattice") as lat:
            lat.enroll(n_captures=4)
            lattice_scan = lat.scan()
        with make_executor(factory, 1, "serial", "born") as born:
            born.enroll(n_captures=4)
            born_scan = born.scan()
        for a, b in zip(lattice_scan.records, born_scan.records):
            assert a.bus == b.bus
            assert a.action is b.action
            assert a.score == pytest.approx(b.score, abs=0.05)

    def test_repeat_scans_fold_worker_cache_hits_home(self, factory):
        process_solve_cache().clear()
        with make_executor(factory, 1, "serial", "lattice") as executor:
            executor.enroll(n_captures=4)
            executor.scan()
            executor.scan()
            workers = executor.telemetry.snapshot()["health"]["solve_cache"][
                "workers"
            ]
        # Scan 2 re-measures the same electrical states as scan 1, so the
        # shard's solve-cache delta ships home with hits and no misses.
        assert workers["hits"] > 0
        process_solve_cache().clear()
