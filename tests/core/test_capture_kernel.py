"""Unit tests for the fused count-only capture kernel.

Three contracts live here:

* the stable binomial CDF table — exact term-product bits below the
  hybrid threshold (regression baselines depend on them), regularised
  incomplete beta above it (``math.comb``-based products overflow past
  ~1030 trials);
* the kernel-stats counter plumbing (snapshot/delta/reset);
* the booby trap — count-only call paths (endpoint monitoring, fleet
  scans) must perform **zero** dense-grid renders once their caches are
  warm.  A future change that quietly re-routes monitoring through the
  dense path fails here, not in a profiler.
"""

import math

import numpy as np
import pytest
from scipy.stats import binom

from repro.core import (
    Authenticator,
    FleetScanExecutor,
    TamperDetector,
    prototype_itdr,
    prototype_itdr_config,
    prototype_line_factory,
)
from repro.core.capturekernel import (
    EXACT_PMF_MAX_TRIALS,
    CaptureKernelStats,
    binomial_cdf_table,
)
from repro.core.divot import DivotEndpoint
from repro.txline.materials import FR4


def _historical_cdf(n_trials, p):
    """The pre-fix term-product formula, verbatim (overflows at large n)."""
    p = np.asarray(p, dtype=float)
    q = 1.0 - p
    pmf = np.array(
        [
            math.comb(n_trials, k) * p**k * q ** (n_trials - k)
            for k in range(n_trials)
        ]
    )
    return np.cumsum(pmf, axis=0)


class TestBinomialCdfTable:
    def test_exact_branch_is_bitwise_historical_formula(self):
        """Below the hybrid threshold the table keeps the historical bits.

        Campaign and protocol regression pins were recorded against the
        term-product formula; the stable path must not move them.
        """
        p = np.linspace(0.001, 0.999, 257)
        for n_trials in (1, 4, 24, EXACT_PMF_MAX_TRIALS):
            table = binomial_cdf_table(n_trials, p)
            assert table.tobytes() == _historical_cdf(n_trials, p).tobytes()

    def test_stable_branch_matches_exact_at_small_n(self):
        """Distributional equivalence across the hybrid seam: the
        incomplete-beta CDF agrees with the exact products to rounding."""
        p = np.linspace(0.001, 0.999, 257)
        for n_trials in (4, 24, EXACT_PMF_MAX_TRIALS):
            exact = _historical_cdf(n_trials, p)
            stable = binom.cdf(
                np.arange(n_trials, dtype=float)[:, None], n_trials, p
            )
            assert np.max(np.abs(stable - exact)) < 1e-13

    def test_large_n_no_overflow(self):
        """repetitions=2048 used to raise OverflowError in math.comb
        products (comb(2048, 1024) ~ 1e615 > float64 max)."""
        p = np.array([1e-9, 0.3, 0.5, 0.9, 1.0 - 1e-9])
        table = binomial_cdf_table(2048, p)
        assert table.shape == (2048, p.size)
        assert np.all(np.isfinite(table))
        assert np.all((table >= 0.0) & (table <= 1.0))
        # CDF is non-decreasing in k (to incomplete-beta rounding) for
        # every probability column.
        assert np.all(np.diff(table, axis=0) >= -1e-12)

    def test_historical_formula_actually_overflowed(self):
        with pytest.raises(OverflowError):
            _historical_cdf(2048, np.array([0.5]))

    def test_no_tail_underflow_bias(self):
        """p**k underflow zeroed the tail of the old formula at large n;
        the stable CDF keeps the upper tail at 1, not 0."""
        table = binomial_cdf_table(1024, np.array([0.5]))
        assert table[-1, 0] == pytest.approx(1.0, abs=1e-12)

    def test_float32_mode(self):
        table = binomial_cdf_table(24, np.array([0.25, 0.75]), dtype=np.float32)
        assert table.dtype == np.float32
        ref = binomial_cdf_table(24, np.array([0.25, 0.75]))
        assert np.allclose(table, ref, atol=1e-6)


class TestCaptureKernelStats:
    def test_snapshot_delta_reset(self):
        stats = CaptureKernelStats()
        before = stats.snapshot()
        stats.fused_calls += 3
        stats.fused_captures += 12
        stats.dense_renders += 1
        delta = stats.delta(before)
        assert delta["fused_calls"] == 3
        assert delta["fused_captures"] == 12
        assert delta["dense_renders"] == 1
        assert delta["grid_calls"] == 0
        stats.reset()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_counter_keys_cover_fields(self):
        stats = CaptureKernelStats()
        snap = stats.snapshot()
        assert set(snap) == set(CaptureKernelStats.COUNTER_KEYS)


class TestCountOnlyPathsRenderNoDenseGrids:
    """The booby trap: monitoring and fleet scans are count-only paths.

    Once the reflection/table caches are warm, a monitoring check must
    be pure fused-kernel work — zero dense-grid renders, zero grid-path
    estimates.  If a refactor re-routes these paths through the dense
    renderer, these assertions trip immediately.
    """

    def _endpoint(self, rng_seed=11):
        itdr = prototype_itdr(rng=np.random.default_rng(rng_seed))
        return DivotEndpoint(
            name="trap",
            itdr=itdr,
            authenticator=Authenticator(0.85),
            tamper_detector=TamperDetector(
                threshold=2.5e-3, velocity=FR4.velocity_at(FR4.t_ref_c)
            ),
            captures_per_check=4,
        )

    def test_monitor_capture_is_fused_only_when_warm(self, line):
        endpoint = self._endpoint()
        endpoint.calibrate(line, n_captures=8)
        endpoint.monitor_capture(line)  # warm every cache
        stats = endpoint.itdr.kernel_stats
        before = stats.snapshot()
        for _ in range(5):
            endpoint.monitor_capture(line)
        delta = stats.delta(before)
        assert delta["dense_renders"] == 0
        assert delta["grid_calls"] == 0
        assert delta["fused_calls"] == 5
        assert delta["fused_captures"] == 5 * endpoint.captures_per_check
        assert delta["table_builds"] == 0
        assert delta["table_hits"] == 5

    def test_calibrate_then_score_fused_only(self, line):
        """Enrollment (capture_stack) and scoring both take the fused
        path on a static line — the dense path is reserved for jitter,
        interference, and perturbed-state batches."""
        endpoint = self._endpoint(rng_seed=23)
        endpoint.itdr.true_reflection(line)  # warm the solve cache
        before = endpoint.itdr.kernel_stats.snapshot()
        endpoint.calibrate(line, n_captures=8)
        delta = endpoint.itdr.kernel_stats.delta(before)
        assert delta["dense_renders"] == 0
        assert delta["grid_calls"] == 0
        assert delta["fused_calls"] == 1
        assert delta["fused_captures"] == 8

    def test_score_lines_is_fused_only_when_warm(self):
        """The Fig. 7 scoring loop (enroll + all-vs-all captures) is a
        count-only path: static ``capture_batch`` routes through the
        fused stack."""
        from repro.experiments.common import score_lines

        lines = prototype_line_factory().manufacture_batch(2, first_seed=77)
        itdr = prototype_itdr(rng=np.random.default_rng(41))
        score_lines(lines, itdr, n_measurements=4, n_enroll=2)  # warm
        before = itdr.kernel_stats.snapshot()
        score_lines(lines, itdr, n_measurements=4, n_enroll=2)
        delta = itdr.kernel_stats.delta(before)
        assert delta["dense_renders"] == 0
        assert delta["grid_calls"] == 0
        assert delta["fused_calls"] == 2 * len(lines)

    def test_fleet_scan_is_fused_only_when_warm(self):
        """Steady-state fleet scans ship home all-zero dense-render
        deltas through the telemetry ``capture_kernel`` section."""
        factory = prototype_line_factory()
        lines = factory.manufacture_batch(3, first_seed=640)
        executor = FleetScanExecutor(
            Authenticator(0.85),
            TamperDetector(
                threshold=2.5e-3, velocity=FR4.velocity_at(FR4.t_ref_c)
            ),
            itdr_config=prototype_itdr_config(),
            captures_per_check=2,
            shards=1,
            backend="serial",
            seed=29,
        )
        with executor:
            for line in lines:
                executor.register(line)
            executor.enroll(n_captures=4)
            executor.scan()  # warm the per-worker caches
            warm = executor.telemetry.snapshot()["health"]["capture_kernel"]
            executor.scan()
            steady = executor.telemetry.snapshot()["health"]["capture_kernel"]
        delta = {k: steady[k] - warm[k] for k in steady}
        assert delta["dense_renders"] == 0
        assert delta["grid_calls"] == 0
        assert delta["fused_calls"] == len(lines)
        assert delta["fused_captures"] == 2 * len(lines)

    def test_jitter_and_interference_still_take_dense_path(self, line):
        """The fused gate only covers the closed-form static case; the
        dense fallback stays live for the paths that need it."""
        from repro.env.emi import nearby_digital_circuit

        itdr = prototype_itdr(rng=np.random.default_rng(5))
        itdr.capture_stack(line, 2)  # warm caches
        before = itdr.kernel_stats.snapshot()
        itdr.capture_stack(line, 2, interference=nearby_digital_circuit())
        delta = itdr.kernel_stats.delta(before)
        assert delta["fused_calls"] == 0
        assert delta["grid_calls"] == 1

        jittery = prototype_itdr(
            rng=np.random.default_rng(5), phase_jitter_rms=1e-12
        )
        jittery.capture_stack(line, 2)
        before = jittery.kernel_stats.snapshot()
        jittery.capture_stack(line, 2)
        delta = jittery.kernel_stats.delta(before)
        assert delta["fused_calls"] == 0
        assert delta["grid_calls"] == 1
