"""Unit tests for tamper detection and localisation."""

import numpy as np
import pytest

from repro.attacks import MagneticProbe, WireTap
from repro.core.tamper import TamperDetector, calibrate_threshold
from repro.txline.materials import FR4

VELOCITY = FR4.velocity_at(FR4.t_ref_c)


@pytest.fixture
def detector(itdr):
    return TamperDetector(
        threshold=2e-3,
        velocity=VELOCITY,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )


class TestDetector:
    def test_clean_capture_not_flagged(
        self, line, itdr, enrolled_fingerprint, detector
    ):
        cap = itdr.capture_averaged(line, 32)
        verdict = detector.check(cap, enrolled_fingerprint)
        assert not verdict.tampered
        assert verdict.location_index is None

    def test_wiretap_flagged_and_located(
        self, line, itdr, enrolled_fingerprint, detector
    ):
        cap = itdr.capture_averaged(line, 32, modifiers=[WireTap(0.12)])
        verdict = detector.check(cap, enrolled_fingerprint)
        assert verdict.tampered
        assert verdict.location_m == pytest.approx(0.12, abs=0.03)

    def test_probe_location_scales_with_position(
        self, line, itdr, enrolled_fingerprint
    ):
        det = TamperDetector(
            threshold=5e-5,
            velocity=VELOCITY,
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        )
        locations = []
        for pos in (0.08, 0.16, 0.22):
            cap = itdr.capture_averaged(
                line, 256, modifiers=[MagneticProbe(pos, coupling=0.03)]
            )
            verdict = det.check(cap, enrolled_fingerprint)
            assert verdict.tampered
            locations.append(verdict.location_m)
        assert locations == sorted(locations)
        assert locations[0] == pytest.approx(0.08, abs=0.03)

    def test_error_profile_length(self, line, itdr, enrolled_fingerprint, detector):
        cap = itdr.capture(line)
        profile = detector.error_profile(cap, enrolled_fingerprint)
        assert len(profile) == len(cap.waveform)

    def test_length_mismatch_rejected(self, line, itdr, enrolled_fingerprint, detector):
        from repro.core.itdr import IIPCapture
        from repro.signals.waveform import Waveform

        cap = itdr.capture(line)
        short = IIPCapture(
            waveform=Waveform(cap.waveform.samples[:-3], cap.waveform.dt),
            line_name=cap.line_name,
            n_triggers=1,
            duration_s=1.0,
        )
        with pytest.raises(ValueError):
            detector.check(short, enrolled_fingerprint)

    def test_no_velocity_no_distance(self, line, itdr, enrolled_fingerprint):
        det = TamperDetector(threshold=1e-9)  # everything trips
        verdict = det.check(itdr.capture(line), enrolled_fingerprint)
        assert verdict.tampered
        assert verdict.location_m is None
        assert verdict.location_index is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            TamperDetector(threshold=0.0)
        with pytest.raises(ValueError):
            TamperDetector(threshold=1.0, smooth_window=0)
        with pytest.raises(ValueError):
            TamperDetector(threshold=1.0, alignment_offset_s=-1.0)


class TestCalibrateThreshold:
    def test_sits_between_floor_and_attack(self):
        thr = calibrate_threshold(np.array([1e-5, 2e-5]), np.array([1e-3]))
        assert 2e-5 < thr < 1e-3

    def test_overlapping_uses_geometric_mean(self):
        thr = calibrate_threshold(np.array([1e-4]), np.array([4e-4]))
        assert thr == pytest.approx(np.sqrt(1e-4 * 4e-4) * 2, rel=2.0)

    def test_no_separation_still_finite(self):
        thr = calibrate_threshold(np.array([1e-3]), np.array([1e-4]))
        assert np.isfinite(thr) and thr > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_threshold(np.zeros(0), np.array([1.0]))
