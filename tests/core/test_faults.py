"""Fault-tolerant fleet dispatch: every recovery path, pinned.

The contracts (ISSUE 4):

(a) with injected worker crashes, hangs, slowdowns, or errors, a fleet
    scan *completes* — via retry, pool rebuild, or serial fallback;
(b) every recovered outcome is **byte-identical** to the all-healthy
    ``shards=1`` serial scan — recovery may move work, never change it;
(c) a scan immediately after a worker crash succeeds without any manual
    pool reset (the broken pool is rebuilt, not cached);
(d) telemetry's ``health`` section records what the recovery cost.

Process-pool scenarios run at a small scale (4 buses, shallow
averaging) because each one pays real fork/rebuild latency; the engine
itself is additionally unit-tested with fake backends below, and
property-tested in ``tests/property/test_fault_schedules.py``.
"""

import pytest

from repro.core import (
    Authenticator,
    FaultInjector,
    FaultSpec,
    FleetDispatchError,
    FleetScanExecutor,
    RetryPolicy,
    TamperDetector,
    available_workers,
    prototype_itdr_config,
)
from repro.core.faults import (
    SERIAL_FALLBACK,
    AttemptFailure,
    InjectedFault,
    run_with_recovery,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

N_BUSES = 4
FIRST_SEED = 400
ROOT_SEED = 7

#: Tight-but-safe recovery settings for injected-fault scenarios.
FAST_POLICY = RetryPolicy(
    max_retries=2,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
    shard_timeout_base_s=30.0,
)


def make_detector(config):
    return TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )


def make_executor(factory, shards=1, backend="auto", policy=None,
                  injector=None):
    config = prototype_itdr_config()
    executor = FleetScanExecutor(
        Authenticator(0.85),
        make_detector(config),
        itdr_config=config,
        captures_per_check=4,
        shards=shards,
        backend=backend,
        seed=ROOT_SEED,
        retry_policy=policy,
        fault_injector=injector,
    )
    for line in factory.manufacture_batch(N_BUSES, first_seed=FIRST_SEED):
        executor.register(line)
    return executor


@pytest.fixture(scope="module")
def healthy_reference(factory):
    """The all-healthy ``shards=1`` serial artefacts every recovered
    outcome must match byte-for-byte."""
    with make_executor(factory, shards=1, backend="serial") as ex:
        fingerprints = ex.enroll(n_captures=4)
        scan_one = ex.scan()
        scan_two = ex.scan()
    return fingerprints, scan_one, scan_two


class TestCrashRecovery:
    """A worker killed mid-scan (real os._exit -> BrokenProcessPool)."""

    def test_crashed_worker_scan_recovers_byte_identically(
        self, factory, healthy_reference
    ):
        _, healthy_one, healthy_two = healthy_reference
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0,)),)
        )
        with make_executor(
            factory, shards=2, backend="process",
            policy=FAST_POLICY, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            # (a) the scan completed, and says how.
            assert outcome.degraded
            assert any("broken_pool" in h.faults
                       for h in outcome.shard_health)
            # (b) byte-identical to the healthy serial scan.
            assert outcome.canonical_bytes() == \
                healthy_one.canonical_bytes()
            # (c) the next scan succeeds with no manual pool reset —
            # and is itself byte-identical to the healthy second scan
            # (the injector re-fires on its attempt 0 and is re-healed).
            second = ex.scan()
            assert second.canonical_bytes() == \
                healthy_two.canonical_bytes()
            # (d) the recovery is on the telemetry surface.
            health = ex.telemetry.snapshot()["health"]
            assert health["degraded_dispatches"] >= 1
            assert health["broken_pools"] >= 1
            assert health["pool_rebuilds"] >= 1
            assert health["retries"] >= 1
            # Recovery provenance reaches the canonical events.
            assert ex.event_log.recovered()

    def test_enrollment_recovers_too(self, factory, healthy_reference):
        healthy_fingerprints, _, _ = healthy_reference
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="enroll",
                             attempts=(0,)),)
        )
        with make_executor(
            factory, shards=2, backend="process",
            policy=FAST_POLICY, injector=injector,
        ) as ex:
            fingerprints = ex.enroll(n_captures=4)
            for name, reference in healthy_fingerprints.items():
                assert fingerprints[name].samples.tobytes() == \
                    reference.samples.tobytes()
            assert ex.telemetry.snapshot()["health"]["broken_pools"] >= 1


class TestHangAndSlowRecovery:
    def test_hung_worker_times_out_and_retry_is_byte_identical(
        self, factory, healthy_reference
    ):
        _, healthy_one, _ = healthy_reference
        injector = FaultInjector(
            specs=(FaultSpec(kind="hang", shard=0, mode="scan",
                             attempts=(0,), seconds=15.0),)
        )
        policy = RetryPolicy(
            max_retries=1,
            backoff_base_s=0.01,
            shard_timeout_base_s=1.0,
            shard_timeout_per_capture_s=0.02,
        )
        with make_executor(
            factory, shards=2, backend="process",
            policy=policy, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert outcome.degraded
            assert any("timeout" in h.faults for h in outcome.shard_health)
            assert outcome.canonical_bytes() == \
                healthy_one.canonical_bytes()
            health = ex.telemetry.snapshot()["health"]
            assert health["timeouts"] >= 1
            assert health["pool_rebuilds"] >= 1

    def test_slow_worker_inside_timeout_needs_no_recovery(
        self, factory, healthy_reference
    ):
        _, healthy_one, _ = healthy_reference
        injector = FaultInjector(
            specs=(FaultSpec(kind="slow", shard=0, mode="scan",
                             attempts=(0,), seconds=0.2),)
        )
        with make_executor(
            factory, shards=2, backend="serial",
            policy=FAST_POLICY, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert not outcome.degraded
            assert outcome.canonical_bytes() == \
                healthy_one.canonical_bytes()
            # The slowdown is visible in the per-shard wall time.
            wall = ex.telemetry.snapshot()["health"]["per_shard_wall_s"]
            assert wall[0]["max_s"] > wall[1]["max_s"]


class TestSerialFallback:
    def test_exhausted_retries_fall_back_to_the_parent(
        self, factory, healthy_reference
    ):
        _, healthy_one, _ = healthy_reference
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0,)),)
        )
        policy = RetryPolicy(max_retries=0, backoff_base_s=0.01)
        with make_executor(
            factory, shards=2, backend="process",
            policy=policy, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert outcome.degraded
            assert any(h.outcome == SERIAL_FALLBACK
                       for h in outcome.shard_health)
            assert outcome.canonical_bytes() == \
                healthy_one.canonical_bytes()
            assert ex.telemetry.snapshot()["health"]["serial_fallbacks"] >= 1
            # Fallback provenance lands on the affected records only.
            labels = {r.shard: r.recovery for r in outcome.records}
            assert SERIAL_FALLBACK in labels.values()

    def test_systematic_failure_raises_after_the_whole_ladder(
        self, factory
    ):
        # The fault fires on every rung, fallback included.
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0)
        injector = FaultInjector(
            specs=(FaultSpec(kind="error", shard=0, mode="scan",
                             attempts=tuple(range(policy.max_retries + 2))),)
        )
        with make_executor(
            factory, shards=2, backend="serial",
            policy=policy, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            with pytest.raises(FleetDispatchError):
                ex.scan()

    def test_fallback_disabled_raises_instead(self, factory):
        policy = RetryPolicy(
            max_retries=0, backoff_base_s=0.0, serial_fallback=False
        )
        injector = FaultInjector(
            specs=(FaultSpec(kind="error", shard=0, mode="scan",
                             attempts=(0,)),)
        )
        with make_executor(
            factory, shards=2, backend="serial",
            policy=policy, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            with pytest.raises(FleetDispatchError):
                ex.scan()


class TestSerialBackendRecovery:
    """The ladder applies inline too (crash degrades to a raise)."""

    def test_serial_backend_retries_injected_errors(
        self, factory, healthy_reference
    ):
        _, healthy_one, _ = healthy_reference
        injector = FaultInjector(
            specs=(
                FaultSpec(kind="error", shard=0, mode="scan",
                          attempts=(0,)),
                FaultSpec(kind="crash", shard=1, mode="scan",
                          attempts=(0, 1)),
            )
        )
        with make_executor(
            factory, shards=2, backend="serial",
            policy=FAST_POLICY, injector=injector,
        ) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert outcome.degraded
            by_shard = {h.shard: h for h in outcome.shard_health}
            assert by_shard[0].faults == ("error",)
            assert by_shard[1].faults == ("crash", "crash")
            assert outcome.canonical_bytes() == \
                healthy_one.canonical_bytes()


class TestPolicyAndInjectorValidation:
    def test_retry_policy_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout_base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(shard_timeout_per_capture_s=-1.0)

    def test_backoff_is_bounded_and_exponential(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5
        )
        assert policy.backoff_s(0) == 0.0
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_shard_timeout_scales_with_the_workload(self):
        policy = RetryPolicy(
            shard_timeout_base_s=10.0, shard_timeout_per_capture_s=0.5
        )
        assert policy.shard_timeout_s(4, 8) == pytest.approx(10.0 + 16.0)
        assert policy.shard_timeout_s(0, 8) == pytest.approx(10.0)
        unlimited = RetryPolicy(shard_timeout_base_s=None)
        assert unlimited.shard_timeout_s(4, 8) is None

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode", shard=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", shard=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="slow", shard=0, seconds=-1.0)

    def test_injector_schedule_is_a_pure_lookup(self):
        spec = FaultSpec(kind="error", shard=1, mode="scan", attempts=(0, 2))
        injector = FaultInjector(specs=(spec,))
        assert injector.spec_for("scan", 1, 0) is spec
        assert injector.spec_for("scan", 1, 2) is spec
        assert injector.spec_for("scan", 1, 1) is None
        assert injector.spec_for("enroll", 1, 0) is None
        assert injector.spec_for("scan", 0, 0) is None

    def test_crash_in_parent_raises_instead_of_exiting(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, attempts=(0,)),)
        )
        with pytest.raises(InjectedFault) as excinfo:
            injector.apply("scan", 0, 0)
        assert excinfo.value.kind == "crash"

    def test_available_workers_clamps_to_cores(self):
        import os
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:
            cores = os.cpu_count() or 1
        assert available_workers(1) == 1
        assert available_workers(64) == min(64, cores)
        assert available_workers(64) >= 1
        with pytest.raises(ValueError):
            available_workers(0)


class FakeTask:
    def __init__(self, shard):
        self.shard = shard


class TestRecoveryEngine:
    """The ladder itself, against fake backends (no processes)."""

    @staticmethod
    def run(tasks, policy, fail_plan, rebuilds=None):
        """Drive the engine with a backend failing per ``fail_plan``:
        a dict (shard, attempt) -> AttemptFailure."""

        def start(task, attempt):
            return (task.shard, attempt)

        def collect(handle, task, attempt):
            failure = fail_plan.get(handle)
            if failure is not None:
                raise failure
            return [f"out-{task.shard}"]

        def serial_run(task):
            failure = fail_plan.get((task.shard, "fallback"))
            if failure is not None:
                raise InjectedFault("error", "fallback failed")
            return [f"out-{task.shard}"]

        return run_with_recovery(
            tasks,
            policy,
            start=start,
            collect=collect,
            serial_run=serial_run,
            on_rebuild=((lambda: rebuilds.append(1))
                        if rebuilds is not None else None),
            sleep=lambda s: None,
        )

    def test_clean_round_is_one_attempt_each(self):
        tasks = [FakeTask(0), FakeTask(1)]
        outputs, healths = self.run(tasks, RetryPolicy(), {})
        assert outputs == [["out-0"], ["out-1"]]
        assert all(h.outcome == "ok" and h.attempts == 1 for h in healths)
        assert not any(h.degraded for h in healths)

    def test_transient_failure_retries_in_place(self):
        tasks = [FakeTask(0), FakeTask(1)]
        plan = {(1, 0): AttemptFailure("error")}
        outputs, healths = self.run(tasks, RetryPolicy(), plan)
        assert outputs == [["out-0"], ["out-1"]]
        assert healths[0].outcome == "ok"
        assert healths[1].outcome == "retried"
        assert healths[1].attempts == 2
        assert healths[1].faults == ("error",)

    def test_rebuild_fires_once_per_failed_round(self):
        tasks = [FakeTask(0), FakeTask(1)]
        plan = {
            (0, 0): AttemptFailure("broken_pool", rebuild_pool=True),
            (1, 0): AttemptFailure("broken_pool", rebuild_pool=True),
        }
        rebuilds = []
        outputs, healths = self.run(tasks, RetryPolicy(), plan, rebuilds)
        assert outputs == [["out-0"], ["out-1"]]
        assert len(rebuilds) == 1  # one teardown covers the whole round
        assert all(h.outcome == "retried" for h in healths)

    def test_exhausted_budget_falls_back_serially(self):
        tasks = [FakeTask(0)]
        policy = RetryPolicy(max_retries=1)
        plan = {
            (0, 0): AttemptFailure("timeout", rebuild_pool=True),
            (0, 1): AttemptFailure("timeout", rebuild_pool=True),
        }
        outputs, healths = self.run(tasks, policy, plan)
        assert outputs == [["out-0"]]
        assert healths[0].outcome == SERIAL_FALLBACK
        assert healths[0].attempts == 3  # two pool tries + the fallback
        assert healths[0].faults == ("timeout", "timeout")

    def test_failed_fallback_is_terminal(self):
        tasks = [FakeTask(0)]
        policy = RetryPolicy(max_retries=0)
        plan = {
            (0, 0): AttemptFailure("error"),
            (0, "fallback"): AttemptFailure("error"),
        }
        with pytest.raises(FleetDispatchError):
            self.run(tasks, policy, plan)

    def test_no_fallback_is_terminal_after_retries(self):
        tasks = [FakeTask(0)]
        policy = RetryPolicy(max_retries=0, serial_fallback=False)
        with pytest.raises(FleetDispatchError):
            self.run(tasks, policy, {(0, 0): AttemptFailure("error")})

    def test_backoff_consults_the_policy(self):
        tasks = [FakeTask(0)]
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.1, backoff_factor=3.0,
            backoff_max_s=10.0,
        )
        slept = []

        def start(task, attempt):
            return attempt

        def collect(handle, task, attempt):
            if attempt < 2:
                raise AttemptFailure("error")
            return ["done"]

        outputs, healths = run_with_recovery(
            tasks, policy, start=start, collect=collect,
            serial_run=lambda task: ["done"], sleep=slept.append,
        )
        assert outputs == [["done"]]
        assert slept == [pytest.approx(0.1), pytest.approx(0.3)]
