"""Unit tests for the unified monitoring runtime.

Cadence arithmetic (trigger rollover, idle-fill bounds, round-robin
latency growth), event-log detection-latency edge cases, telemetry
snapshot shape, and the runtime's sink fan-out — all cheap, no physics.
"""

import pytest

from repro.core.divot import Action
from repro.core.runtime import (
    EventLog,
    MonitorEvent,
    MonitorRuntime,
    PeriodicCadence,
    RoundRobinCadence,
    Telemetry,
    TriggerBudgetCadence,
)


def event(t, side="tx", action=Action.PROCEED, score=0.95, bus=None,
          tampered=False, location_m=None):
    return MonitorEvent(
        time_s=t, side=side, action=action, score=score,
        tampered=tampered, location_m=location_m, bus=bus,
    )


class TestPeriodicCadence:
    def test_fires_on_every_crossed_boundary(self):
        cadence = PeriodicCadence(1.0)
        assert list(cadence.due(0.5)) == []
        assert list(cadence.due(3.2)) == [1.0, 2.0, 3.0]
        assert cadence.checks_run == 3
        assert list(cadence.due(3.9)) == []
        assert list(cadence.due(4.0)) == [4.0]

    def test_cost_accounting(self):
        cadence = PeriodicCadence(1.0, cost_triggers=10)
        list(cadence.due(2.0))
        assert cadence.triggers_consumed == 20
        cadence.force(5.0)
        assert cadence.checks_run == 3
        assert cadence.triggers_consumed == 30

    def test_force_keeps_phase(self):
        cadence = PeriodicCadence(1.0)
        assert cadence.force(0.0) == 0.0
        assert list(cadence.due(1.0)) == [1.0]

    def test_from_budget_matches_inline_arithmetic(self, line, itdr):
        cadence = PeriodicCadence.from_budget(itdr, line, 16)
        budget = itdr.budget(itdr.record_length(line))
        assert cadence.period_s == pytest.approx(budget.duration_s * 16)
        assert cadence.cost_triggers == budget.n_triggers * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicCadence(0.0)
        with pytest.raises(ValueError):
            PeriodicCadence(1.0, cost_triggers=-1)


class TestTriggerBudgetCadence:
    def test_rollover_across_frames(self):
        """Partial budgets bank across feeds — never discarded."""
        cadence = TriggerBudgetCadence(100)
        cadence.feed(60)
        assert list(cadence.due(1.0)) == []
        cadence.feed(60)  # 120 banked: one check, 20 roll over
        assert list(cadence.due(2.0)) == [2.0]
        assert cadence.pool == 20
        cadence.feed(80)
        assert list(cadence.due(3.0)) == [3.0]
        assert cadence.pool == 0
        assert cadence.checks_run == 2
        assert cadence.triggers_consumed == 200

    def test_rich_burst_fires_multiple_checks(self):
        cadence = TriggerBudgetCadence(10)
        cadence.feed(35)
        assert list(cadence.due(1.0)) == [1.0, 1.0, 1.0]
        assert cadence.pool == 5

    def test_idle_fill_reaches_one_budget(self):
        cadence = TriggerBudgetCadence(100)
        cadence.feed(30)
        t = cadence.idle_fill(1.0, idle_triggers=25, idle_duration_s=0.1,
                              max_idle_s=10.0)
        # 30 + 3*25 = 105 >= 100 after three idle records.
        assert t == pytest.approx(1.3)
        assert cadence.pool == 105
        assert list(cadence.due(t)) == [t]

    def test_idle_fill_bounded_by_max_idle(self):
        cadence = TriggerBudgetCadence(1000)
        t = cadence.idle_fill(0.0, idle_triggers=1, idle_duration_s=0.1,
                              max_idle_s=0.25)
        # Bound crossed after three records (0.0, 0.1, 0.2 all < 0.25).
        assert t == pytest.approx(0.3)
        assert cadence.pool == 3
        assert list(cadence.due(t)) == []  # genuinely starved

    def test_force_consumes_banked_pool(self):
        """The out-of-band late-attack check is never free: it drains
        whatever the pool can contribute, up to one budget."""
        cadence = TriggerBudgetCadence(100)
        cadence.feed(70)
        cadence.force(5.0)
        assert cadence.pool == 0
        assert cadence.triggers_consumed == 70
        assert cadence.checks_run == 1
        cadence.feed(250)
        cadence.force(6.0)
        assert cadence.pool == 150  # capped at one budget
        assert cadence.triggers_consumed == 170

    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerBudgetCadence(0)
        cadence = TriggerBudgetCadence(10)
        with pytest.raises(ValueError):
            cadence.feed(-1)
        with pytest.raises(ValueError):
            cadence.idle_fill(0.0, 0, 0.1, 1.0)
        with pytest.raises(ValueError):
            cadence.idle_fill(0.0, 1, 0.0, 1.0)


class TestRoundRobinCadence:
    def test_worst_case_latency_grows_linearly_with_bus_count(self):
        cadence = RoundRobinCadence(2.0)
        latencies = [cadence.worst_case_latency_s(n) for n in (1, 2, 4, 8)]
        assert latencies == [2.0, 4.0, 8.0, 16.0]
        assert cadence.scan_period_s(3) == pytest.approx(6.0)

    def test_visits_advance_the_datapath_clock(self):
        cadence = RoundRobinCadence(1.0, cost_triggers=5)
        first = list(cadence.visits(["a", "b", "c"]))
        assert first == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        second = list(cadence.visits(["a", "b", "c"]))
        assert second[0] == ("a", 4.0)  # clock persists across scans
        assert cadence.checks_run == 6
        assert cadence.triggers_consumed == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinCadence(0.0)
        with pytest.raises(ValueError):
            RoundRobinCadence(1.0).scan_period_s(0)


class TestEventLogDetectionLatency:
    def test_alert_exactly_at_onset_is_zero_latency(self):
        log = EventLog([event(2.0, action=Action.ALERT)])
        assert log.detection_latency(2.0) == pytest.approx(0.0)

    def test_no_alert_returns_none(self):
        log = EventLog([event(1.0), event(2.0)])
        assert log.detection_latency(0.5) is None
        assert log.first_alert_time() is None

    def test_pre_onset_alert_ignored(self):
        log = EventLog([
            event(1.0, action=Action.ALERT),   # false positive before onset
            event(3.0, action=Action.BLOCK),
        ])
        assert log.detection_latency(2.0) == pytest.approx(1.0)
        assert log.first_alert_time() == pytest.approx(1.0)

    def test_side_and_bus_filters(self):
        log = EventLog([
            event(1.0, side="cpu", action=Action.ALERT),
            event(2.0, side="module", action=Action.BLOCK, bus="ddr0"),
        ])
        assert log.detection_latency(0.0, side="module") == pytest.approx(2.0)
        assert log.detection_latency(0.0, bus="ddr0") == pytest.approx(2.0)
        assert log.detection_latency(0.0, side="rx") is None
        assert len(log.alerts()) == 2
        assert [e.side for e in log.filter(side="cpu")] == ["cpu"]

    def test_container_behaviour(self):
        log = EventLog()
        log.emit(event(1.0))
        log.extend([event(2.0), event(3.0)])
        assert len(log) == 3
        assert log[0].time_s == 1.0
        assert [e.time_s for e in log] == [1.0, 2.0, 3.0]


class _StubAuth:
    def __init__(self, score):
        self.score = score


class _StubTamper:
    def __init__(self, tampered, location_m=None):
        self.tampered = tampered
        self.location_m = location_m
        self.peak_error = 0.0


class _StubResult:
    def __init__(self, action, score=0.9, tampered=False):
        self.action = action
        self.auth = _StubAuth(score)
        self.tamper = _StubTamper(tampered)


class _StubEndpoint:
    """Duck-typed endpoint: returns scripted results, records calls."""

    name = "stub"

    def __init__(self, results):
        self.results = list(results)
        self.calls = []

    def monitor_capture(self, line, modifiers=(), interference=None,
                        engine="born"):
        self.calls.append(("single", line, tuple(modifiers)))
        return self.results.pop(0)

    def monitor_multi(self, lines, modifiers=(), modifiers_by_lane=None,
                      interference=None, engine="born"):
        self.calls.append(("multi", tuple(lines), tuple(modifiers)))
        return self.results.pop(0)


class _Timeline:
    def __init__(self, onset, attack="attack"):
        self.onset = onset
        self.attack = attack

    def active_at(self, t):
        return (self.attack,) if t >= self.onset else ()


class TestMonitorRuntime:
    def test_events_fan_out_to_all_sinks(self):
        telemetry = Telemetry()
        extra = EventLog()
        runtime = MonitorRuntime(telemetry=telemetry, sinks=[extra])
        endpoint = _StubEndpoint([_StubResult(Action.PROCEED)])
        result = runtime.check(endpoint, 1.0, ["lane"], side="tx")
        assert result.action is Action.PROCEED
        assert len(runtime.log) == len(telemetry.log) == len(extra) == 1
        assert runtime.log[0] is telemetry.log[0] is extra[0]

    def test_single_vs_multi_lane_dispatch(self):
        endpoint = _StubEndpoint(
            [_StubResult(Action.PROCEED), _StubResult(Action.PROCEED)]
        )
        runtime = MonitorRuntime()
        runtime.check(endpoint, 0.0, ["a"])
        runtime.check(endpoint, 0.0, ["a", "b"])
        assert endpoint.calls[0][0] == "single"
        assert endpoint.calls[1][0] == "multi"

    def test_timeline_resolved_at_check_instant(self):
        endpoint = _StubEndpoint(
            [_StubResult(Action.PROCEED), _StubResult(Action.ALERT)]
        )
        runtime = MonitorRuntime()
        timeline = _Timeline(onset=5.0)
        runtime.check(endpoint, 4.0, ["a"], timeline=timeline)
        runtime.check(endpoint, 6.0, ["a"], timeline=timeline)
        assert endpoint.calls[0][2] == ()
        assert endpoint.calls[1][2] == ("attack",)

    def test_side_defaults_to_endpoint_name(self):
        endpoint = _StubEndpoint([_StubResult(Action.PROCEED)])
        runtime = MonitorRuntime()
        runtime.check(endpoint, 0.0, ["a"])
        assert runtime.log[0].side == "stub"

    def test_finish_folds_cadence_deltas_once(self):
        telemetry = Telemetry()
        cadence = PeriodicCadence(1.0, cost_triggers=7)
        runtime = MonitorRuntime(cadence, telemetry=telemetry)
        list(cadence.due(2.0))
        runtime.finish()
        runtime.finish()  # idempotent: no double counting
        assert telemetry.snapshot()["cadence"] == {
            "checks_run": 2, "triggers_consumed": 14,
        }
        list(cadence.due(3.0))
        runtime.finish()
        assert telemetry.snapshot()["cadence"]["checks_run"] == 3

    def test_validation(self):
        runtime = MonitorRuntime()
        with pytest.raises(ValueError):
            runtime.check(_StubEndpoint([]), 0.0, [])
        with pytest.raises(TypeError):
            runtime.add_sink(object())


class TestTelemetrySnapshot:
    def _loaded(self):
        telemetry = Telemetry()
        telemetry.emit(event(1.0, side="cpu", score=0.96))
        telemetry.emit(event(1.0, side="module", score=0.94, bus="ddr0"))
        telemetry.emit(
            event(2.0, side="module", action=Action.BLOCK, score=0.41,
                  bus="ddr0")
        )
        telemetry.emit(
            event(3.0, side="cpu", action=Action.ALERT, score=0.92,
                  tampered=True)
        )
        return telemetry

    def test_per_endpoint_counters(self):
        snap = self._loaded().snapshot()
        cpu = snap["endpoints"]["cpu"]
        assert cpu["checks"] == 2
        assert cpu["alerts"] == 1
        assert cpu["blocks"] == 0
        assert cpu["flagged"] == 1
        assert cpu["tampered"] == 1
        module = snap["endpoints"]["module"]
        assert module["blocks"] == 1
        assert snap["totals"]["checks"] == 4
        assert snap["totals"]["flagged"] == 2

    def test_bus_cells_present_for_multi_bus_events(self):
        snap = self._loaded().snapshot()
        assert snap["buses"]["ddr0"]["checks"] == 2
        assert snap["buses"]["ddr0"]["blocks"] == 1

    def test_score_histogram_sums_to_checks(self):
        snap = self._loaded().snapshot()
        for cell in [*snap["endpoints"].values(), snap["totals"]]:
            assert sum(cell["score"]["hist"]) == cell["checks"]
            assert len(cell["score"]["bin_edges"]) == \
                len(cell["score"]["hist"]) + 1

    def test_detection_summary(self):
        snap = self._loaded().snapshot(onset_s=1.5)
        assert snap["detection"]["onset_s"] == 1.5
        assert snap["detection"]["latency_s"] == pytest.approx(0.5)
        assert snap["detection"]["per_side"]["module"] == pytest.approx(0.5)
        assert snap["detection"]["per_side"]["cpu"] == pytest.approx(1.5)
        assert snap["detection"]["first_alert_s"] == pytest.approx(2.0)

    def test_empty_snapshot_has_full_shape(self):
        snap = Telemetry().snapshot()
        assert snap["endpoints"] == {}
        assert snap["buses"] == {}
        assert snap["totals"]["checks"] == 0
        assert snap["totals"]["score"]["mean"] is None
        assert snap["detection"]["latency_s"] is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Telemetry(score_bins=0)
