"""Unit tests for probability density modulation (paper Figs. 3-4)."""

import numpy as np
import pytest

from repro.core.comparator import Comparator
from repro.core.pdm import PDMScheme, TriangleWave, VernierRelation

SIGMA = 2e-3


def make_scheme(p=5, q=6, amplitude=6 * SIGMA):
    return PDMScheme(
        TriangleWave(amplitude=amplitude, frequency=1e6 * p / q),
        VernierRelation(p, q),
        Comparator(noise_sigma=SIGMA),
    )


class TestTriangleWave:
    def test_peak_and_trough(self):
        w = TriangleWave(amplitude=1.0, frequency=1.0)
        assert w.value_at(0.5) == pytest.approx(1.0)
        assert w.value_at(0.0) == pytest.approx(-1.0)
        assert w.value_at(1.0) == pytest.approx(-1.0)

    def test_periodicity(self):
        w = TriangleWave(amplitude=1.0, frequency=2.0)
        t = np.linspace(0, 0.5, 50)
        assert np.allclose(w.value_at(t), w.value_at(t + 0.5), atol=1e-12)

    def test_centre_offset(self):
        w = TriangleWave(amplitude=1.0, frequency=1.0, centre=2.0)
        assert w.value_at(0.5) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TriangleWave(amplitude=-1.0, frequency=1.0)
        with pytest.raises(ValueError):
            TriangleWave(amplitude=1.0, frequency=0.0)


class TestVernierRelation:
    def test_paper_example_five_six(self):
        """5 f_m = 6 f_s: a fixed point sees 6 distinct phases."""
        rel = VernierRelation(5, 6)
        assert rel.distinct_phases == 6
        assert rel.is_effective

    def test_degenerate_equal_frequencies(self):
        rel = VernierRelation(1, 1)
        assert rel.distinct_phases == 1
        assert not rel.is_effective

    def test_non_coprime_reduces(self):
        """f_m/f_s = 2/4 visits only 2 distinct phases, not 4."""
        rel = VernierRelation(2, 4)
        assert rel.distinct_phases == 2

    def test_phases_evenly_spaced(self):
        phases = np.sort(VernierRelation(5, 6).phases())
        spacing = np.diff(phases)
        assert np.allclose(spacing, 1.0 / 6.0)

    def test_from_frequencies(self):
        rel = VernierRelation.from_frequencies(5e6, 6e6)
        assert (rel.p, rel.q) == (5, 6)

    def test_from_frequencies_validation(self):
        with pytest.raises(ValueError):
            VernierRelation.from_frequencies(-1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VernierRelation(0, 5)


class TestPDMScheme:
    def test_reference_level_count(self):
        scheme = make_scheme(5, 6)
        assert scheme.n_levels == 6

    def test_levels_within_amplitude(self):
        scheme = make_scheme()
        levels = scheme.reference_levels()
        assert np.all(np.abs(levels) <= scheme.wave.amplitude + 1e-12)

    def test_levels_sorted(self):
        levels = make_scheme().reference_levels()
        assert np.all(np.diff(levels) >= 0)

    def test_window_wider_than_bare(self):
        from repro.core.apc import APCConverter

        scheme = make_scheme()
        bare = APCConverter(Comparator(noise_sigma=SIGMA), v_ref=0.0)
        s_lo, s_hi = scheme.linear_window()
        b_lo, b_hi = bare.linear_window()
        assert (s_hi - s_lo) > 2 * (b_hi - b_lo)

    def test_estimate_tracks_wide_signal(self, rng):
        scheme = make_scheme()
        lo, hi = scheme.linear_window()
        v = np.linspace(lo, hi, 100)
        est = scheme.estimate_voltage(v, 6 * 1024, rng)
        assert np.max(np.abs(est - v)) < SIGMA / 2

    def test_counts_bounded(self, rng):
        scheme = make_scheme()
        counts = scheme.measure_counts(np.zeros(50), 60, rng)
        assert np.all((0 <= counts) & (counts <= 60))

    def test_counts_validation(self, rng):
        with pytest.raises(ValueError):
            make_scheme().measure_counts(np.zeros(3), 0, rng)

    def test_reference_trial_voltages_cycle(self):
        scheme = make_scheme(5, 6)
        refs = scheme.reference_trial_voltages(3, 12)
        assert refs.shape == (3, 12)
        # The cycle repeats every q trials.
        assert np.allclose(refs[:, :6], refs[:, 6:])

    def test_dynamic_range_scales_with_amplitude(self):
        narrow = make_scheme(amplitude=3 * SIGMA)
        wide = make_scheme(amplitude=9 * SIGMA)
        assert wide.dynamic_range > narrow.dynamic_range

    def test_invert_monotone(self):
        scheme = make_scheme()
        p = np.linspace(0.05, 0.95, 50)
        v = scheme.invert(p)
        assert np.all(np.diff(v) > 0)
