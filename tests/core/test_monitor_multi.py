"""Unit tests for multi-lane endpoint monitoring and its membus wiring."""

import numpy as np
import pytest

from repro.attacks import WireTap
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr, prototype_line_factory
from repro.core.divot import Action, DivotEndpoint
from repro.core.tamper import TamperDetector
from repro.txline.materials import FR4
from repro.txline.line import TransmissionLine


@pytest.fixture(scope="module")
def lanes():
    factory = prototype_line_factory()
    return [
        factory.manufacture(seed=900, name="clk"),
        factory.manufacture(seed=901, name="dqs0"),
        factory.manufacture(seed=902, name="dqs1"),
    ]


def make_endpoint(seed=0, threshold=0.9):
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    return DivotEndpoint(
        "multi",
        itdr,
        Authenticator(threshold),
        TamperDetector(
            threshold=2.5e-3,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        ),
        # Max-over-lanes tamper fusion needs deep averaging (cheap on the
        # batch engine) to keep clean-lane peaks clear of the threshold.
        captures_per_check=16,
    )


class TestCalibrateMany:
    def test_enrolls_all_lanes(self, lanes):
        endpoint = make_endpoint()
        fps = endpoint.calibrate_many(lanes, n_captures=4)
        assert len(fps) == 3
        assert sorted(endpoint.rom.names()) == ["clk", "dqs0", "dqs1"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_endpoint().calibrate_many([], n_captures=4)


class TestMonitorMulti:
    def test_clean_bundle_proceeds(self, lanes):
        endpoint = make_endpoint(seed=1)
        endpoint.calibrate_many(lanes, n_captures=16)
        result = endpoint.monitor_multi(lanes)
        assert result.action is Action.PROCEED

    def test_attack_on_secondary_lane_caught(self, lanes):
        """The whole point: a tap on a strobe lane the single-lane monitor
        never measures still trips the fused check."""
        endpoint = make_endpoint(seed=2)
        endpoint.calibrate_many(lanes, n_captures=16)
        result = endpoint.monitor_multi(
            lanes, modifiers_by_lane={"dqs1": [WireTap(0.12)]}
        )
        assert result.action is not Action.PROCEED

    def test_untouched_lanes_unaffected(self, lanes):
        """Per-lane modifiers really are per lane: attacking dqs1 does not
        change what the clk capture sees."""
        endpoint = make_endpoint(seed=3)
        endpoint.calibrate_many(lanes, n_captures=16)
        clean = endpoint.itdr.true_reflection(lanes[0]).samples
        endpoint.monitor_multi(
            lanes, modifiers_by_lane={"dqs1": [WireTap(0.12)]}
        )
        assert np.array_equal(
            endpoint.itdr.true_reflection(lanes[0]).samples, clean
        )

    def test_swapped_lane_blocks(self, lanes, factory):
        endpoint = make_endpoint(seed=4)
        endpoint.calibrate_many(lanes, n_captures=16)
        foreign = factory.manufacture(seed=999)
        swapped = list(lanes)
        swapped[1] = TransmissionLine(
            name="dqs0",
            board_profile=foreign.board_profile,
            material=foreign.material,
        )
        result = endpoint.monitor_multi(swapped)
        assert result.action is Action.BLOCK
        assert endpoint.is_blocked

    def test_uncalibrated_raises(self, lanes):
        with pytest.raises(RuntimeError):
            make_endpoint().monitor_multi(lanes)

    def test_empty_lanes_rejected(self, lanes):
        endpoint = make_endpoint(seed=5)
        endpoint.calibrate_many(lanes, n_captures=4)
        with pytest.raises(ValueError):
            endpoint.monitor_multi([])


class TestMembusMultiLane:
    def test_system_with_extra_lanes_runs_clean(self, lanes):
        from repro.membus import (
            AddressMap,
            MemoryBus,
            ProtectedMemorySystem,
            SDRAMDevice,
            TraceGenerator,
        )

        amap = AddressMap(n_banks=4, n_rows=64, n_columns=32)
        itdr1 = prototype_itdr(rng=np.random.default_rng(6))
        itdr2 = prototype_itdr(rng=np.random.default_rng(7))
        detector = TamperDetector(
            threshold=2.5e-3,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr1.probe_edge().duration,
        )
        system = ProtectedMemorySystem(
            MemoryBus(line=lanes[0], clock_frequency=1.2e9),
            SDRAMDevice(address_map=amap),
            itdr1,
            itdr2,
            Authenticator(0.90),
            detector,
            # Max-over-lanes raises the tamper false-positive rate, so the
            # multi-lane system needs the deeper averaging (floor ~1.1e-3
            # at 16 captures vs the 2.5e-3 threshold).
            captures_per_check=16,
            extra_lanes=lanes[1:],
        )
        system.calibrate()
        gen = TraceGenerator(amap, seed=8)
        result = system.run(gen.random(4000, write_fraction=0.4))
        assert len(result.completed) == 4000
        assert result.alerts() == []
