"""Unit tests for the DIVOT endpoint/channel state machines."""

import numpy as np
import pytest

from repro.attacks import WireTap
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.core.divot import (
    Action,
    DivotChannel,
    DivotEndpoint,
    EndpointState,
)
from repro.core.tamper import TamperDetector
from repro.txline.materials import FR4


def make_endpoint(name="ep", seed=0, threshold=0.85, tamper_threshold=3e-3,
                  captures_per_check=8):
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    return DivotEndpoint(
        name,
        itdr,
        Authenticator(threshold=threshold),
        TamperDetector(
            threshold=tamper_threshold,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        ),
        captures_per_check=captures_per_check,
    )


class TestEndpointLifecycle:
    def test_starts_uncalibrated(self):
        ep = make_endpoint()
        assert ep.state is EndpointState.UNCALIBRATED

    def test_monitor_before_calibrate_raises(self, line):
        with pytest.raises(RuntimeError):
            make_endpoint().monitor_capture(line)

    def test_calibrate_enrolls_and_monitors(self, line):
        ep = make_endpoint()
        fp = ep.calibrate(line, n_captures=4)
        assert ep.state is EndpointState.MONITORING
        assert fp.name == line.name
        assert line.name in ep.rom

    def test_calibrate_validation(self, line):
        with pytest.raises(ValueError):
            make_endpoint().calibrate(line, n_captures=0)

    def test_captures_per_check_validation(self):
        with pytest.raises(ValueError):
            make_endpoint(captures_per_check=0)


class TestMonitoring:
    def test_clean_monitoring_proceeds(self, line):
        ep = make_endpoint()
        ep.calibrate(line)
        result = ep.monitor_capture(line)
        assert result.action is Action.PROCEED
        assert not ep.is_blocked
        assert ep.alert_log == []

    def test_foreign_line_blocks(self, line, other_line):
        ep = make_endpoint()
        ep.calibrate(line)
        foreign = type(other_line)(
            name=line.name,
            board_profile=other_line.board_profile,
            material=other_line.material,
        )
        result = ep.monitor_capture(foreign)
        assert result.action is Action.BLOCK
        assert ep.is_blocked
        assert len(ep.alert_log) == 1

    def test_recovery_after_block(self, line, other_line):
        ep = make_endpoint()
        ep.calibrate(line)
        foreign = type(other_line)(
            name=line.name,
            board_profile=other_line.board_profile,
            material=other_line.material,
        )
        ep.monitor_capture(foreign)
        assert ep.is_blocked
        result = ep.monitor_capture(line)
        assert result.action is Action.PROCEED
        assert not ep.is_blocked

    def test_tamper_alerts_without_blocking(self, line):
        ep = make_endpoint(tamper_threshold=2e-3, threshold=0.5)
        ep.calibrate(line)
        result = ep.monitor_capture(line, modifiers=[WireTap(0.12)])
        assert result.action is Action.ALERT
        assert result.tamper.tampered
        assert not ep.is_blocked


class TestChannel:
    def test_two_way_calibration_and_clean_step(self, line):
        channel = DivotChannel(
            line, make_endpoint("master", 1), make_endpoint("slave", 2)
        )
        channel.calibrate(n_captures=4)
        result = channel.step()
        assert result.data_allowed
        assert result.master.action is Action.PROCEED
        assert result.slave.action is Action.PROCEED

    def test_slave_override_blocks_data(self, line, other_line):
        channel = DivotChannel(
            line, make_endpoint("master", 1), make_endpoint("slave", 2)
        )
        channel.calibrate(n_captures=4)
        result = channel.step(slave_line_override=other_line)
        assert result.slave.action is Action.BLOCK
        assert not result.data_allowed

    def test_master_override_blocks_data(self, line, other_line):
        channel = DivotChannel(
            line, make_endpoint("master", 1), make_endpoint("slave", 2)
        )
        channel.calibrate(n_captures=4)
        result = channel.step(line_override=other_line)
        assert result.master.action is Action.BLOCK
        assert not result.data_allowed

    def test_override_keeps_enrolled_name(self, line, other_line):
        """The attacker cannot dodge the check by renaming hardware."""
        channel = DivotChannel(
            line, make_endpoint("master", 1), make_endpoint("slave", 2)
        )
        channel.calibrate(n_captures=4)
        result = channel.step(slave_line_override=other_line)
        assert result.slave.capture.line_name == line.name
