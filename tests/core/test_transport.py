"""Shared-memory shard transport: arenas, descriptors, and the leak contract.

The contracts (ISSUE 10):

(a) every outcome — enroll, scan, identify — is **byte-identical**
    across ``transport="pickle"`` and ``transport="shm"``, on both the
    serial and process backends (the property suite extends this across
    shard counts and fault schedules);
(b) segments never leak: a normal ``close()``, a worker crash, a pool
    rebuild, a serial fallback, and the terminal rung of the recovery
    ladder all end with zero ``repro-`` entries in ``/dev/shm``;
(c) re-scanning an unchanged fleet ships only seeds and indices — the
    worker-side content-digest cache reports zero new materializations;
(d) ``Telemetry.snapshot()["health"]["transport"]`` carries the full
    counter ledger.
"""

import pathlib

import numpy as np
import pytest

from repro.core import (
    Authenticator,
    FaultInjector,
    FaultSpec,
    FleetDispatchError,
    FleetScanExecutor,
    RetryPolicy,
    ShardArena,
    TamperDetector,
    prototype_itdr_config,
    shared_memory_available,
)
from repro.core.itdr import ITDR
from repro.core.transport import (
    SEGMENT_PREFIX,
    TRANSPORT_COUNTER_KEYS,
    materialize,
    pack_into,
    pack_seed,
    read_array,
    unpack,
    unpack_seed,
    worker_transport_stats,
    writable_array,
)
from repro.txline.materials import FR4

N_BUSES = 4
FIRST_SEED = 440
ROOT_SEED = 13

FAST_POLICY = RetryPolicy(
    max_retries=2,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
    shard_timeout_base_s=30.0,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="platform cannot create POSIX shared memory",
)


def shm_segments():
    """Names of every live ``repro-`` segment on this host."""
    root = pathlib.Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-POSIX fallback
        return set()
    return {p.name for p in root.iterdir()
            if p.name.startswith(SEGMENT_PREFIX)}


def make_executor(factory, shards=1, backend="serial", transport="auto",
                  policy=None, injector=None, first_seed=FIRST_SEED):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=4,
        shards=shards,
        backend=backend,
        transport=transport,
        seed=ROOT_SEED,
        retry_policy=policy,
        fault_injector=injector,
    )
    for line in factory.manufacture_batch(N_BUSES, first_seed=first_seed):
        executor.register(line)
    return executor


class TestShardArena:
    def test_place_and_read_back_bitwise(self):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(257)
        with ShardArena() as arena:
            ref = arena.reserve(samples.shape, "float64")
            view = writable_array(ref)
            view[:] = samples
            del view
            out = read_array(ref)
        assert out.tobytes() == samples.tobytes()

    def test_buffers_are_cache_line_aligned(self):
        with ShardArena() as arena:
            first = arena.place_buffer(b"x" * 3)
            second = arena.place_buffer(b"y" * 5)
        assert first.offset % 64 == 0
        assert second.offset % 64 == 0
        assert second.offset >= first.offset + first.length

    def test_growth_adds_segments_and_reset_recycles(self):
        with ShardArena(initial_bytes=1 << 16) as arena:
            arena.place_buffer(b"a" * (1 << 15))
            assert len(arena.segment_names) == 1
            # Larger than the remaining room: a second segment appears.
            arena.place_buffer(b"b" * (1 << 17))
            assert len(arena.segment_names) == 2
            assert arena.counters["segments_created"] == 2
            grown = arena.capacity_bytes
            arena.reset()
            assert arena.counters["segments_reused"] == 2
            # Recycled, not regrown: the next scan reuses the segments.
            arena.place_buffer(b"c" * (1 << 15))
            assert arena.capacity_bytes == grown
            assert arena.counters["segments_created"] == 2

    def test_close_unlinks_and_is_idempotent(self):
        arena = ShardArena()
        arena.place_buffer(b"payload")
        names = set(arena.segment_names)
        assert names <= shm_segments()
        arena.close()
        arena.close()
        assert not (names & shm_segments())
        assert arena.counters["segments_unlinked"] == len(names)
        with pytest.raises(RuntimeError):
            arena.place_buffer(b"late")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ShardArena(initial_bytes=0)
        with ShardArena() as arena:
            with pytest.raises(ValueError):
                arena._allocate(-1)


class TestPackUnpack:
    def test_roundtrip_preserves_array_bits(self):
        rng = np.random.default_rng(1)
        obj = {"samples": rng.standard_normal(300), "dt": 1e-11, "tag": "x"}
        with ShardArena() as arena:
            payload = pack_into(arena, obj)
            assert payload.referenced_bytes == obj["samples"].nbytes
            out = unpack(payload)
        assert out["tag"] == "x" and out["dt"] == obj["dt"]
        assert out["samples"].tobytes() == obj["samples"].tobytes()

    def test_unpacked_object_outlives_the_arena(self):
        rng = np.random.default_rng(2)
        samples = rng.standard_normal(64)
        with ShardArena() as arena:
            out = unpack(pack_into(arena, samples))
        assert out.tobytes() == samples.tobytes()

    def test_materialize_caches_by_content_digest(self):
        rng = np.random.default_rng(3)
        obj = rng.standard_normal(128)
        stats = worker_transport_stats()
        with ShardArena() as arena:
            payload = pack_into(arena, obj)
            before = stats.snapshot()
            first = materialize(payload)
            second = materialize(payload)
        delta = stats.delta(before)
        assert second is first
        assert delta["worker_materializations"] == 1
        assert delta["worker_cache_hits"] == 1

    def test_pack_seed_is_bit_exact(self):
        root = np.random.SeedSequence(1234)
        for seed in root.spawn(3):
            rebuilt = unpack_seed(pack_seed(seed))
            assert np.array_equal(
                rebuilt.generate_state(8), seed.generate_state(8)
            )
            assert (
                np.random.default_rng(rebuilt).standard_normal(16).tobytes()
                == np.random.default_rng(seed).standard_normal(16).tobytes()
            )
            # Spawn trees match too (n_children_spawned rides along).
            seed.spawn(1)
            rebuilt = unpack_seed(pack_seed(seed))
            assert np.array_equal(
                rebuilt.spawn(1)[0].generate_state(4),
                seed.spawn(1)[0].generate_state(4),
            )


class TestTransportSelection:
    def test_invalid_transport_rejected(self, factory):
        with pytest.raises(ValueError):
            make_executor(factory, transport="carrier-pigeon")

    def test_auto_uses_shm_only_with_process_pool(self, factory):
        with make_executor(factory, shards=1, backend="serial") as ex:
            assert ex.resolved_transport() == "pickle"
        with make_executor(factory, shards=2, backend="process") as ex:
            assert ex.resolved_transport() == "shm"

    def test_explicit_shm_works_on_serial_backend(self, factory):
        with make_executor(factory, backend="serial",
                           transport="shm") as ex:
            assert ex.resolved_transport() == "shm"
            ex.enroll(n_captures=4)
            shm_scan = ex.scan()
        with make_executor(factory, backend="serial",
                           transport="pickle") as ref:
            ref.enroll(n_captures=4)
            assert shm_scan.canonical_bytes() == \
                ref.scan().canonical_bytes()


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, factory):
        """Pickle-transport artefacts every shm run must reproduce."""
        with make_executor(factory, shards=2, backend="serial",
                           transport="pickle") as ex:
            fingerprints = ex.enroll(n_captures=4)
            scan = ex.scan()
            identify = ex.identify_scan()
        return fingerprints, scan, identify

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_shm_matches_pickle(self, factory, reference, backend):
        ref_fps, ref_scan, ref_identify = reference
        with make_executor(factory, shards=2, backend=backend,
                           transport="shm") as ex:
            fingerprints = ex.enroll(n_captures=4)
            scan = ex.scan()
            identify = ex.identify_scan()
        assert scan.canonical_bytes() == ref_scan.canonical_bytes()
        assert identify.canonical_bytes() == ref_identify.canonical_bytes()
        for name, fp in ref_fps.items():
            assert fingerprints[name].samples.tobytes() == \
                fp.samples.tobytes()
            assert fingerprints[name].digest() == fp.digest()


class TestDigestCache:
    def test_rescan_ships_no_new_materializations(self, factory):
        # Serial backend: the "worker" cache is this process's, so the
        # telemetry deltas observe it directly.  Unique line seeds keep
        # other tests' cached content out of the ledger.
        with make_executor(factory, backend="serial", transport="shm",
                           first_seed=4400) as ex:
            ex.enroll(n_captures=4)
            ex.scan()
            before = ex.telemetry.snapshot()["health"]["transport"]
            ex.scan()
            after = ex.telemetry.snapshot()["health"]["transport"]
        assert after["worker_materializations"] == \
            before["worker_materializations"]
        assert after["worker_cache_hits"] >= \
            before["worker_cache_hits"] + N_BUSES
        assert after["payloads_reused"] > before["payloads_reused"]

    def test_health_carries_the_full_counter_ledger(self, factory):
        with make_executor(factory, backend="serial",
                           transport="shm") as ex:
            ex.enroll(n_captures=4)
            ex.scan()
            cell = ex.telemetry.snapshot()["health"]["transport"]
        assert set(cell) == set(TRANSPORT_COUNTER_KEYS)
        assert cell["payloads_packed"] > 0
        assert cell["bytes_referenced"] > 0


class TestLeakContract:
    def test_normal_close_unlinks_everything(self, factory):
        before = shm_segments()
        with make_executor(factory, backend="serial",
                           transport="shm") as ex:
            ex.enroll(n_captures=4)
            ex.scan()
            assert shm_segments() - before  # arenas are really live
        assert shm_segments() == before

    def test_worker_crash_and_pool_rebuild_leak_nothing(self, factory):
        before = shm_segments()
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0,)),)
        )
        with make_executor(factory, shards=2, backend="process",
                           transport="shm", policy=FAST_POLICY,
                           injector=injector) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert outcome.degraded
            health = ex.telemetry.snapshot()["health"]
            assert health["pool_rebuilds"] >= 1
            # The recovered scan and a healthy pickle scan agree.
            with make_executor(factory, shards=2, backend="serial",
                               transport="pickle") as ref:
                ref.enroll(n_captures=4)
                assert outcome.canonical_bytes() == \
                    ref.scan().canonical_bytes()
        assert shm_segments() == before

    def test_serial_fallback_still_resolves_descriptors(self, factory):
        before = shm_segments()
        # Crash every pool attempt; the serial rung runs the same
        # prepared shm tasks in the parent.
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0, 1, 2)),)
        )
        with make_executor(factory, shards=2, backend="process",
                           transport="shm", policy=FAST_POLICY,
                           injector=injector) as ex:
            ex.enroll(n_captures=4)
            outcome = ex.scan()
            assert outcome.degraded
            assert ex.telemetry.snapshot()["health"]["serial_fallbacks"] >= 1
            with make_executor(factory, shards=2, backend="serial",
                               transport="pickle") as ref:
                ref.enroll(n_captures=4)
                assert outcome.canonical_bytes() == \
                    ref.scan().canonical_bytes()
        assert shm_segments() == before

    def test_terminal_failure_releases_arenas(self, factory):
        before = shm_segments()
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, mode="scan",
                             attempts=(0, 1)),)
        )
        policy = RetryPolicy(
            max_retries=1, backoff_base_s=0.01, backoff_max_s=0.05,
            shard_timeout_base_s=30.0, serial_fallback=False,
        )
        with make_executor(factory, shards=2, backend="process",
                           transport="shm", policy=policy,
                           injector=injector) as ex:
            ex.enroll(n_captures=4)
            with pytest.raises(FleetDispatchError):
                ex.scan()
            # The terminal rung released the arenas before raising —
            # nothing waits for close() to stop leaking.
            assert shm_segments() == before
        assert shm_segments() == before
