"""Fleet-scale 1:N identification through the sharded executor.

Pins for the PR-6 wiring: a fleet's enrollment feeds a
``FingerprintStore``, ``identify_scan`` reports per-bus rank-1 hits
through the unified runtime, and the pass keeps the executor's
serial/parallel byte-identity contract.
"""

import json

import pytest

from repro.attacks import WireTap
from repro.core import (
    Authenticator,
    FingerprintStore,
    FleetScanExecutor,
    TamperDetector,
    UpdatePolicy,
    prototype_itdr_config,
)
from repro.core.itdr import ITDR
from repro.txline.materials import FR4

N_BUSES = 4
FIRST_SEED = 400
ROOT_SEED = 7


def make_executor(factory, shards=1, backend="auto", seed=ROOT_SEED):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=8,
        shards=shards,
        backend=backend,
        seed=seed,
    )
    for line in factory.manufacture_batch(N_BUSES, first_seed=FIRST_SEED):
        executor.register(line)
    return executor


def run_identify(factory, shards, backend, **kwargs):
    with make_executor(factory, shards=shards, backend=backend) as ex:
        ex.enroll(n_captures=8)
        return ex, ex.identify_scan(**kwargs)


class TestFleetIdentification:
    def test_clean_fleet_identifies_at_rank1(self, factory):
        ex, outcome = run_identify(factory, 2, "serial")
        assert outcome.rank1_accuracy() == 1.0
        assert outcome.misidentified() == []
        assert outcome.method == "sketch"
        assert [r.bus for r in outcome.records] == ex.bus_names()
        for record in outcome.records:
            assert record.correct and record.accepted
            assert record.identified == record.bus
            assert record.score > ex.authenticator.threshold

    def test_store_digest_is_the_enrollments(self, factory):
        with make_executor(factory, shards=1, backend="serial") as ex:
            ex.enroll(n_captures=8)
            store = ex.build_store()
            outcome = ex.identify_scan(store=store)
            assert outcome.store_digest == store.digest()
            assert sorted(store.names()) == sorted(ex.bus_names())

    def test_build_store_requires_enrollment(self, factory):
        with make_executor(factory, shards=1, backend="serial") as ex:
            with pytest.raises(RuntimeError, match="enroll"):
                ex.build_store()

    def test_unknown_modifier_bus_is_rejected(self, factory):
        with make_executor(factory, shards=1, backend="serial") as ex:
            ex.enroll(n_captures=8)
            with pytest.raises(KeyError):
                ex.identify_scan(
                    modifiers_by_bus={"no-such-bus": [WireTap(0.1)]}
                )

    def test_tapped_bus_scores_below_its_clean_self(self, factory):
        ex, clean = run_identify(factory, 2, "serial")
        victim = ex.bus_names()[2]
        with make_executor(factory, shards=2, backend="serial") as ex2:
            ex2.enroll(n_captures=8)
            tapped = ex2.identify_scan(
                modifiers_by_bus={victim: [WireTap(0.12)]}
            )
        by_bus = {r.bus: r for r in tapped.records}
        clean_by_bus = {r.bus: r for r in clean.records}
        assert by_bus[victim].score < clean_by_bus[victim].score


class TestByteIdentity:
    def test_serial_shard_counts_are_byte_identical(self, factory):
        _, one = run_identify(factory, 1, "serial")
        _, three = run_identify(factory, 3, "serial")
        assert one.canonical_bytes() == three.canonical_bytes()
        assert one.store_digest == three.store_digest

    def test_process_backend_matches_serial(self, factory):
        _, serial = run_identify(factory, 1, "serial")
        _, parallel = run_identify(factory, 2, "process")
        assert serial.canonical_bytes() == parallel.canonical_bytes()
        assert serial.store_digest == parallel.store_digest

    def test_canonical_bytes_exclude_provenance(self, factory):
        _, outcome = run_identify(factory, 3, "serial")
        payload = json.loads(outcome.canonical_bytes().decode())
        assert len(payload) == N_BUSES
        # index, bus, identified, score, accepted, runner_up, separation
        assert all(len(row) == 7 for row in payload)
        shard_labels = {r.shard for r in outcome.records}
        assert shard_labels <= set(range(3))


class TestRuntimeWiring:
    def test_identification_lands_in_per_bus_telemetry(self, factory):
        ex, outcome = run_identify(factory, 2, "serial")
        snap = ex.telemetry.snapshot()
        assert set(snap["buses"]) == set(ex.bus_names())
        for name, cell in snap["buses"].items():
            assert cell["checks"] == 1
            assert cell["proceeds"] == 1  # clean fleet: all rank-1 hits
            assert cell["alerts"] == 0
        assert snap["totals"]["checks"] == N_BUSES

    def test_events_ride_the_cadence_clock(self, factory):
        ex, outcome = run_identify(factory, 2, "serial")
        visit = ex.per_bus_check_time_s()
        times = [event.time_s for event in ex.event_log]
        assert times == sorted(times)
        for i, event in enumerate(ex.event_log):
            assert event.time_s == pytest.approx((i + 1) * visit)

    def test_shared_store_audits_a_sub_fleet(self, factory):
        """A store enrolled from one fleet identifies another's captures."""
        with make_executor(factory, shards=1, backend="serial") as ex:
            fingerprints = ex.enroll(n_captures=8)
            shared = FingerprintStore(
                policy=UpdatePolicy(threshold=0.85), shortlist_size=4
            )
            shared.enroll_many(list(fingerprints.values()))
            outcome = ex.identify_scan(store=shared, method="brute")
            assert outcome.method == "brute"
            assert outcome.rank1_accuracy() == 1.0
