"""Unit tests for the noisy comparator (paper Eq. 1)."""

import numpy as np
import pytest
from scipy.special import ndtr

from repro.core.comparator import Comparator


class TestProbabilityLaw:
    def test_equal_inputs_give_half(self):
        c = Comparator(noise_sigma=1e-3)
        assert c.probability_of_one(0.5, 0.5) == pytest.approx(0.5)

    def test_matches_gaussian_cdf(self):
        c = Comparator(noise_sigma=2e-3)
        v = np.linspace(-6e-3, 6e-3, 13)
        expected = ndtr(v / 2e-3)
        assert np.allclose(c.probability_of_one(v, 0.0), expected)

    def test_offset_shifts_curve(self):
        c = Comparator(noise_sigma=1e-3, offset=1e-3)
        assert c.probability_of_one(1e-3, 0.0) == pytest.approx(0.5)

    def test_monotone_in_signal(self):
        c = Comparator(noise_sigma=1e-3)
        v = np.linspace(-5e-3, 5e-3, 100)
        p = c.probability_of_one(v, 0.0)
        assert np.all(np.diff(p) > 0)

    def test_zero_noise_rejected(self):
        """No noise, no APC — the docstring's point, enforced."""
        with pytest.raises(ValueError):
            Comparator(noise_sigma=0.0)


class TestSampling:
    def test_decide_statistics(self, rng):
        c = Comparator(noise_sigma=1e-3)
        decisions = c.decide(np.full(100_000, 0.5e-3), 0.0, rng)
        expected = float(ndtr(0.5))
        assert decisions.mean() == pytest.approx(expected, abs=0.01)

    def test_count_ones_binomial_mean(self, rng):
        c = Comparator(noise_sigma=1e-3)
        counts = c.count_ones(np.zeros(10_000), 0.0, 100, rng)
        assert counts.mean() == pytest.approx(50.0, rel=0.02)
        assert counts.std() == pytest.approx(5.0, rel=0.1)

    def test_count_ones_bounds(self, rng):
        c = Comparator(noise_sigma=1e-3)
        counts = c.count_ones(np.zeros(1000), 0.0, 16, rng)
        assert counts.min() >= 0 and counts.max() <= 16

    def test_count_zero_trials(self, rng):
        c = Comparator(noise_sigma=1e-3)
        assert np.all(c.count_ones(np.zeros(5), 0.0, 0, rng) == 0)

    def test_negative_trials_rejected(self, rng):
        c = Comparator(noise_sigma=1e-3)
        with pytest.raises(ValueError):
            c.count_ones(0.0, 0.0, -1, rng)

    def test_deterministic_extremes(self, rng):
        c = Comparator(noise_sigma=1e-3)
        high = c.count_ones(np.full(10, 1.0), 0.0, 50, rng)
        low = c.count_ones(np.full(10, -1.0), 0.0, 50, rng)
        assert np.all(high == 50)
        assert np.all(low == 0)


class TestInterference:
    def test_none_falls_back_to_binomial(self, rng):
        c = Comparator(noise_sigma=1e-3)
        counts = c.count_ones_with_interference(
            np.zeros(100), 0.0, 50, rng, interference_trials=None
        )
        assert counts.mean() == pytest.approx(25.0, rel=0.1)

    def test_shape_validation(self, rng):
        c = Comparator(noise_sigma=1e-3)
        with pytest.raises(ValueError):
            c.count_ones_with_interference(
                np.zeros(4), 0.0, 8, rng, interference_trials=np.zeros((4, 7))
            )

    def test_constant_interference_shifts_counts(self, rng):
        c = Comparator(noise_sigma=1e-3)
        emi = np.full((500, 64), 1e-3)  # +1 sigma on every trial
        counts = c.count_ones_with_interference(
            np.zeros(500), 0.0, 64, rng, interference_trials=emi
        )
        expected = float(ndtr(1.0))
        assert counts.mean() / 64 == pytest.approx(expected, abs=0.01)

    def test_zero_mean_interference_cancels_on_average(self, rng):
        c = Comparator(noise_sigma=1e-3)
        emi = rng.normal(0, 0.2e-3, size=(500, 64))
        counts = c.count_ones_with_interference(
            np.zeros(500), 0.0, 64, rng, interference_trials=emi
        )
        assert counts.mean() / 64 == pytest.approx(0.5, abs=0.02)

    def test_per_trial_reference_broadcast(self, rng):
        """PDM-style (N, R) reference arrays broadcast correctly."""
        c = Comparator(noise_sigma=1e-3)
        refs = np.tile(np.array([-1e-2, 1e-2] * 8), (10, 1))  # (10, 16)
        counts = c.count_ones_with_interference(
            np.zeros(10), refs, 16, rng, interference_trials=np.zeros((10, 16))
        )
        # Half the trials compare against -10 sigma (always 1), half
        # against +10 sigma (never 1).
        assert np.all(counts == 8)
