"""Unit tests for fingerprints, ROM storage, and authentication math."""

import numpy as np
import pytest

from repro.core.auth import (
    Authenticator,
    capture_similarity,
    equal_error_rate,
    error_function,
    roc_curve,
    similarity,
)
from repro.core.fingerprint import Fingerprint, FingerprintROM
from repro.signals.waveform import Waveform


class TestSimilarity:
    def test_identical_is_one(self):
        x = np.sin(np.linspace(0, 10, 100))
        assert similarity(x, x) == pytest.approx(1.0)

    def test_negated_is_zero(self):
        x = np.sin(np.linspace(0, 10, 100))
        assert similarity(x, -x) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_is_half(self):
        t = np.linspace(0, 2 * np.pi, 1000, endpoint=False)
        assert similarity(np.sin(t), np.cos(t)) == pytest.approx(0.5, abs=1e-6)

    def test_gain_invariant(self):
        x = np.random.default_rng(0).normal(size=50)
        y = np.random.default_rng(1).normal(size=50)
        assert similarity(x, y) == pytest.approx(similarity(3 * x, y))

    def test_offset_invariant(self):
        x = np.random.default_rng(0).normal(size=50)
        y = np.random.default_rng(1).normal(size=50)
        assert similarity(x, y) == pytest.approx(similarity(x + 5.0, y))

    def test_symmetry(self):
        x = np.random.default_rng(0).normal(size=50)
        y = np.random.default_rng(1).normal(size=50)
        assert similarity(x, y) == pytest.approx(similarity(y, x))

    def test_range(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            s = similarity(rng.normal(size=30), rng.normal(size=30))
            assert 0.0 <= s <= 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            similarity(np.zeros(3), np.zeros(4))


class TestErrorFunction:
    def test_zero_for_identical(self):
        x = np.sin(np.linspace(0, 5, 64))
        assert np.allclose(error_function(x, x), 0.0)

    def test_localises_difference(self):
        x = np.sin(np.linspace(0, 5, 64))
        y = x.copy()
        y[30] += 0.5
        e = error_function(x, y)
        assert np.argmax(e) == 30

    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        e = error_function(rng.normal(size=40), rng.normal(size=40))
        assert np.all(e >= 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_function(np.zeros(3), np.zeros(4))


class TestRocEer:
    def test_separated_scores_zero_eer(self):
        genuine = np.full(100, 0.9)
        impostor = np.full(100, 0.1)
        eer, thr = equal_error_rate(genuine, impostor)
        assert eer == pytest.approx(0.0, abs=1e-6)
        assert 0.1 < thr < 0.9

    def test_identical_distributions_half_eer(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(0.5, 0.1, size=5000)
        eer, _ = equal_error_rate(scores, scores)
        assert eer == pytest.approx(0.5, abs=0.02)

    def test_known_overlap(self):
        """Two unit-variance Gaussians 2 apart: EER = Phi(-1) ~ 15.9 %."""
        rng = np.random.default_rng(1)
        genuine = rng.normal(1.0, 1.0, size=60_000)
        impostor = rng.normal(-1.0, 1.0, size=60_000)
        eer, _ = equal_error_rate(genuine, impostor)
        assert eer == pytest.approx(0.1587, abs=0.01)

    def test_roc_monotone(self):
        rng = np.random.default_rng(2)
        roc = roc_curve(rng.normal(1, 1, 500), rng.normal(0, 1, 500))
        assert np.all(np.diff(roc.false_positive_rate) <= 1e-12)
        assert np.all(np.diff(roc.false_negative_rate) >= -1e-12)

    def test_roc_endpoints(self):
        rng = np.random.default_rng(3)
        roc = roc_curve(rng.normal(1, 1, 500), rng.normal(0, 1, 500))
        assert roc.false_positive_rate[0] == pytest.approx(1.0)
        assert roc.false_negative_rate[0] == pytest.approx(0.0)
        assert roc.false_positive_rate[-1] == pytest.approx(0.0)
        assert roc.false_negative_rate[-1] == pytest.approx(1.0)

    def test_tpr_complement(self):
        rng = np.random.default_rng(4)
        roc = roc_curve(rng.normal(1, 1, 100), rng.normal(0, 1, 100))
        assert np.allclose(roc.true_positive_rate, 1 - roc.false_negative_rate)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(0), np.ones(5))


class TestFingerprint:
    def test_from_captures_averages(self, line, itdr):
        caps = [itdr.capture(line) for _ in range(8)]
        fp = Fingerprint.from_captures(caps)
        assert fp.name == line.name
        assert fp.n_captures == 8
        assert np.linalg.norm(fp.samples) == pytest.approx(1.0)
        assert abs(fp.samples.mean()) < 1e-12

    def test_from_captures_empty_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint.from_captures([])

    def test_length_mismatch_rejected(self, line, itdr):
        cap = itdr.capture(line)
        short = Fingerprint(
            name="x", samples=cap.waveform.samples[:-5], dt=cap.waveform.dt
        )
        with pytest.raises(ValueError):
            capture_similarity(cap, short)

    def test_serialisation_roundtrip(self, enrolled_fingerprint):
        data = enrolled_fingerprint.to_dict()
        back = Fingerprint.from_dict(data)
        assert back.name == enrolled_fingerprint.name
        assert np.allclose(back.samples, enrolled_fingerprint.samples)
        assert back.dt == enrolled_fingerprint.dt

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Fingerprint(name="x", samples=np.zeros(0), dt=1.0)


class TestFingerprintROM:
    def test_store_load(self, enrolled_fingerprint):
        rom = FingerprintROM()
        rom.store(enrolled_fingerprint)
        assert rom.load(enrolled_fingerprint.name) is enrolled_fingerprint
        assert enrolled_fingerprint.name in rom
        assert len(rom) == 1

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            FingerprintROM().load("ghost")

    def test_get_returns_none(self):
        assert FingerprintROM().get("ghost") is None

    def test_json_roundtrip(self, enrolled_fingerprint):
        rom = FingerprintROM()
        rom.store(enrolled_fingerprint)
        clone = FingerprintROM.import_json(rom.export_json())
        assert clone.names() == rom.names()
        assert np.allclose(
            clone.load(enrolled_fingerprint.name).samples,
            enrolled_fingerprint.samples,
        )


class TestFingerprintIntegrity:
    """Regression pins for the four ROM-integrity bugfixes."""

    def test_constructor_copies_its_input(self):
        raw = np.sin(np.linspace(0, 5, 64))
        fp = Fingerprint(name="x", samples=raw, dt=1e-12)
        before = fp.samples.copy()
        raw[:] = 0.0  # the caller's array is not the fingerprint's
        assert np.array_equal(fp.samples, before)

    def test_samples_are_frozen(self):
        fp = Fingerprint(
            name="x", samples=np.sin(np.linspace(0, 5, 64)), dt=1e-12
        )
        with pytest.raises(ValueError):
            fp.samples[0] = 42.0

    def test_from_dict_copies_and_freezes(self):
        fp = Fingerprint(
            name="x", samples=np.sin(np.linspace(0, 5, 64)), dt=1e-12
        )
        back = Fingerprint.from_dict(fp.to_dict())
        with pytest.raises(ValueError):
            back.samples[0] = 42.0

    def test_adaptive_reference_hands_out_frozen_snapshots(self, line, itdr):
        from repro.core.adaptive import AdaptiveReference

        fp = Fingerprint.from_captures([itdr.capture(line) for _ in range(4)])
        ref = AdaptiveReference(fp, threshold=0.5, update_margin=0.0)
        snapshot = ref.current()
        frozen = snapshot.samples.copy()
        with pytest.raises(ValueError):
            snapshot.samples[0] = 42.0
        ref.consider(itdr.capture(line))  # accepted: moves the live buffer
        assert ref.n_updates == 1
        assert np.array_equal(snapshot.samples, frozen)

    def test_direct_construction_is_canonical(self):
        raw = 7.5 * np.sin(np.linspace(0, 5, 64)) + 3.0  # gain and offset
        fp = Fingerprint(name="x", samples=raw, dt=1e-12)
        assert abs(fp.samples.mean()) < 1e-12
        assert np.linalg.norm(fp.samples) == pytest.approx(1.0)

    def test_gain_does_not_change_the_digest(self):
        # Power-of-two gain commutes exactly with every float op in the
        # canonical form, so the digest (bitwise content address) is
        # invariant; arbitrary gain+offset agree to rounding error.
        raw = np.sin(np.linspace(0, 5, 64))
        a = Fingerprint(name="x", samples=raw, dt=1e-12)
        b = Fingerprint(name="x", samples=4.0 * raw, dt=1e-12)
        c = Fingerprint(name="x", samples=3.0 * raw + 1.0, dt=1e-12)
        assert a.digest() == b.digest()
        np.testing.assert_allclose(c.samples, a.samples, atol=1e-12)

    def test_canonicalization_is_bit_idempotent(self):
        raw = np.random.default_rng(0).normal(size=128)
        fp = Fingerprint(name="x", samples=raw, dt=1e-12)
        again = Fingerprint(name="x", samples=fp.samples, dt=1e-12)
        assert again.samples.tobytes() == fp.samples.tobytes()

    def test_digest_differs_across_content_and_dt(self):
        rng = np.random.default_rng(1)
        a = Fingerprint(name="x", samples=rng.normal(size=64), dt=1e-12)
        b = Fingerprint(name="x", samples=rng.normal(size=64), dt=1e-12)
        c = Fingerprint(name="x", samples=a.samples, dt=2e-12)
        assert a.digest() != b.digest()
        assert a.digest() != c.digest()

    def test_from_captures_rejects_mixed_dt(self, line, itdr):
        from dataclasses import replace

        cap = itdr.capture(line)
        other = replace(
            cap, waveform=Waveform(cap.waveform.samples, cap.waveform.dt * 2)
        )
        with pytest.raises(ValueError, match="time grid"):
            Fingerprint.from_captures([cap, other])

    def test_capture_similarity_rejects_mixed_dt(self, line, itdr):
        cap = itdr.capture(line)
        wrong_grid = Fingerprint(
            name=line.name,
            samples=cap.waveform.samples,
            dt=cap.waveform.dt * 2,
        )
        with pytest.raises(ValueError, match="time grid"):
            capture_similarity(cap, wrong_grid)

    def test_dt_tolerance_absorbs_float_roundoff(self, line, itdr):
        cap = itdr.capture(line)
        nudged = Fingerprint(
            name=line.name,
            samples=cap.waveform.samples,
            dt=cap.waveform.dt * (1.0 + 1e-14),
        )
        assert capture_similarity(cap, nudged) == pytest.approx(1.0)


class TestROMDeterministicExport:
    def _fingerprints(self):
        rng = np.random.default_rng(7)
        return [
            Fingerprint(name=f"bus-{i}", samples=rng.normal(size=48), dt=1e-12)
            for i in range(4)
        ]

    def test_insertion_order_invisible(self):
        fps = self._fingerprints()
        forward, backward = FingerprintROM(), FingerprintROM()
        for fp in fps:
            forward.store(fp)
        for fp in reversed(fps):
            backward.store(fp)
        assert forward.export_json() == backward.export_json()

    def test_export_import_export_bitwise(self):
        rom = FingerprintROM()
        for fp in self._fingerprints():
            rom.store(fp)
        first = rom.export_json()
        second = FingerprintROM.import_json(first).export_json()
        assert first == second  # float exactness included

    def test_samples_bitwise_through_json(self):
        rom = FingerprintROM()
        fps = self._fingerprints()
        for fp in fps:
            rom.store(fp)
        clone = FingerprintROM.import_json(rom.export_json())
        for fp in fps:
            assert clone.load(fp.name).samples.tobytes() == \
                fp.samples.tobytes()
            assert clone.load(fp.name).digest() == fp.digest()


class TestAuthenticator:
    def test_genuine_accepted(self, line, itdr, enrolled_fingerprint):
        auth = Authenticator(threshold=0.8)
        decision = auth.decide(itdr.capture(line), enrolled_fingerprint)
        assert decision.accepted
        assert decision.score > 0.8

    def test_impostor_rejected(self, other_line, itdr, enrolled_fingerprint):
        auth = Authenticator(threshold=0.8)
        decision = auth.decide(itdr.capture(other_line), enrolled_fingerprint)
        assert not decision.accepted

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            Authenticator(threshold=1.5)
