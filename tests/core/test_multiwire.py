"""Unit tests for multi-wire fused authentication."""

import numpy as np
import pytest

from repro.core.config import prototype_itdr
from repro.core.multiwire import (
    FUSION_POLICIES,
    MultiWireAuthenticator,
    MultiWireDecision,
)
from repro.txline.line import TransmissionLine


@pytest.fixture
def wires(factory):
    return factory.manufacture_batch(4, first_seed=70)


@pytest.fixture
def impostor_bundle(factory, wires):
    """Foreign wires renamed to impersonate the enrolled bundle."""
    foreign = factory.manufacture_batch(4, first_seed=170)
    return [
        TransmissionLine(name=w.name, board_profile=f.board_profile,
                         material=f.material)
        for w, f in zip(wires, foreign)
    ]


def make_auth(policy="mean", threshold=0.8, seed=0):
    return MultiWireAuthenticator(
        prototype_itdr(rng=np.random.default_rng(seed)),
        threshold=threshold,
        policy=policy,
    )


class TestEnrollment:
    def test_enroll_counts(self, wires):
        auth = make_auth()
        refs = auth.enroll(wires, n_captures=4)
        assert len(refs) == 4
        assert auth.n_wires == 4

    def test_score_before_enroll_raises(self, wires):
        with pytest.raises(RuntimeError):
            make_auth().score(wires)

    def test_wire_count_mismatch(self, wires):
        auth = make_auth()
        auth.enroll(wires, n_captures=4)
        with pytest.raises(ValueError):
            auth.score(wires[:2])

    def test_validation(self, wires):
        with pytest.raises(ValueError):
            make_auth(policy="vote")
        with pytest.raises(ValueError):
            make_auth(threshold=1.2)
        with pytest.raises(ValueError):
            make_auth().enroll([], n_captures=4)
        with pytest.raises(ValueError):
            make_auth().enroll(wires, n_captures=0)


class TestDecisions:
    @pytest.mark.parametrize("policy", sorted(FUSION_POLICIES))
    def test_genuine_accepted_impostor_rejected(
        self, policy, wires, impostor_bundle
    ):
        auth = make_auth(policy=policy)
        auth.enroll(wires, n_captures=6)
        assert auth.decide(wires).accepted
        assert not auth.decide(impostor_bundle).accepted

    def test_min_policy_catches_single_bad_wire(self, wires, impostor_bundle):
        """A partial clone (one wrong wire) fails 'min' fusion."""
        auth = make_auth(policy="min")
        auth.enroll(wires, n_captures=6)
        mixed = list(wires)
        mixed[2] = impostor_bundle[2]
        decision = auth.decide(mixed)
        assert not decision.accepted
        assert decision.weakest_wire == 2

    def test_mean_policy_may_tolerate_single_bad_wire(
        self, wires, impostor_bundle
    ):
        """Mean fusion averages the bad wire away — the policy trade-off."""
        auth = make_auth(policy="mean", threshold=0.8)
        auth.enroll(wires, n_captures=6)
        mixed = list(wires)
        mixed[0] = impostor_bundle[0]
        min_auth = make_auth(policy="min", threshold=0.8, seed=3)
        min_auth.enroll(wires, n_captures=6)
        # Mean score exceeds min score on the same mixed bundle.
        assert (
            auth.decide(mixed).fused_score
            > min_auth.decide(mixed).fused_score
        )

    def test_decision_fields(self, wires):
        auth = make_auth()
        auth.enroll(wires, n_captures=4)
        decision = auth.decide(wires)
        assert isinstance(decision, MultiWireDecision)
        assert len(decision.per_wire_scores) == 4
        assert decision.policy == "mean"
        assert 0 <= decision.fused_score <= 1


class TestFusionFunctions:
    def test_policies_on_known_scores(self):
        scores = np.array([0.9, 0.5, 0.7])
        assert FUSION_POLICIES["mean"](scores) == pytest.approx(0.7)
        assert FUSION_POLICIES["min"](scores) == pytest.approx(0.5)
        assert FUSION_POLICIES["median"](scores) == pytest.approx(0.7)
