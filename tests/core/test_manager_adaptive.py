"""Unit tests for the shared-iTDR manager and adaptive references."""

import numpy as np
import pytest

from repro.attacks import WireTap
from repro.core.adaptive import AdaptiveReference, MultiConditionAuthenticator
from repro.core.auth import Authenticator
from repro.core.config import prototype_itdr
from repro.core.fingerprint import Fingerprint
from repro.core.manager import SharedITDRManager
from repro.core.tamper import TamperDetector
from repro.env.temperature import TemperatureCondition
from repro.txline.materials import FR4


def make_manager(seed=0, captures_per_check=8):
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )
    return SharedITDRManager(
        itdr, Authenticator(0.85), detector,
        captures_per_check=captures_per_check,
    )


class TestSharedManager:
    def test_register_and_calibrate(self, factory):
        manager = make_manager()
        for line in factory.manufacture_batch(3, first_seed=300):
            manager.register(line)
        assert manager.n_buses == 3
        manager.calibrate_all(n_captures=4)
        assert not any(manager.is_blocked(n) for n in manager.bus_names())

    def test_duplicate_registration_rejected(self, factory):
        manager = make_manager()
        line = factory.manufacture(seed=300)
        manager.register(line)
        with pytest.raises(ValueError):
            manager.register(line)

    def test_scan_before_register_raises(self):
        with pytest.raises(RuntimeError):
            make_manager().scan()

    def test_clean_scan_all_clear(self, factory):
        # Shallow averaging leaves clean-lane tamper peaks seed-marginal
        # against the 2.5e-3 threshold; 16x is cheap on the batch engine.
        manager = make_manager(captures_per_check=16)
        for line in factory.manufacture_batch(3, first_seed=310):
            manager.register(line)
        manager.calibrate_all(n_captures=16)
        assert manager.scan().all_clear()

    def test_attack_isolated_to_victim(self, factory):
        # Deep averaging (cheap on the batch engine) keeps clean-lane tamper
        # peaks well under the threshold so the isolation assertion is not
        # seed-marginal.
        manager = make_manager(captures_per_check=16)
        lines = factory.manufacture_batch(4, first_seed=320)
        for line in lines:
            manager.register(line)
        manager.calibrate_all(n_captures=16)
        victim = lines[1].name
        outcome = manager.scan(modifiers_by_bus={victim: [WireTap(0.12)]})
        assert [name for name, _ in outcome.alerts()] == [victim]

    def test_scan_period_linear_in_buses(self, factory):
        manager = make_manager()
        lines = factory.manufacture_batch(4, first_seed=330)
        manager.register(lines[0])
        one = manager.scan_period_s()
        for line in lines[1:]:
            manager.register(line)
        assert manager.scan_period_s() == pytest.approx(4 * one)

    def test_resource_report_counts_sharing(self, factory):
        manager = make_manager()
        for line in factory.manufacture_batch(8, first_seed=340):
            manager.register(line)
        report = manager.resource_report()
        assert report.n_itdrs == 8
        assert report.luts < 8 * 124


class TestMultiConditionAuthenticator:
    def _fingerprints(self, line, itdr):
        room = Fingerprint.from_captures(
            [itdr.capture(line) for _ in range(8)], name=line.name
        )
        hot_cond = TemperatureCondition(75.0)
        hot = Fingerprint.from_captures(
            [itdr.capture(line, modifiers=[hot_cond]) for _ in range(8)],
            name=line.name,
        )
        return room, hot

    def test_matches_best_condition(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        room, hot = self._fingerprints(line, itdr)
        auth = MultiConditionAuthenticator(threshold=0.8)
        auth.enroll(room, "room")
        auth.enroll(hot, "hot")
        hot_capture = itdr.capture(
            line, modifiers=[TemperatureCondition(75.0)]
        )
        match = auth.decide(hot_capture)
        assert match.accepted
        assert match.matched_condition == "hot"

    def test_impostor_matches_nothing(self, line, other_line):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        room, hot = self._fingerprints(line, itdr)
        auth = MultiConditionAuthenticator(threshold=0.85)
        auth.enroll(room, "room")
        auth.enroll(hot, "hot")
        assert not auth.decide(itdr.capture(other_line)).accepted

    def test_validation(self, enrolled_fingerprint):
        with pytest.raises(ValueError):
            MultiConditionAuthenticator(threshold=1.5)
        auth = MultiConditionAuthenticator()
        with pytest.raises(RuntimeError):
            auth.decide(None)
        auth.enroll(enrolled_fingerprint, "room")
        short = Fingerprint(
            name="x",
            samples=enrolled_fingerprint.samples[:-1],
            dt=enrolled_fingerprint.dt,
        )
        with pytest.raises(ValueError):
            auth.enroll(short, "bad")


class TestAdaptiveReference:
    def test_accepts_genuine(self, line, itdr, enrolled_fingerprint):
        adaptive = AdaptiveReference(enrolled_fingerprint, threshold=0.8)
        assert adaptive.consider(itdr.capture(line))

    def test_rejects_impostor_without_updating(
        self, line, other_line, itdr, enrolled_fingerprint
    ):
        adaptive = AdaptiveReference(enrolled_fingerprint, threshold=0.8)
        for _ in range(10):
            accepted = adaptive.consider(itdr.capture(other_line))
            assert not accepted
        assert adaptive.n_updates == 0

    def test_updates_move_reference(self, line, itdr, enrolled_fingerprint):
        adaptive = AdaptiveReference(
            enrolled_fingerprint, threshold=0.8, alpha=0.2
        )
        before = adaptive.current().samples.copy()
        for _ in range(5):
            adaptive.consider(itdr.capture(line))
        assert adaptive.n_updates > 0
        assert not np.allclose(adaptive.current().samples, before)

    def test_reference_stays_unit_norm(self, line, itdr, enrolled_fingerprint):
        adaptive = AdaptiveReference(enrolled_fingerprint, threshold=0.8)
        for _ in range(5):
            adaptive.consider(itdr.capture(line))
        assert np.linalg.norm(adaptive.current().samples) == pytest.approx(1.0)

    def test_margin_blocks_borderline_updates(
        self, line, itdr, enrolled_fingerprint
    ):
        """A capture scoring inside (threshold, threshold+margin) is
        accepted but must NOT update the reference."""
        adaptive = AdaptiveReference(
            enrolled_fingerprint, threshold=0.0, update_margin=1.0
        )
        assert adaptive.consider(itdr.capture(line))  # accepted...
        assert adaptive.n_updates == 0  # ...but never folded in

    def test_validation(self, enrolled_fingerprint):
        with pytest.raises(ValueError):
            AdaptiveReference(enrolled_fingerprint, alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveReference(enrolled_fingerprint, update_margin=-0.1)
        with pytest.raises(ValueError):
            AdaptiveReference(enrolled_fingerprint, threshold=1.5)
