"""Unit tests for the iTDR capture pipeline."""

import numpy as np
import pytest

from repro.core.config import prototype_itdr
from repro.core.itdr import ITDR, ITDRConfig
from repro.env.emi import nearby_digital_circuit


class TestConfig:
    def test_defaults_valid(self):
        ITDRConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            ITDRConfig(repetitions=0)
        with pytest.raises(ValueError):
            ITDRConfig(coupling=0.0)
        with pytest.raises(ValueError):
            ITDRConfig(coupling=1.5)
        with pytest.raises(ValueError):
            ITDRConfig(pdm_amplitude=-1e-3)

    def test_degenerate_vernier_rejected(self):
        with pytest.raises(ValueError):
            ITDR(ITDRConfig(pdm_vernier=(1, 1)))

    def test_non_coprime_vernier_reduced_not_rejected(self):
        """(2, 4) reduces to 2 distinct phases — still effective."""
        itdr = ITDR(ITDRConfig(pdm_vernier=(2, 4)))
        assert itdr.pdm.n_levels >= 2

    def test_capture_kernel_and_dtype_validated(self):
        with pytest.raises(ValueError):
            ITDRConfig(capture_kernel="warp")
        with pytest.raises(ValueError):
            ITDRConfig(dtype="float16")
        assert ITDRConfig(dtype="float32").np_dtype == np.float32
        assert ITDRConfig().np_dtype == np.float64


class TestGeometry:
    def test_record_covers_round_trip(self, line, itdr):
        n = itdr.record_length(line)
        span = n * itdr.pll.phase_step
        assert span > line.full_profile.round_trip_delay

    def test_probe_edge_on_phase_grid(self, itdr):
        edge = itdr.probe_edge()
        assert edge.dt == itdr.pll.phase_step

    def test_true_reflection_scaled_by_coupling(self, line):
        a = prototype_itdr(rng=np.random.default_rng(0), coupling=0.25)
        b = prototype_itdr(rng=np.random.default_rng(0), coupling=0.5)
        wa = a.true_reflection(line)
        wb = b.true_reflection(line)
        assert np.allclose(wb.samples, 2 * wa.samples)

    def test_true_reflection_engines_agree(self, line, itdr):
        """Born (default) and lattice agree through the public API.

        The lattice path needs the incident grid to match the segment
        delay, so compare on a line whose factory pitch equals the
        phase step exactly — here we just check born output is finite
        and non-trivial, and lattice raises on the mismatched grid.
        """
        wave = itdr.true_reflection(line, engine="born")
        assert np.isfinite(wave.samples).all()
        assert wave.peak() > 0


class TestCapture:
    def test_capture_metadata(self, line, itdr):
        cap = itdr.capture(line)
        assert cap.line_name == line.name
        assert cap.n_triggers > 0
        assert cap.duration_s > 0
        assert len(cap.waveform) == itdr.record_length(line)

    def test_capture_estimates_true_waveform(self, line, itdr):
        true = itdr.true_reflection(line)
        est = np.mean(
            [itdr.capture(line).waveform.samples for _ in range(64)], axis=0
        )
        err = np.max(np.abs(est - true.samples))
        assert err < 3 * itdr.config.noise_sigma / np.sqrt(64) * 6

    def test_normalized_samples_canonical(self, line, itdr):
        x = itdr.capture(line).normalized_samples()
        assert abs(x.mean()) < 1e-12
        assert np.linalg.norm(x) == pytest.approx(1.0)

    def test_captures_differ_statistically(self, line, itdr):
        a = itdr.capture(line).waveform.samples
        b = itdr.capture(line).waveform.samples
        assert not np.array_equal(a, b)

    def test_modifiers_change_capture(self, line, itdr):
        from repro.attacks import WireTap

        clean = itdr.true_reflection(line).samples
        tapped = itdr.true_reflection(line, [WireTap(0.12)]).samples
        assert not np.allclose(clean, tapped)

    def test_capture_with_interference_runs(self, line, itdr):
        cap = itdr.capture(line, interference=nearby_digital_circuit())
        assert len(cap.waveform) == itdr.record_length(line)

    def test_bare_apc_mode(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(0), use_pdm=False)
        assert itdr.pdm is None and itdr.apc is not None
        cap = itdr.capture(line)
        assert len(cap.waveform) > 0

    def test_bare_apc_with_interference(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(0), use_pdm=False)
        cap = itdr.capture(line, interference=nearby_digital_circuit())
        assert np.isfinite(cap.waveform.samples).all()

    def test_large_repetition_budget_regression(self, line):
        """repetitions=2048 used to raise OverflowError building the
        binomial inverse-CDF via ``math.comb`` term products (bare-APC
        mode puts all 2048 trials on one comparator level); the stable
        CDF path must survive it in both kernel configurations."""
        fused = prototype_itdr(
            rng=np.random.default_rng(6), repetitions=2048, use_pdm=False
        )
        grid = prototype_itdr(
            rng=np.random.default_rng(6),
            repetitions=2048,
            use_pdm=False,
            capture_kernel="grid",
        )
        a = fused.capture(line).waveform.samples
        b = grid.capture(line).waveform.samples
        assert np.isfinite(a).all()
        assert a.tobytes() == b.tobytes()


class TestCaptureAveraged:
    def test_averaging_reduces_noise(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(1))
        true = itdr.true_reflection(line).samples
        single = itdr.capture(line).waveform.samples
        averaged = itdr.capture_averaged(line, 64).waveform.samples
        assert np.std(averaged - true) < 0.5 * np.std(single - true)

    def test_budget_sums(self, line, itdr):
        single = itdr.capture(line)
        avg = itdr.capture_averaged(line, 4)
        assert avg.n_triggers == 4 * single.n_triggers
        assert avg.duration_s == pytest.approx(4 * single.duration_s)

    def test_validation(self, line, itdr):
        with pytest.raises(ValueError):
            itdr.capture_averaged(line, 0)


class TestCaptureBatch:
    def test_static_batch_shape(self, line, itdr):
        est = itdr.capture_batch(line, 16)
        assert est.shape == (16, itdr.record_length(line))

    def test_batch_statistics_match_single_path(self, line):
        itdr_a = prototype_itdr(rng=np.random.default_rng(3))
        itdr_b = prototype_itdr(rng=np.random.default_rng(4))
        batch = itdr_a.capture_batch(line, 200)
        singles = np.stack(
            [itdr_b.capture(line).waveform.samples for _ in range(200)]
        )
        assert batch.mean() == pytest.approx(singles.mean(), abs=2e-4)
        assert batch.std() == pytest.approx(singles.std(), rel=0.1)

    def test_perturbed_batch(self, line, itdr):
        p = line.full_profile
        z = np.stack([p.z, p.z * (1 + 0.01 * np.sin(np.arange(p.n_segments)))])
        tau = np.stack([p.tau, p.tau])
        est = itdr.capture_batch(line, 2, z_batch=z, tau_batch=tau)
        assert est.shape[0] == 2

    def test_batch_validation(self, line, itdr):
        with pytest.raises(ValueError):
            itdr.capture_batch(line, 0)
        p = line.full_profile
        with pytest.raises(ValueError):
            itdr.capture_batch(line, 3, z_batch=np.stack([p.z, p.z]))
        with pytest.raises(ValueError):
            itdr.capture_batch(
                line, 3, z_batch=np.stack([p.z, p.z]),
                tau_batch=np.stack([p.tau, p.tau]),
            )


class TestBudget:
    def test_prototype_budget_is_paper_scale(self, line, itdr):
        """~341-400 points x 24 reps at 156.25 MHz: about 50-65 us."""
        budget = itdr.budget(itdr.record_length(line))
        assert 8000 < budget.n_triggers < 11000
        assert 40e-6 < budget.duration_s < 70e-6

    def test_budget_scales_with_repetitions(self, line):
        a = prototype_itdr(repetitions=24)
        b = prototype_itdr(repetitions=48)
        n = a.record_length(line)
        assert b.budget(n).n_triggers == 2 * a.budget(n).n_triggers

    def test_budget_with_explicit_rate(self, itdr):
        budget = itdr.budget(100, trigger_rate=1e9)
        assert budget.duration_s == pytest.approx(budget.n_triggers / 1e9)

    def test_long_record_multiple_points_per_trigger(self):
        """Records longer than a clock period amortise triggers."""
        itdr = prototype_itdr(clock_frequency=2.5e9)  # period 0.4 ns
        budget = itdr.budget(400)  # record ~4.5 ns
        assert budget.points_per_trigger > 1
        assert budget.n_triggers < 400 * itdr.config.repetitions
