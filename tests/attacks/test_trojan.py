"""Dedicated unit tests for the load-modification attack family.

Parameter validation, monotone termination disturbance, and seeded
reproducibility of the chip-swap replacement parts.
"""

import numpy as np
import pytest

from repro.attacks import ChipSwap, ColdBootSwap, LoadModification


class TestLoadModificationParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadModification(load_scale=0.0)
        with pytest.raises(ValueError):
            LoadModification(load_scale=-1.0)
        with pytest.raises(ValueError):
            LoadModification(n_segments=0)

    def test_identity_parameters_change_nothing(self, line):
        p0 = line.full_profile
        p = LoadModification(load_scale=1.0, near_end_delta=0.0).modify(p0)
        np.testing.assert_allclose(p.z, p0.z)
        assert p.z_load == p0.z_load

    def test_load_scale_monotone(self, line):
        p0 = line.full_profile
        scales = [1.05, 1.15, 1.4, 2.0]
        deltas = [
            abs(LoadModification(load_scale=s).modify(p0).z_load - p0.z_load)
            for s in scales
        ]
        assert deltas == sorted(deltas)

    def test_only_trailing_segments_touched(self, line):
        p0 = line.full_profile
        n = 3
        p = LoadModification(n_segments=n, near_end_delta=0.08).modify(p0)
        np.testing.assert_array_equal(p.z[:-n], p0.z[:-n])
        assert np.all(p.z[-n:] > p0.z[-n:])

    def test_n_segments_clipped_to_line(self, line):
        p0 = line.full_profile
        p = LoadModification(
            n_segments=10 * p0.n_segments, near_end_delta=0.08
        ).modify(p0)
        assert p.n_segments == p0.n_segments
        assert np.all(p.z > p0.z)


class TestChipSwapSeeding:
    def test_same_seed_same_replacement(self, populated_line):
        p0 = populated_line.full_profile
        a = ChipSwap(replacement_seed=42).modify(p0)
        b = ChipSwap(replacement_seed=42).modify(p0)
        np.testing.assert_array_equal(a.z, b.z)
        assert a.z_load == b.z_load

    def test_different_seed_different_replacement(self, populated_line):
        p0 = populated_line.full_profile
        a = ChipSwap(replacement_seed=42).modify(p0)
        b = ChipSwap(replacement_seed=43).modify(p0)
        assert a.z_load != b.z_load

    def test_swap_changes_termination_only(self, populated_line):
        p0 = populated_line.full_profile
        p = ChipSwap(replacement_seed=42).modify(p0)
        # Early segments (the board trace) are untouched.
        half = p0.n_segments // 2
        np.testing.assert_array_equal(p.z[:half], p0.z[:half])


class TestColdBootSwap:
    def test_measures_the_foreign_line(self, line, other_line):
        swap = ColdBootSwap(foreign_line=other_line)
        assert swap.measured_line() is other_line
        assert swap.measured_line() is not line

    def test_not_a_profile_modifier(self):
        """Cold boot moves the module, it does not perturb a profile."""
        assert not hasattr(ColdBootSwap, "modify")
