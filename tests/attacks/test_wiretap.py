"""Dedicated unit tests for the wire-tap attack model.

Parameter validation, disturbance monotonicity in the stub and damage
knobs, and the paper's non-reversibility claim (the residue never
vanishes once a tap was attached).
"""

import numpy as np
import pytest

from repro.attacks import WireTap, WireTapResidue


def _disturbance(profile, modified):
    return float(np.max(np.abs(modified.z / profile.z - 1.0)))


class TestWireTapParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            WireTap(0.1, stub_impedance=0.0)
        with pytest.raises(ValueError):
            WireTap(0.1, stub_impedance=-50.0)
        with pytest.raises(ValueError):
            WireTap(0.1, extent_m=0.0)
        with pytest.raises(ValueError):
            WireTap(0.1, damage=-0.01)
        with pytest.raises(ValueError):
            WireTapResidue(0.1, damage=-0.01)

    def test_lower_stub_impedance_disturbs_more(self, line):
        """A fatter tap wire (lower Z stub) is a louder signature."""
        p0 = line.full_profile
        stubs = [400.0, 200.0, 100.0, 50.0]
        disturbances = [
            _disturbance(p0, WireTap(0.12, stub_impedance=s).modify(p0))
            for s in stubs
        ]
        assert disturbances == sorted(disturbances)

    def test_damage_monotone(self, line):
        p0 = line.full_profile
        damages = [0.0, 0.01, 0.02, 0.05]
        disturbances = [
            _disturbance(
                p0, WireTapResidue(0.12, damage=d).modify(p0)
            )
            for d in damages
        ]
        assert disturbances == sorted(disturbances)
        assert disturbances[0] == 0.0  # zero damage leaves no scar

    def test_tap_is_deterministic(self, line):
        p0 = line.full_profile
        tap = WireTap(0.12)
        np.testing.assert_array_equal(tap.modify(p0).z, tap.modify(p0).z)

    def test_residue_inherits_tap_geometry(self):
        tap = WireTap(0.17, damage=0.03, extent_m=4e-3)
        residue = tap.residue()
        assert residue.position_m == 0.17
        assert residue.damage == 0.03
        assert residue.extent_m == 4e-3
        assert residue.location_m() == tap.location_m()

    def test_non_reversibility(self, line):
        """Removing the wire never restores the enrolled profile."""
        p0 = line.full_profile
        tap = WireTap(0.12)
        after_removal = tap.residue().modify(p0)
        assert _disturbance(p0, after_removal) > 0
        # ... but the scar is strictly smaller than the attached tap.
        attached = tap.modify(p0)
        assert _disturbance(p0, after_removal) < _disturbance(p0, attached)

    def test_drop_localised_at_tap(self, line):
        p0 = line.full_profile
        tap = WireTap(0.10)
        delta = tap.modify(p0).z / p0.z - 1.0
        starts = p0.segment_positions(tap.velocity)
        deepest = starts[int(np.argmin(delta))]
        assert abs(deepest - 0.10) < 5e-3
