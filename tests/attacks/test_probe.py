"""Dedicated unit tests for the probing attack models.

The probe models are the campaign layer's search space (placement and
coupling are exactly what :class:`ProbePlacementSearch` titrates), so
their parameter semantics get their own suite: validation, disturbance
monotonicity in every knob, and determinism.
"""

import numpy as np
import pytest

from repro.attacks import CapacitiveSnoop, MagneticProbe


def _disturbance(profile, modified):
    return float(np.max(np.abs(modified.z / profile.z - 1.0)))


class TestMagneticProbeParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            MagneticProbe(0.1, coupling=-1e-6)
        with pytest.raises(ValueError):
            MagneticProbe(0.1, extent_m=0.0)
        with pytest.raises(ValueError):
            MagneticProbe(0.1, extent_m=-1e-3)
        with pytest.raises(ValueError):
            MagneticProbe(0.1, velocity=0.0)

    def test_zero_coupling_is_identity(self, line):
        p0 = line.full_profile
        p = MagneticProbe(0.12, coupling=0.0).modify(p0)
        np.testing.assert_allclose(p.z, p0.z)

    def test_disturbance_monotone_in_coupling(self, line):
        """More coupling, more disturbance — the backoff loop's premise."""
        p0 = line.full_profile
        couplings = [0.002, 0.005, 0.01, 0.018, 0.03]
        disturbances = [
            _disturbance(p0, MagneticProbe(0.12, coupling=c).modify(p0))
            for c in couplings
        ]
        assert disturbances == sorted(disturbances)
        assert disturbances[0] > 0

    def test_peak_tracks_coupling_linearly(self, line):
        p0 = line.full_profile
        d1 = _disturbance(p0, MagneticProbe(0.12, coupling=0.01).modify(p0))
        d2 = _disturbance(p0, MagneticProbe(0.12, coupling=0.02).modify(p0))
        assert d2 == pytest.approx(2 * d1, rel=1e-6)

    def test_wider_extent_spreads_disturbance(self, line):
        p0 = line.full_profile
        narrow = MagneticProbe(0.12, extent_m=2e-3).modify(p0)
        wide = MagneticProbe(0.12, extent_m=10e-3).modify(p0)
        def affected(p):
            return int(np.sum(np.abs(p.z / p0.z - 1.0) > 1e-4))

        assert affected(wide) > affected(narrow)

    def test_modify_is_pure_and_deterministic(self, line):
        p0 = line.full_profile
        probe = MagneticProbe(0.12)
        a, b = probe.modify(p0), probe.modify(p0)
        np.testing.assert_array_equal(a.z, b.z)
        # The input profile is untouched (modifiers must not mutate).
        np.testing.assert_array_equal(
            p0.z, line.full_profile.z
        )


class TestCapacitiveSnoopParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacitiveSnoop(0.1, loading=-0.01)
        with pytest.raises(ValueError):
            CapacitiveSnoop(0.1, extent_m=0.0)

    def test_disturbance_monotone_in_loading(self, line):
        p0 = line.full_profile
        loadings = [0.01, 0.03, 0.05, 0.1]
        disturbances = [
            _disturbance(p0, CapacitiveSnoop(0.12, loading=l).modify(p0))
            for l in loadings
        ]
        assert disturbances == sorted(disturbances)

    def test_signs_oppose_the_magnetic_probe(self, line):
        """Inductive raises Z, capacitive lowers it — the physics tags."""
        p0 = line.full_profile
        up = MagneticProbe(0.12).modify(p0).z / p0.z - 1.0
        down = CapacitiveSnoop(0.12).modify(p0).z / p0.z - 1.0
        assert up.max() > 0 and up.min() >= -1e-12
        assert down.min() < 0 and down.max() <= 1e-12

    def test_position_reported_for_localisation(self):
        assert CapacitiveSnoop(0.07).location_m() == 0.07
        assert MagneticProbe(0.21).location_m() == 0.21
