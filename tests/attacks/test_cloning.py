"""Unit tests for the IIP cloning attacker."""

import numpy as np
import pytest

from repro.attacks.cloning import (
    COMMERCIAL,
    HOBBYIST,
    STATE_OF_THE_ART,
    CloningAttacker,
    FabCapability,
)


class TestFabCapability:
    def test_tiers_ordered_by_capability(self):
        assert (
            HOBBYIST.patterning_resolution_m
            > COMMERCIAL.patterning_resolution_m
            > STATE_OF_THE_ART.patterning_resolution_m
        )
        assert HOBBYIST.process_sigma >= COMMERCIAL.process_sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            FabCapability("x", patterning_resolution_m=0.0,
                          process_sigma=0.01, impedance_accuracy=0.01)
        with pytest.raises(ValueError):
            FabCapability("x", patterning_resolution_m=1e-3,
                          process_sigma=-0.01, impedance_accuracy=0.01)


class TestCommandedProfile:
    def test_boxcar_preserves_mean(self, line):
        attacker = CloningAttacker(COMMERCIAL, np.random.default_rng(0))
        profile = line.full_profile
        velocity = line.material.velocity_at(line.material.t_ref_c)
        commanded = attacker.commanded_profile(profile, velocity)
        assert commanded.mean() == pytest.approx(profile.z.mean(), rel=1e-6)

    def test_finer_patterning_tracks_target_better(self, line):
        profile = line.full_profile
        velocity = line.material.velocity_at(line.material.t_ref_c)
        coarse = CloningAttacker(HOBBYIST, np.random.default_rng(0))
        fine = CloningAttacker(STATE_OF_THE_ART, np.random.default_rng(0))
        err_coarse = np.abs(
            coarse.commanded_profile(profile, velocity) - profile.z
        ).mean()
        err_fine = np.abs(
            fine.commanded_profile(profile, velocity) - profile.z
        ).mean()
        assert err_fine < err_coarse


class TestFabricate:
    def test_clone_same_geometry(self, line):
        attacker = CloningAttacker(COMMERCIAL, np.random.default_rng(0))
        clone = attacker.fabricate(line)
        assert clone.board_profile.n_segments == line.full_profile.n_segments
        assert np.allclose(
            clone.board_profile.tau, line.full_profile.tau, rtol=1e-12, atol=0
        )

    def test_clone_differs_from_target(self, line):
        attacker = CloningAttacker(COMMERCIAL, np.random.default_rng(0))
        clone = attacker.fabricate(line)
        assert not np.allclose(
            clone.board_profile.z, line.full_profile.z, rtol=1e-4, atol=0
        )

    def test_clones_differ_from_each_other(self, line):
        """The attacker's own process noise is fresh per attempt."""
        attacker = CloningAttacker(COMMERCIAL, np.random.default_rng(0))
        a = attacker.fabricate(line)
        b = attacker.fabricate(line)
        assert not np.allclose(a.board_profile.z, b.board_profile.z)

    def test_better_fab_closer_clone(self, line):
        """Fabrication quality monotonically improves the clone's fidelity."""
        errors = []
        for tier in (HOBBYIST, COMMERCIAL, STATE_OF_THE_ART):
            attacker = CloningAttacker(tier, np.random.default_rng(1))
            clones = [attacker.fabricate(line) for _ in range(6)]
            err = np.mean(
                [
                    np.std(c.board_profile.z / line.full_profile.z - 1.0)
                    for c in clones
                ]
            )
            errors.append(err)
        assert errors[0] > errors[1] > errors[2]
