"""Unit tests for profile-fitting cloning: the layer-peeling pair.

The contract everything rests on: :func:`peel_profile` is the exact
inverse of :func:`impulse_taps` — noiseless taps recover every segment
impedance and the termination to machine precision, on real manufactured
(lossy) lines.
"""

import numpy as np
import pytest

from repro.attacks import (
    COMMERCIAL,
    AdaptiveCloningAttacker,
    CloningAttacker,
    ProfileSubstitution,
    impulse_taps,
    peel_profile,
)
from repro.txline.profile import ImpedanceProfile


def _peel_roundtrip(profile):
    taps = impulse_taps(profile)
    return peel_profile(
        taps,
        tau_s=float(profile.tau.mean()),
        n_segments=profile.n_segments,
        loss_per_segment=profile.loss_per_segment,
        z_source=profile.z_source,
    )


class TestLayerPeeling:
    def test_roundtrip_recovers_manufactured_line(self, line):
        """peel(forward(z)) == z on a real (lossy, 170-segment) line."""
        profile = line.full_profile
        fitted = _peel_roundtrip(profile)
        np.testing.assert_allclose(fitted.z, profile.z, rtol=1e-9)
        assert fitted.z_load == pytest.approx(profile.z_load, rel=1e-9)

    def test_roundtrip_on_lossless_synthetic(self):
        rng = np.random.default_rng(3)
        z = 50.0 * (1.0 + 0.05 * rng.standard_normal(24))
        profile = ImpedanceProfile(
            z=z, tau=np.full(24, 1e-11), z_load=60.0
        )
        fitted = _peel_roundtrip(profile)
        np.testing.assert_allclose(fitted.z, z, rtol=1e-10)
        assert fitted.z_load == pytest.approx(60.0, rel=1e-10)

    def test_first_tap_is_front_reflection(self):
        profile = ImpedanceProfile(
            z=np.array([75.0, 75.0]), tau=np.full(2, 1e-11)
        )
        taps = impulse_taps(profile)
        assert taps[0] == pytest.approx((75.0 - 50.0) / (75.0 + 50.0))

    def test_matched_line_reflects_only_at_load(self):
        profile = ImpedanceProfile(
            z=np.full(8, 50.0), tau=np.full(8, 1e-11), z_load=100.0
        )
        taps = impulse_taps(profile)
        np.testing.assert_allclose(taps[:-1], 0.0, atol=1e-15)
        assert taps[-1] == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        profile = ImpedanceProfile(
            z=np.full(4, 50.0), tau=np.full(4, 1e-11)
        )
        with pytest.raises(ValueError):
            impulse_taps(profile, n_taps=0)
        with pytest.raises(ValueError):
            impulse_taps(profile, z_ref=0.0)
        taps = impulse_taps(profile)
        with pytest.raises(ValueError):
            peel_profile(taps, tau_s=0.0, n_segments=4)
        with pytest.raises(ValueError):
            peel_profile(taps[:3], tau_s=1e-11, n_segments=4)
        with pytest.raises(ValueError):
            peel_profile(taps, tau_s=1e-11, n_segments=4,
                         loss_per_segment=0.0)
        with pytest.raises(ValueError):
            # Non-uniform tau is outside the tap algebra.
            impulse_taps(
                ImpedanceProfile(
                    z=np.full(4, 50.0),
                    tau=np.array([1e-11, 2e-11, 1e-11, 1e-11]),
                )
            )

    def test_noise_degrades_with_depth(self, line):
        """Bench noise hurts deep segments most — the attack's limit."""
        profile = line.full_profile
        rng = np.random.default_rng(7)
        taps = impulse_taps(profile)
        noisy = taps + rng.normal(0.0, 5e-4, size=taps.shape)
        fitted = peel_profile(
            noisy,
            tau_s=float(profile.tau.mean()),
            n_segments=profile.n_segments,
            loss_per_segment=profile.loss_per_segment,
        )
        err = np.abs(fitted.z - profile.z)
        n = len(err)
        assert err[: n // 4].mean() < err[-n // 4:].mean()


class TestProfileSubstitution:
    def test_replaces_wholesale(self, line):
        p0 = line.full_profile
        counterfeit = p0.with_impedance(p0.z * 1.01)
        sub = ProfileSubstitution(counterfeit)
        assert sub.modify(p0) is counterfeit

    def test_segment_count_must_match(self, line):
        p0 = line.full_profile
        short = ImpedanceProfile(
            z=p0.z[:-1].copy(), tau=p0.tau[:-1].copy()
        )
        with pytest.raises(ValueError):
            ProfileSubstitution(short).modify(p0)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            ProfileSubstitution("not a profile")


class TestAdaptiveCloningAttacker:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCloningAttacker(COMMERCIAL, bench_noise=-1.0)
        with pytest.raises(ValueError):
            AdaptiveCloningAttacker(COMMERCIAL, trim_gain=0.0)
        with pytest.raises(ValueError):
            AdaptiveCloningAttacker(COMMERCIAL, trim_pitch_fraction=0.0)

    def test_requires_observation_before_fit(self):
        attacker = AdaptiveCloningAttacker(COMMERCIAL)
        with pytest.raises(RuntimeError):
            attacker.fit()
        with pytest.raises(RuntimeError):
            attacker.clone_profile()

    def test_trimming_converges_below_one_shot(self, line):
        """The adaptive loop beats the one-shot fab floor."""
        true = line.full_profile
        oneshot = CloningAttacker(
            COMMERCIAL, np.random.default_rng(11)
        ).fabricate(line).full_profile
        def rel(p):
            return float(
                np.sqrt(np.mean(((p.z - true.z) / true.z) ** 2))
            )

        attacker = AdaptiveCloningAttacker(COMMERCIAL)
        rng = np.random.default_rng(12)
        errors = []
        for _ in range(5):
            attacker.observe(line, rng)
            errors.append(rel(attacker.advance(rng)))
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.5 * rel(oneshot)

    def test_deterministic_under_a_seeded_generator(self, line):
        def play(seed):
            attacker = AdaptiveCloningAttacker(COMMERCIAL)
            rng = np.random.default_rng(seed)
            for _ in range(3):
                attacker.observe(line, rng)
                profile = attacker.advance(rng)
            return profile

        a, b = play(5), play(5)
        np.testing.assert_array_equal(a.z, b.z)
        assert a.z_load == b.z_load
