"""Unit tests for the chiplet-boundary interposer implant."""

import numpy as np
import pytest

from repro.attacks import InterposerImplant


class TestInterposerImplant:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterposerImplant(boundary_m=-0.01)
        with pytest.raises(ValueError):
            InterposerImplant(0.1, footprint_m=0.0)
        with pytest.raises(ValueError):
            InterposerImplant(0.1, series_delta=-0.01)
        with pytest.raises(ValueError):
            InterposerImplant(0.1, shunt_delta=-0.01)
        with pytest.raises(ValueError):
            InterposerImplant(0.1, velocity=0.0)

    def test_signed_doublet_straddles_boundary(self, line):
        """Series rise before the boundary, shunt dip after it."""
        p0 = line.full_profile
        implant = InterposerImplant(boundary_m=0.12)
        delta = implant.modify(p0).z / p0.z - 1.0
        starts = p0.segment_positions(implant.velocity)
        rise_at = starts[int(np.argmax(delta))]
        dip_at = starts[int(np.argmin(delta))]
        assert delta.max() > 0 and delta.min() < 0
        assert rise_at < 0.12 < dip_at

    def test_deltas_scale_the_signature(self, line):
        p0 = line.full_profile
        small = InterposerImplant(0.12, series_delta=0.01, shunt_delta=0.01)
        large = InterposerImplant(0.12, series_delta=0.04, shunt_delta=0.04)
        def mag(imp):
            return float(np.max(np.abs(imp.modify(p0).z / p0.z - 1)))

        assert mag(large) > mag(small)

    def test_location_and_describe(self):
        implant = InterposerImplant(boundary_m=0.12)
        assert implant.location_m() == 0.12
        assert "interposer-implant" in implant.describe()

    def test_mechanisms_cover_all_channels(self):
        assert InterposerImplant(0.1).mechanisms == {
            "inductive", "capacitive", "galvanic"
        }
