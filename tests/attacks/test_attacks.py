"""Unit tests for the physical attack models."""

import numpy as np
import pytest

from repro.attacks import (
    Attack,
    AttackTimeline,
    CapacitiveSnoop,
    ChipSwap,
    ColdBootSwap,
    LoadModification,
    MagneticProbe,
    TimedAttack,
    WireTap,
    WireTapResidue,
)


class TestMagneticProbe:
    def test_raises_local_impedance(self, line):
        p0 = line.full_profile
        p = MagneticProbe(0.12).modify(p0)
        delta = p.z / p0.z - 1.0
        assert delta.max() > 0  # inductive bump raises Z
        assert delta.min() >= -1e-12

    def test_bump_centered_at_position(self, line):
        p0 = line.full_profile
        probe = MagneticProbe(0.10)
        p = probe.modify(p0)
        delta = p.z / p0.z - 1.0
        starts = p0.segment_positions(probe.velocity)
        peak_pos = starts[int(np.argmax(delta))]
        assert abs(peak_pos - 0.10) < 5e-3

    def test_bump_is_localised(self, line):
        p0 = line.full_profile
        probe = MagneticProbe(0.12, extent_m=4e-3)
        delta = probe.modify(p0).z / p0.z - 1.0
        affected = np.sum(delta > 0.1 * delta.max())
        assert affected < 12  # a few segments, not the whole line

    def test_location_and_describe(self):
        probe = MagneticProbe(0.12)
        assert probe.location_m() == 0.12
        assert "magnetic-probe" in probe.describe()
        assert "12.0 cm" in probe.describe()

    def test_mechanism_tag(self):
        assert MagneticProbe(0.1).mechanisms == {"inductive"}

    def test_validation(self):
        with pytest.raises(ValueError):
            MagneticProbe(0.1, coupling=-0.01)
        with pytest.raises(ValueError):
            MagneticProbe(0.1, extent_m=0.0)


class TestCapacitiveSnoop:
    def test_lowers_local_impedance(self, line):
        p0 = line.full_profile
        p = CapacitiveSnoop(0.12).modify(p0)
        delta = p.z / p0.z - 1.0
        assert delta.min() < 0
        assert delta.max() <= 1e-12

    def test_mechanism_tag(self):
        assert CapacitiveSnoop(0.1).mechanisms == {"capacitive"}


class TestWireTap:
    def test_large_local_drop(self, line):
        p0 = line.full_profile
        p = WireTap(0.12).modify(p0)
        delta = p.z / p0.z - 1.0
        # Parallel 100 ohm on ~50 ohm drops local impedance by ~1/3.
        assert delta.min() < -0.2

    def test_residue_smaller_than_tap(self, line):
        p0 = line.full_profile
        tap = WireTap(0.12)
        tapped = tap.modify(p0)
        residue = tap.residue().modify(p0)
        tap_mag = np.abs(tapped.z / p0.z - 1).max()
        res_mag = np.abs(residue.z / p0.z - 1).max()
        assert 0 < res_mag < tap_mag

    def test_residue_nonzero(self, line):
        """Removal does not restore the fingerprint (paper IV-E)."""
        p0 = line.full_profile
        residue = WireTap(0.12).residue().modify(p0)
        assert not np.allclose(residue.z, p0.z)

    def test_residue_location(self):
        res = WireTap(0.12).residue()
        assert isinstance(res, WireTapResidue)
        assert res.location_m() == 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            WireTap(0.1, stub_impedance=0.0)
        with pytest.raises(ValueError):
            WireTap(0.1, damage=-0.1)


class TestLoadAttacks:
    def test_load_modification_changes_termination(self, populated_line):
        p0 = populated_line.full_profile
        p = LoadModification(load_scale=1.2).modify(p0)
        assert p.z_load == pytest.approx(p0.z_load * 1.2)

    def test_load_modification_touches_trailing_segments_only(
        self, populated_line
    ):
        p0 = populated_line.full_profile
        p = LoadModification(n_segments=3).modify(p0)
        assert np.array_equal(p.z[:-3], p0.z[:-3])
        assert not np.allclose(p.z[-3:], p0.z[-3:])

    def test_chip_swap_changes_load_and_package(self, populated_line):
        p0 = populated_line.full_profile
        p = ChipSwap(replacement_seed=55).modify(p0)
        assert p.z_load != p0.z_load
        assert not np.allclose(p.z[-3:], p0.z[-3:])

    def test_chip_swap_board_untouched(self, populated_line):
        p0 = populated_line.full_profile
        p = ChipSwap(replacement_seed=55).modify(p0)
        n_board = populated_line.board_profile.n_segments
        assert np.array_equal(p.z[: n_board - 1], p0.z[: n_board - 1])

    def test_chip_swap_reproducible(self, populated_line):
        a = ChipSwap(replacement_seed=9).modify(populated_line.full_profile)
        b = ChipSwap(replacement_seed=9).modify(populated_line.full_profile)
        assert np.array_equal(a.z, b.z) and a.z_load == b.z_load

    def test_cold_boot_swap_exposes_foreign_line(self, line, other_line):
        swap = ColdBootSwap(foreign_line=other_line)
        assert swap.measured_line() is other_line

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadModification(load_scale=0.0)
        with pytest.raises(ValueError):
            LoadModification(n_segments=0)


class TestTimeline:
    def test_active_window(self):
        atk = MagneticProbe(0.1)
        timed = TimedAttack(atk, start_s=1.0, stop_s=2.0)
        assert not timed.active_at(0.5)
        assert timed.active_at(1.0)
        assert timed.active_at(1.99)
        assert not timed.active_at(2.0)

    def test_open_ended(self):
        timed = TimedAttack(MagneticProbe(0.1), start_s=1.0)
        assert timed.active_at(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimedAttack(MagneticProbe(0.1), start_s=-1.0)
        with pytest.raises(ValueError):
            TimedAttack(MagneticProbe(0.1), start_s=2.0, stop_s=1.0)

    def test_timeline_chaining_and_query(self):
        a, b = MagneticProbe(0.05), WireTap(0.2)
        tl = AttackTimeline().add(a, 1.0).add(b, 5.0, 6.0)
        assert tl.active_at(0.0) == ()
        assert tl.active_at(1.5) == (a,)
        assert tl.active_at(5.5) == (a, b)
        assert tl.active_at(7.0) == (a,)

    def test_first_onset(self):
        tl = AttackTimeline().add(MagneticProbe(0.1), 3.0).add(WireTap(0.2), 1.5)
        assert tl.first_onset() == 1.5
        assert AttackTimeline().first_onset() is None

    def test_base_attack_abstract(self, line):
        with pytest.raises(NotImplementedError):
            Attack().modify(line.full_profile)
