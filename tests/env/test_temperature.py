"""Unit tests for the temperature environment model."""

import numpy as np
import pytest

from repro.env.temperature import TemperatureCondition, TemperatureSweep
from repro.txline.materials import FR4


class TestTemperatureCondition:
    def test_reference_temperature_near_identity(self, line):
        cond = TemperatureCondition(FR4.t_ref_c)
        p = cond.modify(line.full_profile)
        assert np.allclose(p.z, line.full_profile.z, rtol=1e-9)
        assert np.allclose(p.tau, line.full_profile.tau, rtol=1e-9)

    def test_hot_lowers_impedance_and_slows_line(self, line):
        p0 = line.full_profile
        p = TemperatureCondition(75.0).modify(p0)
        assert p.z.mean() < p0.z.mean()
        assert p.one_way_delay > p0.one_way_delay

    def test_common_mode_preserves_contrast(self, line):
        """The normalised IIP survives: z ratios change only slightly."""
        p0 = line.full_profile
        p = TemperatureCondition(75.0).modify(p0)
        ratio = p.z / p0.z
        # Common mode dominates: segmentwise spread of the ratio is tiny
        # compared to its mean shift.
        assert ratio.std() < 0.15 * abs(1 - ratio.mean())

    def test_differential_residue_is_line_specific(self, line, other_line):
        cond = TemperatureCondition(75.0)
        r1 = cond.modify(line.full_profile).z / line.full_profile.z
        r2 = cond.modify(other_line.full_profile).z / other_line.full_profile.z
        n = min(len(r1), len(r2))
        assert not np.allclose(r1[:n], r2[:n])

    def test_deterministic_per_line(self, line):
        cond = TemperatureCondition(60.0)
        a = cond.modify(line.full_profile)
        b = cond.modify(line.full_profile)
        assert np.array_equal(a.z, b.z)

    def test_load_scales_with_line(self, line):
        """Matched termination stays matched (it sits on the same board)."""
        p0 = line.full_profile
        p = TemperatureCondition(75.0).modify(p0)
        assert p.load_reflection() == pytest.approx(
            p0.load_reflection(), abs=1e-3
        )


class TestTemperatureSweep:
    def test_triangular_profile(self):
        sweep = TemperatureSweep(23.0, 75.0)
        n = 101
        temps = [sweep.temperature_at(i, n) for i in range(n)]
        assert temps[0] == pytest.approx(23.0)
        assert max(temps) == pytest.approx(75.0)
        assert temps[-1] == pytest.approx(23.0)
        assert temps[n // 2] == pytest.approx(75.0)

    def test_single_capture_degenerate(self):
        sweep = TemperatureSweep(23.0, 75.0)
        assert sweep.temperature_at(0, 1) == 23.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            TemperatureSweep(75.0, 23.0)

    def test_at_returns_condition(self):
        cond = TemperatureSweep(23.0, 75.0).at(5, 10)
        assert isinstance(cond, TemperatureCondition)

    def test_batch_fields_shapes(self, line):
        sweep = TemperatureSweep(23.0, 75.0)
        z, tau = sweep.batch_fields(line.full_profile, 10)
        s = line.full_profile.n_segments
        assert z.shape == (10, s) and tau.shape == (10, s)

    def test_batch_matches_scalar_condition(self, line):
        """Row i of the batch equals applying the per-capture condition."""
        sweep = TemperatureSweep(23.0, 75.0)
        n = 7
        z, tau = sweep.batch_fields(line.full_profile, n)
        for i in [0, 3, 6]:
            cond = sweep.at(i, n)
            p = cond.modify(line.full_profile)
            assert np.allclose(z[i], p.z, rtol=1e-12, atol=0)
            assert np.allclose(tau[i], p.tau, rtol=1e-12, atol=0)

    def test_batch_rejects_zero(self, line):
        with pytest.raises(ValueError):
            TemperatureSweep().batch_fields(line.full_profile, 0)
