"""Unit tests for vibration and EMI environment models."""

import numpy as np
import pytest

from repro.env.emi import (
    EMIEnvironment,
    nearby_digital_circuit,
    synchronous_aggressor,
)
from repro.env.vibration import ChirpExcitation, VibrationCondition
from repro.signals.noise import SinusoidalEMI


class TestChirpExcitation:
    def test_strain_bounded_by_amplitude(self):
        chirp = ChirpExcitation(strain_amplitude=1e-3)
        s = chirp.strain_at(np.linspace(0, 20, 5000))
        assert np.max(np.abs(s)) <= 1e-3 + 1e-15

    def test_frequency_sweeps_up(self):
        chirp = ChirpExcitation(f_start_hz=1.0, f_stop_hz=50.0, sweep_time_s=10.0)
        assert chirp.instantaneous_frequency(0.0) == pytest.approx(1.0)
        assert chirp.instantaneous_frequency(9.999) == pytest.approx(50.0, rel=0.01)

    def test_sweep_repeats(self):
        chirp = ChirpExcitation(sweep_time_s=10.0)
        assert chirp.instantaneous_frequency(0.5) == pytest.approx(
            chirp.instantaneous_frequency(10.5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ChirpExcitation(strain_amplitude=-1e-3)
        with pytest.raises(ValueError):
            ChirpExcitation(f_start_hz=0.0)
        with pytest.raises(ValueError):
            ChirpExcitation(sweep_time_s=0.0)


class TestVibrationCondition:
    def test_zero_strain_identity(self, line):
        p = VibrationCondition(strain=0.0).modify(line.full_profile)
        assert np.allclose(p.z, line.full_profile.z)
        assert np.allclose(p.tau, line.full_profile.tau)

    def test_strain_perturbs_z_and_tau(self, line):
        p0 = line.full_profile
        p = VibrationCondition(strain=0.01).modify(p0)
        assert not np.allclose(p.z, p0.z, rtol=1e-9, atol=0)
        assert not np.allclose(p.tau, p0.tau, rtol=1e-9, atol=0)

    def test_opposite_strains_bracket_identity(self, line):
        p0 = line.full_profile
        plus = VibrationCondition(strain=0.01).modify(p0)
        minus = VibrationCondition(strain=-0.01).modify(p0)
        mid = 0.5 * (plus.z + minus.z)
        assert np.allclose(mid, p0.z, rtol=1e-3)

    def test_batch_matches_scalar(self, line):
        strains = np.array([0.0, 0.005, -0.005])
        z, tau = VibrationCondition.batch_fields(line.full_profile, strains)
        for i, s in enumerate(strains):
            p = VibrationCondition(strain=float(s)).modify(line.full_profile)
            assert np.allclose(z[i], p.z, rtol=1e-12, atol=0)
            assert np.allclose(tau[i], p.tau, rtol=1e-12, atol=0)

    def test_mode_shape_line_specific(self, line, other_line):
        z1, _ = VibrationCondition.batch_fields(
            line.full_profile, np.array([0.01])
        )
        z2, _ = VibrationCondition.batch_fields(
            other_line.full_profile, np.array([0.01])
        )
        r1 = z1[0] / line.full_profile.z
        r2 = z2[0] / other_line.full_profile.z
        n = min(len(r1), len(r2))
        assert not np.allclose(r1[:n], r2[:n])


class TestEMIEnvironment:
    def test_async_shape(self, rng):
        env = nearby_digital_circuit()
        v = env.trial_voltages(10, 7, rng)
        assert v.shape == (10, 7)

    def test_async_trials_independent(self, rng):
        env = EMIEnvironment([SinusoidalEMI(1.0, 1e6)], synchronous=False)
        v = env.trial_voltages(1, 1000, rng)
        assert np.std(v) > 0.3  # trials see different phases

    def test_sync_repeats_across_trials(self, rng):
        env = synchronous_aggressor()
        v = env.trial_voltages(5, 9, rng)
        assert np.all(v == v[:, :1])

    def test_async_mean_rejection(self, rng):
        """Averaging over trials suppresses an async aggressor ~ 1/sqrt(R)."""
        env = EMIEnvironment([SinusoidalEMI(1.0, 1e6)], synchronous=False)
        v = env.trial_voltages(200, 400, rng)
        per_point_mean = v.mean(axis=1)
        assert np.std(per_point_mean) < 0.1  # vs 0.71 unaveraged

    def test_sync_mean_not_rejected(self, rng):
        env = synchronous_aggressor(amplitude=1.0)
        v = env.trial_voltages(200, 400, rng)
        per_point_mean = v.mean(axis=1)
        assert np.std(per_point_mean) > 0.3
