"""Unit tests for the aging model."""

import numpy as np
import pytest

from repro.env.aging import AgingModel


class TestAgingModel:
    def test_zero_age_identity(self, line):
        p = AgingModel().at_age(line.full_profile, 0.0).modify(line.full_profile)
        assert np.allclose(p.z, line.full_profile.z, rtol=1e-12, atol=0)

    def test_drift_grows_with_age(self, line):
        model = AgingModel(drift_per_year=0.01)
        p0 = line.full_profile
        young = model.at_age(p0, 1.0).modify(p0)
        old = model.at_age(p0, 5.0).modify(p0)
        def drift(p):
            return np.std(p.z / p0.z - 1.0)

        assert drift(old) > drift(young) > 0

    def test_drift_rms_matches_rate(self, line):
        model = AgingModel(drift_per_year=0.005, connector_fretting=0.0)
        p0 = line.full_profile
        aged = model.at_age(p0, 2.0).modify(p0)
        rms = np.sqrt(np.mean((aged.z / p0.z - 1.0) ** 2))
        assert rms == pytest.approx(0.01, rel=0.05)

    def test_pattern_fixed_per_line(self, line):
        """The drift direction is a property of the line, not of time."""
        model = AgingModel()
        p0 = line.full_profile
        a = model.at_age(p0, 1.0).modify(p0).z / p0.z - 1.0
        b = model.at_age(p0, 2.0).modify(p0).z / p0.z - 1.0
        # b is (approximately) 2a: same pattern, doubled amplitude.
        assert np.allclose(b, 2 * a, rtol=1e-9)

    def test_pattern_line_specific(self, line, other_line):
        model = AgingModel()
        a = model.at_age(line.full_profile, 1.0).modify(line.full_profile)
        b = model.at_age(other_line.full_profile, 1.0).modify(
            other_line.full_profile
        )
        ra = a.z / line.full_profile.z
        rb = b.z / other_line.full_profile.z
        n = min(len(ra), len(rb))
        assert not np.allclose(ra[:n], rb[:n])

    def test_connector_fretting_accents_ends(self, line):
        model = AgingModel(drift_per_year=0.01, connector_fretting=5.0)
        p0 = line.full_profile
        drift = np.abs(model.at_age(p0, 1.0).modify(p0).z / p0.z - 1.0)
        k = len(drift) // 20
        ends = np.concatenate([drift[:k], drift[-k:]]).mean()
        middle = drift[k:-k].mean()
        assert ends > middle

    def test_extreme_age_stays_physical(self, line):
        model = AgingModel(drift_per_year=0.1)
        p = model.at_age(line.full_profile, 100.0).modify(line.full_profile)
        assert np.all(p.z > 0)

    def test_validation(self, line):
        with pytest.raises(ValueError):
            AgingModel(drift_per_year=-0.001)
        with pytest.raises(ValueError):
            AgingModel().at_age(line.full_profile, -1.0)
