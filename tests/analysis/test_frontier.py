"""Unit tests for the ROC / detection-latency frontier analysis."""

import numpy as np
import pytest

from repro.analysis import (
    LatencyPoint,
    RocPoint,
    detection_latency_frontier,
    operating_point,
    pareto_front,
    roc_auc,
    roc_sweep,
)


class TestRocSweep:
    def test_separable_samples_give_perfect_corner(self):
        points = roc_sweep([0.1, 0.2, 0.3], [0.7, 0.8, 0.9])
        # Some threshold catches every attack with zero false alarms.
        assert any(p.fpr == 0.0 and p.tpr == 1.0 for p in points)
        assert roc_auc(points) == pytest.approx(1.0)

    def test_identical_samples_are_chance(self):
        samples = [0.2, 0.4, 0.6, 0.8]
        points = roc_sweep(samples, samples)
        assert roc_auc(points) == pytest.approx(0.5)
        for p in points:
            assert p.fpr == pytest.approx(p.tpr)

    def test_both_corners_always_present(self):
        points = roc_sweep([0.5, 0.6], [0.55, 0.7])
        assert points[0].fpr == 1.0 and points[0].tpr == 1.0
        assert points[-1].fpr == 0.0 and points[-1].tpr == 0.0

    def test_thresholds_sorted_and_rates_monotone(self):
        rng = np.random.default_rng(0)
        points = roc_sweep(rng.normal(0, 1, 50), rng.normal(1, 1, 50))
        thresholds = [p.threshold for p in points]
        assert thresholds == sorted(thresholds)
        fprs = [p.fpr for p in points]
        assert fprs == sorted(fprs, reverse=True)

    def test_explicit_threshold_grid(self):
        points = roc_sweep([0.1, 0.3], [0.2, 0.4], thresholds=[0.25])
        assert len(points) == 1
        assert points[0].fpr == 0.5 and points[0].tpr == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_sweep([], [0.5])
        with pytest.raises(ValueError):
            roc_sweep([0.5], [np.nan])
        with pytest.raises(ValueError):
            roc_sweep([0.5], [0.5], thresholds=[])


class TestOperatingPoint:
    def test_budget_selects_best_tpr(self):
        points = roc_sweep([0.1, 0.2, 0.5], [0.15, 0.6, 0.7])
        best = operating_point(points, max_fpr=0.0)
        assert best.fpr == 0.0
        assert best.tpr == pytest.approx(2.0 / 3.0)

    def test_unreachable_budget_raises(self):
        points = [RocPoint(threshold=0.5, fpr=0.2, tpr=0.9)]
        with pytest.raises(ValueError):
            operating_point(points, max_fpr=0.1)
        with pytest.raises(ValueError):
            operating_point(points, max_fpr=1.5)


class TestLatencyFrontier:
    def test_decaying_adversary_shows_the_trade(self):
        """Strict thresholds catch round 1; lax ones never fire."""
        clean = [0.01, 0.012, 0.011]
        attack = [0.5, 0.1, 0.02]  # adaptive decay
        points = detection_latency_frontier(clean, attack)
        strict = min(points, key=lambda p: p.threshold)
        lax = max(points, key=lambda p: p.threshold)
        assert strict.rounds_to_detect == 1
        assert lax.rounds_to_detect is None
        assert not lax.detected

    def test_rounds_are_one_based_first_hits(self):
        points = detection_latency_frontier(
            [0.0], [0.1, 0.9, 0.9], thresholds=[0.5]
        )
        assert points[0].rounds_to_detect == 2

    def test_fpr_matches_roc_sweep(self):
        clean = [0.1, 0.2, 0.3, 0.4]
        attack = [0.25, 0.35]
        roc = roc_sweep(clean, attack)
        latency = detection_latency_frontier(clean, attack)
        assert [p.fpr for p in roc] == [p.fpr for p in latency]


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            LatencyPoint(threshold=0.1, fpr=0.5, rounds_to_detect=1),
            LatencyPoint(threshold=0.2, fpr=0.3, rounds_to_detect=1),
            LatencyPoint(threshold=0.3, fpr=0.3, rounds_to_detect=2),
            LatencyPoint(threshold=0.4, fpr=0.0, rounds_to_detect=None),
        ]
        front = pareto_front(points)
        assert [p.threshold for p in front] == [0.2]

    def test_undetected_never_dominates_detected(self):
        points = [
            LatencyPoint(threshold=0.1, fpr=0.0, rounds_to_detect=None),
            LatencyPoint(threshold=0.2, fpr=0.1, rounds_to_detect=3),
        ]
        front = pareto_front(points)
        assert any(p.rounds_to_detect == 3 for p in front)
