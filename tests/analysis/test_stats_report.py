"""Unit tests for the statistics and report-formatting helpers."""

import numpy as np
import pytest

from repro.analysis.report import format_histogram, format_series, format_table
from repro.analysis.stats import (
    bootstrap_eer,
    d_prime,
    det_points,
    overlap_coefficient,
)


class TestDPrime:
    def test_known_separation(self, rng):
        g = rng.normal(1.0, 1.0, 50_000)
        i = rng.normal(-1.0, 1.0, 50_000)
        assert d_prime(g, i) == pytest.approx(2.0, abs=0.05)

    def test_identical_is_zero(self, rng):
        x = rng.normal(0, 1, 10_000)
        assert abs(d_prime(x, x)) < 1e-12

    def test_zero_variance_infinite(self):
        assert d_prime(np.ones(10), np.zeros(10)) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            d_prime(np.ones(1), np.zeros(5))


class TestOverlap:
    def test_disjoint_is_zero(self):
        assert overlap_coefficient(
            np.linspace(2, 3, 500), np.linspace(0, 1, 500)
        ) == pytest.approx(0.0, abs=0.01)

    def test_identical_is_one(self, rng):
        x = rng.normal(0, 1, 5000)
        assert overlap_coefficient(x, x) == pytest.approx(1.0, abs=0.01)

    def test_partial_overlap(self, rng):
        g = rng.normal(1, 1, 50_000)
        i = rng.normal(-1, 1, 50_000)
        # Two unit Gaussians 2 apart overlap by 2*Phi(-1) ~ 0.317.
        assert overlap_coefficient(g, i) == pytest.approx(0.317, abs=0.03)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overlap_coefficient(np.zeros(0), np.ones(3))


class TestBootstrapEER:
    def test_interval_contains_point(self, rng):
        g = rng.normal(1, 1, 2000)
        i = rng.normal(-1, 1, 2000)
        result = bootstrap_eer(g, i, n_resamples=60, rng=rng)
        assert result.low <= result.point <= result.high

    def test_interval_tightens_with_samples(self, rng):
        g_small = rng.normal(1, 1, 200)
        i_small = rng.normal(-1, 1, 200)
        g_big = rng.normal(1, 1, 20_000)
        i_big = rng.normal(-1, 1, 20_000)
        small = bootstrap_eer(g_small, i_small, n_resamples=60, rng=rng)
        big = bootstrap_eer(g_big, i_big, n_resamples=60, rng=rng)
        assert (big.high - big.low) < (small.high - small.low)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_eer(np.ones(5), np.zeros(5), n_resamples=5, rng=rng)
        with pytest.raises(ValueError):
            bootstrap_eer(np.ones(5), np.zeros(5), confidence=0.3, rng=rng)


class TestDetPoints:
    def test_monotone_tradeoff(self, rng):
        g = rng.normal(1, 1, 50_000)
        i = rng.normal(-1, 1, 50_000)
        points = det_points(g, i)
        fnrs = [fnr for _, fnr in points]
        # Stricter FPR targets cost more misses.
        assert fnrs == sorted(fnrs, reverse=True)

    def test_theory_anchor(self, rng):
        """At FPR 10%, threshold = -1 + 1.2816; FNR = Phi(thr - 1)."""
        from scipy.special import ndtr

        g = rng.normal(1, 1, 200_000)
        i = rng.normal(-1, 1, 200_000)
        points = dict(det_points(g, i, fpr_targets=(0.1,)))
        expected = float(ndtr((-1 + 1.2816) - 1))
        assert points[0.1] == pytest.approx(expected, abs=0.01)

    def test_validation(self, rng):
        g = rng.normal(1, 1, 100)
        i = rng.normal(-1, 1, 100)
        with pytest.raises(ValueError):
            det_points(g, i, fpr_targets=(0.0,))
        with pytest.raises(ValueError):
            det_points(np.zeros(0), i)


class TestReportFormatting:
    def test_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_float_formatting(self):
        out = format_table(["v"], [[1.0e-9], [12345.678]])
        assert "1.000e-09" in out
        assert "12350" in out or "1.235e" in out

    def test_histogram_bins(self):
        out = format_histogram(np.linspace(0, 1, 100), n_bins=4)
        assert out.count("\n") == 4 - 1 + 0  # 4 bin rows, no title

    def test_histogram_empty(self):
        assert "(empty)" in format_histogram(np.zeros(0), title="h")

    def test_series(self):
        out = format_series("s", [1, 2], [3, 4], x_label="in", y_label="out")
        assert "in" in out and "out" in out and "s" in out
