"""Unit tests for the data-export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (
    capture_from_json,
    capture_to_json,
    scores_to_csv,
    waveform_to_csv,
)
from repro.signals.waveform import Waveform


class TestWaveformCsv:
    def test_basic_rows(self, tmp_path):
        wave = Waveform(np.array([1.0, 2.0, 3.0]), dt=1e-9)
        path = waveform_to_csv(wave, tmp_path / "w.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["time_s", "voltage"]
        assert len(rows) == 4
        assert float(rows[2][0]) == pytest.approx(1e-9)
        assert float(rows[2][1]) == pytest.approx(2.0)

    def test_distance_column(self, tmp_path):
        wave = Waveform(np.array([0.0, 1.0]), dt=2e-9)
        path = waveform_to_csv(wave, tmp_path / "w.csv", velocity=1.5e8)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["time_s", "distance_m", "voltage"]
        # distance = v*t/2 = 1.5e8 * 2e-9 / 2 = 0.15 m at the second sample.
        assert float(rows[2][1]) == pytest.approx(0.15)

    def test_velocity_validation(self, tmp_path):
        wave = Waveform(np.zeros(2), dt=1e-9)
        with pytest.raises(ValueError):
            waveform_to_csv(wave, tmp_path / "w.csv", velocity=0.0)


class TestScoresCsv:
    def test_labels_and_counts(self, tmp_path):
        path = scores_to_csv([0.9, 0.95], [0.5], tmp_path / "s.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["label", "score"]
        labels = [r[0] for r in rows[1:]]
        assert labels == ["genuine", "genuine", "impostor"]


class TestCaptureJson:
    def test_roundtrip(self, tmp_path, line, itdr):
        capture = itdr.capture(line)
        path = capture_to_json(capture, tmp_path / "cap.json")
        restored = capture_from_json(path)
        assert restored.line_name == capture.line_name
        assert restored.n_triggers == capture.n_triggers
        assert restored.duration_s == pytest.approx(capture.duration_s)
        assert np.allclose(
            restored.waveform.samples, capture.waveform.samples
        )
        assert restored.waveform.dt == pytest.approx(capture.waveform.dt)

    def test_json_is_plain(self, tmp_path, line, itdr):
        path = capture_to_json(itdr.capture(line), tmp_path / "cap.json")
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "line_name", "n_triggers", "duration_s", "dt", "t0", "samples",
        }

    def test_restored_capture_authenticates(
        self, tmp_path, line, itdr, enrolled_fingerprint
    ):
        """Exported captures stay usable: same similarity after roundtrip."""
        from repro.core.auth import capture_similarity

        capture = itdr.capture(line)
        restored = capture_from_json(
            capture_to_json(capture, tmp_path / "cap.json")
        )
        assert capture_similarity(
            restored, enrolled_fingerprint
        ) == pytest.approx(capture_similarity(capture, enrolled_fingerprint))
