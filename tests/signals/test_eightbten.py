"""Unit tests for the 8b/10b line code."""

import re

import pytest

from repro.signals.eightbten import (
    Decoder8b10b,
    Encoder8b10b,
    decode_bits,
    encode_bytes,
)


class TestEncoding:
    def test_symbol_length(self):
        sym = Encoder8b10b().encode_byte(0x00)
        assert len(sym) == 10

    def test_roundtrip_all_bytes(self):
        data = list(range(256))
        assert decode_bits(encode_bytes(data)) == data

    def test_roundtrip_random_stream(self, rng):
        data = rng.integers(0, 256, size=1000).tolist()
        assert decode_bits(encode_bytes(data)) == data

    def test_roundtrip_both_disparities(self):
        """Every byte decodes identically from RD- and RD+ contexts."""
        for byte in range(256):
            enc = Encoder8b10b()
            enc.running_disparity = -1
            minus = enc.encode_byte(byte)
            enc2 = Encoder8b10b()
            enc2.running_disparity = +1
            plus = enc2.encode_byte(byte)
            dec = Decoder8b10b()
            assert dec.decode_symbol(minus) == byte
            assert dec.decode_symbol(plus) == byte

    def test_byte_range_validation(self):
        with pytest.raises(ValueError):
            Encoder8b10b().encode_byte(256)

    def test_empty_stream(self):
        assert len(encode_bytes([])) == 0
        assert decode_bits([]) == []


class TestCodeProperties:
    def test_dc_balance(self, rng):
        """Long coded streams are exactly 50 % ones — the property that
        balances rising/falling edges (paper II-E)."""
        data = rng.integers(0, 256, size=4000).tolist()
        bits = encode_bytes(data)
        assert abs(bits.mean() - 0.5) < 0.002

    def test_running_disparity_bounded(self, rng):
        enc = Encoder8b10b()
        cumulative = 0
        for byte in rng.integers(0, 256, size=2000):
            sym = enc.encode_byte(int(byte))
            cumulative += int(sym.sum()) * 2 - 10
            assert abs(cumulative) <= 2
            assert enc.running_disparity in (-1, 1)

    def test_run_length_bounded(self, rng):
        """8b/10b guarantees no more than 5 identical bits in a row."""
        data = rng.integers(0, 256, size=4000).tolist()
        s = "".join(map(str, encode_bytes(data).tolist()))
        longest = max(len(m.group(0)) for m in re.finditer(r"0+|1+", s))
        assert longest <= 5

    def test_symbol_disparity_values(self):
        """Every symbol has disparity -2, 0, or +2."""
        enc = Encoder8b10b()
        for byte in range(256):
            sym = enc.encode_byte(byte)
            disparity = int(sym.sum()) * 2 - 10
            assert disparity in (-2, 0, 2)

    def test_reset(self):
        enc = Encoder8b10b()
        enc.encode_byte(0x55)
        enc.reset()
        assert enc.running_disparity == -1


class TestDecoder:
    def test_symbol_length_validation(self):
        with pytest.raises(ValueError):
            Decoder8b10b().decode_symbol([0] * 9)

    def test_invalid_code_rejected(self):
        # 000000 is not a valid 6b code (disparity -6).
        with pytest.raises(ValueError):
            Decoder8b10b().decode_symbol([0] * 10)

    def test_stream_length_validation(self):
        with pytest.raises(ValueError):
            decode_bits([0] * 15)
