"""Unit tests for the Waveform container."""

import numpy as np
import pytest

from repro.signals.waveform import Waveform


class TestConstruction:
    def test_basic_fields(self):
        w = Waveform(np.array([1.0, 2.0, 3.0]), dt=1e-9, t0=5e-9)
        assert len(w) == 3
        assert w.dt == 1e-9
        assert w.t0 == 5e-9

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros(3), dt=0.0)
        with pytest.raises(ValueError):
            Waveform(np.zeros(3), dt=-1e-9)

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros((2, 3)), dt=1e-9)

    def test_samples_coerced_to_float(self):
        w = Waveform(np.array([1, 2, 3]), dt=1.0)
        assert w.samples.dtype == float

    def test_duration(self):
        w = Waveform(np.zeros(10), dt=2.0)
        assert w.duration == 20.0

    def test_times_axis(self):
        w = Waveform(np.zeros(4), dt=0.5, t0=1.0)
        assert np.allclose(w.times, [1.0, 1.5, 2.0, 2.5])


class TestValueAt:
    def test_exact_sample(self):
        w = Waveform(np.array([0.0, 1.0, 4.0]), dt=1.0)
        assert w.value_at(2.0) == 4.0

    def test_interpolates(self):
        w = Waveform(np.array([0.0, 2.0]), dt=1.0)
        assert w.value_at(0.5) == pytest.approx(1.0)

    def test_clamps_outside(self):
        w = Waveform(np.array([3.0, 5.0]), dt=1.0)
        assert w.value_at(-10.0) == 3.0
        assert w.value_at(+10.0) == 5.0


class TestArithmetic:
    def test_add_and_subtract(self):
        a = Waveform(np.array([1.0, 2.0]), dt=1.0)
        b = Waveform(np.array([3.0, 4.0]), dt=1.0)
        assert np.allclose((a + b).samples, [4.0, 6.0])
        assert np.allclose((b - a).samples, [2.0, 2.0])

    def test_add_rejects_dt_mismatch(self):
        a = Waveform(np.zeros(2), dt=1.0)
        b = Waveform(np.zeros(2), dt=2.0)
        with pytest.raises(ValueError):
            _ = a + b

    def test_add_rejects_length_mismatch(self):
        a = Waveform(np.zeros(2), dt=1.0)
        b = Waveform(np.zeros(3), dt=1.0)
        with pytest.raises(ValueError):
            _ = a + b

    def test_scaled_and_shifted(self):
        w = Waveform(np.array([1.0, -1.0]), dt=1.0)
        assert np.allclose(w.scaled(3.0).samples, [3.0, -3.0])
        assert np.allclose(w.shifted(1.0).samples, [2.0, 0.0])

    def test_delayed_moves_origin_only(self):
        w = Waveform(np.array([1.0, 2.0]), dt=1.0, t0=0.0)
        d = w.delayed(5.0)
        assert d.t0 == 5.0
        assert np.allclose(d.samples, w.samples)


class TestStatistics:
    def test_energy(self):
        w = Waveform(np.array([3.0, 4.0]), dt=2.0)
        assert w.energy() == pytest.approx((9 + 16) * 2.0)

    def test_rms(self):
        w = Waveform(np.array([3.0, -3.0]), dt=1.0)
        assert w.rms() == pytest.approx(3.0)

    def test_rms_empty(self):
        assert Waveform(np.zeros(0), dt=1.0).rms() == 0.0

    def test_peak(self):
        w = Waveform(np.array([1.0, -7.0, 2.0]), dt=1.0)
        assert w.peak() == 7.0

    def test_normalized_unit_energy(self):
        w = Waveform(np.array([3.0, 4.0]), dt=1.0)
        assert np.linalg.norm(w.normalized().samples) == pytest.approx(1.0)

    def test_normalized_zero_waveform_unchanged(self):
        w = Waveform(np.zeros(4), dt=1.0)
        assert np.allclose(w.normalized().samples, 0.0)


class TestSlicingResampling:
    def test_slice_time(self):
        w = Waveform(np.arange(10, dtype=float), dt=1.0)
        s = w.slice_time(2.0, 5.0)
        assert np.allclose(s.samples, [2.0, 3.0, 4.0])
        assert s.t0 == 2.0

    def test_slice_time_empty(self):
        w = Waveform(np.arange(5, dtype=float), dt=1.0)
        assert len(w.slice_time(100.0, 200.0)) == 0

    def test_slice_rejects_inverted_range(self):
        w = Waveform(np.arange(5, dtype=float), dt=1.0)
        with pytest.raises(ValueError):
            w.slice_time(3.0, 1.0)

    def test_decimated_stride_and_phase(self):
        w = Waveform(np.arange(10, dtype=float), dt=1.0)
        d = w.decimated(3, offset=1)
        assert np.allclose(d.samples, [1.0, 4.0, 7.0])
        assert d.dt == 3.0
        assert d.t0 == 1.0

    def test_decimated_rejects_bad_args(self):
        w = Waveform(np.arange(10, dtype=float), dt=1.0)
        with pytest.raises(ValueError):
            w.decimated(0)
        with pytest.raises(ValueError):
            w.decimated(3, offset=3)

    def test_padded(self):
        w = Waveform(np.array([1.0]), dt=1.0, t0=0.0)
        p = w.padded(n_before=2, n_after=1)
        assert np.allclose(p.samples, [0, 0, 1, 0])
        assert p.t0 == -2.0

    def test_padded_rejects_negative(self):
        w = Waveform(np.array([1.0]), dt=1.0)
        with pytest.raises(ValueError):
            w.padded(n_before=-1)


class TestConvolution:
    def test_impulse_is_identity(self):
        x = Waveform(np.array([1.0, 2.0, 3.0]), dt=0.5)
        h = Waveform.impulse(1, dt=0.5)
        y = x.convolved_with(h)
        assert np.allclose(y.samples[:3], x.samples)

    def test_convolution_rejects_dt_mismatch(self):
        x = Waveform(np.zeros(3), dt=1.0)
        h = Waveform(np.zeros(3), dt=2.0)
        with pytest.raises(ValueError):
            x.convolved_with(h)

    def test_impulse_index_bounds(self):
        with pytest.raises(ValueError):
            Waveform.impulse(3, dt=1.0, at_index=3)


class TestConstructors:
    def test_zeros(self):
        w = Waveform.zeros(5, dt=1.0)
        assert len(w) == 5 and np.all(w.samples == 0)

    def test_constant(self):
        w = Waveform.constant(2.5, 3, dt=1.0)
        assert np.allclose(w.samples, 2.5)
