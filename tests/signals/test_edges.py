"""Unit tests for probe-edge synthesis."""

import numpy as np
import pytest

from repro.signals.edges import (
    EdgeShape,
    erf_edge,
    gaussian_pulse,
    linear_edge,
    raised_cosine_edge,
    step_edge,
)

DT = 10e-12
RISE = 200e-12


class TestRaisedCosine:
    def test_starts_at_zero_ends_at_amplitude(self):
        e = raised_cosine_edge(RISE, DT, amplitude=1.5, settle=100e-12)
        assert e.samples[0] == pytest.approx(0.0, abs=1e-9)
        assert e.samples[-1] == pytest.approx(1.5, rel=1e-6)

    def test_monotone_rising(self):
        e = raised_cosine_edge(RISE, DT)
        assert np.all(np.diff(e.samples) >= -1e-12)

    def test_settle_extends_flat_region(self):
        short = raised_cosine_edge(RISE, DT)
        long = raised_cosine_edge(RISE, DT, settle=300e-12)
        assert len(long) > len(short)
        tail = long.samples[len(short):]
        assert np.allclose(tail, 1.0)

    def test_rejects_nonpositive_rise(self):
        with pytest.raises(ValueError):
            raised_cosine_edge(0.0, DT)


class TestErfEdge:
    def test_ten_ninety_rise_time(self):
        e = erf_edge(RISE, DT / 10)
        t10 = e.times[np.searchsorted(e.samples, 0.1)]
        t90 = e.times[np.searchsorted(e.samples, 0.9)]
        assert (t90 - t10) == pytest.approx(RISE, rel=0.05)

    def test_amplitude(self):
        e = erf_edge(RISE, DT, amplitude=2.0)
        assert e.samples[-1] == pytest.approx(2.0, rel=1e-3)


class TestLinearEdge:
    def test_linear_midpoint(self):
        e = linear_edge(RISE, DT, amplitude=2.0)
        assert e.value_at(RISE / 2) == pytest.approx(1.0, rel=0.05)

    def test_clamps_after_rise(self):
        e = linear_edge(RISE, DT, settle=200e-12)
        assert e.samples[-1] == pytest.approx(1.0)


class TestStepAndPulse:
    def test_step_is_flat(self):
        e = step_edge(DT, amplitude=0.7, n=4)
        assert np.allclose(e.samples, 0.7)

    def test_step_rejects_zero_length(self):
        with pytest.raises(ValueError):
            step_edge(DT, n=0)

    def test_gaussian_pulse_peak_centered(self):
        p = gaussian_pulse(50e-12, DT)
        assert p.samples[np.argmax(p.samples)] == pytest.approx(1.0)
        assert np.argmax(p.samples) == len(p) // 2

    def test_gaussian_pulse_symmetric(self):
        p = gaussian_pulse(50e-12, DT)
        assert np.allclose(p.samples, p.samples[::-1])

    def test_gaussian_rejects_bad_width(self):
        with pytest.raises(ValueError):
            gaussian_pulse(0.0, DT)


class TestEdgeShape:
    def test_rising_falling_are_mirrors(self):
        shape = EdgeShape(rise_time=RISE, amplitude=1.2)
        r = shape.rising(DT)
        f = shape.falling(DT)
        assert np.allclose(r.samples + f.samples, 1.2)

    def test_repeatability(self):
        shape = EdgeShape(rise_time=RISE)
        a = shape.rising(DT)
        b = shape.rising(DT)
        assert np.array_equal(a.samples, b.samples)

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            EdgeShape(rise_time=RISE, kind="sawtooth")

    def test_all_kinds_produce_full_swing(self):
        for kind in EdgeShape.KINDS:
            shape = EdgeShape(rise_time=RISE, amplitude=1.0, kind=kind)
            e = shape.rising(DT, settle=100e-12)
            assert e.samples[-1] == pytest.approx(1.0, rel=1e-2)

    def test_rejects_nonpositive_rise_time(self):
        with pytest.raises(ValueError):
            EdgeShape(rise_time=-1e-12)
