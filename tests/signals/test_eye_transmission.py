"""Tests for transmission response and eye-diagram analysis.

Includes the signal-integrity statement of DIVOT's transparency: the data
eye at the receiver is identical with and without DIVOT (the iTDR adds no
series element), while a physical snooping pod measurably degrades it.
"""

import numpy as np
import pytest

from repro.attacks import CapacitiveSnoop
from repro.signals.edges import EdgeShape
from repro.signals.eye import eye_metrics, fold_eye
from repro.signals.linecodes import NRZCode
from repro.signals.prbs import prbs_bits
from repro.signals.waveform import Waveform
from repro.txline.propagation import LatticeEngine


class TestTransmissionResponse:
    def test_matched_line_delivers_loss_scaled_pulse(self):
        from repro.txline.profile import ImpedanceProfile

        n = 10
        p = ImpedanceProfile(
            z=np.full(n, 50.0),
            tau=np.full(n, 1e-11),
            z_source=50.0,
            z_load=50.0,
            loss_per_segment=0.99,
        )
        h = LatticeEngine().transmission_sequence(p, n_steps=30)
        # Single arrival at step S with amplitude loss^S (matched: 1+rho=1).
        assert h.samples[n] == pytest.approx(0.99**n, rel=1e-9)
        others = np.delete(h.samples, n)
        assert np.allclose(others, 0.0, atol=1e-12)

    def test_mismatches_create_trailing_echoes(self, line):
        h = LatticeEngine().transmission_sequence(line.full_profile)
        s = line.full_profile.n_segments
        first = abs(h.samples[s])
        tail = np.abs(h.samples[s + 1 :]).max()
        assert first > 0.5  # the main arrival dominates
        assert 0 < tail < first  # echoes exist but are small

    def test_energy_delivered_not_exceeding_input(self, line):
        h = LatticeEngine(round_trips=5).transmission_sequence(
            line.full_profile
        )
        assert np.sum(h.samples**2) <= 1.05  # near-matched: ~all delivered

    def test_transmission_response_convolution(self, line):
        profile = line.full_profile
        tau = float(np.mean(profile.tau))
        step = Waveform(np.ones(50), dt=tau)
        out = LatticeEngine().transmission_response(profile, step)
        s = profile.n_segments
        # A step arrives, settled near the full divider level.
        assert out.samples[s + 10] == pytest.approx(1.0, abs=0.1)


class TestEyeFolding:
    def _nrz_wave(self, n_bits=200, spb=32, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        bits = prbs_bits(9, n_bits)
        code = NRZCode(
            symbol_time=spb * 1e-11, edge=EdgeShape(rise_time=8e-11)
        )
        wave = code.encode(bits, dt=1e-11)
        if noise:
            wave = Waveform(
                wave.samples + rng.normal(0, noise, len(wave)), wave.dt
            )
        return wave

    def test_fold_shape(self):
        wave = self._nrz_wave()
        traces = fold_eye(wave, 32e-11)
        assert traces.shape[1] == 32
        assert traces.shape[0] >= 190

    def test_fold_validation(self):
        wave = self._nrz_wave()
        with pytest.raises(ValueError):
            fold_eye(wave, 0.0)
        with pytest.raises(ValueError):
            fold_eye(wave, 2e-11)  # 2 samples/symbol: too few
        with pytest.raises(ValueError):
            fold_eye(Waveform(np.zeros(10), dt=1e-11), 32e-11)

    def test_clean_eye_wide_open(self):
        metrics = eye_metrics(self._nrz_wave(), 32e-11)
        assert metrics.is_open
        assert metrics.height > 0.8
        assert metrics.width_ui > 0.5
        assert metrics.high_level > 0.9 and metrics.low_level < 0.1

    def test_noise_closes_eye(self):
        clean = eye_metrics(self._nrz_wave(), 32e-11)
        noisy = eye_metrics(self._nrz_wave(noise=0.15), 32e-11)
        assert noisy.height < clean.height

    def test_all_ones_degenerate(self):
        code = NRZCode(symbol_time=32e-11, edge=EdgeShape(rise_time=8e-11))
        wave = code.encode([1] * 50, dt=1e-11)
        metrics = eye_metrics(wave, 32e-11)
        assert not metrics.is_open  # one rail only: nothing to slice


class TestSignalIntegrityTransparency:
    """DIVOT does not touch the data eye; a snooping pod does."""

    def _receiver_eye(self, line, modifiers=()):
        profile = line.profile_under(modifiers)
        tau = float(np.mean(profile.tau))
        spb = 64  # samples per symbol on the lattice grid
        bits = prbs_bits(9, 300)
        code = NRZCode(symbol_time=spb * tau, edge=EdgeShape(rise_time=10 * tau))
        tx = code.encode(bits, dt=tau)
        engine = LatticeEngine(round_trips=1.2)
        h = engine.transmission_sequence(profile, n_steps=len(tx))
        rx = np.convolve(tx.samples, h.samples)[: len(tx)]
        return eye_metrics(Waveform(rx, tau), spb * tau, offset_symbols=8)

    def test_divot_leaves_eye_untouched(self, line):
        """The iTDR is a receive-side tap at the driver: the line the data
        crosses is electrically identical with DIVOT present."""
        without = self._receiver_eye(line)
        with_divot = self._receiver_eye(line)  # same physics, by design
        assert with_divot.height == pytest.approx(without.height)
        assert with_divot.width_ui == pytest.approx(without.width_ui)

    def test_snooping_pod_degrades_eye(self, line):
        clean = self._receiver_eye(line)
        probed = self._receiver_eye(
            line, modifiers=[CapacitiveSnoop(0.12, loading=0.3)]
        )
        assert probed.height < clean.height
