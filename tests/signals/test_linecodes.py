"""Unit tests for NRZ/PAM4 line coding."""

import numpy as np
import pytest

from repro.signals.edges import EdgeShape
from repro.signals.linecodes import NRZCode, PAM4Code, symbol_edges

DT = 50e-12
SYMBOL = 6.4e-9
EDGE = EdgeShape(rise_time=300e-12)


@pytest.fixture
def nrz():
    return NRZCode(SYMBOL, EDGE)


@pytest.fixture
def pam4():
    return PAM4Code(SYMBOL, EDGE)


class TestNRZ:
    def test_levels(self, nrz):
        assert np.allclose(nrz.levels([0, 1, 1, 0]), [0.0, 1.0, 1.0, 0.0])

    def test_custom_levels(self):
        code = NRZCode(SYMBOL, EDGE, low=-0.5, high=0.5)
        assert np.allclose(code.levels([0, 1]), [-0.5, 0.5])

    def test_rejects_non_binary(self, nrz):
        with pytest.raises(ValueError):
            nrz.levels([0, 2])

    def test_rejects_inverted_levels(self):
        with pytest.raises(ValueError):
            NRZCode(SYMBOL, EDGE, low=1.0, high=0.0)

    def test_encode_length(self, nrz):
        w = nrz.encode([0, 1, 0], DT)
        assert len(w) == 3 * int(round(SYMBOL / DT))

    def test_encode_settles_at_levels(self, nrz):
        w = nrz.encode([0, 1], DT)
        sps = int(round(SYMBOL / DT))
        # End of each symbol is settled at the target level.
        assert w.samples[sps - 1] == pytest.approx(0.0, abs=1e-6)
        assert w.samples[2 * sps - 1] == pytest.approx(1.0, abs=1e-6)

    def test_encode_empty(self, nrz):
        assert len(nrz.encode([], DT)) == 0

    def test_transitions(self, nrz):
        edges = nrz.transitions([0, 1, 1, 0])
        assert len(edges) == 2
        assert edges[0].rising and not edges[1].rising
        assert edges[0].symbol_index == 1
        assert edges[1].time == pytest.approx(3 * SYMBOL)

    def test_symbol_time_validation(self):
        with pytest.raises(ValueError):
            NRZCode(0.0, EDGE)

    def test_too_fine_symbol_rejected_on_encode(self):
        code = NRZCode(DT / 10, EDGE)
        with pytest.raises(ValueError):
            code.encode([0, 1], DT)


class TestPAM4:
    def test_gray_mapping_levels(self, pam4):
        levels = pam4.levels([0, 0, 0, 1, 1, 1, 1, 0])
        assert np.allclose(levels, [0.0, 1 / 3, 2 / 3, 1.0])

    def test_rejects_odd_bit_count(self, pam4):
        with pytest.raises(ValueError):
            pam4.levels([0, 1, 1])

    def test_rejects_non_binary(self, pam4):
        with pytest.raises(ValueError):
            pam4.levels([0, 3])

    def test_adjacent_levels_differ_by_one_bit(self, pam4):
        """Gray property: level k and k+1 come from bit pairs differing once."""
        inverse = {v: k for k, v in PAM4Code._GRAY.items()}
        for k in range(3):
            a, b = inverse[k], inverse[k + 1]
            assert sum(x != y for x, y in zip(a, b)) == 1

    def test_encode_four_levels_present(self, pam4):
        w = pam4.encode([0, 0, 0, 1, 1, 1, 1, 0], DT)
        sps = int(round(SYMBOL / DT))
        finals = w.samples[sps - 1 :: sps]
        assert np.allclose(sorted(finals), [0.0, 1 / 3, 2 / 3, 1.0], atol=1e-6)


class TestSymbolEdges:
    def test_split_polarity(self, nrz):
        rising, falling = symbol_edges(nrz, [0, 1, 0, 1, 1, 0])
        assert len(rising) == 2
        assert len(falling) == 2
        assert all(e.rising for e in rising)
        assert not any(e.rising for e in falling)

    def test_constant_stream_has_no_edges(self, nrz):
        rising, falling = symbol_edges(nrz, [1] * 10)
        assert rising == [] and falling == []
