"""Unit tests for spectral analysis."""

import numpy as np
import pytest

from repro.signals.edges import EdgeShape
from repro.signals.spectral import (
    bandwidth_to_spatial_resolution,
    occupied_bandwidth,
    power_spectrum,
    rise_time_to_bandwidth,
)
from repro.signals.waveform import Waveform


class TestPowerSpectrum:
    def test_sine_peak_at_its_frequency(self):
        fs = 1e9
        t = np.arange(4096) / fs
        wave = Waveform(np.sin(2 * np.pi * 50e6 * t), dt=1 / fs)
        freqs, power = power_spectrum(wave)
        assert freqs[np.argmax(power)] == pytest.approx(50e6, rel=0.01)

    def test_dc_removed(self):
        wave = Waveform(np.full(256, 3.0), dt=1e-9)
        _, power = power_spectrum(wave)
        assert power.sum() == pytest.approx(0.0, abs=1e-20)

    def test_parseval_scaling(self):
        """Parseval: the one-sided spectrum holds half the AC energy
        (DC and Nyquist bins aside)."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=1024)
        wave = Waveform(x, dt=1e-9)
        _, power = power_spectrum(wave)
        ac_energy = np.sum((x - x.mean()) ** 2) * 1e-9
        assert power.sum() == pytest.approx(ac_energy / 2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_spectrum(Waveform(np.zeros(1), dt=1e-9))


class TestOccupiedBandwidth:
    def test_narrowband_signal(self):
        fs = 1e9
        t = np.arange(8192) / fs
        wave = Waveform(np.sin(2 * np.pi * 10e6 * t), dt=1 / fs)
        bw = occupied_bandwidth(wave)
        assert bw == pytest.approx(10e6, rel=0.1)

    def test_faster_edge_wider_band(self):
        dt = 11.16e-12
        slow = EdgeShape(rise_time=300e-12).rising(dt, settle=1e-9)
        fast = EdgeShape(rise_time=75e-12).rising(dt, settle=1e-9)
        assert occupied_bandwidth(fast) > occupied_bandwidth(slow)

    def test_zero_signal(self):
        wave = Waveform(np.zeros(64), dt=1e-9)
        assert occupied_bandwidth(wave) == 0.0

    def test_fraction_validation(self):
        wave = Waveform(np.ones(16), dt=1e-9)
        with pytest.raises(ValueError):
            occupied_bandwidth(wave, fraction=1.5)


class TestRules:
    def test_rise_time_rule(self):
        assert rise_time_to_bandwidth(350e-12) == pytest.approx(1e9)

    def test_prototype_edge_limits_resolution_not_grid(self):
        """The binding constraint at prototype settings: a 150 ps edge's
        ~2.3 GHz bandwidth resolves ~3 cm round trip — 40x coarser than
        the 0.84 mm ETS grid.  (Why the ETS ablation's margin saturates.)"""
        bw = rise_time_to_bandwidth(150e-12)
        res = bandwidth_to_spatial_resolution(bw, 1.5e8)
        grid_res = 1.5e8 * 11.16e-12 / 2
        assert res > 10 * grid_res

    def test_validation(self):
        with pytest.raises(ValueError):
            rise_time_to_bandwidth(0.0)
        with pytest.raises(ValueError):
            bandwidth_to_spatial_resolution(0.0, 1.5e8)
