"""Unit tests for PRBS/LFSR traffic generation."""

import numpy as np
import pytest

from repro.signals.prbs import LFSR, PRBS_TAPS, prbs_bits, random_bits


class TestLFSR:
    @pytest.mark.parametrize("order", sorted(PRBS_TAPS))
    def test_declared_period(self, order):
        assert LFSR(order).period == 2**order - 1

    @pytest.mark.parametrize("order", [7, 9, 11])
    def test_maximal_length_sequence(self, order):
        """The register visits every non-zero state exactly once."""
        lfsr = LFSR(order)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.state)
            lfsr.next_bit()
        assert len(seen) == lfsr.period

    def test_periodicity(self):
        seq = LFSR(7).bits(2 * 127)
        assert np.array_equal(seq[:127], seq[127:])

    def test_balanced_ones(self):
        """A maximal-length sequence has 2^(n-1) ones per period."""
        bits = LFSR(7).bits(127)
        assert bits.sum() == 64

    def test_never_reaches_zero_state(self):
        lfsr = LFSR(7, seed=1)
        for _ in range(300):
            lfsr.next_bit()
            assert lfsr.state != 0

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            LFSR(8)

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            LFSR(7, seed=0)

    def test_seed_changes_phase_not_sequence(self):
        """Different seeds give rotations of the same cycle."""
        a = LFSR(7, seed=1).bits(127)
        b = LFSR(7, seed=5).bits(127)
        doubled = np.concatenate([a, a])
        found = any(
            np.array_equal(doubled[i : i + 127], b) for i in range(127)
        )
        assert found

    def test_iterator_protocol(self):
        lfsr = LFSR(7)
        it = iter(lfsr)
        bits = [next(it) for _ in range(5)]
        assert all(b in (0, 1) for b in bits)

    def test_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            LFSR(7).bits(-1)


class TestHelpers:
    def test_prbs_bits_matches_lfsr(self):
        assert np.array_equal(prbs_bits(7, 50), LFSR(7).bits(50))

    def test_random_bits_reproducible(self):
        a = random_bits(100, np.random.default_rng(3))
        b = random_bits(100, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_random_bits_roughly_balanced(self):
        bits = random_bits(10_000, np.random.default_rng(0))
        assert 0.45 < bits.mean() < 0.55

    def test_random_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            random_bits(-1)
