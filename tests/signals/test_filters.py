"""Unit tests for the discrete-time filters."""

import numpy as np
import pytest

from repro.signals.filters import (
    dc_block,
    differentiator,
    moving_average,
    single_pole_lowpass,
)
from repro.signals.waveform import Waveform


class TestLowpass:
    def test_dc_passes(self):
        w = Waveform(np.ones(2000), dt=1e-9)
        y = single_pole_lowpass(w, cutoff_hz=50e6)
        assert y.samples[-1] == pytest.approx(1.0, rel=1e-3)

    def test_high_frequency_attenuated(self):
        t = np.arange(4000) * 1e-9
        w = Waveform(np.sin(2 * np.pi * 200e6 * t), dt=1e-9)
        y = single_pole_lowpass(w, cutoff_hz=5e6)
        assert y.rms() < 0.1 * w.rms()

    def test_rejects_bad_cutoff(self):
        w = Waveform(np.ones(4), dt=1e-9)
        with pytest.raises(ValueError):
            single_pole_lowpass(w, cutoff_hz=0.0)


class TestMovingAverage:
    def test_window_one_identity(self):
        w = Waveform(np.arange(5, dtype=float), dt=1.0)
        assert np.array_equal(moving_average(w, 1).samples, w.samples)

    def test_flattens_spike(self):
        x = np.zeros(11)
        x[5] = 1.0
        y = moving_average(Waveform(x, dt=1.0), 5)
        assert y.samples.max() == pytest.approx(0.2)

    def test_preserves_mean(self):
        x = np.random.default_rng(0).normal(size=100)
        y = moving_average(Waveform(x, dt=1.0), 7)
        assert y.samples.mean() == pytest.approx(x.mean(), abs=0.05)

    def test_preserves_length(self):
        w = Waveform(np.arange(13, dtype=float), dt=1.0)
        assert len(moving_average(w, 4)) == 13

    def test_window_larger_than_record(self):
        w = Waveform(np.arange(3, dtype=float), dt=1.0)
        y = moving_average(w, 100)
        assert len(y) == 3

    def test_rejects_bad_window(self):
        w = Waveform(np.ones(4), dt=1.0)
        with pytest.raises(ValueError):
            moving_average(w, 0)

    def test_empty_input(self):
        w = Waveform(np.zeros(0), dt=1.0)
        assert len(moving_average(w, 3)) == 0


class TestDCBlock:
    def test_removes_mean(self):
        w = Waveform(np.array([1.0, 2.0, 3.0]), dt=1.0)
        assert dc_block(w).samples.mean() == pytest.approx(0.0, abs=1e-12)

    def test_empty_passthrough(self):
        w = Waveform(np.zeros(0), dt=1.0)
        assert len(dc_block(w)) == 0


class TestDifferentiator:
    def test_ramp_gives_constant_slope(self):
        w = Waveform(np.arange(10, dtype=float) * 2.0, dt=0.5)
        d = differentiator(w)
        assert np.allclose(d.samples[1:], 4.0)

    def test_constant_gives_zero(self):
        w = Waveform(np.full(10, 3.0), dt=1.0)
        assert np.allclose(differentiator(w).samples, 0.0)

    def test_short_input(self):
        w = Waveform(np.array([1.0]), dt=1.0)
        assert np.allclose(differentiator(w).samples, 0.0)
