"""The shared convolution helper: determinism and numerical contracts.

Every hot-path convolution routes through :mod:`repro.signals.convolution`;
the method choice must be a pure function of operand sizes (never of data,
shard count, or environment) or the fleet's byte-identity guarantee breaks.
"""

import numpy as np
import pytest

from repro.signals import batch_convolve_full, conv_method, convolve_full
from repro.signals.convolution import DIRECT_COST_CEILING, MIN_FFT_LENGTH


class TestMethodSelection:
    def test_pure_function_of_sizes(self):
        assert conv_method(1000, 1000) == conv_method(1000, 1000)

    def test_short_kernels_stay_direct(self):
        assert conv_method(100_000, MIN_FFT_LENGTH - 1) == "direct"

    def test_small_products_stay_direct(self):
        n = int(np.sqrt(DIRECT_COST_CEILING))
        assert conv_method(n, n) == "direct"

    def test_large_balanced_operands_go_fft(self):
        assert conv_method(4096, 512) == "fft"

    def test_symmetric_in_arguments(self):
        for n, m in [(10, 2000), (33, 1000), (64, 64)]:
            assert conv_method(n, m) == conv_method(m, n)

    def test_rejects_empty_operands(self):
        with pytest.raises(ValueError):
            conv_method(0, 5)


class TestConvolveFull:
    @pytest.mark.parametrize("n,m", [(8, 3), (40, 33), (700, 96), (2048, 64)])
    def test_matches_numpy_reference(self, n, m):
        rng = np.random.default_rng(n * 1000 + m)
        a = rng.standard_normal(n)
        b = rng.standard_normal(m)
        out = convolve_full(a, b)
        ref = np.convolve(a, b)
        assert out.shape == (n + m - 1,)
        assert np.allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_direct_path_is_exactly_numpy(self):
        """On the direct path the helper IS np.convolve — bit for bit."""
        rng = np.random.default_rng(0)
        a = rng.standard_normal(100)
        b = rng.standard_normal(7)
        assert conv_method(len(a), len(b)) == "direct"
        assert convolve_full(a, b).tobytes() == np.convolve(a, b).tobytes()

    def test_repeat_calls_are_byte_identical(self):
        """Same inputs, same bytes — on the FFT path too (determinism)."""
        rng = np.random.default_rng(1)
        a = rng.standard_normal(4096)
        b = rng.standard_normal(512)
        assert conv_method(len(a), len(b)) == "fft"
        assert convolve_full(a, b).tobytes() == convolve_full(a, b).tobytes()


class TestBatchConvolveFull:
    @pytest.mark.parametrize("c,k,m", [(1, 50, 5), (6, 372, 30), (4, 900, 64)])
    def test_rows_match_single_convolutions(self, c, k, m):
        rng = np.random.default_rng(c + k + m)
        rows = rng.standard_normal((c, k))
        kernel = rng.standard_normal(m)
        out = batch_convolve_full(rows, kernel)
        assert out.shape == (c, k + m - 1)
        for row, full in zip(rows, out):
            assert np.allclose(full, np.convolve(row, kernel), atol=1e-12)

    def test_row_results_independent_of_batch_size(self):
        """A row convolves to the same bytes alone or in a batch — the
        property that keeps shard partitioning invisible."""
        rng = np.random.default_rng(2)
        rows = rng.standard_normal((5, 300))
        kernel = rng.standard_normal(24)
        whole = batch_convolve_full(rows, kernel)
        for i in range(5):
            alone = batch_convolve_full(rows[i : i + 1], kernel)
            assert whole[i].tobytes() == alone[0].tobytes()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            batch_convolve_full(np.ones((2, 2, 2)), np.ones(3))
        with pytest.raises(ValueError):
            batch_convolve_full(np.ones((2, 5)), np.ones((2, 3)))
