"""Unit tests for noise and interference sources."""

import numpy as np
import pytest

from repro.signals.noise import (
    BurstEMI,
    CompositeInterference,
    GaussianNoise,
    SinusoidalEMI,
)


class TestGaussianNoise:
    def test_sample_statistics(self, rng):
        noise = GaussianNoise(sigma=2.0)
        x = noise.sample(100_000, rng)
        assert abs(x.mean()) < 0.05
        assert x.std() == pytest.approx(2.0, rel=0.02)

    def test_zero_sigma_allowed(self, rng):
        x = GaussianNoise(sigma=0.0).sample(10, rng)
        assert np.all(x == 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-1.0)

    def test_waveform_wrapper(self, rng):
        w = GaussianNoise(sigma=1.0).waveform(50, dt=1e-9, rng=rng)
        assert len(w) == 50 and w.dt == 1e-9

    def test_shape_support(self, rng):
        x = GaussianNoise(sigma=1.0).sample((3, 4), rng)
        assert x.shape == (3, 4)


class TestSinusoidalEMI:
    def test_value_at_amplitude_bound(self):
        emi = SinusoidalEMI(amplitude=0.5, frequency=1e6)
        t = np.linspace(0, 1e-5, 1000)
        v = emi.value_at(t)
        assert np.max(np.abs(v)) <= 0.5 + 1e-12

    def test_async_trigger_samples_average_out(self, rng):
        """The paper's EMI-rejection mechanism: random phase -> zero mean."""
        emi = SinusoidalEMI(amplitude=1.0, frequency=312.5e6)
        v = emi.sample_at_triggers(200_000, rng)
        assert abs(v.mean()) < 0.01
        # RMS of a sine sampled at uniform phase is A/sqrt(2).
        assert np.std(v) == pytest.approx(1.0 / np.sqrt(2), rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            SinusoidalEMI(amplitude=-1.0, frequency=1e6)
        with pytest.raises(ValueError):
            SinusoidalEMI(amplitude=1.0, frequency=0.0)


class TestBurstEMI:
    def test_duty_controls_hit_fraction(self, rng):
        burst = BurstEMI(amplitude=1.0, duty=0.25)
        v = burst.sample_at_triggers(100_000, rng)
        hit_fraction = np.mean(v != 0.0)
        assert hit_fraction == pytest.approx(0.25, abs=0.02)

    def test_zero_duty_silent(self, rng):
        v = BurstEMI(amplitude=1.0, duty=0.0).sample_at_triggers(1000, rng)
        assert np.all(v == 0)

    def test_full_duty_always_on(self, rng):
        v = BurstEMI(amplitude=1.0, duty=1.0).sample_at_triggers(1000, rng)
        assert np.mean(v != 0) > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstEMI(amplitude=1.0, duty=1.5)
        with pytest.raises(ValueError):
            BurstEMI(amplitude=-1.0, duty=0.5)


class TestComposite:
    def test_sums_sources(self, rng):
        a = BurstEMI(amplitude=1.0, duty=1.0)
        comp = CompositeInterference([a, a])
        v1 = CompositeInterference([a]).sample_at_triggers(1000, np.random.default_rng(0))
        v2 = comp.sample_at_triggers(1000, np.random.default_rng(0))
        # Same rng stream consumed twice in v2: just check scale roughly doubles.
        assert np.std(v2) > 1.2 * np.std(v1)

    def test_empty_composite_is_zero(self, rng):
        v = CompositeInterference([]).sample_at_triggers(10, rng)
        assert np.all(v == 0)
