"""Unit tests for the side-stream scrambler."""

import re

import numpy as np
import pytest

from repro.signals.scrambler import Scrambler, descramble_bits, scramble_bytes


class TestScrambler:
    def test_roundtrip(self, rng):
        data = rng.integers(0, 256, size=500).tolist()
        assert descramble_bits(scramble_bytes(data)) == data

    def test_scramble_descramble_symmetry(self):
        """Side-stream scrambling is its own inverse from equal states."""
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        once = Scrambler().process_bits(bits)
        twice = Scrambler().process_bits(once)
        assert np.array_equal(twice, bits)

    def test_reset_restores_stream(self):
        s = Scrambler()
        a = s.process_bits(np.zeros(64, dtype=np.uint8))
        s.reset()
        b = s.process_bits(np.zeros(64, dtype=np.uint8))
        assert np.array_equal(a, b)

    def test_whitens_constant_data(self):
        """All-zero payload scrambles to a balanced stream."""
        bits = scramble_bytes([0] * 1000)
        assert abs(bits.mean() - 0.5) < 0.05

    def test_breaks_long_runs(self):
        bits = scramble_bytes([0xFF] * 1000)
        s = "".join(map(str, bits.tolist()))
        longest = max(len(m.group(0)) for m in re.finditer(r"0+|1+", s))
        assert longest < 30  # probabilistic bound, far below 8000

    def test_zero_overhead(self):
        assert len(scramble_bytes([0xAB] * 10)) == 80

    def test_keystream_period_is_maximal(self):
        """x^16+x^5+x^4+x^3+1 is primitive: period 2^16 - 1."""
        s = Scrambler()
        start = s.state
        period = 0
        while True:
            s._next_keystream_bit()
            period += 1
            if s.state == start:
                break
            assert period <= 2**16
        assert period == 2**16 - 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0)
        with pytest.raises(ValueError):
            Scrambler().process_bytes([300])
        with pytest.raises(ValueError):
            descramble_bits([0, 1, 0])


class TestSerialLinkCodings:
    def test_scrambled_link_roundtrip(self, line, rng):
        from repro.iolink import Frame, SerialLink

        link = SerialLink(line, coding="scrambled-nrz")
        frames = [
            Frame(sequence=i, payload=tuple(rng.integers(0, 256, 16)))
            for i in range(5)
        ]
        assert link.decode_frames(link.encode_frames(frames)) == frames

    def test_trigger_rates_differ_by_coding(self, line):
        from repro.iolink import SerialLink

        coded = SerialLink(line, coding="8b10b")
        scrambled = SerialLink(line, coding="scrambled-nrz")
        r_coded = coded.measured_trigger_rate() / coded.bit_rate
        r_scrambled = scrambled.measured_trigger_rate() / scrambled.bit_rate
        assert r_scrambled == pytest.approx(0.25, abs=0.01)
        assert r_coded > r_scrambled + 0.03

    def test_scrambled_has_zero_overhead(self, line, rng):
        from repro.iolink import Frame, SerialLink

        frame = Frame(sequence=1, payload=tuple(rng.integers(0, 256, 32)))
        plain = SerialLink(line, coding="scrambled-nrz").encode_frames([frame])
        coded = SerialLink(line, coding="8b10b").encode_frames([frame])
        assert len(plain) == frame.wire_length * 8
        assert len(coded) == frame.wire_length * 10

    def test_unknown_coding_rejected(self, line):
        from repro.iolink import SerialLink

        with pytest.raises(ValueError):
            SerialLink(line, coding="64b66b")
