"""Unit tests for memory transactions, address mapping, and traces."""

import numpy as np
import pytest

from repro.membus.transactions import (
    AddressMap,
    MemoryOp,
    MemoryRequest,
    TraceGenerator,
)


class TestMemoryRequest:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            MemoryRequest(MemoryOp.WRITE, 0)

    def test_read_needs_no_data(self):
        MemoryRequest(MemoryOp.READ, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(MemoryOp.READ, -1)


class TestAddressMap:
    def test_capacity(self):
        amap = AddressMap(n_banks=4, n_rows=8, n_columns=16)
        assert amap.capacity == 4 * 8 * 16

    def test_decode_encode_roundtrip(self):
        amap = AddressMap(n_banks=4, n_rows=8, n_columns=16)
        for addr in range(0, amap.capacity, 37):
            d = amap.decode(addr)
            assert amap.encode(d.bank, d.row, d.column) == addr

    def test_consecutive_addresses_same_row_until_column_wrap(self):
        amap = AddressMap(n_banks=4, n_rows=8, n_columns=16)
        d0 = amap.decode(0)
        d1 = amap.decode(1)
        assert (d0.bank, d0.row) == (d1.bank, d1.row)
        assert d1.column == d0.column + 1

    def test_column_wrap_changes_bank(self):
        amap = AddressMap(n_banks=4, n_rows=8, n_columns=16)
        d = amap.decode(16)
        assert d.bank == 1 and d.column == 0

    def test_decode_out_of_range(self):
        amap = AddressMap(n_banks=2, n_rows=2, n_columns=2)
        with pytest.raises(ValueError):
            amap.decode(amap.capacity)

    def test_encode_bounds(self):
        amap = AddressMap(n_banks=2, n_rows=2, n_columns=2)
        with pytest.raises(ValueError):
            amap.encode(2, 0, 0)
        with pytest.raises(ValueError):
            amap.encode(0, 2, 0)
        with pytest.raises(ValueError):
            amap.encode(0, 0, 2)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            AddressMap(n_banks=0)


class TestTraceGenerator:
    @pytest.fixture
    def gen(self):
        return TraceGenerator(AddressMap(n_banks=4, n_rows=64, n_columns=32), seed=1)

    def test_sequential_addresses(self, gen):
        reqs = gen.sequential(10, start=5, write_fraction=0.0)
        assert [r.address for r in reqs] == list(range(5, 15))
        assert all(r.op is MemoryOp.READ for r in reqs)

    def test_write_fraction_respected(self, gen):
        reqs = gen.random(4000, write_fraction=0.3)
        frac = np.mean([r.op is MemoryOp.WRITE for r in reqs])
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_writes_carry_data(self, gen):
        reqs = gen.random(100, write_fraction=1.0)
        assert all(r.data is not None for r in reqs)

    def test_random_in_range(self, gen):
        reqs = gen.random(500)
        cap = gen.address_map.capacity
        assert all(0 <= r.address < cap for r in reqs)

    def test_strided(self, gen):
        reqs = gen.strided(5, stride=10, write_fraction=0.0)
        assert [r.address for r in reqs] == [0, 10, 20, 30, 40]

    def test_strided_wraps(self, gen):
        cap = gen.address_map.capacity
        reqs = gen.strided(3, stride=cap - 1, write_fraction=0.0)
        assert reqs[2].address == (2 * (cap - 1)) % cap

    def test_hotspot_skew(self, gen):
        reqs = gen.hotspot(2000, hot_rows=2, hot_fraction=0.9)
        rows = [gen.address_map.decode(r.address).row for r in reqs]
        hot = np.mean([r < 2 for r in rows])
        assert hot > 0.85

    def test_reproducible(self):
        amap = AddressMap()
        a = TraceGenerator(amap, seed=5).random(50)
        b = TraceGenerator(amap, seed=5).random(50)
        assert [r.address for r in a] == [r.address for r in b]

    def test_validation(self, gen):
        with pytest.raises(ValueError):
            gen.random(-1)
        with pytest.raises(ValueError):
            gen.random(5, write_fraction=1.5)
        with pytest.raises(ValueError):
            gen.strided(5, stride=0)
        with pytest.raises(ValueError):
            gen.hotspot(5, hot_rows=0)
