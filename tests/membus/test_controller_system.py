"""Unit tests for the memory controller and the protected system."""

import pytest

from repro.attacks import AttackTimeline, CapacitiveSnoop
from repro.core.divot import Action
from repro.experiments.fig6_membus import build_system
from repro.membus.bus import MemoryBus
from repro.membus.controller import MemoryController
from repro.membus.dram import SDRAMDevice
from repro.membus.transactions import AddressMap, MemoryOp, MemoryRequest

AMAP = AddressMap(n_banks=4, n_rows=32, n_columns=16)


class TestMemoryBus:
    def test_cycle_time(self, line):
        bus = MemoryBus(line=line, clock_frequency=1e9)
        assert bus.cycle_time_s == pytest.approx(1e-9)
        assert bus.cycles_to_seconds(10) == pytest.approx(10e-9)

    def test_propagation_delay_positive(self, line):
        bus = MemoryBus(line=line)
        assert bus.propagation_delay_s > 1e-9

    def test_validation(self, line):
        with pytest.raises(ValueError):
            MemoryBus(line=line, clock_frequency=0.0)
        with pytest.raises(ValueError):
            MemoryBus(line=line, data_lanes=0)
        bus = MemoryBus(line=line)
        with pytest.raises(ValueError):
            bus.cycles_to_seconds(-1)


class TestController:
    def test_fcfs_completion(self):
        ctl = MemoryController(SDRAMDevice(address_map=AMAP))
        for addr in [0, 1, 2]:
            ctl.enqueue(MemoryRequest(MemoryOp.READ, addr))
        records = ctl.drain()
        assert [r.request.address for r in records] == [0, 1, 2]
        assert ctl.pending() == 0

    def test_time_advances(self):
        ctl = MemoryController(SDRAMDevice(address_map=AMAP))
        ctl.enqueue(MemoryRequest(MemoryOp.READ, 0))
        ctl.issue_next()
        assert ctl.current_cycle > 0

    def test_unprotected_never_blocked(self):
        ctl = MemoryController(SDRAMDevice(address_map=AMAP), endpoint=None)
        assert not ctl.blocked

    def test_issue_on_empty_queue(self):
        ctl = MemoryController(SDRAMDevice(address_map=AMAP))
        assert ctl.issue_next() is None

    def test_blocked_endpoint_stalls(self):
        class StuckEndpoint:
            is_blocked = True

        ctl = MemoryController(
            SDRAMDevice(address_map=AMAP), endpoint=StuckEndpoint()
        )
        ctl.enqueue(MemoryRequest(MemoryOp.READ, 0))
        assert ctl.issue_next() is None
        assert ctl.current_cycle == ctl.stall_quantum
        with pytest.raises(RuntimeError):
            ctl.drain(max_stalls=3)

    def test_stall_quantum_validation(self):
        with pytest.raises(ValueError):
            MemoryController(SDRAMDevice(address_map=AMAP), stall_quantum=0)


class TestProtectedSystem:
    """Slower integration-grade checks on the Fig. 6 composition."""

    @pytest.fixture(scope="class")
    def system_and_gen(self):
        return build_system(seed=21)

    def test_calibration_pairs_endpoints(self, system_and_gen):
        system, _ = system_and_gen
        assert system.bus.line.name in system.cpu_endpoint.rom
        assert system.bus.line.name in system.module_endpoint.rom

    def test_clean_run_no_alerts_and_transparent_latency(self):
        system, gen = build_system(seed=22)
        reqs = gen.random(300, write_fraction=0.5)
        result = system.run(reqs)
        assert len(result.completed) == 300
        assert result.alerts() == []
        assert result.n_blocked_accesses == 0

    def test_data_integrity_through_protection(self):
        system, gen = build_system(seed=23)
        writes = [
            MemoryRequest(MemoryOp.WRITE, a, data=a * 7) for a in range(50)
        ]
        reads = [MemoryRequest(MemoryOp.READ, a) for a in range(50)]
        result = system.run(writes + reads)
        read_results = result.completed[50:]
        assert all(
            r.result.data == r.request.address * 7 for r in read_results
        )

    def test_snoop_attack_detected(self):
        system, gen = build_system(seed=24)
        onset = system.capture_period_s * 1.2
        timeline = AttackTimeline().add(CapacitiveSnoop(0.12), start_s=onset)
        reqs = gen.random(12_000, write_fraction=0.4)
        result = system.run(reqs, timeline=timeline)
        latency = result.detection_latency(onset)
        assert latency is not None
        assert latency <= 2 * system.capture_period_s

    def test_cold_boot_blocks_all_reads(self, factory):
        system, gen = build_system(seed=25)
        foreign = factory.manufacture(seed=999, name="attacker")
        result = system.simulate_cold_boot_theft(
            foreign, gen.random(32, write_fraction=0.0)
        )
        assert result.n_blocked_accesses == len(result.completed) == 32
        module_events = [e for e in result.events if e.side == "module"]
        assert module_events[0].action is Action.BLOCK
