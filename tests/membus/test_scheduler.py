"""Unit tests for the memory-request scheduling policies."""

import numpy as np
import pytest

from repro.membus import (
    AddressMap,
    FCFSPolicy,
    FRFCFSPolicy,
    MemoryController,
    MemoryOp,
    MemoryRequest,
    SDRAMDevice,
    TraceGenerator,
    make_policy,
)

AMAP = AddressMap(n_banks=4, n_rows=64, n_columns=32)


def read(bank, row, col):
    return MemoryRequest(MemoryOp.READ, AMAP.encode(bank, row, col))


class TestFCFS:
    def test_strict_order(self):
        policy = FCFSPolicy()
        reqs = [read(0, r, 0) for r in range(5)]
        for r in reqs:
            policy.push(r)
        device = SDRAMDevice(address_map=AMAP)
        out = [policy.pop_next(device) for _ in range(5)]
        assert out == reqs

    def test_empty_pop(self):
        assert FCFSPolicy().pop_next(SDRAMDevice(address_map=AMAP)) is None

    def test_len(self):
        policy = FCFSPolicy()
        policy.push(read(0, 0, 0))
        assert len(policy) == 1


class TestFRFCFS:
    def test_prefers_row_hit(self):
        device = SDRAMDevice(address_map=AMAP)
        device.access(read(0, 5, 0))  # opens bank 0 row 5
        policy = FRFCFSPolicy()
        miss = read(0, 9, 0)
        hit = read(0, 5, 3)
        policy.push(miss)
        policy.push(hit)
        assert policy.pop_next(device) is hit
        assert policy.pop_next(device) is miss

    def test_fcfs_within_hits(self):
        device = SDRAMDevice(address_map=AMAP)
        device.access(read(1, 2, 0))
        policy = FRFCFSPolicy()
        first_hit = read(1, 2, 1)
        second_hit = read(1, 2, 2)
        policy.push(first_hit)
        policy.push(second_hit)
        assert policy.pop_next(device) is first_hit

    def test_no_hits_falls_back_to_oldest(self):
        device = SDRAMDevice(address_map=AMAP)
        policy = FRFCFSPolicy()
        a, b = read(0, 1, 0), read(0, 2, 0)
        policy.push(a)
        policy.push(b)
        assert policy.pop_next(device) is a

    def test_window_limits_lookahead(self):
        device = SDRAMDevice(address_map=AMAP)
        device.access(read(0, 7, 0))
        policy = FRFCFSPolicy(window=2)
        misses = [read(0, r + 10, 0) for r in range(3)]
        hit = read(0, 7, 1)  # sits beyond the window
        for m in misses:
            policy.push(m)
        policy.push(hit)
        assert policy.pop_next(device) is misses[0]

    def test_starvation_bound(self):
        """A conflicted head request is eventually served despite a
        continuous stream of row hits."""
        device = SDRAMDevice(address_map=AMAP)
        device.access(read(0, 3, 0))
        policy = FRFCFSPolicy(starvation_limit=4)
        victim = read(0, 30, 0)  # row miss, always bypassed
        policy.push(victim)
        served = []
        for i in range(10):
            policy.push(read(0, 3, i + 1))  # endless hits
            served.append(policy.pop_next(device))
        assert victim in served[:6]

    def test_validation(self):
        with pytest.raises(ValueError):
            FRFCFSPolicy(window=0)
        with pytest.raises(ValueError):
            FRFCFSPolicy(starvation_limit=0)


class TestPolicyFactory:
    def test_names(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("frfcfs"), FRFCFSPolicy)
        with pytest.raises(ValueError):
            make_policy("random")


class TestControllerIntegration:
    def _run(self, policy):
        device = SDRAMDevice(address_map=AMAP)
        controller = MemoryController(device, policy=policy)
        trace = TraceGenerator(AMAP, seed=1).hotspot(
            1500, hot_rows=4, hot_fraction=0.7
        )
        for request in trace:
            controller.enqueue(request)
        records = controller.drain()
        return device, records, controller

    def test_frfcfs_improves_hot_trace(self):
        dev_f, rec_f, _ = self._run(FCFSPolicy())
        dev_r, rec_r, _ = self._run(FRFCFSPolicy())
        def hit_rate(d):
            return d.stats["row_hits"] / (
                d.stats["row_hits"] + d.stats["row_misses"]
            )

        assert hit_rate(dev_r) > hit_rate(dev_f)
        def mean(rs):
            return np.mean([r.latency_cycles for r in rs])

        assert mean(rec_r) < mean(rec_f)

    def test_all_requests_complete_under_both(self):
        _, rec_f, _ = self._run(FCFSPolicy())
        _, rec_r, _ = self._run(FRFCFSPolicy())
        assert len(rec_f) == len(rec_r) == 1500

    def test_same_request_set_served(self):
        _, rec_f, _ = self._run(FCFSPolicy())
        _, rec_r, _ = self._run(FRFCFSPolicy())
        def addrs(rs):
            return sorted(r.request.address for r in rs)

        assert addrs(rec_f) == addrs(rec_r)
