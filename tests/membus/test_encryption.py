"""Unit tests for the counter-mode memory-encryption engine."""

import pytest

from repro.membus.encryption import (
    CounterModeEngine,
    EncryptedWord,
    xtea_encrypt_block,
)


class TestXTEA:
    def test_published_vector(self):
        """XTEA test vector: key 000102...0F, plaintext 4142434445464748."""
        out = xtea_encrypt_block(
            0x41424344,
            0x45464748,
            (0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F),
        )
        assert out == (0x497DF3D0, 0x72612CB5)

    def test_zero_vector(self):
        """All-zero key and plaintext: known XTEA output."""
        out = xtea_encrypt_block(0, 0, (0, 0, 0, 0))
        assert out == (0xDEE9D4D8, 0xF7131ED9)

    def test_deterministic(self):
        key = (1, 2, 3, 4)
        assert xtea_encrypt_block(5, 6, key) == xtea_encrypt_block(5, 6, key)

    def test_key_sensitivity(self):
        a = xtea_encrypt_block(5, 6, (1, 2, 3, 4))
        b = xtea_encrypt_block(5, 6, (1, 2, 3, 5))
        assert a != b

    def test_outputs_are_32_bit(self):
        v0, v1 = xtea_encrypt_block(0xFFFFFFFF, 0xFFFFFFFF, (0xFFFFFFFF,) * 4)
        assert 0 <= v0 <= 0xFFFFFFFF and 0 <= v1 <= 0xFFFFFFFF

    def test_validation(self):
        with pytest.raises(ValueError):
            xtea_encrypt_block(0, 0, (1, 2, 3))
        with pytest.raises(ValueError):
            xtea_encrypt_block(0, 0, (1, 2, 3, 4), n_rounds=0)


class TestCounterModeEngine:
    def test_roundtrip(self):
        engine = CounterModeEngine()
        word = engine.encrypt(100, 0xDEADBEEF)
        assert engine.decrypt(100, word) == 0xDEADBEEF

    def test_ciphertext_hides_plaintext(self):
        engine = CounterModeEngine()
        word = engine.encrypt(1, 0x12345678)
        assert word.ciphertext != 0x12345678

    def test_freshness_same_plaintext_new_ciphertext(self):
        """Counter mode's defining property: rewrites never repeat."""
        engine = CounterModeEngine()
        first = engine.encrypt(7, 42)
        second = engine.encrypt(7, 42)
        assert first.counter != second.counter
        assert first.ciphertext != second.ciphertext

    def test_counter_tracks_writes(self):
        engine = CounterModeEngine()
        assert engine.current_counter(3) == 0
        engine.encrypt(3, 1)
        engine.encrypt(3, 2)
        assert engine.current_counter(3) == 2

    def test_mac_rejects_tampered_ciphertext(self):
        engine = CounterModeEngine()
        word = engine.encrypt(9, 777)
        forged = EncryptedWord(
            ciphertext=word.ciphertext ^ 1, counter=word.counter, mac=word.mac
        )
        assert engine.decrypt(9, forged) is None

    def test_mac_rejects_replayed_counter(self):
        """An old word replayed after a rewrite fails (stale counter MAC
        still verifies, but content differs — splice to another address
        fails outright)."""
        engine = CounterModeEngine()
        old = engine.encrypt(5, 111)
        engine.encrypt(5, 222)
        # Replay to a *different* address: MAC binds the address.
        assert engine.decrypt(6, old) is None

    def test_address_binding(self):
        engine = CounterModeEngine()
        word = engine.encrypt(10, 5)
        assert engine.decrypt(11, word) is None

    def test_wrong_key_fails(self):
        a = CounterModeEngine(key=(1, 2, 3, 4))
        b = CounterModeEngine(key=(4, 3, 2, 1))
        word = a.encrypt(0, 99)
        # Same MAC key here, so decryption yields garbage or None; it must
        # never yield the plaintext.
        result = b.decrypt(0, word)
        assert result != 99

    def test_many_words_roundtrip(self, rng):
        engine = CounterModeEngine()
        words = {}
        for address in range(200):
            value = int(rng.integers(0, 2**32))
            words[address] = (value, engine.encrypt(address, value))
        for address, (value, word) in words.items():
            assert engine.decrypt(address, word) == value

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterModeEngine(latency_cycles=-1)


class TestStackExperiment:
    def test_composition_matrix(self):
        from repro.experiments import ext_stack

        result = ext_stack.run(n_words=16)
        assert result.composition_wins()
        assert result.divot_costs_nothing()
        assert len(result.rows) == 4

    def test_report_renders(self):
        from repro.experiments import ext_stack

        result = ext_stack.run(n_words=8)
        assert "divot+encryption" in result.report()

    def test_validation(self):
        from repro.experiments import ext_stack

        with pytest.raises(ValueError):
            ext_stack.run(n_words=0)
