"""Unit tests for the SDRAM device model."""

import pytest

from repro.membus.dram import DRAMTiming, SDRAMDevice
from repro.membus.transactions import AddressMap, MemoryOp, MemoryRequest


AMAP = AddressMap(n_banks=4, n_rows=32, n_columns=16)
TIMING = DRAMTiming()


def read(addr):
    return MemoryRequest(MemoryOp.READ, addr)


def write(addr, data=0xAB):
    return MemoryRequest(MemoryOp.WRITE, addr, data=data)


@pytest.fixture
def dram():
    return SDRAMDevice(address_map=AMAP, timing=TIMING)


class TestTiming:
    def test_cold_read_pays_activate_plus_cas(self, dram):
        result = dram.access(read(0))
        assert result.ok
        assert not result.row_hit
        assert result.latency_cycles == TIMING.t_rcd + TIMING.cl + TIMING.burst

    def test_row_hit_pays_cas_only(self, dram):
        dram.access(read(0))
        result = dram.access(read(1))  # same row, next column
        assert result.row_hit
        assert result.latency_cycles == TIMING.cl + TIMING.burst

    def test_row_miss_pays_precharge(self, dram):
        dram.access(read(0))
        far = AMAP.encode(0, 5, 0)  # same bank, different row
        result = dram.access(read(far))
        assert not result.row_hit
        assert (
            result.latency_cycles
            == TIMING.t_rp + TIMING.t_rcd + TIMING.cl + TIMING.burst
        )

    def test_different_banks_independent_rows(self, dram):
        dram.access(read(AMAP.encode(0, 1, 0)))
        dram.access(read(AMAP.encode(1, 2, 0)))
        result = dram.access(read(AMAP.encode(0, 1, 5)))
        assert result.row_hit

    def test_write_latency_uses_cwl(self, dram):
        result = dram.access(write(0))
        assert result.latency_cycles == TIMING.t_rcd + TIMING.cwl + TIMING.burst

    def test_refresh_closes_rows_and_stalls(self):
        timing = DRAMTiming(t_refi=100, t_rfc=20)
        dram = SDRAMDevice(address_map=AMAP, timing=timing)
        dram.access(read(0))
        # Burn cycles until a refresh is due.
        while dram.current_cycle < 100:
            dram.access(read(1))
        result = dram.access(read(2))
        assert dram.stats["refreshes"] >= 1
        assert not result.row_hit  # refresh closed the row

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            DRAMTiming(t_rcd=0)


class TestData:
    def test_read_after_write(self, dram):
        dram.access(write(7, data=123))
        assert dram.access(read(7)).data == 123

    def test_unwritten_reads_zero(self, dram):
        assert dram.access(read(9)).data == 0

    def test_peek_does_not_advance_time(self, dram):
        dram.access(write(3, data=9))
        cycle = dram.current_cycle
        assert dram.peek(3) == 9
        assert dram.current_cycle == cycle

    def test_occupied_cells(self, dram):
        dram.access(write(1, data=1))
        dram.access(write(2, data=2))
        dram.access(write(1, data=3))
        assert dram.occupied_cells() == 2

    def test_stats_counts(self, dram):
        dram.access(write(0))
        dram.access(read(0))
        dram.access(read(1))
        assert dram.stats["writes"] == 1
        assert dram.stats["reads"] == 2
        assert dram.stats["row_hits"] == 2


class TestAuthGate:
    def test_gate_blocks_column_access(self):
        dram = SDRAMDevice(address_map=AMAP, auth_gate=lambda: False)
        result = dram.access(read(0))
        assert not result.ok
        assert result.blocked
        assert result.data is None
        assert dram.stats["blocked"] == 1

    def test_gate_blocks_writes_too(self):
        dram = SDRAMDevice(address_map=AMAP, auth_gate=lambda: False)
        dram.access(write(4, data=77))
        assert dram.peek(4) is None  # nothing written

    def test_gate_checked_per_access(self):
        allowed = {"value": False}
        dram = SDRAMDevice(address_map=AMAP, auth_gate=lambda: allowed["value"])
        assert dram.access(read(0)).blocked
        allowed["value"] = True
        assert dram.access(read(0)).ok

    def test_gate_none_means_open(self, dram):
        assert dram.access(read(0)).ok
