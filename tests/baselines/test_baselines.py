"""Unit tests for the prior-art countermeasure models."""

import numpy as np
import pytest

from repro.attacks import CapacitiveSnoop, MagneticProbe, WireTap
from repro.baselines import (
    DCResistanceMonitor,
    InputImpedancePUF,
    ProbeAttemptDetector,
    VNAIIPReader,
)


class TestBaseProtocol:
    def test_deviation_before_enroll_raises(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            det.deviation(line)

    def test_noise_floor_positive(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(0))
        det.enroll(line)
        assert det.noise_floor(line) > 0

    def test_detects_threshold_validation(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(0))
        det.enroll(line)
        with pytest.raises(ValueError):
            det.detects(line, [], threshold=0.0)

    def test_enroll_validation(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            det.enroll(line, n_measurements=0)


class TestPAD:
    @pytest.fixture
    def pad(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(1))
        det.enroll(line)
        return det

    def test_blind_to_magnetic_probe(self, pad, line):
        """Inductive-only perturbation leaves capacitance untouched."""
        floor = pad.noise_floor(line, 24)
        assert pad.deviation(line, [MagneticProbe(0.12)]) < 3 * floor

    def test_sees_capacitive_snoop(self, pad, line):
        floor = pad.noise_floor(line, 24)
        assert pad.deviation(line, [CapacitiveSnoop(0.12)]) > 3 * floor

    def test_sees_wiretap(self, pad, line):
        floor = pad.noise_floor(line, 24)
        assert pad.deviation(line, [WireTap(0.12)]) > 3 * floor

    def test_not_concurrent(self):
        assert not ProbeAttemptDetector.traits.concurrent_with_data

    def test_ro_frequency_drops_with_capacitance(self, line):
        det = ProbeAttemptDetector(rng=np.random.default_rng(2))
        f_clean = det.observable(line)[0]
        f_loaded = det.observable(line, [CapacitiveSnoop(0.12, loading=0.3)])[0]
        assert f_loaded < f_clean

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeAttemptDetector(f0_hz=0.0)


class TestDCResistance:
    @pytest.fixture
    def dc(self, populated_line):
        det = DCResistanceMonitor(rng=np.random.default_rng(1))
        det.enroll(populated_line)
        return det

    def test_blind_to_magnetic_probe(self, dc, populated_line):
        floor = dc.noise_floor(populated_line, 24)
        assert dc.deviation(populated_line, [MagneticProbe(0.12)]) < 3 * floor

    def test_blind_to_capacitive_snoop(self, dc, populated_line):
        floor = dc.noise_floor(populated_line, 24)
        assert (
            dc.deviation(populated_line, [CapacitiveSnoop(0.12)]) < 3 * floor
        )

    def test_sees_wiretap(self, dc, populated_line):
        floor = dc.noise_floor(populated_line, 24)
        assert dc.deviation(populated_line, [WireTap(0.12)]) > 3 * floor

    def test_validation(self):
        with pytest.raises(ValueError):
            DCResistanceMonitor(copper_ohm_per_m=0.0)


class TestInputImpedancePUF:
    def test_identifies_boards(self, factory):
        lines = factory.manufacture_batch(5)
        puf = InputImpedancePUF(rng=np.random.default_rng(1))
        correct = 0
        for i, line in enumerate(lines):
            observed = puf.measure(line)
            if puf.identify(lines, observed) == i:
                correct += 1
        # The paper criticises this PUF's "low identification performance"
        # relative to waveform-grade fingerprints: a few scalar moments sit
        # close together across boards, so occasional confusion is the
        # faithful behaviour.
        assert correct >= 3

    def test_cannot_localise(self, line):
        """Feature is 4 moments: no positional information exists."""
        puf = InputImpedancePUF(rng=np.random.default_rng(1))
        assert len(puf.observable(line)) == 4

    def test_not_runtime(self):
        assert not InputImpedancePUF.traits.runtime_capable

    def test_identify_empty_rejected(self, line):
        puf = InputImpedancePUF()
        with pytest.raises(ValueError):
            puf.identify([], np.zeros(4))


class TestVNAReader:
    def test_same_line_high_similarity(self, line):
        vna = VNAIIPReader(rng=np.random.default_rng(1))
        assert vna.similarity(line, line) > 0.95

    def test_different_lines_low_similarity(self, line, other_line):
        vna = VNAIIPReader(rng=np.random.default_rng(1))
        # Different lines share nominal structure (launch step, load echo),
        # so impostor similarity sits well below genuine but above 1/2.
        assert vna.similarity(line, other_line) < 0.95

    def test_sees_every_attack(self, line):
        vna = VNAIIPReader(rng=np.random.default_rng(1))
        vna.enroll(line)
        floor = vna.noise_floor(line, 24)
        for attack in [
            MagneticProbe(0.12),
            CapacitiveSnoop(0.12),
            WireTap(0.12),
        ]:
            assert vna.deviation(line, [attack]) > 3 * floor

    def test_expensive_and_offline(self):
        traits = VNAIIPReader.traits
        assert not traits.concurrent_with_data
        assert not traits.integrated
        assert traits.relative_cost > 50
