"""Cross-workload telemetry: one shared surface, three workloads.

The acceptance criterion of the runtime refactor: the protected memory
bus, the protected serial link, and the shared round-robin manager all
drive ``MonitorRuntime`` through a cadence and expose the *same*
structured telemetry dict — identical key shape, counts consistent with
their event logs, detection latency computed the same way everywhere.
"""

import numpy as np
import pytest

from repro.core import (
    Authenticator,
    SharedITDRManager,
    TamperDetector,
    prototype_itdr,
)
from repro.core.runtime import EventLog, MonitorEvent, Telemetry
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.membus import (
    AddressMap,
    MemoryBus,
    ProtectedMemorySystem,
    SDRAMDevice,
    TraceGenerator,
)
from repro.protocols import ProtectedLink, registry
from repro.txline.materials import FR4

#: Every protocol the registry knows — the telemetry-shape contract is
#: parametrized over all of them, so a newly registered protocol is
#: held to the shared surface automatically.
ALL_PROTOCOLS = registry.load_all()


def make_detector(itdr):
    return TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )


@pytest.fixture(scope="module")
def workloads(factory):
    """One small run of each of the three protected workloads."""
    # Memory bus: periodic cadence on the clock lane.
    line = factory.manufacture(seed=50, name="membus-clk")
    bus = MemoryBus(line=line, clock_frequency=1.2e9)
    amap = AddressMap(n_banks=4, n_rows=32, n_columns=16)
    system = ProtectedMemorySystem(
        bus,
        SDRAMDevice(address_map=amap),
        prototype_itdr(rng=np.random.default_rng(51)),
        prototype_itdr(rng=np.random.default_rng(52)),
        Authenticator(0.85),
        make_detector(prototype_itdr()),
        captures_per_check=4,
    )
    system.calibrate(n_captures=8)
    gen = TraceGenerator(amap, seed=53)
    system.run(gen.random(400, write_fraction=0.4), monitor_first=True)

    # Serial link: trigger-budget cadence fed by frame traffic.
    link_line = factory.manufacture(seed=60)
    tx = prototype_itdr(rng=np.random.default_rng(61))
    plink = ProtectedSerialLink(
        SerialLink(link_line, bit_rate=5e9),
        tx,
        prototype_itdr(rng=np.random.default_rng(62)),
        Authenticator(0.85),
        make_detector(tx),
        captures_per_check=4,
    )
    plink.calibrate()
    rng = np.random.default_rng(63)
    frames = [
        Frame(sequence=i % 256,
              payload=tuple(rng.integers(0, 256, 64).tolist()))
        for i in range(400)
    ]
    plink.send(frames)

    # Shared datapath: round-robin cadence over registered buses.
    itdr = prototype_itdr(rng=np.random.default_rng(71))
    manager = SharedITDRManager(
        itdr, Authenticator(0.85), make_detector(itdr), captures_per_check=4
    )
    for bus_line in factory.manufacture_batch(3, first_seed=70):
        manager.register(bus_line)
    manager.calibrate_all(n_captures=8)
    manager.scan()

    return {"membus": system, "iolink": plink, "manager": manager}


CELL_KEYS = {"checks", "proceeds", "blocks", "alerts", "flagged",
             "tampered", "score"}
SCORE_KEYS = {"count", "mean", "min", "max", "hist", "bin_edges"}
TOP_KEYS = {"endpoints", "buses", "shards", "protocols", "totals",
            "cadence", "health", "detection", "campaigns"}
HEALTH_KEYS = {"dispatches", "degraded_dispatches", "retries",
               "serial_fallbacks", "pool_rebuilds", "timeouts",
               "broken_pools", "crashes", "errors", "per_shard_wall_s",
               "solve_cache", "capture_kernel", "transport"}
DETECTION_KEYS = {"onset_s", "first_alert_s", "latency_s", "per_side"}


class TestSharedTelemetrySurface:
    def test_every_workload_exposes_a_telemetry_sink(self, workloads):
        for workload in workloads.values():
            assert isinstance(workload.telemetry, Telemetry)
            assert isinstance(workload.telemetry.log, EventLog)

    def test_snapshot_shape_is_identical_across_workloads(self, workloads):
        for name, workload in workloads.items():
            snap = workload.telemetry.snapshot()
            assert set(snap) == TOP_KEYS, name
            assert set(snap["detection"]) == DETECTION_KEYS, name
            assert set(snap["cadence"]) == {
                "checks_run", "triggers_consumed"
            }, name
            for cell in [snap["totals"], *snap["endpoints"].values(),
                         *snap["buses"].values()]:
                assert set(cell) == CELL_KEYS, name
                assert set(cell["score"]) == SCORE_KEYS, name

    def test_counts_are_consistent_with_the_event_log(self, workloads):
        for name, workload in workloads.items():
            snap = workload.telemetry.snapshot()
            log = workload.telemetry.log
            assert snap["totals"]["checks"] == len(log), name
            assert snap["totals"]["alerts"] == sum(
                1 for e in log if e.is_alert
            ), name
            assert sum(
                cell["checks"] for cell in snap["endpoints"].values()
            ) == len(log), name

    def test_all_workloads_actually_monitored(self, workloads):
        for name, workload in workloads.items():
            snap = workload.telemetry.snapshot()
            assert snap["totals"]["checks"] > 0, name
            assert snap["cadence"]["checks_run"] > 0, name

    def test_events_are_canonical_monitor_events(self, workloads):
        # The PR-2 compatibility aliases survive but warn on use.
        with pytest.deprecated_call():
            from repro.iolink.protected import LinkEvent
        assert LinkEvent is MonitorEvent
        with pytest.deprecated_call():
            from repro.membus import MonitorEvent as MembusMonitorEvent
        assert MembusMonitorEvent is MonitorEvent
        for name, workload in workloads.items():
            for event in workload.telemetry.log:
                assert type(event) is MonitorEvent, name

    def test_per_side_cells_match_workload_topology(self, workloads):
        membus = workloads["membus"].telemetry.snapshot()
        assert set(membus["endpoints"]) == {"cpu", "module"}
        iolink = workloads["iolink"].telemetry.snapshot()
        assert set(iolink["endpoints"]) == {"tx", "rx"}
        manager = workloads["manager"].telemetry.snapshot()
        names = set(workloads["manager"].bus_names())
        assert set(manager["endpoints"]) == names
        # The shared manager is the only per-bus workload, so only it
        # populates the per-bus breakdown.
        assert set(manager["buses"]) == names
        assert membus["buses"] == {} and iolink["buses"] == {}
        # Shard cells and dispatch-health accounting belong to sharded
        # fleet scans alone; every single-datapath workload leaves the
        # cells empty and the health counters zeroed (same key shape).
        for snap in (membus, iolink, manager):
            assert snap["shards"] == {}
            assert set(snap["health"]) == HEALTH_KEYS
            assert snap["health"]["per_shard_wall_s"] == {}
            assert all(
                v == 0 for k, v in snap["health"].items()
                if k not in (
                    "per_shard_wall_s", "solve_cache", "capture_kernel",
                    "transport",
                )
            )
            # Single-datapath workloads never move shard payloads: the
            # transport ledger is present (same key shape) but zeroed.
            assert all(
                v == 0 for v in snap["health"]["transport"].values()
            )
            # The solve-cache section: live process counters plus the
            # worker-delta accumulator, which no single-datapath
            # workload ever folds into.
            cache = snap["health"]["solve_cache"]
            assert set(cache) == {"process", "workers"}
            assert set(cache["process"]) == {
                "hits", "misses", "evictions", "entries", "capacity"
            }
            assert cache["workers"] == {
                "hits": 0, "misses": 0, "evictions": 0
            }
            # Same for the capture-kernel accumulator: only sharded
            # fleet dispatches ship counter deltas home.
            from repro.core.capturekernel import CaptureKernelStats

            assert snap["health"]["capture_kernel"] == {
                key: 0 for key in CaptureKernelStats.COUNTER_KEYS
            }

    def test_detection_latency_reads_identically(self, workloads):
        """A clean run reports the same null detection block everywhere."""
        for name, workload in workloads.items():
            detect = workload.telemetry.snapshot(onset_s=0.0)["detection"]
            assert detect["onset_s"] == 0.0, name
            assert detect["latency_s"] is None, name
            assert detect["first_alert_s"] is None, name
            sides = workload.telemetry.snapshot()["endpoints"]
            assert detect["per_side"] == {s: None for s in sides}, name

    def test_workload_events_carry_their_protocol_label(self, workloads):
        """The refactored workloads stamp the registry name on events;
        the shared manager (protocol-agnostic registration) does not."""
        for name, label in (("membus", "membus"), ("iolink", "iolink")):
            snap = workloads[name].telemetry.snapshot()
            assert set(snap["protocols"]) == {label}, name
            assert snap["protocols"][label]["checks"] == len(
                workloads[name].telemetry.log
            ), name
        assert workloads["manager"].telemetry.snapshot()["protocols"] == {}


@pytest.fixture(scope="module")
def protocol_links():
    """One clean generic session per registered protocol."""
    links = {}
    for name in ALL_PROTOCOLS:
        link = ProtectedLink.from_registry(name, seed=7)
        link.calibrate(n_captures=8)
        link.session(seed=1)
        links[name] = link
    return links


class TestEveryRegisteredProtocol:
    """The PR-2 telemetry contract, over the whole registry."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_snapshot_shape_matches_the_shared_surface(
        self, protocol_links, protocol
    ):
        link = protocol_links[protocol]
        snap = link.telemetry.snapshot()
        assert set(snap) == TOP_KEYS
        assert set(snap["detection"]) == DETECTION_KEYS
        assert set(snap["cadence"]) == {"checks_run", "triggers_consumed"}
        for cell in [snap["totals"], *snap["endpoints"].values(),
                     *snap["protocols"].values()]:
            assert set(cell) == CELL_KEYS
            assert set(cell["score"]) == SCORE_KEYS

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_events_fill_the_protocol_cell(self, protocol_links, protocol):
        link = protocol_links[protocol]
        snap = link.telemetry.snapshot()
        log = link.telemetry.log
        assert len(log) > 0
        assert all(event.protocol == protocol for event in log)
        assert set(snap["protocols"]) == {protocol}
        assert snap["protocols"][protocol]["checks"] == len(log)
        assert set(snap["endpoints"]) == set(
            registry.get(protocol).sides
        )
