"""Failure-injection tests: what drifts, breaks, or lies — and what happens.

Each test injects a realistic fault between enrollment and verification and
checks the system's response is the *right* failure mode: gain/offset
drifts are absorbed by the canonical fingerprint form; corrupted ROMs cost
availability (blocks) but never security (false accepts); noisier
comparators degrade gracefully; configuration mismatches fail loudly.
"""

import numpy as np
import pytest

from repro.core import (
    Authenticator,
    Fingerprint,
    capture_similarity,
    prototype_itdr,
)
from repro.core.fingerprint import FingerprintROM


class TestAnalogDriftAbsorbed:
    """Slow analog-front-end drifts the canonical form must absorb."""

    def test_comparator_offset_drift(self, line):
        """A few-mV offset appearing after enrollment: harmless.

        The estimated waveform shifts by a constant; zero-meaning removes
        it exactly.
        """
        enroll_itdr = prototype_itdr(rng=np.random.default_rng(1))
        fingerprint = Fingerprint.from_captures(
            [enroll_itdr.capture(line) for _ in range(16)]
        )
        drifted = prototype_itdr(
            rng=np.random.default_rng(2), comparator_offset=2e-3
        )
        score = capture_similarity(drifted.capture(line), fingerprint)
        baseline = capture_similarity(
            prototype_itdr(rng=np.random.default_rng(3)).capture(line),
            fingerprint,
        )
        assert score > baseline - 0.05

    def test_coupler_gain_drift(self, line):
        """A 20 % coupler gain change: harmless (unit-norm absorbs gain)."""
        enroll_itdr = prototype_itdr(rng=np.random.default_rng(1))
        fingerprint = Fingerprint.from_captures(
            [enroll_itdr.capture(line) for _ in range(16)]
        )
        drifted = prototype_itdr(rng=np.random.default_rng(2), coupling=0.30)
        score = capture_similarity(drifted.capture(line), fingerprint)
        assert score > 0.8

    def test_noisier_comparator_degrades_gracefully(self, line, other_line):
        """50 % more thermal noise: genuine scores drop but stay above
        impostor scores — degradation, not collapse."""
        enroll_itdr = prototype_itdr(rng=np.random.default_rng(1))
        fingerprint = Fingerprint.from_captures(
            [enroll_itdr.capture(line) for _ in range(16)]
        )
        hot_chip = prototype_itdr(
            rng=np.random.default_rng(2), noise_sigma=4.5e-3,
            pdm_amplitude=27e-3,
        )
        genuine = np.mean(
            [
                capture_similarity(hot_chip.capture(line), fingerprint)
                for _ in range(20)
            ]
        )
        impostor = np.mean(
            [
                capture_similarity(hot_chip.capture(other_line), fingerprint)
                for _ in range(20)
            ]
        )
        assert genuine > impostor + 0.05


class TestROMCorruption:
    """A damaged fingerprint ROM: availability loss, never a false accept."""

    def _corrupt(self, fingerprint, fraction, rng):
        samples = fingerprint.samples.copy()
        n = max(1, int(fraction * len(samples)))
        idx = rng.choice(len(samples), size=n, replace=False)
        samples[idx] = -samples[idx]  # sign flips: harsh bit-level damage
        return Fingerprint(
            name=fingerprint.name, samples=samples, dt=fingerprint.dt
        )

    def test_light_corruption_survivable(self, line, itdr, enrolled_fingerprint, rng):
        corrupted = self._corrupt(enrolled_fingerprint, 0.02, rng)
        score = capture_similarity(itdr.capture(line), corrupted)
        assert score > 0.75  # a couple of flipped points hardly matter

    def test_heavy_corruption_blocks_not_accepts(
        self, line, other_line, itdr, enrolled_fingerprint, rng
    ):
        corrupted = self._corrupt(enrolled_fingerprint, 0.5, rng)
        auth = Authenticator(threshold=0.85)
        genuine = auth.decide(itdr.capture(line), corrupted)
        impostor = auth.decide(itdr.capture(other_line), corrupted)
        # The genuine line is (wrongly) rejected — availability loss...
        assert not genuine.accepted
        # ...but the corruption never manufactures a false accept.
        assert not impostor.accepted

    def test_corruption_cannot_favor_impostor(
        self, line, other_line, itdr, enrolled_fingerprint, rng
    ):
        """Across many random corruptions the impostor never outscores the
        genuine line by the acceptance margin."""
        for _ in range(10):
            corrupted = self._corrupt(enrolled_fingerprint, 0.3, rng)
            g = capture_similarity(itdr.capture(line), corrupted)
            i = capture_similarity(itdr.capture(other_line), corrupted)
            assert i < max(g + 0.05, 0.85)

    def test_rom_roundtrip_preserves_bits_exactly(self, enrolled_fingerprint):
        rom = FingerprintROM()
        rom.store(enrolled_fingerprint)
        restored = FingerprintROM.import_json(rom.export_json())
        assert np.array_equal(
            restored.load(enrolled_fingerprint.name).samples,
            enrolled_fingerprint.samples,
        )


class TestConfigurationMismatch:
    """Mismatched measurement configurations must fail loudly, not subtly."""

    def test_record_length_mismatch_raises(self, line, enrolled_fingerprint):

        short_itdr = prototype_itdr(
            rng=np.random.default_rng(1), record_margin=2e-9
        )
        capture = short_itdr.capture(line)
        assert len(capture.waveform) != len(enrolled_fingerprint.samples)
        with pytest.raises(ValueError):
            capture_similarity(capture, enrolled_fingerprint)

    def test_repetitions_not_multiple_of_ladder_still_estimates(self, line):
        """R not divisible by q biases level coverage; the estimate is
        degraded but finite and usable (no crash, no NaN)."""
        itdr = prototype_itdr(rng=np.random.default_rng(1), repetitions=25)
        capture = itdr.capture(line)
        assert np.isfinite(capture.waveform.samples).all()

    def test_zero_length_monitoring_rejected(self, line, itdr):
        with pytest.raises(ValueError):
            itdr.capture_averaged(line, 0)
