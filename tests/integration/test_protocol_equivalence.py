"""Byte-identity pins for the protocol-registry refactor.

The membus and iolink workloads were re-assembled on the generic
``repro.protocols.ProtectedLink`` layer; these digests were captured from
the pre-refactor assembly code at fixed seeds and pin that the refactor
changed *nothing observable*: the canonical ``EventLog`` stream and every
pre-existing section of ``Telemetry.snapshot()`` are byte-identical.

The digest covers only the sections that existed before the refactor
(``endpoints``/``buses``/``totals``/``cadence``/``detection`` plus the
full event tuple stream) — new provenance surfaces (the ``protocols``
cells) are additive and deliberately outside the pin.
"""

import hashlib
import json

import numpy as np

from repro.attacks import MagneticProbe, WireTap
from repro.attacks.base import AttackTimeline
from repro.core import Authenticator, TamperDetector, prototype_itdr
from repro.core.config import prototype_line_factory
from repro.iolink import Frame, ProtectedSerialLink, SerialLink
from repro.membus import (
    AddressMap,
    MemoryBus,
    ProtectedMemorySystem,
    SDRAMDevice,
    TraceGenerator,
)
from repro.txline.materials import FR4


def make_detector(itdr):
    return TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )


def canonical_digest(telemetry, log, onset_s) -> str:
    """One hash over the event stream + the pre-refactor snapshot sections.

    Floats serialise through ``repr`` (shortest round-trip), so equal
    bits give equal text; the ``protocols`` section added by the registry
    refactor is excluded on purpose — it did not exist on main.
    """
    events = [
        [e.time_s, e.side, e.action.value, e.score, e.tampered,
         e.location_m, e.bus]
        for e in log
    ]
    snap = telemetry.snapshot(onset_s=onset_s)
    sections = {
        key: snap[key]
        for key in ("endpoints", "buses", "totals", "cadence", "detection")
    }
    payload = json.dumps([events, sections], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def membus_fixed_seed_session():
    """The pinned membus scenario: fixed seeds, probe landing mid-run."""
    factory = prototype_line_factory()
    line = factory.manufacture(seed=50, name="membus-clk")
    bus = MemoryBus(line=line, clock_frequency=1.2e9)
    amap = AddressMap(n_banks=4, n_rows=32, n_columns=16)
    system = ProtectedMemorySystem(
        bus,
        SDRAMDevice(address_map=amap),
        prototype_itdr(rng=np.random.default_rng(51)),
        prototype_itdr(rng=np.random.default_rng(52)),
        Authenticator(0.85),
        make_detector(prototype_itdr()),
        captures_per_check=4,
    )
    system.calibrate(n_captures=4)
    gen = TraceGenerator(amap, seed=53)
    timeline = AttackTimeline().add(MagneticProbe(0.12), start_s=0.0)
    result = system.run(
        gen.random(200, write_fraction=0.4),
        timeline=timeline,
        monitor_first=True,
    )
    return system, result, 0.0


def iolink_fixed_seed_session():
    """The pinned iolink scenario: fixed seeds, wire tap from onset."""
    factory = prototype_line_factory()
    link_line = factory.manufacture(seed=60)
    tx = prototype_itdr(rng=np.random.default_rng(61))
    plink = ProtectedSerialLink(
        SerialLink(link_line, bit_rate=5e9),
        tx,
        prototype_itdr(rng=np.random.default_rng(62)),
        Authenticator(0.85),
        make_detector(tx),
        captures_per_check=4,
    )
    plink.calibrate(n_captures=4)
    rng = np.random.default_rng(63)
    frames = [
        Frame(sequence=i % 256,
              payload=tuple(rng.integers(0, 256, 64).tolist()))
        for i in range(120)
    ]
    timeline = AttackTimeline().add(WireTap(0.12), start_s=0.0)
    result = plink.send(frames, timeline=timeline)
    return plink, result, 0.0


#: sha256 digests captured from the pre-refactor (PR 1-6) assembly code.
GOLDEN = {
    "membus": "96c1cb331e3bd2d19228da19bf08176ba4337adf646b0a6c5eb15a330bdcd8c4",
    "iolink": "7c6e6d78648bd86a70be5abcce36647a89e3c7fb70fbc9916e434336dd01ed3e",
}


class TestProtocolRefactorByteIdentity:
    def test_membus_events_and_telemetry_unchanged(self):
        system, result, onset = membus_fixed_seed_session()
        assert canonical_digest(
            system.telemetry, result.log, onset
        ) == GOLDEN["membus"]

    def test_iolink_events_and_telemetry_unchanged(self):
        plink, result, onset = iolink_fixed_seed_session()
        assert canonical_digest(
            plink.telemetry, result.log, onset
        ) == GOLDEN["iolink"]
