"""End-to-end integration tests across the whole stack.

Each test tells one of the paper's stories from raw physics to decision:
enroll-then-authenticate, the two-way channel under attack, the cold-boot
narrative, and cross-layer consistency checks (budget vs. wall-clock model,
capture statistics vs. predicted estimator noise).
"""

import numpy as np
import pytest

from repro.attacks import ChipSwap, ColdBootSwap, MagneticProbe, WireTap
from repro.core import (
    Authenticator,
    DivotChannel,
    DivotEndpoint,
    Fingerprint,
    TamperDetector,
    capture_similarity,
    prototype_itdr,
)
from repro.core.divot import Action
from repro.txline.materials import FR4


def make_endpoint(name, seed, captures_per_check=8):
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    return DivotEndpoint(
        name,
        itdr,
        Authenticator(threshold=0.85),
        TamperDetector(
            threshold=2.5e-3,
            velocity=FR4.velocity_at(FR4.t_ref_c),
            smooth_window=7,
            alignment_offset_s=itdr.probe_edge().duration,
        ),
        captures_per_check=captures_per_check,
    )


class TestAuthenticationStory:
    """Paper section III: calibration then monitoring."""

    def test_enroll_authenticate_separate_lines(self, factory):
        lines = factory.manufacture_batch(4)
        itdr = prototype_itdr(rng=np.random.default_rng(0))
        fingerprints = [
            Fingerprint.from_captures([itdr.capture(l) for _ in range(8)])
            for l in lines
        ]
        for i, line in enumerate(lines):
            cap = itdr.capture(line)
            scores = [capture_similarity(cap, fp) for fp in fingerprints]
            assert int(np.argmax(scores)) == i

    def test_two_independent_itdrs_agree_on_fingerprint(self, line):
        """CPU-side and module-side iTDRs measure the same physics."""
        a = prototype_itdr(rng=np.random.default_rng(1))
        b = prototype_itdr(rng=np.random.default_rng(2))
        fp_a = Fingerprint.from_captures([a.capture(line) for _ in range(16)])
        cap_b = b.capture_averaged(line, 16)
        assert capture_similarity(cap_b, fp_a) > 0.95


class TestTwoWayChannelStory:
    def test_probe_alert_then_recovery(self, factory):
        line = factory.manufacture(seed=30)
        channel = DivotChannel(
            line, make_endpoint("cpu", 31), make_endpoint("dimm", 32)
        )
        channel.calibrate()
        clean = channel.step()
        assert clean.data_allowed
        probed = channel.step(modifiers=[WireTap(0.12)])
        assert probed.master.tamper.tampered
        assert probed.master.tamper.location_m == pytest.approx(0.12, abs=0.03)
        recovered = channel.step()
        assert recovered.data_allowed

    def test_chip_swap_detected_by_cpu_side(self, factory_with_receiver):
        line = factory_with_receiver.manufacture(seed=40)
        channel = DivotChannel(
            line, make_endpoint("cpu", 41), make_endpoint("dimm", 42)
        )
        channel.calibrate()
        result = channel.step(modifiers=[ChipSwap(replacement_seed=77)])
        assert (
            result.master.action is not Action.PROCEED
            or result.slave.action is not Action.PROCEED
        )


class TestColdBootStory:
    def test_stolen_module_cannot_be_read(self, factory):
        home_line = factory.manufacture(seed=50)
        attacker_line = factory.manufacture(seed=51)
        module = make_endpoint("dimm", 52)
        module.calibrate(home_line)
        swap = ColdBootSwap(foreign_line=attacker_line)
        foreign = swap.measured_line()
        renamed = type(foreign)(
            name=home_line.name,
            board_profile=foreign.board_profile,
            material=foreign.material,
        )
        result = module.monitor_capture(renamed)
        assert result.action is Action.BLOCK

    def test_module_recovers_at_home(self, factory):
        home_line = factory.manufacture(seed=50)
        attacker_line = factory.manufacture(seed=51)
        module = make_endpoint("dimm", 53)
        module.calibrate(home_line)
        renamed = type(attacker_line)(
            name=home_line.name,
            board_profile=attacker_line.board_profile,
            material=attacker_line.material,
        )
        module.monitor_capture(renamed)
        assert module.is_blocked
        back_home = module.monitor_capture(home_line)
        assert back_home.action is Action.PROCEED


class TestCrossLayerConsistency:
    def test_capture_noise_matches_estimator_prediction(self, line):
        """Monte-Carlo capture noise agrees with the delta-method model."""
        itdr = prototype_itdr(rng=np.random.default_rng(60))
        true = itdr.true_reflection(line).samples
        caps = itdr.capture_batch(line, 400)
        empirical = caps.std(axis=0)
        # Mid-window points: prediction via the PDM mixture sensitivity.
        idx = np.argsort(np.abs(true))[: len(true) // 2]
        assert np.median(empirical[idx]) < 3 * itdr.config.noise_sigma

    def test_budget_consistent_with_capture_metadata(self, line):
        itdr = prototype_itdr(rng=np.random.default_rng(61))
        cap = itdr.capture(line)
        budget = itdr.budget(itdr.record_length(line))
        assert cap.n_triggers == budget.n_triggers
        assert cap.duration_s == pytest.approx(budget.duration_s)

    def test_fingerprint_survives_rom_roundtrip_and_still_authenticates(
        self, line
    ):
        from repro.core.fingerprint import FingerprintROM

        itdr = prototype_itdr(rng=np.random.default_rng(62))
        fp = Fingerprint.from_captures([itdr.capture(line) for _ in range(8)])
        rom = FingerprintROM()
        rom.store(fp)
        restored = FingerprintROM.import_json(rom.export_json()).load(line.name)
        cap = itdr.capture(line)
        assert capture_similarity(cap, restored) == pytest.approx(
            capture_similarity(cap, fp)
        )

    def test_probe_position_sweep_monotone_in_time(self, line):
        """Echo arrival time grows with attack distance — the ranging
        principle behind localisation."""
        itdr = prototype_itdr(rng=np.random.default_rng(63))
        clean = itdr.true_reflection(line).samples
        peaks = []
        for pos in (0.06, 0.12, 0.18, 0.24):
            attacked = itdr.true_reflection(
                line, [MagneticProbe(pos, coupling=0.05)]
            ).samples
            diff = np.abs(attacked - clean)
            peaks.append(int(np.argmax(diff)))
        assert peaks == sorted(peaks)
        assert len(set(peaks)) == 4
