"""Property pins for the physics engines: batched ≡ scalar, lattice ≈ Born.

Two contracts guard the batched lattice kernel (plus a third for the
fused capture kernel riding on top of either engine):

(a) **Exactness** — :meth:`LatticeEngine.batch_impulse_sequences` is a
    pure vectorisation of the reference scalar loop
    (:meth:`LatticeEngine.scalar_impulse_sequence`): every batch row is
    *bit-for-bit* the scalar result, for any impedance profile, loss,
    source re-reflection, and load termination.  This is what lets the
    fast kernel replace the loop everywhere without re-pinning a single
    regression baseline.

(b) **Physics** — the exact lattice and the first-order Born engine agree
    up to the neglected multiple scattering.  The residual of a
    first-order model is second order in the reflection coefficients, so
    the discrepancy is bounded by ``(Σ|r_i| + |r_load| + |r_src|)²`` — a
    self-scaling tolerance that stays meaningful whether hypothesis draws
    a near-matched line (bound ~1e-4) or a coherent 2 % staircase
    (bound ~0.25, still far below the O(r) echo amplitudes themselves).

(c) **Capture fusion** — whichever engine renders the reflection, the
    fused count-only capture kernel is bit-for-bit the dense-grid
    estimate path.  The kernel only changes how comparator counts are
    materialised, never which physics produced the waveform under them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import prototype_itdr
from repro.txline.profile import ImpedanceProfile
from repro.txline.propagation import BornEngine, LatticeEngine

TAU = 11.16e-12

# Per-segment relative impedance perturbations: the |eps| <= 2 % band the
# manufacturing model works in, which also keeps the Born model's
# first-order assumption honest for contract (b).
perturbations = st.lists(
    st.floats(min_value=-0.02, max_value=0.02, allow_nan=False),
    min_size=1,
    max_size=24,
)


def profile_from(eps, z_load_rel, z_src_rel, loss, stretch):
    z = 50.0 * (1.0 + np.asarray(eps))
    return ImpedanceProfile(
        z=z,
        tau=np.full(len(z), TAU * stretch),
        z_source=float(z[0] * (1.0 + z_src_rel)),
        z_load=float(50.0 * (1.0 + z_load_rel)),
        loss_per_segment=loss,
    )


class TestBatchedMatchesScalar:
    """(a): the vectorised kernel is the scalar loop, bit for bit."""

    @given(
        eps=perturbations,
        z_load_rel=st.floats(-0.5, 0.5),
        z_src_rel=st.floats(-0.5, 0.5),
        loss=st.floats(0.9, 1.0),
        stretch=st.floats(0.98, 1.02),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_row_is_bitwise_scalar(
        self, eps, z_load_rel, z_src_rel, loss, stretch
    ):
        p = profile_from(eps, z_load_rel, z_src_rel, loss, stretch)
        engine = LatticeEngine()
        reference = engine.scalar_impulse_sequence(p)
        batched = engine.batch_impulse_sequences(
            p.z[None, :],
            p.tau[None, :],
            p.load_reflection(),
            p.loss_per_segment,
            r_src=p.source_reflection(),
        )
        assert batched.shape == (1, len(reference))
        assert batched[0].tobytes() == reference.samples.tobytes()

    @given(
        rows=st.lists(
            st.tuples(
                perturbations.filter(lambda e: len(e) >= 4),
                st.floats(-0.5, 0.5),
                st.floats(-0.5, 0.5),
            ),
            min_size=2,
            max_size=5,
        ),
        loss=st.floats(0.9, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_batch_row_is_bitwise_its_scalar_run(self, rows, loss):
        """Heterogeneous rows (padded to one width) stay independent."""
        s = max(len(eps) for eps, _, _ in rows)
        profiles = [
            profile_from(list(eps) + [0.0] * (s - len(eps)), zl, zs, loss, 1.0)
            for eps, zl, zs in rows
        ]
        engine = LatticeEngine()
        batched = engine.batch_impulse_sequences(
            np.stack([p.z for p in profiles]),
            np.stack([p.tau for p in profiles]),
            np.array([p.load_reflection() for p in profiles]),
            loss,
            r_src=np.array([p.source_reflection() for p in profiles]),
        )
        for row, p in zip(batched, profiles):
            reference = engine.scalar_impulse_sequence(p)
            assert row.tobytes() == reference.samples.tobytes()


class TestLatticeMatchesBorn:
    """(b): exact physics minus first-order physics ≤ second-order bound."""

    @given(
        eps=perturbations,
        z_load_rel=st.floats(-0.05, 0.05),
        loss=st.floats(0.97, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_discrepancy_bounded_by_second_order_scattering(
        self, eps, z_load_rel, loss
    ):
        p = profile_from(eps, z_load_rel, 0.0, loss, 1.0)
        n = 2 * p.n_segments + 10
        h_lat = LatticeEngine().impulse_sequence(p, n_steps=n)
        h_born = BornEngine(grid_dt=TAU).impulse_sequence(p, n_out=n)
        bound = (
            np.sum(np.abs(p.reflection_coefficients()))
            + abs(p.load_reflection())
            + abs(p.source_reflection())
        ) ** 2
        # Near-zero reflections push the second-order term below the
        # rounding noise of the first-order samples themselves; a few
        # ULP of the sample scale keeps the bound meaningful there.
        bound += 8 * np.finfo(float).eps * (
            np.max(np.abs(h_lat.samples)) + np.max(np.abs(h_born.samples))
        )
        assert np.max(np.abs(h_lat.samples - h_born.samples)) <= bound

    @given(eps=perturbations, stretch=st.floats(0.99, 1.01))
    @settings(max_examples=30, deadline=None)
    def test_analog_grid_rendering_agrees_too(self, eps, stretch):
        """The grid-rendered lattice (the capture path) matches Born on
        the same analog grid within the same second-order bound."""
        p = profile_from(eps, 0.02, 0.0, 1.0, stretch)
        grid_dt = TAU / 2.0
        n_out = int(np.ceil(2 * p.n_segments * stretch * TAU / grid_dt)) + 8
        h_lat = LatticeEngine(grid_dt=grid_dt).batch_impulse_sequences(
            p.z[None, :],
            p.tau[None, :],
            p.load_reflection(),
            p.loss_per_segment,
            n_out=n_out,
            r_src=p.source_reflection(),
        )
        h_born = BornEngine(grid_dt=grid_dt).batch_impulse_sequences(
            p.z[None, :], p.tau[None, :], p.load_reflection(),
            p.loss_per_segment, n_out=n_out,
        )
        bound = (
            np.sum(np.abs(p.reflection_coefficients()))
            + abs(p.load_reflection())
            + abs(p.source_reflection())
        ) ** 2
        assert h_lat.shape == h_born.shape == (1, n_out)
        assert np.max(np.abs(h_lat - h_born)) <= bound


class TestFusedCaptureMatchesGridOnBothEngines:
    """(c): engine choice and count fusion are orthogonal, bit for bit."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_captures=st.integers(1, 12),
        engine=st.sampled_from(["born", "lattice"]),
    )
    @settings(max_examples=16, deadline=None)
    def test_capture_stack_bitwise_equal(self, line, seed, n_captures, engine):
        fused = prototype_itdr(rng=np.random.default_rng(seed))
        grid = prototype_itdr(
            rng=np.random.default_rng(seed), capture_kernel="grid"
        )
        a = fused.capture_stack(line, n_captures, engine=engine)
        b = grid.capture_stack(line, n_captures, engine=engine)
        assert fused.kernel_stats.fused_calls == 1
        assert grid.kernel_stats.grid_calls == 1
        assert a.tobytes() == b.tobytes()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_engines_swap_without_stale_tables(self, line, seed):
        """One iTDR alternating engines must rebuild tables per solve key
        — a stale CDF table for the other engine's waveform would break
        byte-identity immediately."""
        fused = prototype_itdr(rng=np.random.default_rng(seed))
        grid = prototype_itdr(
            rng=np.random.default_rng(seed), capture_kernel="grid"
        )
        for engine in ("born", "lattice", "born", "lattice"):
            a = fused.capture_stack(line, 2, engine=engine)
            b = grid.capture_stack(line, 2, engine=engine)
            assert a.tobytes() == b.tobytes()
