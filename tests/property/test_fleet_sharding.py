"""Property pins for fleet sharding: partitioning and merge invariance.

The fleet executor's determinism rests on two pure pieces of arithmetic:
:func:`partition_fleet` (every bus in exactly one shard, registration
order preserved) and :func:`merge_shard_outputs` (the merged stream is
independent of how the fleet was partitioned and of shard completion
order).  Hypothesis sweeps both well beyond the fixtures the integration
tests use.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.divot import Action
from repro.core.fleet import (
    FleetRecord,
    FleetScanOutcome,
    merge_shard_outputs,
    partition_fleet,
)
from repro.core.runtime import EventLog, MonitorEvent

counts = st.integers(min_value=0, max_value=200)
shard_counts = st.integers(min_value=1, max_value=32)


class TestPartitionFleet:
    @given(n=counts, shards=shard_counts)
    def test_every_bus_lands_in_exactly_one_shard(self, n, shards):
        chunks = partition_fleet(n, shards)
        flat = [index for chunk in chunks for index in chunk]
        assert sorted(flat) == list(range(n))
        assert len(flat) == n  # no duplicates: exactly one shard each

    @given(n=counts, shards=shard_counts)
    def test_partition_preserves_registration_order(self, n, shards):
        chunks = partition_fleet(n, shards)
        flat = [index for chunk in chunks for index in chunk]
        assert flat == list(range(n))

    @given(n=counts, shards=shard_counts)
    def test_partition_is_balanced(self, n, shards):
        sizes = [len(chunk) for chunk in partition_fleet(n, shards)]
        assert len(sizes) == shards
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            partition_fleet(-1, 2)
        with pytest.raises(ValueError):
            partition_fleet(4, 0)


def fake_record(index: int) -> FleetRecord:
    """A deterministic stand-in for one bus's measured outcome."""
    return FleetRecord(
        index=index,
        bus=f"bus-{index}",
        shard=0,
        action=Action.PROCEED if index % 3 else Action.ALERT,
        score=1.0 - index * 1e-3,
        tampered=bool(index % 3 == 0),
        location_m=None if index % 2 else 0.01 * index,
    )


class TestMergeInvariance:
    @given(
        n=st.integers(min_value=1, max_value=64),
        shards=shard_counts,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_event_log_is_partition_and_order_independent(
        self, n, shards, data
    ):
        records = [fake_record(i) for i in range(n)]
        # Reference: the unsharded stream in registration order.
        reference = [(i, records[i]) for i in range(n)]

        chunks = partition_fleet(n, shards)
        shard_outputs = [
            [(i, records[i]) for i in chunk] for chunk in chunks if chunk
        ]
        # Shards complete in arbitrary order.
        order = data.draw(st.permutations(range(len(shard_outputs))))
        shuffled = [shard_outputs[i] for i in order]

        merged = merge_shard_outputs(shuffled)
        assert merged == [payload for _, payload in reference]

        # Folding both streams into event logs yields identical logs.
        def to_log(fleet_records):
            log = EventLog()
            for record in fleet_records:
                log.emit(
                    MonitorEvent(
                        time_s=float(record.index),
                        side=record.bus,
                        action=record.action,
                        score=record.score,
                        tampered=record.tampered,
                        location_m=record.location_m,
                        bus=record.bus,
                    )
                )
            return log

        merged_log = to_log(merged)
        reference_log = to_log([payload for _, payload in reference])
        assert merged_log.events == reference_log.events

    @given(n=st.integers(min_value=1, max_value=64), shards=shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_canonical_bytes_ignore_shard_labels(self, n, shards):
        records = [fake_record(i) for i in range(n)]
        relabelled = [
            FleetRecord(
                index=r.index,
                bus=r.bus,
                shard=r.index % shards,  # any relabelling
                action=r.action,
                score=r.score,
                tampered=r.tampered,
                location_m=r.location_m,
            )
            for r in records
        ]
        a = FleetScanOutcome(tuple(records), shards=1, backend="serial")
        b = FleetScanOutcome(
            tuple(relabelled), shards=shards, backend="process"
        )
        assert a.canonical_bytes() == b.canonical_bytes()

    def test_merge_rejects_overlapping_shards(self):
        record = fake_record(0)
        with pytest.raises(ValueError):
            merge_shard_outputs([[(0, record)], [(0, record)]])
