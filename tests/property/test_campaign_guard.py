"""Interleaving-invariance property for adversary campaigns.

The campaign engine's determinism claim is coordinate-purity: every
random draw descends from ``(seed, protocol, arm, slot, op)`` and
nothing else.  The observable consequence — and what this suite pins —
is that *how arms are interleaved onto executors is invisible*: running
any subset of the stock arms, in any order, at any shard count, yields
byte-identical per-arm rounds, ROC points, and merged event logs to the
same arms' slices of the one joint campaign.  A regression here (a
global counter, order-dependent stream consumption, shard-dependent
reduction) breaks byte-identity immediately.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import (
    BoundaryImplantSearch,
    Campaign,
    CanonicalScenario,
    OneShotCloner,
    ProbePlacementSearch,
    ProfileFittingCloner,
)
from repro.protocols import registry

registry.load_all()

SEED = 29
N_ROUNDS = 2
PROTOCOL = "spi"

#: Fresh-instance factories, indexed by canonical arm id.  Strategies
#: are stateful and single-use, so every campaign needs new ones.
ARM_FACTORIES = (
    CanonicalScenario,
    ProbePlacementSearch,
    OneShotCloner,
    ProfileFittingCloner,
    BoundaryImplantSearch,
)


def _run(arm_ids, shards=1):
    campaign = Campaign(
        PROTOCOL,
        strategies=[ARM_FACTORIES[a]() for a in arm_ids],
        arm_ids=list(arm_ids),
        seed=SEED,
        n_rounds=N_ROUNDS,
        shards=shards,
    )
    return campaign.run()


#: The joint campaign every permuted run must slice into, computed once.
_BASELINE = _run(range(len(ARM_FACTORIES)))
_BASELINE_ARMS = {report.arm: report for report in _BASELINE.arms}

arm_subsets = st.permutations(range(len(ARM_FACTORIES))).flatmap(
    lambda perm: st.integers(1, len(perm)).map(lambda k: tuple(perm[:k]))
)


@given(arm_ids=arm_subsets, shards=st.sampled_from([1, 2]))
@settings(max_examples=8, deadline=None)
def test_interleaving_is_invisible(arm_ids, shards):
    """Any ordered subset of arms replays its joint-campaign slice."""
    outcome = _run(arm_ids, shards=shards)

    # Per-arm reports — rounds, ROC, AUC, latency — are dataclass-equal
    # to the joint campaign's, independent of order and shard count.
    for report in outcome.arms:
        assert report == _BASELINE_ARMS[report.arm]

    # Re-assembled in canonical arm order, the subset's measurement
    # content and merged event log are byte-identical to the joint
    # campaign restricted to the same arms.
    ordered = dataclasses.replace(
        outcome, arms=tuple(sorted(outcome.arms, key=lambda r: r.arm))
    )
    reference = dataclasses.replace(
        _BASELINE,
        arms=tuple(
            _BASELINE_ARMS[a] for a in sorted(arm_ids)
        ),
    )
    assert ordered.canonical_bytes() == reference.canonical_bytes()
    assert ordered.merged_events().events == reference.merged_events().events


def test_full_roster_permutation_matches_exactly():
    """One deterministic spot check: reversed arms, sharded, equal bytes."""
    reversed_ids = tuple(reversed(range(len(ARM_FACTORIES))))
    outcome = _run(reversed_ids, shards=2)
    ordered = dataclasses.replace(
        outcome, arms=tuple(sorted(outcome.arms, key=lambda r: r.arm))
    )
    assert ordered.canonical_bytes() == _BASELINE.canonical_bytes()
    assert ordered.merged_events().events == _BASELINE.merged_events().events
