"""Hypothesis pins for the identification store's two security claims.

(1) **The template-update guard admits no impostor drift schedule.**  The
    store folds strongly-identified captures into its templates so genuine
    aging/temperature drift cannot decay the acceptance score — the attack
    this opens is an impostor *riding the drift window*: presenting
    captures that update (poison) someone else's template.  Hypothesis
    sweeps physical drift schedules (service age × operating temperature)
    for a foreign line and for enrolled-but-different buses, and asserts
    the guard's lemma: a template only ever moves toward captures of its
    own line.

(2) **The sketch index is a shortcut, never a different answer.**  On any
    query whose brute-force winner survives the shortlist cut, the
    sketch path's rank-1 bus and exact score are identical to brute
    force, and brute force itself is the literal numpy argmax.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Fingerprint, FingerprintStore, UpdatePolicy
from repro.core.config import prototype_itdr, prototype_line_factory
from repro.core.itdr import IIPCapture
from repro.env.aging import AgingModel
from repro.env.temperature import TemperatureCondition
from repro.signals.waveform import Waveform

# ----------------------------------------------------------------------
# shared physics fixture (built once; hypothesis examples reuse it)
# ----------------------------------------------------------------------
_SETUP = None


def physics_setup():
    """3 enrolled buses + 1 foreign (never-enrolled) impostor line."""
    global _SETUP
    if _SETUP is None:
        factory = prototype_line_factory()
        lines = factory.manufacture_batch(3, first_seed=500)
        foreign = factory.manufacture(seed=900)
        itdr = prototype_itdr(rng=np.random.default_rng(42))
        fingerprints = [
            Fingerprint.from_captures(
                [itdr.capture(line) for _ in range(8)]
            )
            for line in lines
        ]
        _SETUP = (lines, foreign, itdr, fingerprints)
    return _SETUP


def fresh_store():
    _, _, _, fingerprints = physics_setup()
    store = FingerprintStore(policy=UpdatePolicy())
    store.enroll_many(fingerprints)
    return store


def drifted_capture(itdr, line, years, temperature_c):
    modifiers = [
        AgingModel().at_age(line.full_profile, years),
        TemperatureCondition(temperature_c),
    ]
    return itdr.capture(line, modifiers=modifiers)


# A drift schedule: successive (service age, operating temperature)
# conditions an attacker can choose to present captures under.
drift_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=-20.0, max_value=85.0),
    ),
    min_size=1,
    max_size=3,
)


class TestUpdateGuard:
    @given(schedule=drift_schedules)
    @settings(max_examples=10, deadline=None)
    def test_foreign_line_never_updates_anything(self, schedule):
        """No (age, temperature) schedule lets a never-enrolled line's
        captures move any enrolled template — or even be accepted."""
        lines, foreign, itdr, _ = physics_setup()
        store = fresh_store()
        digest = store.digest()
        for years, temperature_c in schedule:
            capture = drifted_capture(itdr, foreign, years, temperature_c)
            result, updated = store.observe(capture)
            assert not updated
            assert not result.accepted
        assert store.digest() == digest

    @given(schedule=drift_schedules)
    @settings(max_examples=10, deadline=None)
    def test_enrolled_bus_drift_stays_in_its_own_lane(self, schedule):
        """A drifting enrolled bus may update — but only its *own*
        template; every other bus's history is untouched."""
        lines, _, itdr, _ = physics_setup()
        store = fresh_store()
        drifter = lines[0]
        others = [line.name for line in lines[1:]]
        before = {name: store.versions(name) for name in others}
        for years, temperature_c in schedule:
            capture = drifted_capture(itdr, drifter, years, temperature_c)
            result, updated = store.observe(capture)
            if updated:
                # the guard's lemma: an update goes to the capture's
                # rank-1 identity, which must be the drifting line itself
                assert result.bus == drifter.name
                assert result.score >= (
                    store.policy.threshold + store.policy.update_margin
                )
        for name in others:
            assert store.versions(name) == before[name]

    @given(schedule=drift_schedules)
    @settings(max_examples=10, deadline=None)
    def test_updates_move_templates_slower_than_two_alpha(self, schedule):
        """Each accepted update moves the unit-norm template by <= 2·alpha
        in L2 — the acceptance region tracks drift, it cannot jump."""
        lines, _, itdr, _ = physics_setup()
        store = fresh_store()
        drifter = lines[0]
        for years, temperature_c in schedule:
            old = store.current(drifter.name).samples
            capture = drifted_capture(itdr, drifter, years, temperature_c)
            _, updated = store.observe(capture)
            if updated:
                new = store.current(drifter.name).samples
                assert np.linalg.norm(new - old) <= 2 * store.policy.alpha


# ----------------------------------------------------------------------
# sketch-vs-brute agreement on synthetic stores (pure numpy, fast)
# ----------------------------------------------------------------------
DT = 1e-11


def synthetic_store(seed, m, n, shortlist_size):
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((m, n))
    store = FingerprintStore(shortlist_size=shortlist_size)
    store.enroll_many(
        [
            Fingerprint(name=f"bus-{i:04d}", samples=row, dt=DT)
            for i, row in enumerate(rows)
        ]
    )
    return store, rows, rng


class TestSketchMatchesBrute:
    @given(
        seed=st.integers(0, 2**16),
        m=st.integers(2, 60),
        shortlist_size=st.integers(1, 12),
        noise=st.floats(0.0, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank1_equals_brute_argmax_on_shortlist_hit(
        self, seed, m, shortlist_size, noise
    ):
        n = 64
        store, rows, rng = synthetic_store(seed, m, n, shortlist_size)
        target = int(rng.integers(m))
        query = rows[target] + noise * np.linalg.norm(rows[target]) \
            * rng.standard_normal(n) / np.sqrt(n)
        capture = IIPCapture(Waveform(query, DT), "?", 0, 0.0)

        brute = store.identify(capture, method="brute")
        sketch = store.identify(capture, method="sketch")

        # brute force IS the numpy argmax over exact scores
        canonical = Fingerprint._canonicalize(np.asarray(query, float))
        exact = 0.5 * (1.0 + store._samples[:m] @ canonical)
        assert brute.score == np.max(exact)
        winners = [store._names[i] for i in np.flatnonzero(exact == exact.max())]
        assert brute.bus == min(winners)  # name-ordered tie-break

        # the shortlist-hit path: identical rank-1 answer; scores agree
        # to the last ulp (BLAS accumulates a (k, N) gather and the full
        # (m, N) mat-vec with shape-dependent blocking)
        if brute.bus in sketch.shortlist:
            assert sketch.bus == brute.bus
            assert sketch.score == pytest.approx(brute.score, abs=1e-12)

    @given(seed=st.integers(0, 2**16), m=st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_clean_queries_always_hit_the_shortlist(self, seed, m):
        """An exact enrolled record always survives the coarse cut: its
        sketch cosine is exactly 1, the maximum possible."""
        n = 48
        store, rows, _ = synthetic_store(seed, m, shortlist_size=4, n=n)
        for i in (0, m // 2, m - 1):
            name = f"bus-{i:04d}"
            template = store.current(name).samples
            result = store.identify_samples(template, DT)
            assert result.bus == name
            assert result.score == pytest.approx(1.0, abs=1e-12)
