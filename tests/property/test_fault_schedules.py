"""Property pins for fault recovery: no schedule can reorder the fleet.

The recovery engine (``repro.core.faults.run_with_recovery``) retries,
rebuilds, and serially re-runs shards — but it must never change *which*
outputs come back or *in what order* the caller's merge sees them.
Hypothesis drives the engine with arbitrary failure schedules (any
fault kind, any shard, any rung of the ladder) against a fake backend
and pins:

* outputs stay aligned to task order, whatever fails when;
* merged fleet records equal the unsharded reference for every
  partition x schedule combination;
* health accounting is exact: attempts, faults, and outcome labels
  match the injected schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.divot import Action
from repro.core.faults import (
    SERIAL_FALLBACK,
    AttemptFailure,
    FleetDispatchError,
    RetryPolicy,
    run_with_recovery,
)
from repro.core.fleet import (
    FleetRecord,
    merge_shard_outputs,
    partition_fleet,
)

MAX_RETRIES = 2

#: A failure schedule: for each shard, the set of pool attempts that
#: fail (subset of {0 .. MAX_RETRIES}).  The serial fallback always
#: succeeds here, so every schedule is recoverable by construction;
#: terminal failures are pinned separately below.
fault_kinds = st.sampled_from(["error", "timeout", "broken_pool", "crash"])
attempt_sets = st.sets(
    st.integers(min_value=0, max_value=MAX_RETRIES), max_size=MAX_RETRIES + 1
)


def fake_record(index: int, shard: int) -> FleetRecord:
    return FleetRecord(
        index=index,
        bus=f"bus-{index}",
        shard=shard,
        action=Action.PROCEED if index % 3 else Action.ALERT,
        score=1.0 - index * 1e-3,
        tampered=bool(index % 3 == 0),
        location_m=None if index % 2 else 0.01 * index,
    )


class FakeShardTask:
    """Stands in for ``_ShardTask``: a shard id plus its bus indices."""

    def __init__(self, shard, indices):
        self.shard = shard
        self.indices = indices

    def outputs(self):
        return [(i, fake_record(i, self.shard)) for i in self.indices]


def run_schedule(tasks, schedule, kinds):
    """Drive the recovery engine with a deterministic failure schedule.

    ``schedule[shard]`` is the set of attempts that fail for that
    shard; ``kinds[shard]`` the fault kind they fail with.
    """

    def start(task, attempt):
        return attempt

    def collect(attempt, task, _attempt):
        if attempt in schedule.get(task.shard, set()):
            kind = kinds.get(task.shard, "error")
            raise AttemptFailure(
                kind, rebuild_pool=kind in ("timeout", "broken_pool")
            )
        return task.outputs()

    return run_with_recovery(
        tasks,
        RetryPolicy(max_retries=MAX_RETRIES),
        start=start,
        collect=collect,
        serial_run=lambda task: task.outputs(),
        sleep=lambda s: None,
    )


class TestFaultSchedulesNeverReorder:
    @given(
        n=st.integers(min_value=1, max_value=64),
        shards=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_records_match_the_unsharded_reference(
        self, n, shards, data
    ):
        chunks = partition_fleet(n, shards)
        tasks = [
            FakeShardTask(shard, chunk)
            for shard, chunk in enumerate(chunks)
            if chunk
        ]
        schedule = {
            task.shard: data.draw(attempt_sets, label=f"fails[{task.shard}]")
            for task in tasks
        }
        kinds = {
            task.shard: data.draw(fault_kinds, label=f"kind[{task.shard}]")
            for task in tasks
        }
        outputs, healths = run_schedule(tasks, schedule, kinds)

        # The engine never reorders: outputs align to task order, and
        # the merge reproduces the unsharded reference exactly.
        merged = merge_shard_outputs(outputs)
        reference = [fake_record(i, 0) for i in range(n)]
        assert [r.index for r in merged] == list(range(n))
        for got, want in zip(merged, reference):
            assert (got.index, got.bus, got.action, got.score,
                    got.tampered, got.location_m) == (
                want.index, want.bus, want.action, want.score,
                want.tampered, want.location_m)

    @given(
        shards=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_health_accounting_matches_the_schedule(self, shards, data):
        chunks = partition_fleet(16, shards)
        tasks = [
            FakeShardTask(shard, chunk)
            for shard, chunk in enumerate(chunks)
            if chunk
        ]
        schedule = {
            task.shard: data.draw(attempt_sets, label=f"fails[{task.shard}]")
            for task in tasks
        }
        kinds = {task.shard: "error" for task in tasks}
        _, healths = run_schedule(tasks, schedule, kinds)
        for task, health in zip(tasks, healths):
            fails = schedule[task.shard]
            # Only the consecutive failing prefix from attempt 0 ever
            # executes: a scheduled failure on a later attempt is dead
            # once an earlier attempt succeeded.
            first_ok = next(
                (a for a in range(MAX_RETRIES + 1) if a not in fails),
                None,
            )
            if first_ok == 0:
                assert health.outcome == "ok"
                assert health.attempts == 1
                assert health.faults == ()
            elif first_ok is None:
                # Every pool rung failed: rescued by the fallback.
                assert health.outcome == SERIAL_FALLBACK
                assert health.attempts == MAX_RETRIES + 2
                assert len(health.faults) == MAX_RETRIES + 1
            else:
                assert health.outcome == "retried"
                assert health.attempts == first_ok + 1
                assert len(health.faults) == first_ok

    @given(n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_unrecoverable_schedule_is_terminal_not_wrong(self, n):
        """When even the fallback fails, the engine raises — it never
        returns a partial fleet."""
        tasks = [FakeShardTask(0, list(range(n)))]

        def start(task, attempt):
            return attempt

        def collect(attempt, task, _attempt):
            raise AttemptFailure("error")

        def serial_run(task):
            raise RuntimeError("fallback refused")

        with pytest.raises(FleetDispatchError):
            run_with_recovery(
                tasks,
                RetryPolicy(max_retries=MAX_RETRIES),
                start=start,
                collect=collect,
                serial_run=serial_run,
                sleep=lambda s: None,
            )
