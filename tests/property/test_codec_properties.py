"""Property-based tests on the codec/framing/crypto layers.

Roundtrip identities and format invariants that must hold for *every*
input, not just the unit-test examples: 8b/10b, the scrambler, link
frames, counter-mode encryption, and the line codes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iolink.frame import Frame, crc16_ccitt
from repro.membus.encryption import CounterModeEngine
from repro.signals.eightbten import decode_bits, encode_bytes
from repro.signals.scrambler import descramble_bits, scramble_bytes

byte_lists = st.lists(st.integers(0, 255), min_size=0, max_size=200)


class Test8b10bProperties:
    @given(byte_lists)
    @settings(max_examples=50)
    def test_roundtrip(self, data):
        assert decode_bits(encode_bytes(data)) == data

    @given(st.lists(st.integers(0, 255), min_size=20, max_size=200))
    @settings(max_examples=30)
    def test_dc_balance_bounded(self, data):
        """Running disparity bounds the cumulative bit imbalance for any
        input: |RD| <= 2 at symbol boundaries, plus a bounded intra-symbol
        excursion (a +/-2-disparity sub-block can swing 4 inside)."""
        bits = encode_bytes(data)
        imbalance = np.cumsum(2 * bits.astype(int) - 1)
        assert np.max(np.abs(imbalance)) <= 6
        # And exactly <= 2 at every symbol boundary.
        boundaries = imbalance[9::10]
        assert np.max(np.abs(boundaries)) <= 2 if len(boundaries) else True

    @given(byte_lists)
    @settings(max_examples=30)
    def test_expansion_exact(self, data):
        assert len(encode_bytes(data)) == 10 * len(data)


class TestScramblerProperties:
    @given(byte_lists)
    @settings(max_examples=50)
    def test_roundtrip(self, data):
        assert descramble_bits(scramble_bytes(data)) == data

    @given(byte_lists)
    @settings(max_examples=30)
    def test_zero_overhead(self, data):
        assert len(scramble_bytes(data)) == 8 * len(data)


class TestFrameProperties:
    @given(
        st.integers(0, 255),
        st.lists(st.integers(0, 255), min_size=0, max_size=100),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, sequence, payload):
        frame = Frame(sequence=sequence, payload=tuple(payload))
        assert Frame.from_bytes(frame.to_bytes()) == frame

    @given(
        st.lists(st.integers(0, 255), min_size=4, max_size=40),
        st.integers(0, 39),
    )
    @settings(max_examples=50)
    def test_crc_detects_any_single_byte_change(self, data, position):
        from hypothesis import assume

        frame = Frame(sequence=data[0], payload=tuple(data[1:]))
        wire = frame.to_bytes()
        assume(position < len(wire))
        corrupted = list(wire)
        corrupted[position] ^= 0x01
        # Either parsing fails outright or yields a different frame —
        # silent identical acceptance would be the CRC failing its job.
        try:
            parsed = Frame.from_bytes(corrupted)
        except Exception:
            return
        assert parsed != frame

    @given(byte_lists)
    @settings(max_examples=30)
    def test_crc_deterministic(self, data):
        assert crc16_ccitt(data) == crc16_ccitt(data)
        assert 0 <= crc16_ccitt(data) <= 0xFFFF


class TestEncryptionProperties:
    @given(
        st.integers(0, 2**20),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, address, plaintext):
        engine = CounterModeEngine()
        word = engine.encrypt(address, plaintext)
        assert engine.decrypt(address, word) == plaintext

    @given(
        st.integers(0, 2**20),
        st.integers(1, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_rewrite_freshness(self, address, plaintext):
        engine = CounterModeEngine()
        first = engine.encrypt(address, plaintext)
        second = engine.encrypt(address, plaintext)
        assert first.ciphertext != second.ciphertext

    @given(
        st.integers(0, 2**20),
        st.integers(0, 2**20),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_address_binding(self, addr_a, addr_b, plaintext):
        from hypothesis import assume

        assume(addr_a != addr_b)
        engine = CounterModeEngine()
        word = engine.encrypt(addr_a, plaintext)
        assert engine.decrypt(addr_b, word) is None
