"""Property pins for the fused count-only capture kernel.

The fused kernel computes comparator decision counts directly from the
cached reflection response and the per-level binomial CDF tables —
skipping the dense probability-grid render entirely.  Its contract:

(a) **Exactness** — with the default float64 dtype, a fused
    ``capture_stack`` is *bit-for-bit* the grid-path result for any
    seed, stack height, and repetition budget.  The kernel consumes the
    RNG stream identically (one uniform block per active reference
    level, in ascending level order), so no regression baseline moves.

(b) **Fallback identity** — under phase jitter or EMI interference the
    fused-config iTDR takes the same dense path the grid-config iTDR
    does, so the two stay bitwise identical there too (the gate never
    changes which physics runs, only how counts are materialised).

(c) **float32 fidelity** — the reduced-bandwidth dtype stays within
    single-precision rounding of the float64 reference on the decision
    probabilities, so its capture statistics agree to well under the
    comparator noise floor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import prototype_itdr


class TestFusedIsBitwiseGrid:
    """(a): fused float64 ≡ grid float64, bit for bit."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_captures=st.integers(1, 40),
        repetitions=st.sampled_from([3, 5, 24, 48]),
    )
    @settings(max_examples=25, deadline=None)
    def test_static_stack_bitwise_equal(
        self, line, seed, n_captures, repetitions
    ):
        fused = prototype_itdr(
            rng=np.random.default_rng(seed), repetitions=repetitions
        )
        grid = prototype_itdr(
            rng=np.random.default_rng(seed),
            repetitions=repetitions,
            capture_kernel="grid",
        )
        a = fused.capture_stack(line, n_captures)
        b = grid.capture_stack(line, n_captures)
        assert a.tobytes() == b.tobytes()

    @given(seed=st.integers(0, 2**31 - 1), n_captures=st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_bare_apc_stack_bitwise_equal(self, line, seed, n_captures):
        """The single-level (no PDM) kernel shares the same stream."""
        fused = prototype_itdr(rng=np.random.default_rng(seed), use_pdm=False)
        grid = prototype_itdr(
            rng=np.random.default_rng(seed),
            use_pdm=False,
            capture_kernel="grid",
        )
        a = fused.capture_stack(line, n_captures)
        b = grid.capture_stack(line, n_captures)
        assert a.tobytes() == b.tobytes()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_interleaved_lines_share_one_table_cache(
        self, line, other_line, seed
    ):
        """Alternating lines exercises the LRU table cache without
        breaking stream identity with the grid path."""
        fused = prototype_itdr(rng=np.random.default_rng(seed))
        grid = prototype_itdr(
            rng=np.random.default_rng(seed), capture_kernel="grid"
        )
        for target in (line, other_line, line, other_line):
            a = fused.capture_stack(target, 3)
            b = grid.capture_stack(target, 3)
            assert a.tobytes() == b.tobytes()


class TestFallbackIdentity:
    """(b): jitter / interference routes both configs to one dense path."""

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_jitter_path_bitwise_equal(self, line, seed):
        fused = prototype_itdr(
            rng=np.random.default_rng(seed), phase_jitter_rms=1.5e-12
        )
        grid = prototype_itdr(
            rng=np.random.default_rng(seed),
            phase_jitter_rms=1.5e-12,
            capture_kernel="grid",
        )
        a = fused.capture_stack(line, 4)
        b = grid.capture_stack(line, 4)
        assert fused.kernel_stats.fused_calls == 0
        assert a.tobytes() == b.tobytes()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_interference_path_bitwise_equal(self, line, seed):
        from repro.env.emi import nearby_digital_circuit

        fused = prototype_itdr(rng=np.random.default_rng(seed))
        grid = prototype_itdr(
            rng=np.random.default_rng(seed), capture_kernel="grid"
        )
        emi = nearby_digital_circuit()
        a = fused.capture_stack(line, 4, interference=emi)
        b = grid.capture_stack(line, 4, interference=emi)
        assert fused.kernel_stats.fused_calls == 0
        assert a.tobytes() == b.tobytes()


class TestFloat32Fidelity:
    """(c): the bandwidth-saving dtype stays statistically faithful."""

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_stack_mean_within_quantisation(self, line, seed):
        f32 = prototype_itdr(rng=np.random.default_rng(seed), dtype="float32")
        f64 = prototype_itdr(rng=np.random.default_rng(seed))
        a = f32.capture_stack(line, 48)
        b = f64.capture_stack(line, 48)
        assert a.dtype == np.float32
        assert b.dtype == np.float64
        # Per-point averaged waveforms agree to well under the
        # comparator noise sigma (3e-3): float32 only perturbs decision
        # probabilities at the 1e-7 level, which the 48-capture average
        # turns into at most a few count flips per point.
        noise = f64.config.noise_sigma
        assert np.max(np.abs(a.mean(0) - b.mean(0))) < noise
