"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic backbone of the system: similarity is a bounded
symmetric gain/offset-invariant form; the mixture CDF is a monotone
bijection; the lattice is causal and respects reflection-coefficient
bounds; address mapping is a bijection; the Vernier phase set is always
evenly spaced; ROC error rates are proper probabilities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.apc import MixtureCdfInverter
from repro.core.auth import equal_error_rate, error_function, roc_curve, similarity
from repro.core.pdm import VernierRelation
from repro.membus.transactions import AddressMap
from repro.signals.waveform import Waveform
from repro.txline.profile import ImpedanceProfile
from repro.txline.propagation import BornEngine, LatticeEngine

finite_arrays = arrays(
    dtype=float,
    shape=st.integers(4, 64),
    elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
)


class TestSimilarityProperties:
    @given(finite_arrays)
    def test_self_similarity_is_one_or_half(self, x):
        """S(x,x) = 1 for any non-degenerate x.  Constant records may
        canonicalise either to an exact zero vector (score 1/2) or to a
        float-rounding residue (score 1) — both are self-consistent."""
        s = similarity(x, x)
        # abs tolerance: values near 1e-160 square into the subnormal
        # range, where norms lose relative precision.
        assert s == pytest.approx(1.0, abs=1e-3) or s == pytest.approx(
            0.5, abs=1e-3
        )

    @given(st.data())
    def test_bounded_symmetric(self, data):
        n = data.draw(st.integers(4, 32))
        elems = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
        x = data.draw(arrays(float, n, elements=elems))
        y = data.draw(arrays(float, n, elements=elems))
        s = similarity(x, y)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(similarity(y, x))

    @given(st.data())
    def test_gain_offset_invariance(self, data):
        from hypothesis import assume

        n = data.draw(st.integers(4, 32))
        elems = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        x = data.draw(arrays(float, n, elements=elems))
        y = data.draw(arrays(float, n, elements=elems))
        # Near-constant records lose their shape to float rounding when
        # offset; the invariance claim applies to non-degenerate signals.
        assume(np.std(x) > 1e-3)
        gain = data.draw(st.floats(0.1, 10))
        offset = data.draw(st.floats(-10, 10))
        assert similarity(x, y) == pytest.approx(
            similarity(gain * x + offset, y), abs=1e-6
        )

    @given(st.data())
    def test_error_function_nonnegative_and_zero_iff_shapes_match(self, data):
        from hypothesis import assume

        n = data.draw(st.integers(4, 32))
        elems = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        x = data.draw(arrays(float, n, elements=elems))
        assume(np.std(x) > 1e-3)  # avoid float-rounding degeneracy
        e = error_function(x, 2.0 * x + 1.0)  # same shape after canon
        assert np.all(e >= 0)
        assert np.allclose(e, 0.0, atol=1e-9)


class TestMixtureCdfProperties:
    @given(
        st.lists(st.floats(-0.05, 0.05), min_size=1, max_size=8),
        st.floats(1e-4, 1e-2),
    )
    def test_forward_monotone_and_bounded(self, levels, sigma):
        inv = MixtureCdfInverter(levels, sigma)
        v = np.linspace(min(levels) - 4 * sigma, max(levels) + 4 * sigma, 101)
        p = inv.forward(v)
        assert np.all((0 <= p) & (p <= 1))
        assert np.all(np.diff(p) >= 0)

    @given(
        st.lists(st.floats(-0.05, 0.05), min_size=1, max_size=8),
        st.floats(1e-4, 1e-2),
    )
    @settings(max_examples=30)
    def test_roundtrip_near_levels(self, levels, sigma):
        """Inversion is accurate where the mixture has sensitivity: near
        the reference levels.  Between widely separated levels the CDF
        plateaus and inversion is ill-conditioned — the ladder-density
        effect the PDM ablation studies."""
        inv = MixtureCdfInverter(levels, sigma)
        v = np.concatenate(
            [np.linspace(l - sigma, l + sigma, 5) for l in levels]
        )
        back = inv.invert(inv.forward(v))
        assert np.max(np.abs(back - v)) < sigma / 5


class TestVernierProperties:
    @given(st.integers(1, 40), st.integers(2, 40))
    def test_phases_distinct_and_in_unit_interval(self, p, q):
        rel = VernierRelation(p, q)
        phases = rel.phases()
        assert len(np.unique(np.round(phases, 12))) == rel.distinct_phases
        assert np.all((0 <= phases) & (phases < 1))

    @given(st.integers(1, 40), st.integers(2, 40))
    def test_phase_spacing_uniform(self, p, q):
        rel = VernierRelation(p, q)
        phases = np.sort(rel.phases())
        if len(phases) > 1:
            spacing = np.diff(phases)
            assert np.allclose(spacing, spacing[0], atol=1e-12)


class TestLatticeProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_causality_and_reflection_bound(self, data):
        n = data.draw(st.integers(3, 25))
        z = data.draw(
            arrays(float, n, elements=st.floats(20.0, 120.0))
        )
        profile = ImpedanceProfile(
            z=z, tau=np.full(n, 1e-11), z_source=50.0, z_load=50.0
        )
        h = LatticeEngine(round_trips=2).impulse_sequence(profile)
        # Causality: nothing before the first interface's round trip.
        assert np.allclose(h.samples[:2], 0.0)
        # Each sample is a sum of bounded reflections: |h| <= 1.
        assert np.max(np.abs(h.samples)) <= 1.0 + 1e-9

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_born_matches_lattice_for_small_contrast(self, data):
        n = data.draw(st.integers(3, 30))
        ripple = data.draw(
            arrays(float, n, elements=st.floats(-0.01, 0.01))
        )
        z = 50.0 * (1.0 + ripple)
        profile = ImpedanceProfile(
            z=z, tau=np.full(n, 1e-11), z_source=50.0, z_load=50.0
        )
        h_lat = LatticeEngine(round_trips=2).impulse_sequence(profile)
        h_born = BornEngine(grid_dt=1e-11).impulse_sequence(
            profile, n_out=len(h_lat)
        )
        assert np.max(np.abs(h_lat.samples - h_born.samples)) < 1e-4


class TestAddressMapProperties:
    @given(st.data())
    def test_decode_encode_bijection(self, data):
        banks = data.draw(st.integers(1, 8))
        rows = data.draw(st.integers(1, 64))
        cols = data.draw(st.integers(1, 64))
        amap = AddressMap(n_banks=banks, n_rows=rows, n_columns=cols)
        addr = data.draw(st.integers(0, amap.capacity - 1))
        d = amap.decode(addr)
        assert 0 <= d.bank < banks
        assert 0 <= d.row < rows
        assert 0 <= d.column < cols
        assert amap.encode(d.bank, d.row, d.column) == addr


class TestRocProperties:
    @given(st.data())
    @settings(max_examples=30)
    def test_rates_are_probabilities_and_eer_bounded(self, data):
        elems = st.floats(0.0, 1.0)
        genuine = data.draw(
            arrays(float, st.integers(5, 100), elements=elems)
        )
        impostor = data.draw(
            arrays(float, st.integers(5, 100), elements=elems)
        )
        roc = roc_curve(genuine, impostor)
        assert np.all((0 <= roc.false_positive_rate) & (roc.false_positive_rate <= 1))
        assert np.all((0 <= roc.false_negative_rate) & (roc.false_negative_rate <= 1))
        eer, thr = roc.eer()
        assert 0.0 <= eer <= 1.0

    @given(st.floats(0.01, 0.49))
    def test_perfect_separation_zero_eer(self, gap):
        genuine = np.linspace(0.5 + gap, 1.0, 50)
        impostor = np.linspace(0.0, 0.5 - gap, 50)
        eer, _ = equal_error_rate(genuine, impostor)
        assert eer == pytest.approx(0.0, abs=1e-9)


class TestWaveformProperties:
    @given(st.data())
    def test_decimate_interleave_identity(self, data):
        """ETS's formal core at the container level: splitting a record
        into M phase-strides loses nothing."""
        n = data.draw(st.integers(1, 100))
        m = data.draw(st.integers(1, 8))
        samples = data.draw(
            arrays(float, n, elements=st.floats(-10, 10))
        )
        w = Waveform(samples, dt=1e-12)
        strides = [w.decimated(m, offset=k) for k in range(m)]
        rebuilt = np.empty(n)
        for k, s in enumerate(strides):
            rebuilt[k::m] = s.samples
        assert np.array_equal(rebuilt, samples)

    @given(st.data())
    def test_normalized_idempotent(self, data):
        n = data.draw(st.integers(1, 50))
        samples = data.draw(
            arrays(float, n, elements=st.floats(-1e3, 1e3))
        )
        w = Waveform(samples, dt=1.0)
        once = w.normalized()
        twice = once.normalized()
        assert np.allclose(once.samples, twice.samples)
