"""Property pins for the shard transport: shm is invisible, always.

The transport contract (ISSUE 10) is that ``transport="shm"`` may change
*how* bytes cross the process boundary, never *which* values arrive.
Hypothesis drives the real measurement path — tiny fleets, real physics —
across shard counts and injected-fault schedules and pins:

* enroll, scan, and identify outcomes are byte-identical between
  ``transport="pickle"`` and ``transport="shm"`` for every shard count;
* enrolled fingerprints match bitwise (not just to tolerance);
* fault schedules (retries and the serial-fallback rung) never break
  descriptor resolution or the identity;
* the packing primitives round-trip arbitrary float arrays and seed
  states bit-exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Authenticator,
    FaultInjector,
    FaultSpec,
    FleetScanExecutor,
    RetryPolicy,
    ShardArena,
    TamperDetector,
    prototype_itdr_config,
    prototype_line_factory,
    shared_memory_available,
)
from repro.core.itdr import ITDR
from repro.core.transport import pack_into, pack_seed, unpack, unpack_seed
from repro.txline.materials import FR4

N_BUSES = 3
FIRST_SEED = 470
ROOT_SEED = 23

# max_retries=2 makes the serial fallback attempt 3, so every schedule
# drawn from attempts {0, 1, 2} is recoverable by construction.
FAST_POLICY = RetryPolicy(
    max_retries=2,
    backoff_base_s=0.01,
    backoff_max_s=0.02,
    shard_timeout_base_s=30.0,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="platform cannot create POSIX shared memory",
)

_LINES = None


def fleet_lines():
    global _LINES
    if _LINES is None:
        _LINES = prototype_line_factory().manufacture_batch(
            N_BUSES, first_seed=FIRST_SEED
        )
    return _LINES


def make_executor(transport, shards, backend="serial", injector=None,
                  policy=None):
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    executor = FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=2,
        shards=shards,
        backend=backend,
        transport=transport,
        seed=ROOT_SEED,
        retry_policy=policy,
        fault_injector=injector,
    )
    for line in fleet_lines():
        executor.register(line)
    return executor


def run_fleet(transport, shards, backend="serial", injector=None,
              policy=None):
    with make_executor(transport, shards, backend=backend,
                       injector=injector, policy=policy) as ex:
        fingerprints = ex.enroll(n_captures=2)
        scan = ex.scan()
        identify = ex.identify_scan()
    return fingerprints, scan, identify


class TestTransportEquivalence:
    @given(shards=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_shm_equals_pickle_for_every_shard_count(self, shards):
        ref_fps, ref_scan, ref_identify = run_fleet("pickle", shards)
        fps, scan, identify = run_fleet("shm", shards)
        assert scan.canonical_bytes() == ref_scan.canonical_bytes()
        assert identify.canonical_bytes() == ref_identify.canonical_bytes()
        for name in ref_fps:
            assert fps[name].samples.tobytes() == \
                ref_fps[name].samples.tobytes()

    @given(
        shards=st.integers(min_value=1, max_value=4),
        other=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=6, deadline=None)
    def test_shm_outcomes_agree_across_shard_counts(self, shards, other):
        _, scan_a, _ = run_fleet("shm", shards)
        _, scan_b, _ = run_fleet("shm", other)
        assert scan_a.canonical_bytes() == scan_b.canonical_bytes()


class TestFaultScheduleEquivalence:
    @given(
        shard=st.integers(min_value=0, max_value=1),
        attempts=st.sets(
            st.integers(min_value=0, max_value=2), min_size=1, max_size=3
        ),
    )
    @settings(max_examples=5, deadline=None)
    def test_injected_faults_never_break_the_identity(self, shard, attempts):
        # "error" faults walk the same retry/serial-fallback ladder as
        # crashes without genuinely killing pool processes, so hypothesis
        # can afford to sweep schedules; real crash recovery under shm is
        # pinned in tests/core/test_transport.py.
        _, ref_scan, _ = run_fleet("pickle", 2)
        injector = FaultInjector(
            specs=(FaultSpec(kind="error", shard=shard, mode="scan",
                             attempts=tuple(sorted(attempts))),)
        )
        with make_executor("shm", 2, backend="process",
                           injector=injector, policy=FAST_POLICY) as ex:
            ex.enroll(n_captures=2)
            scan = ex.scan()
        assert scan.canonical_bytes() == ref_scan.canonical_bytes()
        if set(attempts) >= {0, 1, 2}:
            assert scan.degraded


class TestPackingPrimitives:
    @given(
        samples=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=0, max_value=512),
            elements=st.floats(
                allow_nan=False, width=64, min_value=-1e9, max_value=1e9
            ),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_roundtrip_is_bitwise(self, samples):
        with ShardArena() as arena:
            out = unpack(pack_into(arena, samples))
        assert out.dtype == samples.dtype
        assert out.tobytes() == samples.tobytes()

    @given(
        entropy=st.integers(min_value=0, max_value=2**128 - 1),
        spawns=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_seed_roundtrip_is_bit_exact(self, entropy, spawns):
        seed = np.random.SeedSequence(entropy)
        children = seed.spawn(spawns) if spawns else [seed]
        for child in children:
            rebuilt = unpack_seed(pack_seed(child))
            assert np.array_equal(
                rebuilt.generate_state(8), child.generate_state(8)
            )
