"""Unit tests for the campaign engine: seeds, validation, reports."""

import numpy as np
import pytest

from repro.analysis import LatencyPoint, RocPoint
from repro.campaigns import (
    Campaign,
    CampaignSuite,
    CanonicalScenario,
    OneShotCloner,
    ProbePlacementSearch,
    ProfileFittingCloner,
    campaign_streams,
    clone_gap,
)
from repro.campaigns.engine import (
    OP_ENROLL,
    SLOT_ADVERSARY,
    SLOT_ATTACK,
    SLOT_CLEAN,
    ArmReport,
    ArmRound,
)
from repro.core.divot import Action
from repro.core.runtime import Telemetry
from repro.protocols import registry

registry.load_all()


class TestCampaignStreams:
    def test_pure_function_of_coordinates(self):
        a = campaign_streams(7, "jtag", 1, SLOT_CLEAN, 2)
        b = campaign_streams(7, "jtag", 1, SLOT_CLEAN, 2)
        assert a.entropy == b.entropy
        x = np.random.default_rng(a).integers(0, 1 << 30, 4)
        y = np.random.default_rng(b).integers(0, 1 << 30, 4)
        np.testing.assert_array_equal(x, y)

    def test_every_coordinate_separates_streams(self):
        base = campaign_streams(7, "jtag", 1, SLOT_CLEAN, 2)
        variants = [
            campaign_streams(8, "jtag", 1, SLOT_CLEAN, 2),
            campaign_streams(7, "spi", 1, SLOT_CLEAN, 2),
            campaign_streams(7, "jtag", 2, SLOT_CLEAN, 2),
            campaign_streams(7, "jtag", 1, SLOT_ATTACK, 2),
            campaign_streams(7, "jtag", 1, SLOT_ADVERSARY, 2),
            campaign_streams(7, "jtag", 1, SLOT_CLEAN, OP_ENROLL),
        ]
        for other in variants:
            assert base.entropy != other.entropy


class TestCampaignValidation:
    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError):
            Campaign("jtag", strategies=[])

    def test_arm_ids_must_parallel_strategies(self):
        with pytest.raises(ValueError):
            Campaign("jtag", strategies=[CanonicalScenario()], arm_ids=[0, 1])

    def test_arm_ids_must_be_unique(self):
        with pytest.raises(ValueError):
            Campaign(
                "jtag",
                strategies=[CanonicalScenario(), OneShotCloner()],
                arm_ids=[3, 3],
            )

    def test_rounds_floor(self):
        with pytest.raises(ValueError):
            Campaign("jtag", n_rounds=0)

    def test_duplicate_strategy_names_rejected(self):
        with pytest.raises(ValueError):
            Campaign(
                "jtag",
                strategies=[CanonicalScenario(), CanonicalScenario()],
            )

    def test_suite_needs_protocols(self):
        with pytest.raises(ValueError):
            CampaignSuite(protocols=[])


def _report(samples, strategy="s", arm=0):
    rounds = tuple(
        ArmRound(
            round_index=i,
            action=Action.PROCEED,
            score=1.0,
            tampered=False,
            peak_error=0.0,
            clean_statistic=0.0,
            attack_statistic=float(s),
        )
        for i, s in enumerate(samples)
    )
    return ArmReport(
        arm=arm,
        strategy=strategy,
        statistic="auth",
        rounds=rounds,
        roc=(RocPoint(threshold=0.0, fpr=0.0, tpr=1.0),),
        auc=1.0,
        latency=(LatencyPoint(threshold=0.0, fpr=0.0, rounds_to_detect=1),),
    )


class TestCloneGap:
    def test_separated_samples_give_full_gap(self):
        base = _report([0.8, 0.9], strategy="clone-oneshot")
        adapt = _report([0.1, 0.2], strategy="clone-fit")
        best = clone_gap(base, adapt)
        assert best["gap"] == pytest.approx(1.0)
        assert best["tpr_oneshot"] == 1.0 and best["tpr_adaptive"] == 0.0
        assert 0.2 < best["threshold"] <= 0.8
        assert best["baseline"] == "clone-oneshot"
        assert best["adaptive"] == "clone-fit"

    def test_identical_samples_give_zero_gap(self):
        best = clone_gap(_report([0.5, 0.6]), _report([0.5, 0.6]))
        assert best["gap"] == pytest.approx(0.0)

    def test_partial_overlap(self):
        base = _report([0.2, 0.8])
        adapt = _report([0.2, 0.3])
        best = clone_gap(base, adapt)
        assert best["gap"] == pytest.approx(0.5)
        assert best["threshold"] == pytest.approx(0.8)


@pytest.fixture(scope="module")
def small_outcome():
    """One tiny two-arm campaign, shared by the report-shape tests."""
    campaign = Campaign(
        "jtag",
        strategies=[CanonicalScenario(), ProbePlacementSearch(n_positions=2)],
        seed=11,
        n_rounds=3,
    )
    return campaign.run()


class TestCampaignOutcome:
    def test_arms_report_every_round(self, small_outcome):
        assert {r.strategy for r in small_outcome.arms} == {
            "canonical", "probe-search"
        }
        for report in small_outcome.arms:
            assert len(report.rounds) == 3
            assert [r.round_index for r in report.rounds] == [0, 1, 2]
            assert len(report.clean_samples) == 3
            assert len(report.attack_samples) == 3
            assert 0.0 <= report.auc <= 1.0

    def test_arm_lookup(self, small_outcome):
        assert small_outcome.arm("canonical").strategy == "canonical"
        with pytest.raises(KeyError):
            small_outcome.arm("no-such-arm")

    def test_canonical_attack_is_always_caught(self, small_outcome):
        report = small_outcome.arm("canonical")
        assert report.first_detection_round == 1
        assert all(r.detected for r in report.rounds)

    def test_merged_events_round_major(self, small_outcome):
        events = small_outcome.merged_events().events
        assert len(events) == 2 * 3
        assert [e.time_s for e in events] == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]
        assert events[0].bus == "jtag/canonical/attack"
        assert events[0].protocol == "jtag"

    def test_canonical_bytes_exclude_execution_provenance(
        self, small_outcome
    ):
        rerun = Campaign(
            "jtag",
            strategies=[
                CanonicalScenario(), ProbePlacementSearch(n_positions=2)
            ],
            seed=11,
            n_rounds=3,
            shards=2,
            backend="process",
        ).run()
        assert rerun.shards != small_outcome.shards
        assert rerun.canonical_bytes() == small_outcome.canonical_bytes()

    def test_different_seed_changes_bytes(self, small_outcome):
        other = Campaign(
            "jtag",
            strategies=[
                CanonicalScenario(), ProbePlacementSearch(n_positions=2)
            ],
            seed=12,
            n_rounds=3,
        ).run()
        assert other.canonical_bytes() != small_outcome.canonical_bytes()


class TestTelemetryPublication:
    def test_campaign_cells_and_clone_gap_published(self):
        telemetry = Telemetry()
        Campaign(
            "spi",
            strategies=[OneShotCloner(), ProfileFittingCloner()],
            seed=3,
            n_rounds=3,
            telemetry=telemetry,
        ).run()
        cells = telemetry.snapshot()["campaigns"]
        assert "spi/clone-oneshot" in cells
        assert "spi/clone-fit" in cells
        assert cells["spi/clone-fit"]["rounds"] == 3
        gap = cells["spi/clone_gap"]
        assert gap["baseline"] == "clone-oneshot"
        assert {"gap", "threshold", "tpr_oneshot", "tpr_adaptive"} <= set(gap)

    def test_no_gap_cell_without_both_cloners(self):
        telemetry = Telemetry()
        Campaign(
            "spi",
            strategies=[OneShotCloner()],
            seed=3,
            n_rounds=2,
            telemetry=telemetry,
        ).run()
        assert "spi/clone_gap" not in telemetry.snapshot()["campaigns"]
