"""Full-scale X-CAMPAIGN acceptance run (slow tier).

Tier-1 covers the campaign engine on miniature configurations; this is
the real experiment — every protocol, the full stock roster, sharded —
asserting the same predicates ``run_all`` gates X-CAMPAIGN on.  Marked
``slow``: deselected by default (see ``addopts``), selected explicitly
by the CI slow job with ``-m slow``.
"""

import pytest

from repro.experiments import ext_campaigns

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return ext_campaigns.run()


class TestXCampaignAcceptance:
    def test_covers_every_protocol(self, result):
        assert result.covers_protocols()
        assert set(result.outcomes) == set(ext_campaigns.DEFAULT_PROTOCOLS)

    def test_frontiers_complete(self, result):
        assert result.frontiers_complete()

    def test_adaptive_cloner_beats_baseline_everywhere(self, result):
        assert result.adaptive_cloner_beats_baseline()
        for protocol in result.outcomes:
            gap = result.snapshot["campaigns"][f"{protocol}/clone_gap"]
            assert gap["gap"] > 0.0, protocol

    def test_sharding_is_invisible(self, result):
        assert result.byte_identical
        assert result.sharding_is_invisible()

    def test_adaptation_pays(self, result):
        assert result.adaptation_pays()

    def test_report_renders(self, result):
        text = result.report()
        for strategy in ext_campaigns.ADAPTIVE_STRATEGIES:
            assert strategy in text
