"""Unit tests for the stock campaign strategies (adversary logic only)."""

import numpy as np
import pytest

from repro.attacks import InterposerImplant, MagneticProbe, ProfileSubstitution
from repro.campaigns import (
    BoundaryImplantSearch,
    CanonicalScenario,
    OneShotCloner,
    ProbePlacementSearch,
    ProfileFittingCloner,
    default_strategies,
    validate_strategies,
)
from repro.campaigns.strategy import ArmContext, RoundFeedback
from repro.core.divot import Action
from repro.protocols import registry


@pytest.fixture(scope="module")
def ctx(request):
    registry.load_all()
    factory_line = request.getfixturevalue("line")
    return ArmContext(
        spec=registry.get("jtag"), line=factory_line, n_rounds=6
    )


def _feedback(round_index, detected, peak_error=1e-3, score=0.95):
    return RoundFeedback(
        round_index=round_index,
        action=Action.ALERT if detected else Action.PROCEED,
        score=score,
        tampered=detected,
        peak_error=peak_error,
    )


def _rng():
    return np.random.default_rng(0)


class TestRoster:
    def test_default_roster_is_valid_and_fresh(self):
        roster = default_strategies()
        validate_strategies(roster)
        assert len(roster) == 5
        assert roster[0] is not default_strategies()[0]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            validate_strategies([CanonicalScenario(), CanonicalScenario()])

    def test_unknown_statistic_rejected(self):
        bad = CanonicalScenario()
        bad.statistic = "vibes"
        with pytest.raises(ValueError):
            validate_strategies([bad])
        with pytest.raises(ValueError):
            bad.statistic_of(0.9, 1e-3)

    def test_statistic_channels(self):
        probe = ProbePlacementSearch()
        assert probe.statistic_of(score=0.9, peak_error=3e-3) == 3e-3
        cloner = OneShotCloner()
        assert cloner.statistic_of(score=0.9, peak_error=3e-3) == (
            pytest.approx(0.1)
        )


class TestCanonicalScenario:
    def test_replays_the_spec_attack_unchanged(self, ctx):
        strategy = CanonicalScenario()
        strategy.begin(ctx, _rng())
        first = strategy.propose(0, _rng())
        later = strategy.propose(3, _rng())
        assert first == later
        assert len(first) == 1


class TestProbePlacementSearch:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbePlacementSearch(n_positions=0)
        with pytest.raises(ValueError):
            ProbePlacementSearch(min_coupling=0.0)
        with pytest.raises(ValueError):
            ProbePlacementSearch(backoff=1.0)

    def test_explores_then_exploits_least_disturbing(self, ctx):
        strategy = ProbePlacementSearch(n_positions=3)
        strategy.begin(ctx, _rng())
        positions = []
        errors = [5e-3, 1e-3, 3e-3]
        for r in range(3):
            (probe,) = strategy.propose(r, _rng())
            assert isinstance(probe, MagneticProbe)
            positions.append(probe.position_m)
            strategy.observe(
                _feedback(r, detected=False, peak_error=errors[r]), _rng()
            )
        assert len(set(positions)) == 3  # every grid point visited
        (exploit,) = strategy.propose(3, _rng())
        assert exploit.position_m == positions[1]  # the quietest one

    def test_coupling_backs_off_on_detection(self, ctx):
        strategy = ProbePlacementSearch(n_positions=1, coupling=0.018)
        strategy.begin(ctx, _rng())
        strategy.propose(0, _rng())
        strategy.observe(_feedback(0, detected=True), _rng())
        (probe,) = strategy.propose(1, _rng())
        assert probe.coupling == pytest.approx(0.018 * 0.7)

    def test_coupling_floor_holds(self, ctx):
        strategy = ProbePlacementSearch(
            n_positions=1, coupling=0.004, min_coupling=0.002
        )
        strategy.begin(ctx, _rng())
        for r in range(10):
            strategy.propose(r, _rng())
            strategy.observe(_feedback(r, detected=True), _rng())
        (probe,) = strategy.propose(10, _rng())
        assert probe.coupling == pytest.approx(0.002)

    def test_titrates_back_up_when_undetected(self, ctx):
        strategy = ProbePlacementSearch(n_positions=1, coupling=0.018)
        strategy.begin(ctx, _rng())
        strategy.propose(0, _rng())
        strategy.observe(_feedback(0, detected=True), _rng())
        strategy.propose(1, _rng())
        strategy.observe(_feedback(1, detected=False), _rng())
        (probe,) = strategy.propose(2, _rng())
        assert probe.coupling == pytest.approx(0.018 * 0.7 * 1.1)
        assert probe.coupling < 0.018  # capped at the base coupling


class TestCloners:
    def test_one_shot_fabricates_once(self, ctx):
        strategy = OneShotCloner()
        strategy.begin(ctx, _rng())
        (a,) = strategy.propose(0, _rng())
        (b,) = strategy.propose(5, _rng())
        assert isinstance(a, ProfileSubstitution)
        assert a is b  # the same physical counterfeit every round

    def test_fitting_cloner_improves_round_over_round(self, ctx):
        strategy = ProfileFittingCloner()
        strategy.begin(ctx, _rng())
        rng = _rng()
        true = ctx.line.full_profile
        def rel(sub):
            return float(
                np.sqrt(
                    np.mean(((sub.replacement.z - true.z) / true.z) ** 2)
                )
            )

        errs = [rel(strategy.propose(r, rng)[0]) for r in range(4)]
        assert errs[-1] < errs[0]


class TestBoundaryImplantSearch:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundaryImplantSearch(boundary_fraction=0.0)
        with pytest.raises(ValueError):
            BoundaryImplantSearch(delta_shrink=1.0)
        with pytest.raises(ValueError):
            BoundaryImplantSearch(min_delta=0.0)

    def test_shrinks_only_on_detection(self, ctx):
        strategy = BoundaryImplantSearch()
        strategy.begin(ctx, _rng())
        (first,) = strategy.propose(0, _rng())
        assert isinstance(first, InterposerImplant)
        strategy.observe(_feedback(0, detected=False), _rng())
        (second,) = strategy.propose(1, _rng())
        assert second.series_delta == first.series_delta
        strategy.observe(_feedback(1, detected=True), _rng())
        (third,) = strategy.propose(2, _rng())
        assert third.series_delta < second.series_delta
        assert third.footprint_m < second.footprint_m

    def test_functional_floors_hold(self, ctx):
        strategy = BoundaryImplantSearch(
            min_delta=0.004, min_footprint_m=1e-3
        )
        strategy.begin(ctx, _rng())
        for r in range(30):
            strategy.propose(r, _rng())
            strategy.observe(_feedback(r, detected=True), _rng())
        (implant,) = strategy.propose(30, _rng())
        assert implant.series_delta == pytest.approx(0.004)
        assert implant.shunt_delta == pytest.approx(0.004)
        assert implant.footprint_m == pytest.approx(1e-3)
