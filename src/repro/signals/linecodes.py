"""Line coding: bits to bus waveforms.

Section II-D of the paper notes that any data waveform on a Tx-line is formed
by switching between discrete voltage levels — two for NRZ, four for PAM4 —
and that the resulting rising/falling edges are the free probe signals DIVOT
reuses.  This module turns bit streams into dense analog waveforms with
realistic edge shaping, and recovers the edge positions a trigger generator
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .edges import EdgeShape
from .waveform import Waveform

__all__ = ["LineCode", "NRZCode", "PAM4Code", "symbol_edges"]


def _levels_to_waveform(
    levels: np.ndarray,
    symbol_time: float,
    dt: float,
    edge: EdgeShape,
) -> Waveform:
    """Render a symbol-level sequence into a dense edge-shaped waveform.

    Each symbol occupies ``symbol_time`` seconds.  Transitions between
    consecutive levels are shaped with the driver's edge profile; the shape is
    scaled linearly with the level swing, matching a fixed-slew-profile CMOS
    output stage.
    """
    samples_per_symbol = int(round(symbol_time / dt))
    if samples_per_symbol < 2:
        raise ValueError("symbol_time must span at least 2 samples")
    n = samples_per_symbol * len(levels)
    out = np.empty(n)
    # Unit-swing transition profile, truncated/padded to one symbol.
    profile = edge.rising(dt).samples / edge.amplitude
    profile = profile[:samples_per_symbol]
    if len(profile) < samples_per_symbol:
        profile = np.concatenate(
            [profile, np.ones(samples_per_symbol - len(profile))]
        )
    prev = levels[0]
    for i, level in enumerate(levels):
        seg = prev + (level - prev) * profile
        out[i * samples_per_symbol : (i + 1) * samples_per_symbol] = seg
        prev = level
    return Waveform(out, dt)


@dataclass(frozen=True)
class _Edge:
    """A level transition within a rendered waveform."""

    symbol_index: int
    time: float
    from_level: float
    to_level: float

    @property
    def rising(self) -> bool:
        """True when the transition increases the line voltage."""
        return self.to_level > self.from_level


class LineCode:
    """Base class for line codes mapping bits onto voltage levels."""

    #: Number of bits carried per symbol.
    bits_per_symbol: int = 1

    def __init__(self, symbol_time: float, edge: EdgeShape) -> None:
        if symbol_time <= 0:
            raise ValueError("symbol_time must be positive")
        self.symbol_time = symbol_time
        self.edge = edge

    def levels(self, bits: Sequence[int]) -> np.ndarray:
        """Map a bit sequence to a per-symbol voltage-level sequence."""
        raise NotImplementedError

    def encode(self, bits: Sequence[int], dt: float) -> Waveform:
        """Render ``bits`` into a dense waveform on a grid of spacing ``dt``."""
        levels = self.levels(bits)
        if len(levels) == 0:
            return Waveform.zeros(0, dt)
        return _levels_to_waveform(levels, self.symbol_time, dt, self.edge)

    def transitions(self, bits: Sequence[int]) -> List[_Edge]:
        """List the level transitions (edges) ``bits`` produce."""
        levels = self.levels(bits)
        edges: List[_Edge] = []
        for i in range(1, len(levels)):
            if levels[i] != levels[i - 1]:
                edges.append(
                    _Edge(
                        symbol_index=i,
                        time=i * self.symbol_time,
                        from_level=float(levels[i - 1]),
                        to_level=float(levels[i]),
                    )
                )
        return edges


class NRZCode(LineCode):
    """Non-return-to-zero binary signalling: one bit per symbol."""

    bits_per_symbol = 1

    def __init__(
        self,
        symbol_time: float,
        edge: EdgeShape,
        low: float = 0.0,
        high: float = 1.0,
    ) -> None:
        super().__init__(symbol_time, edge)
        if high <= low:
            raise ValueError("high level must exceed low level")
        self.low = low
        self.high = high

    def levels(self, bits: Sequence[int]) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("NRZ bits must be 0 or 1")
        return np.where(bits > 0, self.high, self.low).astype(float)


class PAM4Code(LineCode):
    """Four-level pulse-amplitude modulation: two bits per symbol.

    Uses Gray mapping (00, 01, 11, 10 → levels 0..3) as real PAM4 links do,
    so adjacent levels differ by one bit.
    """

    bits_per_symbol = 2
    _GRAY = {(0, 0): 0, (0, 1): 1, (1, 1): 2, (1, 0): 3}

    def __init__(
        self,
        symbol_time: float,
        edge: EdgeShape,
        low: float = 0.0,
        high: float = 1.0,
    ) -> None:
        super().__init__(symbol_time, edge)
        if high <= low:
            raise ValueError("high level must exceed low level")
        self.low = low
        self.high = high

    def levels(self, bits: Sequence[int]) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.size % 2:
            raise ValueError("PAM4 needs an even number of bits")
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("PAM4 bits must be 0 or 1")
        pairs = bits.reshape(-1, 2)
        idx = np.array(
            [self._GRAY[(int(a), int(b))] for a, b in pairs], dtype=float
        )
        return self.low + idx / 3.0 * (self.high - self.low)


def symbol_edges(
    code: LineCode, bits: Sequence[int]
) -> Tuple[List[_Edge], List[_Edge]]:
    """Split a bit pattern's transitions into (rising, falling) edge lists.

    The runtime-measurement logic of section II-E gates measurements on one
    polarity only — mixing both would cancel the reflections.
    """
    edges = code.transitions(bits)
    rising = [e for e in edges if e.rising]
    falling = [e for e in edges if not e.rising]
    return rising, falling
