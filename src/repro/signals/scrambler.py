"""Side-stream LFSR scrambling (the PCIe Gen1/2 polynomial).

The other way real links condition their bit streams: instead of 8b/10b's
table coding (25 % overhead, guaranteed run lengths), a scrambler XORs the
data with a free-running LFSR sequence — zero overhead, statistically
balanced, but with only probabilistic run-length bounds.  For DIVOT the
distinction matters operationally: the trigger supply of a scrambled lane
matches ideal random data (0.25/bit), while 8b/10b's structure delivers
measurably more (0.305/bit) — one of this reproduction's measured findings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Scrambler", "scramble_bytes", "descramble_bits"]

#: PCIe Gen1/2 scrambler polynomial x^16 + x^5 + x^4 + x^3 + 1.
_POLY_TAPS = (16, 5, 4, 3)
_SEED = 0xFFFF


class Scrambler:
    """A side-stream scrambler: data XOR LFSR keystream.

    Side-stream (not self-synchronising): transmitter and receiver run
    identical LFSRs from a shared reset state, so descrambling is the same
    operation as scrambling.
    """

    def __init__(self, seed: int = _SEED) -> None:
        if not 0 < seed <= 0xFFFF:
            raise ValueError("seed must be a non-zero 16-bit value")
        self.seed = seed
        self.state = seed

    def reset(self) -> None:
        """Return to the shared reset state (start of a transmission)."""
        self.state = self.seed

    def _next_keystream_bit(self) -> int:
        fb = 0
        for tap in _POLY_TAPS:
            fb ^= (self.state >> (tap - 1)) & 1
        out = (self.state >> 15) & 1
        self.state = ((self.state << 1) | fb) & 0xFFFF
        return out

    def process_bits(self, bits: Sequence[int]) -> np.ndarray:
        """Scramble (or equivalently descramble) a bit sequence."""
        bits = np.asarray(bits, dtype=np.uint8)
        out = np.empty_like(bits)
        for i, bit in enumerate(bits):
            out[i] = bit ^ self._next_keystream_bit()
        return out

    def process_bytes(self, data: Sequence[int]) -> np.ndarray:
        """Scramble a byte sequence into a bit stream (LSB first)."""
        bits = []
        for byte in data:
            if not 0 <= byte <= 255:
                raise ValueError(f"byte out of range: {byte}")
            bits.extend((byte >> k) & 1 for k in range(8))
        return self.process_bits(np.array(bits, dtype=np.uint8))


def scramble_bytes(data: Sequence[int], seed: int = _SEED) -> np.ndarray:
    """One-shot byte scrambling from the reset state."""
    return Scrambler(seed).process_bytes(data)


def descramble_bits(bits: Sequence[int], seed: int = _SEED) -> list:
    """One-shot descrambling of a scrambled bit stream back to bytes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if len(bits) % 8:
        raise ValueError("bit stream length must be a multiple of 8")
    clear = Scrambler(seed).process_bits(bits)
    out = []
    for i in range(0, len(clear), 8):
        byte = 0
        for k in range(8):
            byte |= int(clear[i + k]) << k
        out.append(byte)
    return out
