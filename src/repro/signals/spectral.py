"""Spectral analysis: bandwidth as the fingerprint's other resolution limit.

Two limits bound what the iTDR can resolve: the ETS grid (11.16 ps) and
the *probe edge's bandwidth* — a 150 ps edge carries energy only up to a
couple of GHz, smoothing the reflection profile over ~1 cm of line
regardless of how finely it is sampled.  These helpers quantify that:
power spectra, occupied bandwidth, and the classic rise-time/bandwidth
relation, used by the ETS ablation's interpretation and available to
library users sizing probe edges.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .waveform import Waveform

__all__ = [
    "power_spectrum",
    "occupied_bandwidth",
    "rise_time_to_bandwidth",
    "bandwidth_to_spatial_resolution",
]


def power_spectrum(waveform: Waveform) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided periodogram: (frequencies_hz, power_density).

    Plain FFT periodogram of the (mean-removed) record; adequate for the
    deterministic waveforms this library produces.
    """
    n = len(waveform)
    if n < 2:
        raise ValueError("need at least 2 samples")
    x = waveform.samples - np.mean(waveform.samples)
    spectrum = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(n, waveform.dt)
    power = (np.abs(spectrum) ** 2) * waveform.dt / n
    return freqs, power


def occupied_bandwidth(waveform: Waveform, fraction: float = 0.99) -> float:
    """Frequency below which ``fraction`` of the AC power sits, hertz."""
    if not 0 < fraction < 1:
        raise ValueError("fraction must be in (0, 1)")
    freqs, power = power_spectrum(waveform)
    total = power.sum()
    if total == 0:
        return 0.0
    cumulative = np.cumsum(power) / total
    idx = int(np.searchsorted(cumulative, fraction))
    return float(freqs[min(idx, len(freqs) - 1)])


def rise_time_to_bandwidth(rise_time_s: float) -> float:
    """The classic BW ≈ 0.35 / t_rise (10-90 %) rule, hertz."""
    if rise_time_s <= 0:
        raise ValueError("rise_time_s must be positive")
    return 0.35 / rise_time_s


def bandwidth_to_spatial_resolution(
    bandwidth_hz: float, velocity: float
) -> float:
    """Two-point TDR resolution of a band-limited probe, metres (one-way).

    A probe of bandwidth B resolves round-trip features no finer than
    ~v/(2B) of one-way distance — the limit that makes the probe edge,
    not the ETS grid, the binding constraint at prototype settings.
    """
    if bandwidth_hz <= 0 or velocity <= 0:
        raise ValueError("bandwidth and velocity must be positive")
    return velocity / (2.0 * bandwidth_hz)
