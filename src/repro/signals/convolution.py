"""Shared convolution kernel with a deterministic method switch.

Every hot-path convolution in the simulator routes through here.  Direct
time-domain convolution is O(n*m); for the record lengths the physics
solve produces, an FFT convolution is asymptotically cheaper — but the
two methods differ in floating-point rounding, so *which* method runs
must never depend on anything but the operand shapes.  The rule:

* the method is a pure function of the operand **lengths** — never of
  values, batch size, process identity, or thread timing;
* a batch convolves all rows with the same method its single-row case
  would use, so fan-out cannot change the arithmetic.

That invariant is what keeps sharded fleet scans byte-identical across
``shards=1`` serial and ``shards=K`` process backends (docs/TESTING.md):
a pool worker is never allowed to pick a different algorithm than the
serial fallback re-running the same shard would.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve

__all__ = [
    "DIRECT_COST_CEILING",
    "MIN_FFT_LENGTH",
    "batch_convolve_full",
    "conv_method",
    "convolve_full",
]

#: Shorter-operand length below which FFT bookkeeping cannot win.
MIN_FFT_LENGTH = 32

#: Length-product ceiling under which the O(n*m) direct method is still
#: cheaper than three transforms.
DIRECT_COST_CEILING = 1 << 15


def conv_method(n: int, m: int) -> str:
    """``"direct"`` or ``"fft"`` for operand lengths ``(n, m)``.

    Deterministic in the lengths alone — see the module docstring for
    why nothing else may enter this decision.
    """
    if n < 1 or m < 1:
        raise ValueError("convolution operands must be non-empty")
    if min(n, m) < MIN_FFT_LENGTH or n * m <= DIRECT_COST_CEILING:
        return "direct"
    return "fft"


def convolve_full(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full linear convolution of two 1-D arrays, length ``n + m - 1``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if conv_method(len(a), len(b)) == "direct":
        return np.convolve(a, b)
    return fftconvolve(a, b)


def batch_convolve_full(
    rows: np.ndarray, kernel: np.ndarray, dtype=float
) -> np.ndarray:
    """Convolve every row of ``(C, K)`` with a 1-D ``kernel``, ``(C, K+M-1)``.

    The method depends on ``(K, M)`` only: a C-row batch always takes
    the path a one-row batch of the same row length would.  The direct
    path accumulates one shifted, scaled copy of the rows per kernel tap
    (M vectorised passes — chosen only when M or the K*M product is
    small), the FFT path transforms all rows at once.

    ``dtype`` selects the working precision (float64 default — the
    byte-identity reference; float32 halves the transform and accumulate
    bandwidth for capture paths that opted out of bitwise pinning).  It
    never influences the method choice: that stays a pure function of the
    operand lengths.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=dtype))
    kernel = np.asarray(kernel, dtype=dtype)
    c, k = rows.shape
    m = len(kernel)
    if conv_method(k, m) == "direct":
        out = np.zeros((c, k + m - 1), dtype=dtype)
        for j in range(m):
            out[:, j : j + k] += kernel[j] * rows
        return out
    return fftconvolve(rows, kernel[None, :], axes=1)
