"""Eye-diagram analysis: the receiver's view of link quality.

DIVOT's transparency claim has a signal-integrity face: the iTDR adds no
series element to the line, so the *data* eye at the receiver is whatever
the line itself delivers.  The eye analyzer folds a long data waveform at
the symbol period and reports the standard openings; the signal-integrity
test drives NRZ traffic through the lattice's transmission response with
and without DIVOT attached and shows identical eyes — while a physical
snooping pod (which *does* load the line) closes the eye measurably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .waveform import Waveform

__all__ = ["EyeMetrics", "eye_metrics", "fold_eye"]


@dataclass(frozen=True)
class EyeMetrics:
    """Standard eye-diagram figures of merit.

    Attributes:
        height: Vertical opening at the sampling instant, volts (high rail
            minimum minus low rail maximum; negative means closed).
        width_ui: Horizontal opening as a fraction of one unit interval.
        high_level / low_level: Mean rail voltages at the sampling instant.
        n_traces: Symbol traces folded into the eye.
    """

    height: float
    width_ui: float
    high_level: float
    low_level: float
    n_traces: int

    @property
    def is_open(self) -> bool:
        """Whether the receiver can slice this eye at all."""
        return self.height > 0 and self.width_ui > 0


def fold_eye(
    waveform: Waveform,
    symbol_time: float,
    offset_symbols: int = 2,
) -> np.ndarray:
    """Fold a waveform at the symbol period: one row per symbol trace.

    ``offset_symbols`` drops the leading symbols (launch transient) before
    folding.  The returned matrix has one full unit interval per row.
    """
    if symbol_time <= 0:
        raise ValueError("symbol_time must be positive")
    samples_per_symbol = int(round(symbol_time / waveform.dt))
    if samples_per_symbol < 4:
        raise ValueError("need at least 4 samples per symbol to fold")
    start = offset_symbols * samples_per_symbol
    usable = (len(waveform) - start) // samples_per_symbol
    if usable < 2:
        raise ValueError("waveform too short to fold into an eye")
    data = waveform.samples[start : start + usable * samples_per_symbol]
    return data.reshape(usable, samples_per_symbol)


def eye_metrics(
    waveform: Waveform,
    symbol_time: float,
    threshold: Optional[float] = None,
    offset_symbols: int = 2,
) -> EyeMetrics:
    """Measure the eye of a folded data waveform.

    Traces are classified high/low by their value at the centre sampling
    instant against ``threshold`` (default: the waveform's midpoint).  The
    height is measured at the centre; the width is the span of sampling
    phases where the high/low populations stay separated.
    """
    traces = fold_eye(waveform, symbol_time, offset_symbols)
    n_traces, n_phase = traces.shape
    centre = n_phase // 2
    if threshold is None:
        threshold = float(
            (waveform.samples.max() + waveform.samples.min()) / 2.0
        )
    at_centre = traces[:, centre]
    high = traces[at_centre > threshold]
    low = traces[at_centre <= threshold]
    if len(high) == 0 or len(low) == 0:
        return EyeMetrics(
            height=float("-inf"),
            width_ui=0.0,
            high_level=float(at_centre.mean()),
            low_level=float(at_centre.mean()),
            n_traces=n_traces,
        )
    height = float(high[:, centre].min() - low[:, centre].max())
    # Width: phases where the worst-case high stays above the worst low.
    open_phases = high.min(axis=0) > low.max(axis=0)
    width_ui = float(np.count_nonzero(open_phases)) / n_phase
    return EyeMetrics(
        height=height,
        width_ui=width_ui,
        high_level=float(high[:, centre].mean()),
        low_level=float(low[:, centre].mean()),
        n_traces=n_traces,
    )
