"""IBM 8b/10b line encoding (Widmer & Franaszek).

Section II-E of the paper leans on a property of real high-speed links:
"most high-speed interfaces apply channel encoding to ensure that different
symbols occur evenly", which balances rising and falling edges — the very
balance that forces DIVOT to gate its measurements on a trigger pattern.
To exercise that story faithfully, the I/O-link subsystem encodes its
traffic with genuine 8b/10b: 5b/6b + 3b/4b sub-blocks with running-
disparity bookkeeping, DC balance, and bounded run length.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Encoder8b10b", "Decoder8b10b", "encode_bytes", "decode_bits"]

# 5b/6b table: index EDCBA (the low 5 bits of the byte).  Each entry is
# (code_rd_minus, code_rd_plus) as 6-bit strings "abcdei".  Where the code
# is disparity-neutral both entries coincide.
_5B6B = {
    0: ("100111", "011000"),
    1: ("011101", "100010"),
    2: ("101101", "010010"),
    3: ("110001", "110001"),
    4: ("110101", "001010"),
    5: ("101001", "101001"),
    6: ("011001", "011001"),
    7: ("111000", "000111"),
    8: ("111001", "000110"),
    9: ("100101", "100101"),
    10: ("010101", "010101"),
    11: ("110100", "110100"),
    12: ("001101", "001101"),
    13: ("101100", "101100"),
    14: ("011100", "011100"),
    15: ("010111", "101000"),
    16: ("011011", "100100"),
    17: ("100011", "100011"),
    18: ("010011", "010011"),
    19: ("110010", "110010"),
    20: ("001011", "001011"),
    21: ("101010", "101010"),
    22: ("011010", "011010"),
    23: ("111010", "000101"),
    24: ("110011", "001100"),
    25: ("100110", "100110"),
    26: ("010110", "010110"),
    27: ("110110", "001001"),
    28: ("001110", "001110"),
    29: ("101110", "010001"),
    30: ("011110", "100001"),
    31: ("101011", "010100"),
}

# 3b/4b table: index HGF (the high 3 bits).  Entries "fghj".
_3B4B = {
    0: ("1011", "0100"),
    1: ("1001", "1001"),
    2: ("0101", "0101"),
    3: ("1100", "0011"),
    4: ("1101", "0010"),
    5: ("1010", "1010"),
    6: ("0110", "0110"),
    7: ("1110", "0001"),  # D.x.P7; A7 alternate handled below
}

#: The alternate A7 encoding avoids runs of five; entries "fghj".
_3B4B_A7 = ("0111", "1000")


def _disparity(bits: str) -> int:
    """Ones minus zeros of a code string."""
    ones = bits.count("1")
    return ones - (len(bits) - ones)


def _use_a7(edcba: int, rd: int) -> bool:
    """Whether D.x.7 must use the alternate A7 form (run-length rule)."""
    if rd == -1:
        return edcba in (17, 18, 20)
    return edcba in (11, 13, 14)


class Encoder8b10b:
    """A running-disparity-tracking 8b/10b encoder for data bytes.

    Attributes:
        running_disparity: Current RD, -1 or +1 (starts at -1 as is
            conventional).
    """

    def __init__(self) -> None:
        self.running_disparity = -1

    def reset(self) -> None:
        """Return to the initial RD- state."""
        self.running_disparity = -1

    def encode_byte(self, byte: int) -> np.ndarray:
        """Encode one data byte into its 10-bit symbol (abcdei fghj order)."""
        if not 0 <= byte <= 255:
            raise ValueError(f"byte out of range: {byte}")
        edcba = byte & 0x1F
        hgf = (byte >> 5) & 0x7
        rd = self.running_disparity

        minus6, plus6 = _5B6B[edcba]
        code6 = minus6 if rd == -1 else plus6
        rd_after6 = rd + _disparity(code6)
        rd_mid = -1 if rd_after6 < 0 else (1 if rd_after6 > 0 else rd)

        if hgf == 7 and _use_a7(edcba, rd_mid):
            minus4, plus4 = _3B4B_A7
        else:
            minus4, plus4 = _3B4B[hgf]
        code4 = minus4 if rd_mid == -1 else plus4
        rd_after = rd_mid + _disparity(code4)
        self.running_disparity = (
            -1 if rd_after < 0 else (1 if rd_after > 0 else rd_mid)
        )
        return np.array([int(b) for b in code6 + code4], dtype=np.uint8)

    def encode(self, data: Sequence[int]) -> np.ndarray:
        """Encode a byte sequence into a concatenated bit stream."""
        if len(data) == 0:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate([self.encode_byte(int(b)) for b in data])


class Decoder8b10b:
    """Table-inverting 8b/10b decoder (data symbols only)."""

    def __init__(self) -> None:
        self._lut6 = {}
        for edcba, (minus, plus) in _5B6B.items():
            self._lut6[minus] = edcba
            self._lut6[plus] = edcba
        self._lut4 = {}
        for hgf, (minus, plus) in _3B4B.items():
            self._lut4.setdefault(minus, hgf)
            self._lut4.setdefault(plus, hgf)
        for alt in _3B4B_A7:
            self._lut4[alt] = 7

    def decode_symbol(self, bits: Sequence[int]) -> int:
        """Decode one 10-bit symbol back to its data byte."""
        bits = list(bits)
        if len(bits) != 10:
            raise ValueError("a symbol is exactly 10 bits")
        code6 = "".join(str(int(b)) for b in bits[:6])
        code4 = "".join(str(int(b)) for b in bits[6:])
        if code6 not in self._lut6:
            raise ValueError(f"invalid 6b code {code6!r}")
        if code4 not in self._lut4:
            raise ValueError(f"invalid 4b code {code4!r}")
        return (self._lut4[code4] << 5) | self._lut6[code6]

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Decode a concatenated symbol stream back to bytes."""
        bits = np.asarray(bits)
        if len(bits) % 10:
            raise ValueError("bit stream length must be a multiple of 10")
        return [
            self.decode_symbol(bits[i : i + 10])
            for i in range(0, len(bits), 10)
        ]


def encode_bytes(data: Sequence[int]) -> np.ndarray:
    """One-shot encoding starting from RD-."""
    return Encoder8b10b().encode(data)


def decode_bits(bits: Sequence[int]) -> List[int]:
    """One-shot decoding of a data-symbol stream."""
    return Decoder8b10b().decode(bits)
