"""Small discrete-time filters used across the simulator.

Receivers band-limit what they see; couplers differentiate slow signals;
post-processing smooths estimated IIP waveforms before similarity scoring.
All filters operate on :class:`~repro.signals.waveform.Waveform` records and
preserve grid spacing.
"""

from __future__ import annotations

import numpy as np

from .convolution import convolve_full
from .waveform import Waveform

__all__ = [
    "single_pole_lowpass",
    "moving_average",
    "dc_block",
    "differentiator",
]


def single_pole_lowpass(wave: Waveform, cutoff_hz: float) -> Waveform:
    """First-order IIR low-pass with 3 dB cutoff at ``cutoff_hz``.

    Models the finite analog bandwidth of a comparator front end.
    """
    if cutoff_hz <= 0:
        raise ValueError("cutoff_hz must be positive")
    # Bilinear-free simple exponential smoother: alpha from RC = 1/(2*pi*fc).
    rc = 1.0 / (2.0 * np.pi * cutoff_hz)
    alpha = wave.dt / (rc + wave.dt)
    out = np.empty_like(wave.samples)
    acc = 0.0
    for i, x in enumerate(wave.samples):
        acc += alpha * (x - acc)
        out[i] = acc
    return Waveform(out, wave.dt, wave.t0)


def moving_average(wave: Waveform, window: int) -> Waveform:
    """Boxcar smoothing over ``window`` samples (centered, edge-padded)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or len(wave) == 0:
        return wave
    window = min(window, len(wave))
    kernel = np.ones(window) / window
    padded = np.pad(wave.samples, (window // 2, window - 1 - window // 2), mode="edge")
    # "valid" slice of the full convolution: len(padded) - window + 1 points.
    out = convolve_full(padded, kernel)[window - 1 : len(padded)]
    return Waveform(out, wave.dt, wave.t0)


def dc_block(wave: Waveform) -> Waveform:
    """Remove the record mean (models AC coupling over the record length)."""
    if len(wave) == 0:
        return wave
    return Waveform(wave.samples - np.mean(wave.samples), wave.dt, wave.t0)


def differentiator(wave: Waveform) -> Waveform:
    """First difference scaled to a time derivative (volts/second).

    A directional coupler responds to the travelling-wave slope; this is the
    ideal-coupler approximation.
    """
    if len(wave) < 2:
        return Waveform(np.zeros(len(wave)), wave.dt, wave.t0)
    d = np.diff(wave.samples, prepend=wave.samples[0]) / wave.dt
    return Waveform(d, wave.dt, wave.t0)
