"""Probe-edge generators.

DIVOT uses the rising/falling edges of ordinary bus traffic as its TDR probe
signal (paper section II-D).  The shape of those edges is set by the driver's
output stage and is highly repeatable — the property that makes equivalent
time sampling possible.  This module synthesises the standard edge shapes.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from .waveform import Waveform

__all__ = [
    "raised_cosine_edge",
    "erf_edge",
    "linear_edge",
    "step_edge",
    "gaussian_pulse",
    "EdgeShape",
]


def _edge_window(rise_time: float, dt: float, settle: float) -> np.ndarray:
    """Time axis covering an edge plus a settled tail."""
    n = max(2, int(round((rise_time + settle) / dt)))
    return np.arange(n) * dt


def raised_cosine_edge(
    rise_time: float,
    dt: float,
    amplitude: float = 1.0,
    settle: float = 0.0,
) -> Waveform:
    """A 0-to-``amplitude`` rising edge with a raised-cosine profile.

    ``rise_time`` is the full 0-100 % transition time.  ``settle`` appends a
    flat region at the final level, useful when the edge feeds a convolution
    and the response must be observed after the transition completes.
    """
    if rise_time <= 0:
        raise ValueError("rise_time must be positive")
    t = _edge_window(rise_time, dt, settle)
    x = np.clip(t / rise_time, 0.0, 1.0)
    samples = amplitude * 0.5 * (1.0 - np.cos(np.pi * x))
    return Waveform(samples, dt)


def erf_edge(
    rise_time: float,
    dt: float,
    amplitude: float = 1.0,
    settle: float = 0.0,
) -> Waveform:
    """A Gaussian-filtered (error-function) rising edge.

    ``rise_time`` is interpreted as the 10-90 % transition time, the usual
    datasheet convention for CMOS drivers.
    """
    if rise_time <= 0:
        raise ValueError("rise_time must be positive")
    # For an erf edge, 10 % and 90 % sit at -/+1.2816 sigma, so the
    # 10-90 % transition spans 2.5631 sigma.
    sigma = rise_time / 2.5631
    span = rise_time * 3.0 + settle
    n = max(2, int(round(span / dt)))
    t = np.arange(n) * dt
    center = rise_time * 1.5
    samples = amplitude * 0.5 * (1.0 + erf((t - center) / (np.sqrt(2) * sigma)))
    return Waveform(samples, dt)


def linear_edge(
    rise_time: float,
    dt: float,
    amplitude: float = 1.0,
    settle: float = 0.0,
) -> Waveform:
    """A straight-line ramp from 0 to ``amplitude`` over ``rise_time``."""
    if rise_time <= 0:
        raise ValueError("rise_time must be positive")
    t = _edge_window(rise_time, dt, settle)
    samples = amplitude * np.clip(t / rise_time, 0.0, 1.0)
    return Waveform(samples, dt)


def step_edge(dt: float, amplitude: float = 1.0, n: int = 2) -> Waveform:
    """An ideal instantaneous step (useful for analytic sanity checks)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Waveform(np.full(n, float(amplitude)), dt)


def gaussian_pulse(
    width: float,
    dt: float,
    amplitude: float = 1.0,
    span_sigmas: float = 4.0,
) -> Waveform:
    """A Gaussian pulse of standard deviation ``width`` seconds.

    TDR theory (paper section II-A) characterises a line by its impulse
    response; a narrow Gaussian pulse is the practical stand-in for an ideal
    impulse when one wants a band-limited probe.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    half = int(round(span_sigmas * width / dt))
    t = (np.arange(2 * half + 1) - half) * dt
    samples = amplitude * np.exp(-0.5 * (t / width) ** 2)
    return Waveform(samples, dt, t0=-half * dt)


class EdgeShape:
    """A reusable edge-shape recipe bound to a driver's characteristics.

    The interface circuits inside a digital chip are fixed, so edge shapes
    repeat from bit to bit; an :class:`EdgeShape` captures that repeatability
    as a factory for identical rising/falling edges.
    """

    KINDS = ("raised_cosine", "erf", "linear")

    def __init__(
        self,
        rise_time: float,
        amplitude: float = 1.0,
        kind: str = "raised_cosine",
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        if rise_time <= 0:
            raise ValueError("rise_time must be positive")
        self.rise_time = rise_time
        self.amplitude = amplitude
        self.kind = kind

    def rising(self, dt: float, settle: float = 0.0) -> Waveform:
        """Synthesise a rising edge on a grid of spacing ``dt``."""
        maker = {
            "raised_cosine": raised_cosine_edge,
            "erf": erf_edge,
            "linear": linear_edge,
        }[self.kind]
        return maker(self.rise_time, dt, self.amplitude, settle)

    def falling(self, dt: float, settle: float = 0.0) -> Waveform:
        """Synthesise a falling edge (the mirror of :meth:`rising`)."""
        rise = self.rising(dt, settle)
        return Waveform(self.amplitude - rise.samples, rise.dt, rise.t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EdgeShape(rise_time={self.rise_time:.3g}, "
            f"amplitude={self.amplitude:.3g}, kind={self.kind!r})"
        )
