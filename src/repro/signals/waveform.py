"""Uniformly sampled analog waveforms.

The :class:`Waveform` is the common currency of the simulator: transmission
lines produce reflected waveforms, the iTDR samples them, attacks perturb
them.  A waveform is a dense array of voltage samples on a uniform time grid
with spacing ``dt`` starting at ``t0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .convolution import convolve_full

__all__ = ["Waveform"]


@dataclass(frozen=True)
class Waveform:
    """A uniformly sampled voltage waveform.

    Attributes:
        samples: Voltage samples (volts), one per time step.
        dt: Sample spacing in seconds.
        t0: Time of the first sample in seconds.
    """

    samples: np.ndarray
    dt: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        samples = np.asarray(self.samples, dtype=float)
        object.__setattr__(self, "samples", samples)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Total time span covered by the samples, in seconds."""
        return len(self.samples) * self.dt

    @property
    def times(self) -> np.ndarray:
        """Time stamps of every sample, in seconds."""
        return self.t0 + np.arange(len(self.samples)) * self.dt

    def value_at(self, t: float) -> float:
        """Linearly interpolated voltage at time ``t``.

        Values outside the waveform extent clamp to the boundary samples,
        which models a signal that is quiescent before and after the record.
        """
        return float(np.interp(t, self.times, self.samples))

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Waveform") -> None:
        if not math.isclose(self.dt, other.dt, rel_tol=1e-12):
            raise ValueError(f"dt mismatch: {self.dt} vs {other.dt}")
        if len(self) != len(other):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")

    def __add__(self, other: "Waveform") -> "Waveform":
        self._check_compatible(other)
        return Waveform(self.samples + other.samples, self.dt, self.t0)

    def __sub__(self, other: "Waveform") -> "Waveform":
        self._check_compatible(other)
        return Waveform(self.samples - other.samples, self.dt, self.t0)

    def scaled(self, gain: float) -> "Waveform":
        """Return a copy with every sample multiplied by ``gain``."""
        return Waveform(self.samples * gain, self.dt, self.t0)

    def shifted(self, dv: float) -> "Waveform":
        """Return a copy with ``dv`` volts added to every sample."""
        return Waveform(self.samples + dv, self.dt, self.t0)

    def delayed(self, delay: float) -> "Waveform":
        """Return a copy whose time origin is moved later by ``delay``."""
        return Waveform(self.samples.copy(), self.dt, self.t0 + delay)

    # ------------------------------------------------------------------
    # signal statistics
    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Sum of squared samples times dt (volt^2 * seconds)."""
        return float(np.sum(self.samples**2) * self.dt)

    def rms(self) -> float:
        """Root-mean-square voltage of the record."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.sqrt(np.mean(self.samples**2)))

    def peak(self) -> float:
        """Largest absolute sample value."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.max(np.abs(self.samples)))

    def normalized(self) -> "Waveform":
        """Return a unit-energy copy (L2 norm of samples equals 1).

        An all-zero waveform is returned unchanged: there is no direction to
        normalise onto, and callers comparing fingerprints treat zero-energy
        records as degenerate anyway.

        The norm is computed on peak-scaled samples: squaring subnormal
        magnitudes underflows and makes naive normalisation non-idempotent.
        """
        peak = self.peak()
        if peak == 0.0:
            return self
        scaled = self.samples / peak
        norm = float(np.linalg.norm(scaled))
        if norm == 0.0:
            return self
        return Waveform(scaled / norm, self.dt, self.t0)

    # ------------------------------------------------------------------
    # slicing / resampling
    # ------------------------------------------------------------------
    def slice_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the samples whose timestamps fall in ``[t_start, t_stop)``."""
        if t_stop < t_start:
            raise ValueError("t_stop must not precede t_start")
        times = self.times
        mask = (times >= t_start) & (times < t_stop)
        idx = np.flatnonzero(mask)
        if len(idx) == 0:
            return Waveform(np.zeros(0), self.dt, t_start)
        return Waveform(self.samples[idx], self.dt, float(times[idx[0]]))

    def decimated(self, factor: int, offset: int = 0) -> "Waveform":
        """Keep every ``factor``-th sample starting at index ``offset``.

        This models real-time sampling of a dense analog record: the analog
        grid has spacing ``dt`` and the sampler runs at ``dt * factor``.
        ``offset`` is the sampler phase in analog-grid ticks (the quantity the
        ETS phase-stepping PLL controls).
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0 <= offset < factor:
            raise ValueError(f"offset must be in [0, {factor}), got {offset}")
        return Waveform(
            self.samples[offset::factor],
            self.dt * factor,
            self.t0 + offset * self.dt,
        )

    def padded(self, n_before: int = 0, n_after: int = 0) -> "Waveform":
        """Return a copy extended with zeros on either side."""
        if n_before < 0 or n_after < 0:
            raise ValueError("padding counts must be non-negative")
        samples = np.concatenate(
            [np.zeros(n_before), self.samples, np.zeros(n_after)]
        )
        return Waveform(samples, self.dt, self.t0 - n_before * self.dt)

    def convolved_with(self, kernel: "Waveform") -> "Waveform":
        """Full linear convolution with ``kernel`` (an impulse response).

        The output time origin honours both records' ``t0`` values and the
        result is scaled by ``dt`` so that convolving with a discrete unit
        impulse of area 1 (single sample of height ``1/dt``) is the identity.
        """
        self._check_compatible_dt(kernel)
        out = convolve_full(self.samples, kernel.samples) * self.dt
        return Waveform(out, self.dt, self.t0 + kernel.t0)

    def _check_compatible_dt(self, other: "Waveform") -> None:
        if not math.isclose(self.dt, other.dt, rel_tol=1e-12):
            raise ValueError(f"dt mismatch: {self.dt} vs {other.dt}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(n: int, dt: float, t0: float = 0.0) -> "Waveform":
        """An all-zero waveform of ``n`` samples."""
        return Waveform(np.zeros(n), dt, t0)

    @staticmethod
    def constant(value: float, n: int, dt: float, t0: float = 0.0) -> "Waveform":
        """A waveform holding ``value`` for ``n`` samples."""
        return Waveform(np.full(n, float(value)), dt, t0)

    @staticmethod
    def impulse(n: int, dt: float, at_index: int = 0) -> "Waveform":
        """A discrete unit-area impulse (height ``1/dt`` at ``at_index``)."""
        if not 0 <= at_index < n:
            raise ValueError(f"at_index must be in [0, {n})")
        samples = np.zeros(n)
        samples[at_index] = 1.0 / dt
        return Waveform(samples, dt)
