"""Noise and interference sources.

Two very different random processes matter to DIVOT:

* **Thermal (Gaussian) noise** at the comparator reference input is not an
  enemy but the very mechanism of analog-to-probability conversion — its CDF
  is the transfer curve (paper section II-B).
* **Asynchronous interference** (EMI from nearby circuits, clock crosstalk)
  is a nuisance that the synchronised averaging of APC is claimed to reject
  (section IV-C).  We model it so the claim can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .waveform import Waveform

__all__ = [
    "GaussianNoise",
    "SinusoidalEMI",
    "BurstEMI",
    "CompositeInterference",
]


@dataclass(frozen=True)
class GaussianNoise:
    """White Gaussian voltage noise of standard deviation ``sigma`` volts."""

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Draw independent noise values of the given shape."""
        return rng.normal(0.0, self.sigma, size=shape)

    def waveform(self, n: int, dt: float, rng: np.random.Generator) -> Waveform:
        """A noise record of ``n`` samples."""
        return Waveform(self.sample(n, rng), dt)


class SinusoidalEMI:
    """A narrowband aggressor (e.g. a nearby clock) coupling into the input.

    The aggressor free-runs: it is *not* synchronised to the bus clock, so
    each measurement trigger sees it at an unpredictable phase.  ``phase_at``
    with a uniformly random trigger offset models exactly that.
    """

    def __init__(
        self, amplitude: float, frequency: float, phase: float = 0.0
    ) -> None:
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.amplitude = amplitude
        self.frequency = frequency
        self.phase = phase

    def value_at(self, t) -> np.ndarray:
        """Instantaneous aggressor voltage at absolute time(s) ``t``."""
        t = np.asarray(t, dtype=float)
        return self.amplitude * np.sin(
            2.0 * np.pi * self.frequency * t + self.phase
        )

    def sample_at_triggers(
        self,
        n_triggers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Voltage seen at ``n_triggers`` asynchronous trigger instants.

        Because the aggressor period is unrelated to the trigger period, the
        observed phases are effectively uniform — the classic quasi-ergodic
        sampling argument.  Returned values are i.i.d. ``A*sin(U[0,2pi))``.
        """
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n_triggers)
        return self.amplitude * np.sin(phases)


class BurstEMI:
    """Intermittent wideband bursts (e.g. switching transients).

    Each trigger independently lands inside a burst with probability
    ``duty``; when it does, the coupled voltage is Gaussian with standard
    deviation ``amplitude``.
    """

    def __init__(self, amplitude: float, duty: float) -> None:
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be within [0, 1]")
        self.amplitude = amplitude
        self.duty = duty

    def sample_at_triggers(
        self, n_triggers: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Voltage contribution at each of ``n_triggers`` trigger instants."""
        hit = rng.random(n_triggers) < self.duty
        values = rng.normal(0.0, self.amplitude, size=n_triggers)
        return np.where(hit, values, 0.0)


class CompositeInterference:
    """Sum of several independent interference sources."""

    def __init__(self, sources) -> None:
        self.sources = list(sources)

    def sample_at_triggers(
        self, n_triggers: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Total interference voltage at each trigger instant."""
        total = np.zeros(n_triggers)
        for src in self.sources:
            total += src.sample_at_triggers(n_triggers, rng)
        return total
