"""Signal synthesis substrate: waveforms, edges, line codes, PRBS, noise.

These are the raw materials the transmission-line simulator and the iTDR
consume.  Everything is deterministic given explicit ``numpy`` generators, so
experiments are reproducible end to end.
"""

from .edges import (
    EdgeShape,
    erf_edge,
    gaussian_pulse,
    linear_edge,
    raised_cosine_edge,
    step_edge,
)
from .convolution import batch_convolve_full, conv_method, convolve_full
from .eightbten import Decoder8b10b, Encoder8b10b, decode_bits, encode_bytes
from .eye import EyeMetrics, eye_metrics, fold_eye
from .filters import dc_block, differentiator, moving_average, single_pole_lowpass
from .linecodes import LineCode, NRZCode, PAM4Code, symbol_edges
from .noise import BurstEMI, CompositeInterference, GaussianNoise, SinusoidalEMI
from .prbs import LFSR, PRBS_TAPS, prbs_bits, random_bits
from .scrambler import Scrambler, descramble_bits, scramble_bytes
from .spectral import (
    bandwidth_to_spatial_resolution,
    occupied_bandwidth,
    power_spectrum,
    rise_time_to_bandwidth,
)
from .waveform import Waveform

__all__ = [
    "Waveform",
    "EdgeShape",
    "raised_cosine_edge",
    "erf_edge",
    "linear_edge",
    "step_edge",
    "gaussian_pulse",
    "LineCode",
    "NRZCode",
    "PAM4Code",
    "symbol_edges",
    "Encoder8b10b",
    "Decoder8b10b",
    "encode_bytes",
    "decode_bits",
    "EyeMetrics",
    "eye_metrics",
    "fold_eye",
    "LFSR",
    "PRBS_TAPS",
    "prbs_bits",
    "random_bits",
    "Scrambler",
    "scramble_bytes",
    "descramble_bits",
    "power_spectrum",
    "occupied_bandwidth",
    "rise_time_to_bandwidth",
    "bandwidth_to_spatial_resolution",
    "GaussianNoise",
    "SinusoidalEMI",
    "BurstEMI",
    "CompositeInterference",
    "single_pole_lowpass",
    "moving_average",
    "dc_block",
    "differentiator",
    "conv_method",
    "convolve_full",
    "batch_convolve_full",
]
