"""Wire-tapping attacks (Fig. 9d-f).

The most invasive tamper the paper tests: scratch the solder mask, solder a
wire onto the trace, run it to an oscilloscope.  Electrically the tap wire
is a transmission-line stub in parallel with the trace — at the tap point
the wave sees the trace impedance in parallel with the stub impedance, a
large localised drop, plus stub echoes.  The paper also observes the attack
is *non-reversible*: removing the wire leaves solder residue and a scratched
mask, so the IIP never returns to its enrolled shape.
"""

from __future__ import annotations

import numpy as np

from ..txline.materials import FR4
from ..txline.profile import ImpedanceProfile
from .base import Attack

__all__ = ["WireTap", "WireTapResidue"]


class WireTap(Attack):
    """A soldered tap wire running to an external monitor.

    Attributes:
        position_m: Tap position along the line, metres from the source.
        stub_impedance: Characteristic impedance of the tap wire (a hand
            -soldered jumper is typically 80-120 ohm over a ground plane).
        extent_m: Length of trace affected by the solder joint.
        damage: Relative permanent impedance scar left even after removal
            (scratched mask + residual solder).
    """

    kind = "wire-tap"
    mechanisms = frozenset({"galvanic", "capacitive", "inductive"})

    def __init__(
        self,
        position_m: float,
        stub_impedance: float = 100.0,
        extent_m: float = 2.5e-3,
        damage: float = 0.02,
        velocity: float = FR4.velocity_at(FR4.t_ref_c),
    ) -> None:
        if stub_impedance <= 0:
            raise ValueError("stub_impedance must be positive")
        if extent_m <= 0:
            raise ValueError("extent_m must be positive")
        if damage < 0:
            raise ValueError("damage must be non-negative")
        self.position_m = float(position_m)
        self.stub_impedance = float(stub_impedance)
        self.extent_m = float(extent_m)
        self.damage = float(damage)
        self.velocity = float(velocity)

    def location_m(self) -> float:
        return self.position_m

    def _tap_window(self, profile: ImpedanceProfile) -> np.ndarray:
        starts = profile.segment_positions(self.velocity)
        centers = starts + 0.5 * profile.tau * self.velocity
        return np.exp(
            -0.5 * ((centers - self.position_m) / (0.5 * self.extent_m)) ** 2
        )

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """While the tap is attached: trace parallel stub at the joint."""
        window = self._tap_window(profile)
        # Parallel combination Z*Zstub/(Z+Zstub), blended by the joint window.
        z_parallel = profile.z * self.stub_impedance / (
            profile.z + self.stub_impedance
        )
        z = profile.z * (1.0 - window) + z_parallel * window
        # The solder scar is present while tapped too.
        z = z * (1.0 - self.damage * window)
        return profile.with_impedance(z)

    def residue(self) -> "WireTapResidue":
        """The permanent damage left after the attacker removes the wire."""
        return WireTapResidue(
            position_m=self.position_m,
            damage=self.damage,
            extent_m=self.extent_m,
            velocity=self.velocity,
        )


class WireTapResidue(Attack):
    """Permanent scar after wire removal: the IIP does not recover.

    The paper notes "even when the wire was removed, the remaining changes
    on IIP was still large" — the original fingerprint is destroyed.
    """

    kind = "wire-tap-residue"
    mechanisms = frozenset({"galvanic"})

    def __init__(
        self,
        position_m: float,
        damage: float = 0.02,
        extent_m: float = 2.5e-3,
        velocity: float = FR4.velocity_at(FR4.t_ref_c),
    ) -> None:
        if damage < 0:
            raise ValueError("damage must be non-negative")
        self.position_m = float(position_m)
        self.damage = float(damage)
        self.extent_m = float(extent_m)
        self.velocity = float(velocity)

    def location_m(self) -> float:
        return self.position_m

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        starts = profile.segment_positions(self.velocity)
        centers = starts + 0.5 * profile.tau * self.velocity
        window = np.exp(
            -0.5 * ((centers - self.position_m) / (0.5 * self.extent_m)) ** 2
        )
        return profile.with_impedance(profile.z * (1.0 - self.damage * window))
