"""IIP cloning attempts — why the fingerprint ROM needs no secrecy.

Section III of the paper: "the security of these ROMs storing the
fingerprint is not critical to this architecture because even if attackers
gained access to the IIP, they would not be able to use it once an IIP
leaves the exact Tx-line."  This module makes that claim testable: a
:class:`CloningAttacker` knows the target's *complete* impedance profile
and fabricates the best counterfeit a real process allows, limited by two
physical facts:

* **patterning resolution** — trace width (hence impedance) can only be
  commanded at lithography/etch feature scales, far coarser than the
  sub-millimetre inhomogeneity the iTDR resolves; the attacker can only
  reproduce a low-pass-filtered version of the fingerprint;
* **process noise** — the attacker's own fab adds fresh uncontrollable
  inhomogeneity of at least the industry's floor, overwriting fine detail
  with a *new* random fingerprint.

Sweeping those two capabilities from "hobbyist" to "beyond state of the
art" yields the unclonability curve the paper's argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..txline.line import TransmissionLine
from ..txline.profile import ImpedanceProfile, correlated_field

__all__ = ["FabCapability", "CloningAttacker", "HOBBYIST", "COMMERCIAL",
           "STATE_OF_THE_ART"]


@dataclass(frozen=True)
class FabCapability:
    """What a counterfeiting fab can physically do.

    Attributes:
        name: Capability tier label.
        patterning_resolution_m: Smallest length over which the attacker
            can command an impedance value (trace-width step pitch).
        process_sigma: Relative RMS of the attacker's own uncontrollable
            impedance inhomogeneity — the floor below which no fab goes.
        impedance_accuracy: Relative RMS error between the commanded and
            realised *mean* impedance per patterned step.
    """

    name: str
    patterning_resolution_m: float
    process_sigma: float
    impedance_accuracy: float

    def __post_init__(self) -> None:
        if self.patterning_resolution_m <= 0:
            raise ValueError("patterning_resolution_m must be positive")
        if self.process_sigma < 0 or self.impedance_accuracy < 0:
            raise ValueError("noise terms must be non-negative")


#: Soldering iron and a mill: centimetre patterning, sloppy process.
HOBBYIST = FabCapability(
    name="hobbyist",
    patterning_resolution_m=20e-3,
    process_sigma=0.015,
    impedance_accuracy=0.05,
)

#: A good commercial controlled-impedance fab — the *same* grade that made
#: the genuine board, so its uncontrollable-inhomogeneity floor equals the
#: target's own (that floor is what defines the process class).
COMMERCIAL = FabCapability(
    name="commercial",
    patterning_resolution_m=5e-3,
    process_sigma=0.010,
    # Commanding a custom impedance *profile* means modulating trace width
    # feature by feature; etch tolerance (~ +/-10 % of width) translates to
    # a ~2 % impedance realisation error per commanded step.
    impedance_accuracy=0.020,
)

#: A hypothetical fab well beyond today's practice: millimetre patterning
#: and *half* the industry's inhomogeneity floor.  This tier measures the
#: security margin rather than a practical attack.
STATE_OF_THE_ART = FabCapability(
    name="state-of-the-art",
    patterning_resolution_m=1e-3,
    process_sigma=0.005,
    impedance_accuracy=0.008,
)


class CloningAttacker:
    """Fabricates the best counterfeit of a target line a fab allows.

    The attacker is maximally informed: it holds the target's exact
    per-segment impedance array (stolen from the fingerprint ROM, or
    measured with a bench VNA).  Its clone is the commanded profile —
    the target low-passed to the patterning resolution — plus the fab's
    own fresh inhomogeneity.
    """

    def __init__(
        self,
        capability: FabCapability,
        rng: np.random.Generator,
    ) -> None:
        self.capability = capability
        self.rng = rng

    def commanded_profile(self, target: ImpedanceProfile,
                          velocity: float) -> np.ndarray:
        """The impedance the attacker *asks* its fab for.

        A boxcar average of the target over the patterning pitch: the
        finest structure the attacker can even request.
        """
        seg_len = float(np.mean(target.tau)) * velocity
        step = max(1, int(round(self.capability.patterning_resolution_m / seg_len)))
        z = target.z
        commanded = np.empty_like(z)
        for start in range(0, len(z), step):
            commanded[start : start + step] = z[start : start + step].mean()
        return commanded

    def fabricate(
        self,
        target: TransmissionLine,
        name: str = "counterfeit",
    ) -> TransmissionLine:
        """Build the clone line the attacker would plug in."""
        profile = target.full_profile
        velocity = target.material.velocity_at(target.material.t_ref_c)
        commanded = self.commanded_profile(profile, velocity)
        cap = self.capability
        seg_len = float(np.mean(profile.tau)) * velocity
        # Fresh process inhomogeneity at the attacker's floor; correlation
        # follows the physical scale of etch variation (~5 mm).
        corr = max(1, int(round(5e-3 / seg_len)))
        fresh = correlated_field(
            profile.n_segments, cap.process_sigma, corr, self.rng
        )
        # Per-step realisation error of the commanded means.
        step = max(1, int(round(cap.patterning_resolution_m / seg_len)))
        n_steps = int(np.ceil(profile.n_segments / step))
        step_err = np.repeat(
            self.rng.normal(0.0, cap.impedance_accuracy, size=n_steps), step
        )[: profile.n_segments]
        z_clone = commanded * (1.0 + fresh + step_err)
        clone_profile = ImpedanceProfile(
            z=z_clone,
            tau=profile.tau.copy(),
            z_source=profile.z_source,
            z_load=profile.z_load,
            loss_per_segment=profile.loss_per_segment,
        )
        return TransmissionLine(
            name=name,
            board_profile=clone_profile,
            material=target.material,
            receiver=None,
        )
