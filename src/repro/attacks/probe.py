"""Magnetic / EM probing attacks (Fig. 9g-i) and capacitive snooping.

A magnetic probe never touches the trace, yet its presence perturbs the
magnetic field: eddy currents induced in the probe oppose the line's field,
adding mutual inductance and *raising* local impedance (Z = sqrt(L/C)).
A capacitive snooping probe (oscilloscope probe tip, bus-monitor pod)
instead adds shunt capacitance and *lowers* local impedance.  Both are
small, localised bumps — the smallest attack signatures DIVOT must detect,
which is why the paper's detection threshold is calibrated on the magnetic
probe case.
"""

from __future__ import annotations

import numpy as np

from ..txline.materials import FR4
from ..txline.profile import ImpedanceProfile
from .base import Attack

__all__ = ["MagneticProbe", "CapacitiveSnoop"]


class _LocalizedBump(Attack):
    """Shared machinery: a Gaussian impedance bump at a position."""

    def __init__(
        self,
        position_m: float,
        relative_amplitude: float,
        extent_m: float,
        velocity: float,
    ) -> None:
        if extent_m <= 0:
            raise ValueError("extent_m must be positive")
        if velocity <= 0:
            raise ValueError("velocity must be positive")
        self.position_m = float(position_m)
        self.relative_amplitude = float(relative_amplitude)
        self.extent_m = float(extent_m)
        self.velocity = float(velocity)

    def location_m(self) -> float:
        return self.position_m

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        starts = profile.segment_positions(self.velocity)
        centers = starts + 0.5 * profile.tau * self.velocity
        bump = self.relative_amplitude * np.exp(
            -0.5 * ((centers - self.position_m) / (0.5 * self.extent_m)) ** 2
        )
        return profile.with_impedance(profile.z * (1.0 + bump))


class MagneticProbe(_LocalizedBump):
    """A non-contact magnetic probe hovering over the trace.

    Attributes:
        position_m: Probe position along the line, metres from the source.
        coupling: Relative impedance increase at the probe centre.  A probe
            hovering a fraction of a millimetre above a microstrip couples at
            the percent level; ~2 % is the regime where the error-function
            contrast sits a small factor above the detector's calibrated
            threshold — the borderline case the paper calibrates on.
        extent_m: Physical footprint of the probe head.
    """

    kind = "magnetic-probe"
    mechanisms = frozenset({"inductive"})

    def __init__(
        self,
        position_m: float,
        coupling: float = 0.018,
        extent_m: float = 4.0e-3,
        velocity: float = FR4.velocity_at(FR4.t_ref_c),
    ) -> None:
        if coupling < 0:
            raise ValueError("coupling must be non-negative")
        super().__init__(position_m, +coupling, extent_m, velocity)
        self.coupling = coupling


class CapacitiveSnoop(_LocalizedBump):
    """A contact or near-contact voltage-snooping probe.

    Adds shunt capacitance, lowering local impedance.  Typical 10x scope
    probes load the line with ~10 pF — a much larger signature than the
    magnetic probe.
    """

    kind = "capacitive-snoop"
    mechanisms = frozenset({"capacitive"})

    def __init__(
        self,
        position_m: float,
        loading: float = 0.05,
        extent_m: float = 3.0e-3,
        velocity: float = FR4.velocity_at(FR4.t_ref_c),
    ) -> None:
        if loading < 0:
            raise ValueError("loading must be non-negative")
        super().__init__(position_m, -loading, extent_m, velocity)
        self.loading = loading
