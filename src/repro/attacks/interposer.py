"""Chiplet-era attacks: malicious interposers at die-to-die boundaries.

The paper predates the chiplet explosion, but its own argument extends
off-package: once a system is assembled from dies on an interposer, the
die-to-die links are buses an adversary can sit on.  ChipletQuake
(PAPERS.md) demonstrates exactly this verification problem — and shows
impedance sensing at the boundary is the tool that solves it.  A
hardware implant spliced into the boundary (a logging interposer, a
man-in-the-middle die, a rework-station graft) cannot avoid adding
parasitics where it joins the link: its inbound routing inserts series
inductance — a local impedance *rise* just before the boundary — and
its input stage adds die capacitance — an impedance *dip* just after.
The signature is therefore a signed doublet straddling the boundary
position, unlike the single-signed bumps of probes and taps; shrinking
the implant shrinks the doublet, but an implant that still functions
needs a minimum footprint and minimum parasitics, which is the floor an
adaptive adversary converges to.
"""

from __future__ import annotations

import numpy as np

from ..txline.materials import FR4
from ..txline.profile import ImpedanceProfile
from .base import Attack

__all__ = ["InterposerImplant"]


class InterposerImplant(Attack):
    """A hardware implant grafted at a chiplet/interposer boundary.

    Attributes:
        boundary_m: Position of the die-to-die boundary along the link,
            metres from the source.
        footprint_m: Physical extent of the implant's joint; the series
            lobe sits half a footprint before the boundary and the
            shunt lobe half a footprint after it.
        series_delta: Relative impedance rise of the inbound-routing
            (series-inductance) lobe.
        shunt_delta: Relative impedance dip of the die-capacitance
            (shunt) lobe.
    """

    kind = "interposer-implant"
    mechanisms = frozenset({"inductive", "capacitive", "galvanic"})

    def __init__(
        self,
        boundary_m: float,
        footprint_m: float = 3.0e-3,
        series_delta: float = 0.03,
        shunt_delta: float = 0.04,
        velocity: float = FR4.velocity_at(FR4.t_ref_c),
    ) -> None:
        if boundary_m < 0:
            raise ValueError("boundary_m must be non-negative")
        if footprint_m <= 0:
            raise ValueError("footprint_m must be positive")
        if series_delta < 0 or shunt_delta < 0:
            raise ValueError("parasitic deltas must be non-negative")
        if velocity <= 0:
            raise ValueError("velocity must be positive")
        self.boundary_m = float(boundary_m)
        self.footprint_m = float(footprint_m)
        self.series_delta = float(series_delta)
        self.shunt_delta = float(shunt_delta)
        self.velocity = float(velocity)

    def location_m(self) -> float:
        return self.boundary_m

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        starts = profile.segment_positions(self.velocity)
        centers = starts + 0.5 * profile.tau * self.velocity
        half = 0.5 * self.footprint_m
        sigma = 0.5 * half
        series = self.series_delta * np.exp(
            -0.5 * ((centers - (self.boundary_m - half)) / sigma) ** 2
        )
        shunt = self.shunt_delta * np.exp(
            -0.5 * ((centers - (self.boundary_m + half)) / sigma) ** 2
        )
        return profile.with_impedance(profile.z * (1.0 + series - shunt))

    def describe(self) -> str:
        return (
            f"{self.kind} at {self.boundary_m * 100:.1f} cm "
            f"(footprint {self.footprint_m * 1e3:.1f} mm, "
            f"+{self.series_delta:.3f}/-{self.shunt_delta:.3f})"
        )
