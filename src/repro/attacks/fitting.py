"""Profile-fitting cloning: inverse-scattering the IIP from reflections.

The strongest attack on any measurable PUF is to *measure it and fit a
model*: the fingerprint DIVOT relies on is an impedance profile, and a
lossless-layered-medium reflection response determines its profile
exactly (Goupillaud's inverse scattering / layer peeling).  This module
implements the matched pair:

* :func:`impulse_taps` — the exact forward lattice: the reflection
  impulse-response taps (one per segment round trip) a bench
  reflectometer with a matched source observes;
* :func:`peel_profile` — the exact inverse: dynamic deconvolution that
  walks down the line one interface at a time, recovering every segment
  impedance and the termination from the taps.

Noiselessly, ``peel_profile(impulse_taps(p)) == p`` to machine
precision — the pinned contract.  With bench noise the peel *amplifies*
errors with depth (each layer divides by ``1 - r`` and by the loss
factor twice), which is the physically honest limit on this attack: the
adversary's fitted profile degrades toward the far end, and averaging
more observations buys accuracy only as ``1/sqrt(N)``.

:class:`AdaptiveCloningAttacker` builds the campaign adversary on top:
observe, fit, fabricate at a real fab's patterning resolution, then
iteratively *trim* the realised clone toward the fit — the adaptive
loop that beats the one-shot :class:`~repro.attacks.cloning.
CloningAttacker` baseline.  :class:`ProfileSubstitution` plugs the
counterfeit into any modifier chain (fleet scans included).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..txline.line import TransmissionLine
from ..txline.profile import ImpedanceProfile, correlated_field
from .base import Attack
from .cloning import FabCapability

__all__ = [
    "impulse_taps",
    "peel_profile",
    "ProfileSubstitution",
    "AdaptiveCloningAttacker",
]

#: Largest |reflection coefficient| the peel will accept from noisy taps
#: before clamping — keeps one bad division from corrupting every layer
#: below it.
_R_CLAMP = 0.97


def _uniform_tau(profile: ImpedanceProfile) -> float:
    """The common segment delay, or an error for non-uniform lines.

    The tap algebra needs one round-trip pitch; manufactured prototype
    lines are uniform by construction (the factory fills ``tau`` with
    one segment delay).
    """
    tau = profile.tau
    mean = float(tau.mean())
    if np.any(np.abs(tau - mean) > 1e-9 * mean):
        raise ValueError("profile-fitting needs a uniform-tau line")
    return mean


def _coefficients(profile: ImpedanceProfile, z_ref: float) -> np.ndarray:
    """Down-crossing reflection coefficients, bench to load."""
    z = profile.z
    r = np.empty(len(z) + 1)
    r[0] = (z[0] - z_ref) / (z[0] + z_ref)
    r[1:-1] = (z[1:] - z[:-1]) / (z[1:] + z[:-1])
    r[-1] = (profile.z_load - z[-1]) / (profile.z_load + z[-1])
    return r


def impulse_taps(
    profile: ImpedanceProfile,
    n_taps: Optional[int] = None,
    z_ref: float = 50.0,
) -> np.ndarray:
    """Exact reflection impulse-response taps of a layered line.

    A unit impulse launches from a matched ``z_ref`` bench; the return
    is sampled at the round-trip pitch ``2 * tau``.  Tap ``k`` carries
    every multiple-scattering path of total delay ``2 k tau`` — the
    exact Goupillaud lattice, with the per-segment loss applied on each
    one-way traversal.

    ``n_taps`` defaults to ``n_segments + 1``, the minimum that reaches
    the termination (and hence the minimum :func:`peel_profile` needs).
    """
    if z_ref <= 0:
        raise ValueError("z_ref must be positive")
    _uniform_tau(profile)
    n_seg = profile.n_segments
    if n_taps is None:
        n_taps = n_seg + 1
    if n_taps < 1:
        raise ValueError("n_taps must be >= 1")
    r = _coefficients(profile, z_ref)
    g = profile.loss_per_segment
    down = np.zeros(n_seg)
    up = np.zeros(n_seg)
    h = np.zeros(2 * n_taps - 1)
    for t in range(len(h)):
        d_arr = g * down
        u_arr = g * up
        source = 1.0 if t == 0 else 0.0
        from_below = u_arr[0]
        h[t] = r[0] * source + (1.0 - r[0]) * from_below
        new_down = np.empty(n_seg)
        new_up = np.empty(n_seg)
        new_down[0] = (1.0 + r[0]) * source - r[0] * from_below
        a = d_arr[:-1]
        b = u_arr[1:]
        ri = r[1:-1]
        new_down[1:] = (1.0 + ri) * a - ri * b
        new_up[:-1] = ri * a + (1.0 - ri) * b
        new_up[-1] = r[-1] * d_arr[-1]
        down, up = new_down, new_up
    # Reflections reach the bench only at even lattice times.
    return h[::2]


def peel_profile(
    taps: np.ndarray,
    tau_s: float,
    n_segments: int,
    z_ref: float = 50.0,
    loss_per_segment: float = 1.0,
    z_source: float = 50.0,
) -> ImpedanceProfile:
    """Layer-peel an impedance profile out of reflection taps.

    The inverse of :func:`impulse_taps`: walk interfaces top-down; at
    each one the first surviving tap fixes the local reflection
    coefficient, the scattering relations reconstruct the wave pair
    just below it, and one round-trip shift descends a layer.  The
    loss factor is assumed known (laminate datasheet) and compensated
    exactly.  Needs ``n_segments + 1`` taps; noise in late taps surfaces
    as error in deep segments — the attack's physical accuracy limit.
    """
    taps = np.asarray(taps, dtype=float)
    if taps.ndim != 1:
        raise ValueError("taps must be 1-D")
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if len(taps) < n_segments + 1:
        raise ValueError(
            f"need {n_segments + 1} taps to peel {n_segments} segments, "
            f"got {len(taps)}"
        )
    if tau_s <= 0:
        raise ValueError("tau_s must be positive")
    if not 0 < loss_per_segment <= 1.0:
        raise ValueError("loss_per_segment must be in (0, 1]")
    g = loss_per_segment
    down = np.zeros_like(taps)
    down[0] = 1.0
    up = taps.copy()
    coeffs = np.empty(n_segments + 1)
    for i in range(n_segments + 1):
        r = up[0] / down[0]
        r = float(np.clip(r, -_R_CLAMP, _R_CLAMP))
        coeffs[i] = r
        if i == n_segments:
            break
        from_below = (up - r * down) / (1.0 - r)
        through = (1.0 + r) * down - r * from_below
        down = g * through[:-1]
        up = from_below[1:] / g
    z = np.empty(n_segments)
    z_here = z_ref
    for i in range(n_segments):
        z_here = z_here * (1.0 + coeffs[i]) / (1.0 - coeffs[i])
        z[i] = z_here
    z_load = z_here * (1.0 + coeffs[-1]) / (1.0 - coeffs[-1])
    return ImpedanceProfile(
        z=z,
        tau=np.full(n_segments, tau_s),
        z_source=z_source,
        z_load=float(z_load),
        loss_per_segment=loss_per_segment,
    )


class ProfileSubstitution(Attack):
    """Swap the whole electrical state for a counterfeit's profile.

    The physical act behind every cloning scenario: the genuine line is
    gone and the endpoint now measures the counterfeit.  Expressed as a
    profile modifier so clone presentation rides the same fleet-scan
    path as every other attack.
    """

    kind = "clone-substitution"
    mechanisms = frozenset({"inductive", "capacitive", "galvanic"})

    def __init__(self, replacement: ImpedanceProfile, label: str = "clone"):
        if not isinstance(replacement, ImpedanceProfile):
            raise TypeError("replacement must be an ImpedanceProfile")
        self.replacement = replacement
        self.label = str(label)

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        if profile.n_segments != self.replacement.n_segments:
            raise ValueError(
                "counterfeit segment count differs from the protected "
                f"line ({self.replacement.n_segments} vs "
                f"{profile.n_segments})"
            )
        return self.replacement

    def describe(self) -> str:
        return f"{self.kind} ({self.label})"


class AdaptiveCloningAttacker:
    """Observe-fit-fabricate-trim: the adaptive cloning campaign core.

    Per round the adversary (a) takes one more averaged bench
    observation of the target's reflection taps, (b) re-fits the
    profile by layer peeling the accumulated average, and (c) either
    fabricates a first clone (patterning-resolution boxcar command plus
    the fab's fresh process noise, exactly the one-shot attacker's
    physics) or laser-trims the existing clone toward the latest fit.
    Trimming is post-fab rework: finer-pitched than patterning and
    incremental, but each pass leaves fresh trim noise, so the clone
    converges to a floor set by trim pitch and noise — below the
    one-shot clone's error, never to zero.

    All randomness comes from the per-round generator the campaign
    hands in, so a campaign's clones are a pure function of its seeds.
    """

    def __init__(
        self,
        capability: FabCapability,
        z_ref: float = 50.0,
        bench_noise: float = 2.0e-4,
        trim_gain: float = 0.6,
        trim_pitch_fraction: float = 0.25,
        trim_noise_fraction: float = 0.1,
    ) -> None:
        if bench_noise < 0:
            raise ValueError("bench_noise must be non-negative")
        if not 0.0 < trim_gain <= 1.0:
            raise ValueError("trim_gain must be in (0, 1]")
        if not 0.0 < trim_pitch_fraction <= 1.0:
            raise ValueError("trim_pitch_fraction must be in (0, 1]")
        if trim_noise_fraction < 0:
            raise ValueError("trim_noise_fraction must be non-negative")
        self.capability = capability
        self.z_ref = float(z_ref)
        self.bench_noise = float(bench_noise)
        self.trim_gain = float(trim_gain)
        self.trim_pitch_fraction = float(trim_pitch_fraction)
        self.trim_noise_fraction = float(trim_noise_fraction)
        self._taps_sum: Optional[np.ndarray] = None
        self._n_observations = 0
        self._clone_z: Optional[np.ndarray] = None
        self._clone_load: Optional[float] = None
        self._tau_s: Optional[float] = None
        self._template: Optional[ImpedanceProfile] = None

    # -- observation ----------------------------------------------------
    @property
    def n_observations(self) -> int:
        """Averaged bench observations taken so far."""
        return self._n_observations

    def observe(
        self, line: TransmissionLine, rng: np.random.Generator
    ) -> np.ndarray:
        """One bench reflectometry pass on the target line.

        Returns (and accumulates) the exact taps plus this pass's bench
        noise; the running average is what :meth:`fit` peels.
        """
        profile = line.full_profile
        self._tau_s = _uniform_tau(profile)
        self._template = profile
        taps = impulse_taps(profile, z_ref=self.z_ref)
        noisy = taps + rng.normal(0.0, self.bench_noise, size=taps.shape)
        if self._taps_sum is None:
            self._taps_sum = noisy.copy()
        else:
            self._taps_sum += noisy
        self._n_observations += 1
        return noisy

    def fit(self) -> ImpedanceProfile:
        """Layer-peel the averaged observations into a profile estimate."""
        if self._taps_sum is None:
            raise RuntimeError("observe() the target before fitting")
        mean_taps = self._taps_sum / self._n_observations
        template = self._template
        return peel_profile(
            mean_taps,
            tau_s=self._tau_s,
            n_segments=template.n_segments,
            z_ref=self.z_ref,
            loss_per_segment=template.loss_per_segment,
            z_source=template.z_source,
        )

    # -- fabrication ----------------------------------------------------
    def _boxcar(self, values: np.ndarray, pitch_m: float) -> np.ndarray:
        seg_len = self._tau_s * self._velocity()
        step = max(1, int(round(pitch_m / seg_len)))
        out = np.empty_like(values)
        for start in range(0, len(values), step):
            out[start:start + step] = values[start:start + step].mean()
        return out

    def _velocity(self) -> float:
        # The bench knows the laminate: segment length follows from the
        # measured tau at the material's propagation velocity.  The
        # ratio is all the boxcar needs, so any consistent velocity
        # works; use the physical one implied by the template's loss.
        from ..txline.materials import FR4

        return FR4.velocity_at(FR4.t_ref_c)

    def advance(self, rng: np.random.Generator) -> ImpedanceProfile:
        """Fabricate on the first call, trim on every later one.

        Returns the realised counterfeit profile after this round's
        fab/trim step — the profile a :class:`ProfileSubstitution`
        should present to the defender.
        """
        fitted = self.fit()
        cap = self.capability
        seg_len = self._tau_s * self._velocity()
        corr = max(1, int(round(5e-3 / seg_len)))
        if self._clone_z is None:
            commanded = self._boxcar(
                fitted.z, cap.patterning_resolution_m
            )
            fresh = correlated_field(
                len(commanded), cap.process_sigma, corr, rng
            )
            step = max(
                1, int(round(cap.patterning_resolution_m / seg_len))
            )
            n_steps = int(np.ceil(len(commanded) / step))
            step_err = np.repeat(
                rng.normal(0.0, cap.impedance_accuracy, size=n_steps),
                step,
            )[: len(commanded)]
            self._clone_z = commanded * (1.0 + fresh + step_err)
            self._clone_load = fitted.z_load * (
                1.0 + rng.normal(0.0, cap.impedance_accuracy)
            )
        else:
            residual = fitted.z - self._clone_z
            command = self._boxcar(
                residual,
                cap.patterning_resolution_m * self.trim_pitch_fraction,
            )
            trim_noise = correlated_field(
                len(command),
                cap.process_sigma * self.trim_noise_fraction,
                corr,
                rng,
            )
            self._clone_z = (
                self._clone_z
                + self.trim_gain * command
                + self._clone_z * trim_noise
            )
            self._clone_load = self._clone_load + self.trim_gain * (
                fitted.z_load - self._clone_load
            )
        return self.clone_profile()

    def clone_profile(self) -> ImpedanceProfile:
        """The counterfeit's current electrical state."""
        if self._clone_z is None:
            raise RuntimeError("advance() at least once first")
        template = self._template
        return ImpedanceProfile(
            z=self._clone_z.copy(),
            tau=template.tau.copy(),
            z_source=template.z_source,
            z_load=float(self._clone_load),
            loss_per_segment=template.loss_per_segment,
        )
