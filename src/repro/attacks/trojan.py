"""Load-modification attacks: Trojan chips and cold-boot module swaps.

Fig. 9(a-c) of the paper replaces the receiver chip with a different unit of
the *same model number* and shows the IIP diverging sharply near the
termination (~3.5 ns into the 3.8 ns record).  Whether the adversary inserts
a Trojan chip, re-seats a stolen DIMM into another machine, or swaps modules
for a cold-boot readout, the electrical event is the same: the load network
at the end of the line changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..txline.line import TransmissionLine
from ..txline.profile import ImpedanceProfile
from ..txline.termination import ReceiverPackage
from .base import Attack

__all__ = ["LoadModification", "ChipSwap", "ColdBootSwap"]


class LoadModification(Attack):
    """Directly alter the termination network of a profile.

    Attributes:
        load_scale: Multiplier on the termination resistance (a Trojan
            interposer adds series/shunt parasitics; 1.0 means unchanged).
        near_end_delta: Relative impedance change applied to the last
            ``n_segments`` segments (the package/bond section of the new
            part differs from the old one's).
        n_segments: How many trailing segments the new package occupies.
    """

    kind = "load-modification"
    mechanisms = frozenset({"galvanic", "capacitive"})

    def __init__(
        self,
        load_scale: float = 1.15,
        near_end_delta: float = 0.08,
        n_segments: int = 3,
    ) -> None:
        if load_scale <= 0:
            raise ValueError("load_scale must be positive")
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        self.load_scale = float(load_scale)
        self.near_end_delta = float(near_end_delta)
        self.n_segments = int(n_segments)

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        n = min(self.n_segments, profile.n_segments)
        z = profile.z.copy()
        z[-n:] = z[-n:] * (1.0 + self.near_end_delta)
        return ImpedanceProfile(
            z=z,
            tau=profile.tau,
            z_source=profile.z_source,
            z_load=profile.z_load * self.load_scale,
            loss_per_segment=profile.loss_per_segment,
        )

    def location_m(self) -> Optional[float]:
        return None  # resolved at the far end; position depends on the line


class ChipSwap(Attack):
    """Replace the receiver with a different unit of the same model number.

    The new chip's on-die termination and package parasitics differ by
    normal unit-to-unit manufacturing spread — small numbers, but a clear
    reflection-peak change at the termination, which is the paper's point:
    even a "same model number" swap is visible.
    """

    kind = "chip-swap"
    mechanisms = frozenset({"galvanic", "capacitive"})

    def __init__(self, replacement_seed: int, spread: float = 0.04) -> None:
        self.replacement = ReceiverPackage(seed=replacement_seed).instance_variation(
            spread
        )

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        # The old package occupies the trailing segments; overwrite them with
        # the new chip's package impedance and swap the lumped load.
        n_pkg = max(
            1,
            int(round(self.replacement.package_delay / float(np.mean(profile.tau)))),
        )
        n_pkg = min(n_pkg, profile.n_segments)
        z = profile.z.copy()
        z[-n_pkg:] = self.replacement.package_impedance
        return ImpedanceProfile(
            z=z,
            tau=profile.tau,
            z_source=profile.z_source,
            z_load=self.replacement.input_resistance,
            loss_per_segment=profile.loss_per_segment,
        )


class ColdBootSwap:
    """The physical half of a cold-boot attack: the module moves machines.

    Not a profile modifier — the attacker connects the (frozen) memory
    module to a *different* Tx-line in another computer.  From either
    vantage, the measured IIP is now a different line's fingerprint:

    * attacker's host measuring the stolen module → ``foreign_line``'s IIP,
      which fails the module's own stored fingerprint check, so the module
      side blocks access;
    * the victim machine (if the module was re-seated) sees the original
      line with a swapped far end, i.e. a :class:`ChipSwap`-like change.
    """

    kind = "cold-boot-swap"

    def __init__(self, foreign_line: TransmissionLine) -> None:
        self.foreign_line = foreign_line

    def measured_line(self) -> TransmissionLine:
        """The line the relocated module actually sits on now."""
        return self.foreign_line
