"""Attack abstractions: what a physical attack is, and when it happens.

Every physical attack the paper studies — magnetic probing, wire-tapping,
Trojan chip insertion, the physical half of a cold-boot attack — has one
common signature: it perturbs the impedance profile of a Tx-line at some
location.  An :class:`Attack` is therefore a named, located profile
modifier.  :class:`AttackTimeline` schedules attacks over a monitoring run
so detection-latency experiments can measure time-to-alert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..txline.profile import ImpedanceProfile

__all__ = ["Attack", "TimedAttack", "AttackTimeline"]


class Attack:
    """Base class for physical attacks expressed as profile modifiers."""

    #: Short machine-readable attack family name.
    kind: str = "generic"

    #: Physical coupling mechanisms the attack exercises, a subset of
    #: {"inductive", "capacitive", "galvanic"}.  Baseline detectors watch a
    #: single mechanism each (PAD: capacitance; DC resistance: galvanic
    #: copper), so this tag determines what each prior-art scheme can
    #: physically see.  The IIP responds to all three — DIVOT's advantage.
    mechanisms: frozenset = frozenset({"inductive", "capacitive", "galvanic"})

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """Return the profile as perturbed by this attack."""
        raise NotImplementedError

    def location_m(self) -> Optional[float]:
        """Nominal attack position along the line in metres, if localised."""
        return None

    def describe(self) -> str:
        """One-line human-readable description for alerts and logs."""
        loc = self.location_m()
        where = f" at {loc * 100:.1f} cm" if loc is not None else ""
        return f"{self.kind}{where}"

    def _segment_index(
        self, profile: ImpedanceProfile, position_m: float, velocity: float
    ) -> int:
        """Map a physical position to the nearest segment index."""
        starts = profile.segment_positions(velocity)
        if position_m < 0:
            raise ValueError("position must be non-negative")
        idx = int(min(range(len(starts)), key=lambda i: abs(starts[i] - position_m)))
        return idx


@dataclass(frozen=True)
class TimedAttack:
    """An attack active during ``[start_s, stop_s)`` of a monitoring run.

    ``stop_s = None`` means the attack persists to the end of the run (most
    physical tampering does not un-happen by itself).
    """

    attack: Attack
    start_s: float
    stop_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must exceed start_s")

    def active_at(self, t: float) -> bool:
        """Whether the attack is in effect at absolute time ``t``."""
        if t < self.start_s:
            return False
        return self.stop_s is None or t < self.stop_s


@dataclass
class AttackTimeline:
    """A schedule of attacks over a monitoring run."""

    events: List[TimedAttack] = field(default_factory=list)

    def add(
        self, attack: Attack, start_s: float, stop_s: Optional[float] = None
    ) -> "AttackTimeline":
        """Schedule ``attack`` and return self for chaining."""
        self.events.append(TimedAttack(attack, start_s, stop_s))
        return self

    def active_at(self, t: float) -> Tuple[Attack, ...]:
        """All attacks in effect at time ``t``, in schedule order."""
        return tuple(e.attack for e in self.events if e.active_at(t))

    def first_onset(self) -> Optional[float]:
        """Time of the earliest scheduled attack, or None if empty."""
        if not self.events:
            return None
        return min(e.start_s for e in self.events)
