"""Physical attack models.

Each attack perturbs a line's impedance profile the way the corresponding
physical act does: magnetic probing adds mutual inductance, wire-tapping
parallels a stub onto the trace, Trojan/cold-boot load modification changes
the termination network.  :class:`AttackTimeline` schedules attacks over a
monitoring run for detection-latency measurements.
"""

from .base import Attack, AttackTimeline, TimedAttack
from .cloning import (
    COMMERCIAL,
    HOBBYIST,
    STATE_OF_THE_ART,
    CloningAttacker,
    FabCapability,
)
from .fitting import (
    AdaptiveCloningAttacker,
    ProfileSubstitution,
    impulse_taps,
    peel_profile,
)
from .interposer import InterposerImplant
from .probe import CapacitiveSnoop, MagneticProbe
from .trojan import ChipSwap, ColdBootSwap, LoadModification
from .wiretap import WireTap, WireTapResidue

__all__ = [
    "Attack",
    "TimedAttack",
    "AttackTimeline",
    "MagneticProbe",
    "CapacitiveSnoop",
    "WireTap",
    "WireTapResidue",
    "LoadModification",
    "ChipSwap",
    "ColdBootSwap",
    "InterposerImplant",
    "CloningAttacker",
    "AdaptiveCloningAttacker",
    "ProfileSubstitution",
    "impulse_taps",
    "peel_profile",
    "FabCapability",
    "HOBBYIST",
    "COMMERCIAL",
    "STATE_OF_THE_ART",
]
