"""Electromagnetic interference environments (the EMI robustness test).

Section IV-C of the paper places a high-speed digital circuit next to the
bus and reports the EER *staying* at 0.06 %.  The stated mechanism: IIP
measurement is synchronised to the bus waveform, so interference that is
asynchronous to the bus clock averages out over the many APC trials.  We
model aggressors explicitly so that claim is testable — including the
adversarial case of a *synchronous* aggressor, where averaging does not
help.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..signals.noise import BurstEMI, CompositeInterference, SinusoidalEMI

__all__ = ["EMIEnvironment", "nearby_digital_circuit", "synchronous_aggressor"]


class EMIEnvironment:
    """A set of interference sources coupling into the comparator input.

    Attributes:
        sources: Interference sources; each must offer
            ``sample_at_triggers(n, rng)``.
        synchronous: When True, every trigger sees the aggressor at the same
            phase (the aggressor shares the bus clock), so its contribution
            is a fixed offset per waveform point rather than an averaging-out
            random term.  This is the worst case the paper does not test.
    """

    def __init__(
        self,
        sources: Sequence,
        synchronous: bool = False,
    ) -> None:
        self.composite = CompositeInterference(sources)
        self.synchronous = synchronous

    def trial_voltages(
        self,
        n_points: int,
        n_trials: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Interference voltage for every (point, trial), shape ``(N, R)``.

        Asynchronous aggressors draw an independent value per trial; a
        synchronous aggressor draws one value per point and repeats it across
        all trials of that point.
        """
        if self.synchronous:
            per_point = self.composite.sample_at_triggers(n_points, rng)
            return np.repeat(per_point[:, None], n_trials, axis=1)
        flat = self.composite.sample_at_triggers(n_points * n_trials, rng)
        return flat.reshape(n_points, n_trials)


def nearby_digital_circuit(
    amplitude: float = 5e-3,
    clock_hz: float = 312.5e6,
) -> EMIEnvironment:
    """The paper's test case: a free-running high-speed circuit nearby.

    Its clock is unrelated to the bus clock, so coupling is asynchronous;
    a small burst component models switching transients.
    """
    return EMIEnvironment(
        sources=[
            SinusoidalEMI(amplitude=amplitude, frequency=clock_hz),
            BurstEMI(amplitude=0.4 * amplitude, duty=0.1),
        ],
        synchronous=False,
    )


def synchronous_aggressor(amplitude: float = 5e-3) -> EMIEnvironment:
    """An aggressor locked to the bus clock (adversarial ablation case)."""
    return EMIEnvironment(
        sources=[SinusoidalEMI(amplitude=amplitude, frequency=1.0)],
        synchronous=True,
    )
