"""Environmental conditions: temperature, vibration, and EMI.

Each condition perturbs either the line profile (temperature, vibration via
the :class:`~repro.txline.line.ProfileModifier` protocol) or the comparator
input (EMI), reproducing the robustness experiments of section IV-C.
"""

from .aging import AgedCondition, AgingModel
from .emi import EMIEnvironment, nearby_digital_circuit, synchronous_aggressor
from .temperature import TemperatureCondition, TemperatureSweep
from .vibration import ChirpExcitation, VibrationCondition

__all__ = [
    "TemperatureCondition",
    "TemperatureSweep",
    "ChirpExcitation",
    "VibrationCondition",
    "EMIEnvironment",
    "nearby_digital_circuit",
    "synchronous_aggressor",
    "AgingModel",
    "AgedCondition",
]
