"""Mechanical vibration and acoustic excitation (the piezo-chirp experiment).

Vibration compresses and stretches the board, modulating both segment delays
(geometric strain) and local impedance (trace width/height strain).  The
paper drives the board with a piezo chirped from 1 Hz to 50 Hz and sees the
EER rise to 0.27 %.  Vibration periods (>= 20 ms) are far longer than one
capture (~50 us), so within a capture the strain is effectively frozen; what
varies is the strain *between* captures — exactly how we model it.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

import numpy as np

from ..txline.profile import ImpedanceProfile

__all__ = ["ChirpExcitation", "VibrationCondition"]


class ChirpExcitation:
    """A linear frequency chirp driving the board, 1-50 Hz by default.

    ``strain_at(t)`` gives the instantaneous relative strain amplitude at
    absolute time ``t`` of the test run.
    """

    def __init__(
        self,
        strain_amplitude: float = 1.5e-2,
        f_start_hz: float = 1.0,
        f_stop_hz: float = 50.0,
        sweep_time_s: float = 10.0,
    ) -> None:
        if strain_amplitude < 0:
            raise ValueError("strain_amplitude must be non-negative")
        if f_start_hz <= 0 or f_stop_hz <= 0:
            raise ValueError("chirp frequencies must be positive")
        if sweep_time_s <= 0:
            raise ValueError("sweep_time_s must be positive")
        self.strain_amplitude = strain_amplitude
        self.f_start_hz = f_start_hz
        self.f_stop_hz = f_stop_hz
        self.sweep_time_s = sweep_time_s

    def instantaneous_frequency(self, t: float) -> float:
        """Chirp frequency at time ``t`` (sawtooth-repeating linear sweep)."""
        x = (t % self.sweep_time_s) / self.sweep_time_s
        return self.f_start_hz + x * (self.f_stop_hz - self.f_start_hz)

    def strain_at(self, t) -> np.ndarray:
        """Instantaneous strain for scalar or array time ``t``."""
        t = np.asarray(t, dtype=float)
        x = np.mod(t, self.sweep_time_s) / self.sweep_time_s
        # Phase of a linear chirp: 2*pi*(f0*t + 0.5*k*t^2) within each sweep.
        k = (self.f_stop_hz - self.f_start_hz) / self.sweep_time_s
        local_t = x * self.sweep_time_s
        phase = 2.0 * np.pi * (
            self.f_start_hz * local_t + 0.5 * k * local_t**2
        )
        return self.strain_amplitude * np.sin(phase)


def _mode_shape(profile: ImpedanceProfile) -> np.ndarray:
    """First bending-mode shape along the line, fixed per physical board.

    A half-sine plus a small line-specific ripple (boards are clamped
    differently, components load them differently).  Seeded from the line's
    own impedance array for reproducibility.
    """
    n = profile.n_segments
    x = np.linspace(0.0, np.pi, n)
    base = np.sin(x)
    digest = hashlib.sha256(np.ascontiguousarray(profile.z).tobytes()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[8:16], "little"))
    ripple = 0.15 * np.sin(2 * x + rng.uniform(0, 2 * np.pi))
    return base + ripple


class VibrationCondition:
    """The board state at one instant of a vibration test.

    Attributes:
        strain: Relative strain at this instant (from a
            :class:`ChirpExcitation`).
        impedance_gamma: Sensitivity of local impedance to strain.  Strain
            changes trace cross-section and substrate height; gamma ~ O(1).
    """

    def __init__(self, strain: float, impedance_gamma: float = 1.0) -> None:
        self.strain = float(strain)
        self.impedance_gamma = float(impedance_gamma)

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """Apply the frozen strain field to the profile."""
        mode = _mode_shape(profile)
        z_field = self.impedance_gamma * self.strain * mode
        tau_field = 1.0 + self.strain * mode
        return ImpedanceProfile(
            z=profile.z * (1.0 + z_field),
            tau=profile.tau * tau_field,
            z_source=profile.z_source,
            z_load=profile.z_load,
            loss_per_segment=profile.loss_per_segment,
        )

    @staticmethod
    def batch_fields(
        profile: ImpedanceProfile,
        strains: np.ndarray,
        impedance_gamma: float = 1.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised per-capture (z, tau) arrays for a strain series.

        Returns ``(z_batch, tau_batch)`` of shape ``(C, S)`` ready for the
        Born batch engine — one row per capture instant.
        """
        strains = np.asarray(strains, dtype=float)[:, None]
        mode = _mode_shape(profile)[None, :]
        z_batch = profile.z[None, :] * (1.0 + impedance_gamma * strains * mode)
        tau_batch = profile.tau[None, :] * (1.0 + strains * mode)
        return z_batch, tau_batch
