"""Temperature as a profile modifier (the Fig. 8 experiment).

Heating a PCB raises the laminate's dielectric constant, which lowers every
segment's impedance *together* (common mode) and slows propagation (the
record stretches).  Because the normalised IIP is an impedance *contrast*,
it largely survives — the genuine similarity distribution only "moves toward
left" as the paper puts it.  A small differential residue remains because
the thermal coefficient itself is slightly inhomogeneous along the trace;
that residue plus the record stretch is what raises the EER from 0.06 % to
0.14 %.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..txline.materials import FR4, Laminate
from ..txline.profile import ImpedanceProfile, correlated_field

__all__ = ["TemperatureCondition", "TemperatureSweep"]


def _line_intrinsic_rng(profile: ImpedanceProfile) -> np.random.Generator:
    """A generator seeded by the line's own physical identity.

    The per-segment thermal-coefficient pattern is a fixed property of a
    specific trace (like the IIP itself), so it must be reproducible from the
    profile rather than from the caller's RNG.  Hashing the impedance array
    gives exactly that: same line, same sensitivity pattern.
    """
    digest = hashlib.sha256(np.ascontiguousarray(profile.z).tobytes()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class TemperatureCondition:
    """Applies an ambient temperature to a line profile.

    Attributes:
        temperature_c: Ambient temperature in Celsius.
        material: Laminate providing the thermal coefficients.
    """

    def __init__(self, temperature_c: float, material: Laminate = FR4) -> None:
        self.temperature_c = float(temperature_c)
        self.material = material

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """Return the profile as it looks at this temperature."""
        mat = self.material
        dt_k = self.temperature_c - mat.t_ref_c
        z_scale = mat.impedance_scale_at(self.temperature_c)
        tau_scale = mat.delay_scale_at(self.temperature_c)
        # Differential residue: each segment's Dk coefficient differs by a
        # fixed fraction tc_inhomogeneity of the mean coefficient.
        rng = _line_intrinsic_rng(profile)
        sensitivity = correlated_field(
            profile.n_segments, 1.0, correlation_length=3, rng=rng
        )
        # dZ/Z = -0.5 * dDk/Dk ; differential part scales with |dT|.
        differential = (
            -0.5 * mat.tc_dk * dt_k * mat.tc_inhomogeneity * sensitivity
        )
        return profile.scaled(
            impedance_scale=z_scale,
            delay_scale=tau_scale,
            impedance_field=differential,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TemperatureCondition({self.temperature_c:.1f} C)"


class TemperatureSweep:
    """A temperature trajectory over capture indices (oven swing).

    The paper swings the oven from 23 C to 75 C while capturing; each capture
    therefore happens at a different temperature.  ``at(i, n)`` returns the
    condition for capture ``i`` of ``n`` using a triangular sweep (up then
    down), the natural oven profile.
    """

    def __init__(
        self,
        t_low_c: float = 23.0,
        t_high_c: float = 75.0,
        material: Laminate = FR4,
    ) -> None:
        if t_high_c < t_low_c:
            raise ValueError("t_high_c must be >= t_low_c")
        self.t_low_c = t_low_c
        self.t_high_c = t_high_c
        self.material = material

    def temperature_at(self, i: int, n: int) -> float:
        """Temperature of capture ``i`` out of ``n`` (triangular sweep)."""
        if n <= 1:
            return self.t_low_c
        x = i / (n - 1)  # 0 .. 1
        tri = 1.0 - abs(2.0 * x - 1.0)  # 0 -> 1 -> 0
        return self.t_low_c + tri * (self.t_high_c - self.t_low_c)

    def at(self, i: int, n: int) -> TemperatureCondition:
        """The :class:`TemperatureCondition` for capture ``i`` of ``n``."""
        return TemperatureCondition(self.temperature_at(i, n), self.material)

    def batch_fields(
        self, profile: ImpedanceProfile, n_captures: int
    ) -> tuple:
        """Vectorised per-capture (z, tau) arrays over the sweep.

        Returns ``(z_batch, tau_batch)`` of shape ``(C, S)`` — capture ``i``
        sees the profile at the sweep temperature ``temperature_at(i, C)``.
        Equivalent to applying :class:`TemperatureCondition` per capture but
        computed in one shot for the Born batch engine.
        """
        if n_captures < 1:
            raise ValueError("n_captures must be >= 1")
        mat = self.material
        temps = np.array(
            [self.temperature_at(i, n_captures) for i in range(n_captures)]
        )
        dt_k = temps - mat.t_ref_c
        z_scale = np.array([mat.impedance_scale_at(t) for t in temps])
        tau_scale = np.array([mat.delay_scale_at(t) for t in temps])
        rng = _line_intrinsic_rng(profile)
        sensitivity = correlated_field(
            profile.n_segments, 1.0, correlation_length=3, rng=rng
        )
        differential = (
            -0.5
            * mat.tc_dk
            * dt_k[:, None]
            * mat.tc_inhomogeneity
            * sensitivity[None, :]
        )
        z_batch = profile.z[None, :] * z_scale[:, None] * (1.0 + differential)
        tau_batch = profile.tau[None, :] * tau_scale[:, None]
        return z_batch, tau_batch
