"""Long-term aging of a transmission line.

Boards age: copper oxidises and migrates, laminates absorb moisture,
connectors fret against their contacts.  Each mechanism drifts the
impedance profile slowly and cumulatively — unlike temperature, aging does
not revert, so a fingerprint enrolled at installation slowly walks away
from the line's present truth.  This model drives the re-enrollment
policy study: without adaptation the genuine score decays over the
deployment lifetime; with rolling updates it stays pinned.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..txline.profile import ImpedanceProfile, correlated_field

__all__ = ["AgingModel", "AgedCondition"]


class AgingModel:
    """A line's drift trajectory over its service life.

    Attributes:
        drift_per_year: RMS relative impedance drift accumulated per year
            of service.  Literature on PCB aging puts long-term impedance
            drift at the fraction-of-a-percent-per-year scale.
        connector_fretting: Extra drift concentrated at the line's ends
            (contact interfaces age fastest), as a multiple of the bulk
            rate.
    """

    def __init__(
        self,
        drift_per_year: float = 0.004,
        connector_fretting: float = 3.0,
    ) -> None:
        if drift_per_year < 0:
            raise ValueError("drift_per_year must be non-negative")
        if connector_fretting < 0:
            raise ValueError("connector_fretting must be non-negative")
        self.drift_per_year = drift_per_year
        self.connector_fretting = connector_fretting

    def _drift_pattern(self, profile: ImpedanceProfile) -> np.ndarray:
        """The line-specific spatial shape of its drift (fixed per line)."""
        digest = hashlib.sha256(
            np.ascontiguousarray(profile.z).tobytes()
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest[16:24], "little"))
        n = profile.n_segments
        bulk = correlated_field(n, 1.0, correlation_length=6, rng=rng)
        # Fretting accent at both ends (first/last ~5% of the line).
        edge = np.zeros(n)
        k = max(1, n // 20)
        edge[:k] = np.linspace(self.connector_fretting, 0.0, k)
        edge[-k:] = np.linspace(0.0, self.connector_fretting, k)
        pattern = bulk * (1.0 + edge)
        # Normalise so drift_per_year is the pointwise RMS it claims to be.
        rms = float(np.sqrt(np.mean(pattern**2)))
        return pattern / rms if rms > 0 else pattern

    def at_age(self, profile: ImpedanceProfile, years: float) -> "AgedCondition":
        """The drift condition after ``years`` of service."""
        if years < 0:
            raise ValueError("years must be non-negative")
        return AgedCondition(self, years)


class AgedCondition:
    """Profile modifier freezing a line's state at a given age."""

    def __init__(self, model: AgingModel, years: float) -> None:
        self.model = model
        self.years = years

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """Apply the cumulative drift to the profile.

        The multiplicative factor is clamped to stay physical for extreme
        ages (aged copper is still copper).
        """
        pattern = self.model._drift_pattern(profile)
        amplitude = self.model.drift_per_year * self.years
        factor = np.clip(1.0 + amplitude * pattern, 0.5, 1.5)
        return profile.with_impedance(profile.z * factor)
