"""The memory bus as a registered protocol.

This is the paper's home turf (Fig. 6): the DDR clock lane carries the
IIP, both ends run DIVOT endpoints, and monitoring is free-running on a
:class:`~repro.core.runtime.PeriodicCadence` because the clock toggles
every cycle regardless of traffic.  The spec here feeds the generic
protocol layer — registry discovery, generic sessions, mixed-protocol
fleets — while :class:`~repro.membus.system.ProtectedMemorySystem`
keeps its trace-driven controller loop and delegates assembly to the
same spec.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..attacks.probe import MagneticProbe
from ..protocols.registry import register
from ..protocols.spec import ProtocolSpec, TrafficBurst

__all__ = ["CLOCK_RATE", "membus_traffic", "MEMBUS_SPEC"]

#: Default bus clock: 1.2 GHz, the prototype's DDR operating point.
CLOCK_RATE = 1.2e9


def membus_traffic(
    rng: np.random.Generator, n_units: int
) -> Iterator[TrafficBurst]:
    """A seeded request stream as clock-lane occupancy.

    Each unit is one memory request's bus time — activate, column
    access, and data burst — in clock cycles.  The clock lane toggles
    every cycle, so every cycle is a trigger; the generic session uses
    this where the full controller model
    (:meth:`~repro.membus.system.ProtectedMemorySystem.run`) is not in
    play.
    """
    for _ in range(n_units):
        cycles = int(rng.integers(16, 65))
        read = bool(rng.integers(0, 2))
        yield TrafficBurst(
            n_bits=cycles,
            n_triggers=cycles,
            duration_s=cycles / CLOCK_RATE,
            kind="read" if read else "write",
        )


MEMBUS_SPEC = register(
    ProtocolSpec(
        name="membus",
        title="DDR memory bus clock lane",
        cadence="periodic",
        sides=("cpu", "module"),
        endpoint_names=("cpu-memctl", "dimm-ctl"),
        bit_rate=CLOCK_RATE,
        clock_lane=True,
        traffic=membus_traffic,
        default_attack=lambda line: MagneticProbe(
            position_m=0.12, coupling=0.06
        ),
        attack_label=(
            "EM probe coupled onto the clock lane (memory-bus snooping)"
        ),
        captures_per_check=4,
        line_seed=50,
        default_units=4000,
        description=(
            "The paper's Fig. 6 system: free-running periodic monitoring "
            "on the always-toggling DDR clock lane."
        ),
    )
)
