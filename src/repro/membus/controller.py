"""The CPU-side integrated memory controller of Fig. 6.

The controller owns the request queue and scheduler and — the DIVOT part —
an iTDR endpoint wired to the external memory bus.  Monitoring is
concurrent: captures complete on their own cadence while requests flow, and
the controller stalls traffic only when its endpoint commands BLOCK (a
non-matching fingerprint means the module or bus is not the hardware the
CPU recognises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.divot import DivotEndpoint
from .dram import AccessResult, SDRAMDevice
from .scheduler import FCFSPolicy, SchedulingPolicy
from .transactions import MemoryRequest

__all__ = ["CompletedRequest", "MemoryController"]


@dataclass(frozen=True)
class CompletedRequest:
    """A request's full life record."""

    request: MemoryRequest
    start_cycle: int
    latency_cycles: int
    result: AccessResult
    stalled_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """Queueing stall plus device latency."""
        return self.latency_cycles + self.stalled_cycles


class MemoryController:
    """FCFS memory controller with a DIVOT endpoint.

    Args:
        device: The SDRAM behind the bus.
        endpoint: CPU-side DIVOT endpoint (None models an unprotected
            controller for baseline comparisons).
        stall_quantum: Cycles the controller waits before re-checking a
            BLOCK condition (the paper's reaction: "stopping the normal
            memory operation until the newly collected fingerprint matches
            the one stored in the ROM again").
        policy: Queue scheduling discipline (FCFS default; FR-FCFS
            prioritises row hits).
    """

    def __init__(
        self,
        device: SDRAMDevice,
        endpoint: Optional[DivotEndpoint] = None,
        stall_quantum: int = 64,
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        if stall_quantum < 1:
            raise ValueError("stall_quantum must be >= 1")
        self.device = device
        self.endpoint = endpoint
        self.stall_quantum = stall_quantum
        self._policy = policy if policy is not None else FCFSPolicy()
        self._cycle = 0
        self.completed: List[CompletedRequest] = []

    # ------------------------------------------------------------------
    @property
    def current_cycle(self) -> int:
        """Controller-local cycle counter."""
        return self._cycle

    def enqueue(self, request: MemoryRequest) -> None:
        """Add a request to the scheduler queue."""
        self._policy.push(request)

    def pending(self) -> int:
        """Requests waiting in the queue."""
        return len(self._policy)

    @property
    def blocked(self) -> bool:
        """Whether DIVOT currently forbids issuing requests."""
        return self.endpoint is not None and self.endpoint.is_blocked

    # ------------------------------------------------------------------
    def issue_next(self) -> Optional[CompletedRequest]:
        """Issue the head-of-queue request if any and not blocked.

        Returns the completion record, or None when the queue is empty or
        the endpoint blocks issue (in which case the controller burns one
        stall quantum so monitoring can progress and recovery can happen).
        """
        if not self._policy:
            return None
        if self.blocked:
            self._cycle += self.stall_quantum
            return None
        request = self._policy.pop_next(self.device)
        if request is None:
            return None
        start = self._cycle
        result = self.device.access(request)
        record = CompletedRequest(
            request=request,
            start_cycle=start,
            latency_cycles=result.latency_cycles,
            result=result,
        )
        self._cycle += result.latency_cycles
        self.completed.append(record)
        return record

    def drain(self, max_stalls: int = 10_000) -> List[CompletedRequest]:
        """Issue until the queue empties; raises if blocked forever.

        ``max_stalls`` bounds the block-recovery wait so a permanently
        failed authentication surfaces as an error instead of a hang.
        """
        stalls = 0
        out = []
        while len(self._policy):
            record = self.issue_next()
            if record is None:
                stalls += 1
                if stalls > max_stalls:
                    raise RuntimeError(
                        "controller blocked by DIVOT and never recovered; "
                        f"{len(self._policy)} requests stranded"
                    )
                continue
            out.append(record)
        return out
