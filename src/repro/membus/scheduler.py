"""Memory-request scheduling policies.

Fig. 6 places the iTDR beside the DDR controller's "reference queue,
arbiter, scheduler" [Rixner et al.], so the substrate deserves a real
scheduler.  Two policies are provided:

* **FCFS** — strict arrival order (the baseline the controller used
  originally);
* **FR-FCFS** — first-ready, first-come-first-served: requests that hit an
  already-open row are served first (oldest-first among hits, then oldest
  miss), the classic policy that converts row locality into latency.

The scheduler is orthogonal to DIVOT — protection gates *whether* requests
issue, scheduling decides *which* — and the bench quantifies that the two
compose without interference.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol

from .dram import SDRAMDevice
from .transactions import MemoryRequest

__all__ = ["SchedulingPolicy", "FCFSPolicy", "FRFCFSPolicy", "make_policy"]


class SchedulingPolicy(Protocol):
    """Queue discipline: admit requests, pick the next one to issue."""

    def push(self, request: MemoryRequest) -> None:
        """Admit a request."""
        ...  # pragma: no cover - protocol

    def pop_next(self, device: SDRAMDevice) -> Optional[MemoryRequest]:
        """Remove and return the next request to issue (None if empty)."""
        ...  # pragma: no cover - protocol

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol


class FCFSPolicy:
    """Strict first-come, first-served."""

    def __init__(self) -> None:
        self._queue: Deque[MemoryRequest] = deque()

    def push(self, request: MemoryRequest) -> None:
        self._queue.append(request)

    def pop_next(self, device: SDRAMDevice) -> Optional[MemoryRequest]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class FRFCFSPolicy:
    """First-ready FCFS: row hits first, oldest first within each class.

    ``window`` bounds how deep into the queue the scheduler looks for a
    row hit (real schedulers have finite CAM depth); requests older than
    ``starvation_limit`` pops are served regardless, preventing a stream
    of hits from starving a conflicted request forever.
    """

    def __init__(self, window: int = 16, starvation_limit: int = 64) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if starvation_limit < 1:
            raise ValueError("starvation_limit must be >= 1")
        self.window = window
        self.starvation_limit = starvation_limit
        self._queue: Deque[MemoryRequest] = deque()
        self._head_age = 0

    def push(self, request: MemoryRequest) -> None:
        self._queue.append(request)

    def _is_row_hit(self, device: SDRAMDevice, request: MemoryRequest) -> bool:
        decoded = device.address_map.decode(request.address)
        bank = device._banks[decoded.bank]
        return bank.open_row == decoded.row

    def pop_next(self, device: SDRAMDevice) -> Optional[MemoryRequest]:
        if not self._queue:
            return None
        if self._head_age >= self.starvation_limit:
            self._head_age = 0
            return self._queue.popleft()
        depth = min(self.window, len(self._queue))
        for idx in range(depth):
            if self._is_row_hit(device, self._queue[idx]):
                request = self._queue[idx]
                del self._queue[idx]
                self._head_age = self._head_age + 1 if idx != 0 else 0
                return request
        self._head_age = 0
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


def make_policy(name: str) -> SchedulingPolicy:
    """Construct a policy by name: ``"fcfs"`` or ``"frfcfs"``."""
    if name == "fcfs":
        return FCFSPolicy()
    if name == "frfcfs":
        return FRFCFSPolicy()
    raise ValueError(f"unknown scheduling policy {name!r}")
