"""The physical memory bus binding Fig. 6 together.

A :class:`MemoryBus` couples the electrical object (the Tx-line whose IIP is
the shared secret-that-is-not-a-secret) with the signalling parameters the
controller and device agree on.  DIVOT monitors the *clock lane*: it toggles
every cycle regardless of traffic, so IIP capture needs no data-dependent
trigger and runs from power-on (paper section III).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..txline.line import TransmissionLine

__all__ = ["MemoryBus"]


@dataclass(frozen=True)
class MemoryBus:
    """A memory channel's physical and signalling description.

    Attributes:
        line: The clock-lane Tx-line (the monitored conductor).
        clock_frequency: Bus clock, hertz.
        data_lanes: Width of the data group (electrically parallel lanes;
            the multi-wire ablation fuses fingerprints across them).
    """

    line: TransmissionLine
    clock_frequency: float = 1.2e9
    data_lanes: int = 64

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ValueError("clock_frequency must be positive")
        if self.data_lanes < 1:
            raise ValueError("data_lanes must be >= 1")

    @property
    def cycle_time_s(self) -> float:
        """One bus clock period in seconds."""
        return 1.0 / self.clock_frequency

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock seconds."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles * self.cycle_time_s

    @property
    def propagation_delay_s(self) -> float:
        """One-way flight time over the bus."""
        return self.line.full_profile.one_way_delay
