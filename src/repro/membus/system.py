"""The complete DIVOT-protected memory system (paper Fig. 6 and section III).

Wires every piece together:

* a :class:`~repro.membus.bus.MemoryBus` whose clock lane carries the IIP;
* a CPU-side endpoint inside the memory controller and a module-side
  endpoint inside the DIMM control logic (two-way authentication);
* an :class:`~repro.membus.dram.SDRAMDevice` whose column access is gated
  by the module-side authentication result;
* an :class:`~repro.attacks.base.AttackTimeline` injecting physical attacks
  mid-run.

Monitoring is concurrent with traffic: captures complete every
``capture_period_s`` of simulated time with zero added latency on the data
path (DIVOT's transparency property), and each completed capture may flip
either endpoint into BLOCK/ALERT, which *is* visible to traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..attacks.base import AttackTimeline
from ..core.auth import Authenticator
from ..core.divot import Action, DivotEndpoint
from ..core.itdr import ITDR
from ..core.tamper import TamperDetector
from ..txline.line import TransmissionLine
from .bus import MemoryBus
from .controller import CompletedRequest, MemoryController
from .dram import SDRAMDevice
from .transactions import MemoryRequest

__all__ = ["MonitorEvent", "RunResult", "ProtectedMemorySystem"]


@dataclass(frozen=True)
class MonitorEvent:
    """One monitoring outcome during a run."""

    time_s: float
    side: str  # "cpu" or "module"
    action: Action
    score: float
    tampered: bool
    location_m: Optional[float]


@dataclass
class RunResult:
    """Everything a protected run produced."""

    completed: List[CompletedRequest] = field(default_factory=list)
    events: List[MonitorEvent] = field(default_factory=list)
    duration_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def n_blocked_accesses(self) -> int:
        """Device accesses rejected by the module-side gate."""
        return sum(1 for r in self.completed if r.result.blocked)

    @property
    def mean_latency_cycles(self) -> float:
        """Mean device latency over successful accesses."""
        ok = [r.latency_cycles for r in self.completed if r.result.ok]
        return float(np.mean(ok)) if ok else float("nan")

    def alerts(self) -> List[MonitorEvent]:
        """Non-PROCEED monitoring events in time order."""
        return [e for e in self.events if e.action is not Action.PROCEED]

    def first_alert_time(self) -> Optional[float]:
        """Time of the first BLOCK/ALERT, or None if the run stayed clean."""
        alerts = self.alerts()
        return alerts[0].time_s if alerts else None

    def detection_latency(self, attack_onset_s: float) -> Optional[float]:
        """Time from attack onset to the first alert at or after it."""
        for event in self.alerts():
            if event.time_s >= attack_onset_s:
                return event.time_s - attack_onset_s
        return None


class ProtectedMemorySystem:
    """A CPU + memory-bus + SDRAM system under DIVOT protection.

    Args:
        bus: The physical channel (clock lane monitored).
        device: The SDRAM module's storage/timing model.
        cpu_itdr / module_itdr: Measurement engines for the two ends.
        authenticator: Shared similarity threshold policy.
        tamper_detector: Shared error-function threshold policy.
    """

    def __init__(
        self,
        bus: MemoryBus,
        device: SDRAMDevice,
        cpu_itdr: ITDR,
        module_itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 32,
        extra_lanes: Sequence[TransmissionLine] = (),
    ) -> None:
        self.bus = bus
        #: Additional monitored conductors (strobe/command lanes).  With
        #: any present, monitoring fuses across the bundle: every lane must
        #: authenticate — the paper's multi-wire accuracy direction wired
        #: into the Fig. 6 design.
        self.extra_lanes = tuple(extra_lanes)
        self.cpu_endpoint = DivotEndpoint(
            "cpu-memctl",
            cpu_itdr,
            authenticator,
            tamper_detector,
            captures_per_check=captures_per_check,
        )
        self.module_endpoint = DivotEndpoint(
            "dimm-ctl",
            module_itdr,
            authenticator,
            tamper_detector,
            captures_per_check=captures_per_check,
        )
        device.auth_gate = lambda: not self.module_endpoint.is_blocked
        self.device = device
        self.controller = MemoryController(device, endpoint=self.cpu_endpoint)
        # A monitoring decision consumes its trigger budget at the bus clock
        # rate (the clock lane toggles every cycle), times the averaging
        # depth of one check.
        budget = cpu_itdr.budget(
            cpu_itdr.record_length(bus.line), trigger_rate=bus.clock_frequency
        )
        self.capture_period_s = budget.duration_s * captures_per_check

    # ------------------------------------------------------------------
    def calibrate(self, n_captures: int = 8) -> None:
        """Pair both endpoints with the bus (installation-time step)."""
        lanes = [self.bus.line, *self.extra_lanes]
        self.cpu_endpoint.calibrate_many(lanes, n_captures=n_captures)
        self.module_endpoint.calibrate_many(lanes, n_captures=n_captures)

    # ------------------------------------------------------------------
    def _monitor_once(
        self,
        t: float,
        timeline: Optional[AttackTimeline],
        module_line_override: Optional[TransmissionLine],
    ) -> List[MonitorEvent]:
        modifiers: Sequence = ()
        if timeline is not None:
            modifiers = timeline.active_at(t)
        events = []
        if self.extra_lanes:
            cpu_result = self.cpu_endpoint.monitor_multi(
                [self.bus.line, *self.extra_lanes], modifiers=modifiers
            )
        else:
            cpu_result = self.cpu_endpoint.monitor_capture(
                self.bus.line, modifiers=modifiers
            )
        events.append(
            MonitorEvent(
                time_s=t,
                side="cpu",
                action=cpu_result.action,
                score=cpu_result.auth.score,
                tampered=cpu_result.tamper.tampered,
                location_m=cpu_result.tamper.location_m,
            )
        )
        module_line = module_line_override or self.bus.line
        if module_line is not self.bus.line:
            # Keep the enrolled name: the module looks up its own ROM entry
            # no matter whose bus it is plugged into.
            module_line = TransmissionLine(
                name=self.bus.line.name,
                board_profile=module_line.board_profile,
                material=module_line.material,
                receiver=module_line.receiver,
            )
        if self.extra_lanes and module_line is self.bus.line:
            module_result = self.module_endpoint.monitor_multi(
                [module_line, *self.extra_lanes], modifiers=modifiers
            )
        else:
            # An overridden module lane (cold-boot scenario) is judged on
            # the main lane alone: in the attacker's machine the strobe
            # lanes are foreign too, so this is the lenient case.
            module_result = self.module_endpoint.monitor_capture(
                module_line, modifiers=modifiers
            )
        events.append(
            MonitorEvent(
                time_s=t,
                side="module",
                action=module_result.action,
                score=module_result.auth.score,
                tampered=module_result.tamper.tampered,
                location_m=module_result.tamper.location_m,
            )
        )
        return events

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[MemoryRequest],
        timeline: Optional[AttackTimeline] = None,
        module_line_override: Optional[TransmissionLine] = None,
        max_stalls: int = 10_000,
        monitor_first: bool = False,
    ) -> RunResult:
        """Trace-driven run with concurrent monitoring.

        Requests issue back to back; simulated time advances with device
        latency.  Whenever time crosses a capture-completion boundary, both
        endpoints evaluate the bus under whatever attacks the timeline has
        active at that instant.  A BLOCKed CPU endpoint stalls issue; a
        BLOCKed module endpoint makes the device reject column accesses.

        ``monitor_first`` runs one monitoring pass before any request
        issues — the power-on sensing the paper gives the module side ("it
        starts sensing impedance signals on the bus as soon as the system
        is powered up").
        """
        result = RunResult()
        for request in requests:
            self.controller.enqueue(request)
        if monitor_first:
            result.events.extend(
                self._monitor_once(0.0, timeline, module_line_override)
            )
        next_capture = self.capture_period_s
        stalls = 0
        while self.controller.pending():
            t = self.bus.cycles_to_seconds(self.controller.current_cycle)
            while t >= next_capture:
                result.events.extend(
                    self._monitor_once(
                        next_capture, timeline, module_line_override
                    )
                )
                next_capture += self.capture_period_s
            record = self.controller.issue_next()
            if record is None:
                stalls += 1
                if stalls > max_stalls:
                    break  # permanently blocked; report what happened
                continue
            result.completed.append(record)
        result.duration_s = self.bus.cycles_to_seconds(
            self.controller.current_cycle
        )
        # Final monitoring sweep so short runs still observe late attacks.
        if timeline is not None and not result.alerts():
            result.events.extend(
                self._monitor_once(
                    result.duration_s + self.capture_period_s,
                    timeline,
                    module_line_override,
                )
            )
        return result

    # ------------------------------------------------------------------
    def simulate_cold_boot_theft(
        self,
        foreign_line: TransmissionLine,
        attacker_requests: Sequence[MemoryRequest],
    ) -> RunResult:
        """The module is moved to an attacker's machine and read.

        The module-side endpoint now measures the attacker's bus — a
        foreign fingerprint — so it blocks column access and the attacker's
        reads return nothing, "no matter whether an attacker swaps the
        memory module to another computer or uses another Tx-line".
        """
        return self.run(
            attacker_requests,
            module_line_override=foreign_line,
            max_stalls=32,
            monitor_first=True,
        )
