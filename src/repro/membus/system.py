"""The complete DIVOT-protected memory system (paper Fig. 6 and section III).

Wires every piece together:

* a :class:`~repro.membus.bus.MemoryBus` whose clock lane carries the IIP;
* a CPU-side endpoint inside the memory controller and a module-side
  endpoint inside the DIMM control logic (two-way authentication);
* an :class:`~repro.membus.dram.SDRAMDevice` whose column access is gated
  by the module-side authentication result;
* an :class:`~repro.attacks.base.AttackTimeline` injecting physical attacks
  mid-run.

Monitoring is concurrent with traffic and driven by the unified runtime:
a :class:`~repro.core.runtime.PeriodicCadence` completes a check every
``capture_period_s`` of simulated time with zero added latency on the data
path (DIVOT's transparency property), and each completed check may flip
either endpoint into BLOCK/ALERT, which *is* visible to traffic.  Events
and telemetry use the canonical runtime records, so this workload's
metrics are directly comparable with the serial link's and the shared
manager's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..attacks.base import AttackTimeline
from ..core.auth import Authenticator
from ..core.itdr import ITDR
from ..core.runtime import EventLog, MonitorEvent, MonitorRuntime
from ..core.tamper import TamperDetector
from ..protocols.link import ProtectedLink
from ..txline.line import TransmissionLine
from .bus import MemoryBus
from .controller import CompletedRequest, MemoryController
from .dram import SDRAMDevice
from .protocol import MEMBUS_SPEC
from .transactions import MemoryRequest

__all__ = ["MonitorEvent", "RunResult", "ProtectedMemorySystem"]


@dataclass
class RunResult:
    """Everything a protected run produced.

    Monitoring events live in a canonical
    :class:`~repro.core.runtime.EventLog`; the alert/latency queries
    delegate to it, so they mean the same thing as on every other
    workload.
    """

    completed: List[CompletedRequest] = field(default_factory=list)
    log: EventLog = field(default_factory=EventLog)
    duration_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[MonitorEvent]:
        """The raw monitoring events in time order."""
        return self.log.events

    @property
    def n_blocked_accesses(self) -> int:
        """Device accesses rejected by the module-side gate."""
        return sum(1 for r in self.completed if r.result.blocked)

    @property
    def mean_latency_cycles(self) -> float:
        """Mean device latency over successful accesses."""
        ok = [r.latency_cycles for r in self.completed if r.result.ok]
        return float(np.mean(ok)) if ok else float("nan")

    def alerts(self) -> List[MonitorEvent]:
        """Non-PROCEED monitoring events in time order."""
        return self.log.alerts()

    def first_alert_time(self) -> Optional[float]:
        """Time of the first BLOCK/ALERT, or None if the run stayed clean."""
        return self.log.first_alert_time()

    def detection_latency(self, attack_onset_s: float) -> Optional[float]:
        """Time from attack onset to the first alert at or after it."""
        return self.log.detection_latency(attack_onset_s)


class ProtectedMemorySystem:
    """A CPU + memory-bus + SDRAM system under DIVOT protection.

    Args:
        bus: The physical channel (clock lane monitored).
        device: The SDRAM module's storage/timing model.
        cpu_itdr / module_itdr: Measurement engines for the two ends.
        authenticator: Shared similarity threshold policy.
        tamper_detector: Shared error-function threshold policy.
    """

    def __init__(
        self,
        bus: MemoryBus,
        device: SDRAMDevice,
        cpu_itdr: ITDR,
        module_itdr: ITDR,
        authenticator: Authenticator,
        tamper_detector: TamperDetector,
        captures_per_check: int = 32,
        extra_lanes: Sequence[TransmissionLine] = (),
    ) -> None:
        self.bus = bus
        #: Additional monitored conductors (strobe/command lanes).  With
        #: any present, monitoring fuses across the bundle: every lane must
        #: authenticate — the paper's multi-wire accuracy direction wired
        #: into the Fig. 6 design.
        self.extra_lanes = tuple(extra_lanes)
        # Assembly — endpoints, telemetry, cadence arithmetic — is the
        # registered memory-bus protocol; the bus clock rate sizes the
        # periodic cadence (the clock lane toggles every cycle).
        self.protected_link = ProtectedLink(
            MEMBUS_SPEC,
            bus.line,
            (cpu_itdr, module_itdr),
            authenticator,
            tamper_detector,
            captures_per_check=captures_per_check,
            trigger_rate=bus.clock_frequency,
        )
        self.cpu_endpoint = self.protected_link.endpoint("cpu")
        self.module_endpoint = self.protected_link.endpoint("module")
        device.auth_gate = lambda: not self.module_endpoint.is_blocked
        self.device = device
        self.controller = MemoryController(device, endpoint=self.cpu_endpoint)
        #: Workload-lifetime telemetry; every run's events and cadence
        #: accounting fold into this one surface.
        self.telemetry = self.protected_link.telemetry
        self.capture_period_s = self.protected_link.check_period_s

    # ------------------------------------------------------------------
    def calibrate(self, n_captures: int = 8) -> None:
        """Pair both endpoints with the bus (installation-time step)."""
        lanes = [self.bus.line, *self.extra_lanes]
        self.cpu_endpoint.calibrate_many(lanes, n_captures=n_captures)
        self.module_endpoint.calibrate_many(lanes, n_captures=n_captures)

    # ------------------------------------------------------------------
    def _new_runtime(self) -> MonitorRuntime:
        """A fresh per-run runtime sharing the workload telemetry."""
        return self.protected_link.new_runtime()

    def _check_both(
        self,
        runtime: MonitorRuntime,
        t: float,
        timeline: Optional[AttackTimeline],
        module_line_override: Optional[TransmissionLine],
    ) -> None:
        """One concurrent two-way check: CPU side, then module side."""
        module_line = module_line_override or self.bus.line
        if module_line is not self.bus.line:
            # Keep the enrolled name: the module looks up its own ROM entry
            # no matter whose bus it is plugged into.
            module_line = TransmissionLine(
                name=self.bus.line.name,
                board_profile=module_line.board_profile,
                material=module_line.material,
                receiver=module_line.receiver,
            )
        if self.extra_lanes and module_line is self.bus.line:
            module_lines = [module_line, *self.extra_lanes]
        else:
            # An overridden module lane (cold-boot scenario) is judged on
            # the main lane alone: in the attacker's machine the strobe
            # lanes are foreign too, so this is the lenient case.
            module_lines = [module_line]
        self.protected_link.check(
            runtime,
            t,
            timeline,
            lines_by_side={
                "cpu": [self.bus.line, *self.extra_lanes],
                "module": module_lines,
            },
        )

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[MemoryRequest],
        timeline: Optional[AttackTimeline] = None,
        module_line_override: Optional[TransmissionLine] = None,
        max_stalls: int = 10_000,
        monitor_first: bool = False,
    ) -> RunResult:
        """Trace-driven run with concurrent monitoring.

        Requests issue back to back; simulated time advances with device
        latency.  Whenever time crosses a capture-completion boundary, both
        endpoints evaluate the bus under whatever attacks the timeline has
        active at that instant.  A BLOCKed CPU endpoint stalls issue; a
        BLOCKed module endpoint makes the device reject column accesses.

        ``monitor_first`` runs one monitoring pass before any request
        issues — the power-on sensing the paper gives the module side ("it
        starts sensing impedance signals on the bus as soon as the system
        is powered up").
        """
        runtime = self._new_runtime()
        cadence = runtime.cadence
        result = RunResult(log=runtime.log)
        for request in requests:
            self.controller.enqueue(request)
        if monitor_first:
            self._check_both(
                runtime, cadence.force(0.0), timeline, module_line_override
            )
        stalls = 0
        while self.controller.pending():
            t = self.bus.cycles_to_seconds(self.controller.current_cycle)
            if t >= cadence.next_due_s:  # fast path: most cycles cross nothing
                for due in cadence.due(t):
                    self._check_both(
                        runtime, due, timeline, module_line_override
                    )
            record = self.controller.issue_next()
            if record is None:
                stalls += 1
                if stalls > max_stalls:
                    break  # permanently blocked; report what happened
                continue
            result.completed.append(record)
        result.duration_s = self.bus.cycles_to_seconds(
            self.controller.current_cycle
        )
        # Final monitoring sweep so short runs still observe late attacks.
        if timeline is not None and not result.alerts():
            self._check_both(
                runtime,
                cadence.force(result.duration_s + cadence.period_s),
                timeline,
                module_line_override,
            )
        runtime.finish()
        return result

    # ------------------------------------------------------------------
    def simulate_cold_boot_theft(
        self,
        foreign_line: TransmissionLine,
        attacker_requests: Sequence[MemoryRequest],
    ) -> RunResult:
        """The module is moved to an attacker's machine and read.

        The module-side endpoint now measures the attacker's bus — a
        foreign fingerprint — so it blocks column access and the attacker's
        reads return nothing, "no matter whether an attacker swaps the
        memory module to another computer or uses another Tx-line".
        """
        return self.run(
            attacker_requests,
            module_line_override=foreign_line,
            max_stalls=32,
            monitor_first=True,
        )
