"""Counter-mode memory encryption with MAC — the orthogonal defense.

Section V of the paper positions DIVOT against memory-encryption work
(Yan et al., DEUCE, SYNERGY) and concludes the two are *orthogonal*: "these
techniques can be integrated in our design to add another layer".  This
module makes the composition concrete: a counter-mode encryption engine
(XTEA as the block primitive — small, real, and implementable in a memory
controller) with per-word counters and a MAC, attachable to the protected
memory system.  The composition experiment then shows what each layer
stops: DIVOT blocks *physical access* (probing, cold boot) but not a
leaked ciphertext; encryption protects *content* but neither detects
probes nor blocks bus access.  Together they close both holes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["xtea_encrypt_block", "CounterModeEngine", "EncryptedWord"]


def _u32(x: int) -> int:
    return x & 0xFFFFFFFF


def xtea_encrypt_block(v0: int, v1: int, key: Tuple[int, int, int, int],
                       n_rounds: int = 32) -> Tuple[int, int]:
    """XTEA block encryption of a 64-bit block (two 32-bit words).

    The standard Wheeler/Needham cipher: tiny state, 32 Feistel rounds,
    exactly the footprint class a memory-controller crypto engine targets.
    """
    if len(key) != 4:
        raise ValueError("XTEA key is four 32-bit words")
    if n_rounds < 1:
        raise ValueError("n_rounds must be >= 1")
    v0, v1 = _u32(v0), _u32(v1)
    delta = 0x9E3779B9
    total = 0
    for _ in range(n_rounds):
        v0 = _u32(
            v0
            + (
                _u32((_u32(v1 << 4) ^ (v1 >> 5)) + v1)
                ^ _u32(total + key[total & 3])
            )
        )
        total = _u32(total + delta)
        v1 = _u32(
            v1
            + (
                _u32((_u32(v0 << 4) ^ (v0 >> 5)) + v0)
                ^ _u32(total + key[(total >> 11) & 3])
            )
        )
    return v0, v1


@dataclass(frozen=True)
class EncryptedWord:
    """What actually sits in (or crosses to) the DRAM for one word."""

    ciphertext: int
    counter: int
    mac: int


class CounterModeEngine:
    """Per-word counter-mode encryption with a keyed MAC.

    The keystream for (address, counter) is XTEA(address, counter); the
    MAC binds ciphertext, address, and counter under a second key —
    standard split-counter memory-encryption structure at word granularity.

    Attributes:
        latency_cycles: Pipeline latency the engine adds to each access
            (the performance cost encryption pays and DIVOT does not).
    """

    def __init__(
        self,
        key: Tuple[int, int, int, int] = (0xA5A5A5A5, 0x5A5A5A5A,
                                          0x0F0F0F0F, 0xF0F0F0F0),
        mac_key: Tuple[int, int, int, int] = (0x11111111, 0x22222222,
                                              0x33333333, 0x44444444),
        latency_cycles: int = 6,
    ) -> None:
        if latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        self.key = tuple(_u32(k) for k in key)
        self.mac_key = tuple(_u32(k) for k in mac_key)
        self.latency_cycles = latency_cycles
        self._counters: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _keystream(self, address: int, counter: int) -> int:
        k0, _ = xtea_encrypt_block(_u32(address), _u32(counter), self.key)
        return k0

    def _mac(self, address: int, counter: int, ciphertext: int) -> int:
        m0, m1 = xtea_encrypt_block(
            _u32(address ^ ciphertext), _u32(counter), self.mac_key
        )
        return _u32(m0 ^ m1)

    # ------------------------------------------------------------------
    def encrypt(self, address: int, plaintext: int) -> EncryptedWord:
        """Encrypt one word for write-back; bumps the address's counter.

        Counter-mode's freshness rule: every write gets a new counter, so
        identical plaintexts never produce identical ciphertexts (the
        replay/dictionary defense the literature centres on).
        """
        counter = self._counters.get(address, 0) + 1
        self._counters[address] = counter
        ciphertext = _u32(plaintext) ^ self._keystream(address, counter)
        return EncryptedWord(
            ciphertext=ciphertext,
            counter=counter,
            mac=self._mac(address, counter, ciphertext),
        )

    def decrypt(self, address: int, word: EncryptedWord) -> Optional[int]:
        """Verify and decrypt; None when the MAC rejects the word."""
        expected = self._mac(address, word.counter, word.ciphertext)
        if expected != word.mac:
            return None
        return word.ciphertext ^ self._keystream(address, word.counter)

    def current_counter(self, address: int) -> int:
        """The write counter an address has reached (0 if never written)."""
        return self._counters.get(address, 0)
