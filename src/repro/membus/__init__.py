"""The DIVOT-protected memory bus example design (paper Fig. 6).

A behavioural SDRAM with bank timing, a CPU-side memory controller, the
physical bus, and the protected system composing them with two-way DIVOT
endpoints: the CPU authenticates the module and bus, the module gates
column access on authenticating the CPU and bus, and attacks injected
mid-run are detected and reacted to.
"""

from .bus import MemoryBus
from .controller import CompletedRequest, MemoryController
from .dram import AccessResult, DRAMTiming, SDRAMDevice
from .encryption import CounterModeEngine, EncryptedWord, xtea_encrypt_block
from .protocol import MEMBUS_SPEC, membus_traffic
from .scheduler import FCFSPolicy, FRFCFSPolicy, make_policy
from .system import ProtectedMemorySystem, RunResult
from .transactions import (
    AddressMap,
    DecodedAddress,
    MemoryOp,
    MemoryRequest,
    TraceGenerator,
)


def __getattr__(name: str):
    # PEP 562: the PR-2 compatibility re-export survives, but loudly.
    if name == "MonitorEvent":
        import warnings

        warnings.warn(
            "repro.membus.MonitorEvent is a deprecated alias; use "
            "repro.core.runtime.MonitorEvent",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..core.runtime import MonitorEvent

        return MonitorEvent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MemoryOp",
    "MemoryRequest",
    "DecodedAddress",
    "AddressMap",
    "TraceGenerator",
    "DRAMTiming",
    "AccessResult",
    "SDRAMDevice",
    "MemoryBus",
    "MemoryController",
    "CompletedRequest",
    "FCFSPolicy",
    "FRFCFSPolicy",
    "make_policy",
    "CounterModeEngine",
    "EncryptedWord",
    "xtea_encrypt_block",
    "ProtectedMemorySystem",
    "MonitorEvent",
    "RunResult",
    "MEMBUS_SPEC",
    "membus_traffic",
]
