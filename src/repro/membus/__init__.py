"""The DIVOT-protected memory bus example design (paper Fig. 6).

A behavioural SDRAM with bank timing, a CPU-side memory controller, the
physical bus, and the protected system composing them with two-way DIVOT
endpoints: the CPU authenticates the module and bus, the module gates
column access on authenticating the CPU and bus, and attacks injected
mid-run are detected and reacted to.
"""

from .bus import MemoryBus
from .controller import CompletedRequest, MemoryController
from .dram import AccessResult, DRAMTiming, SDRAMDevice
from .encryption import CounterModeEngine, EncryptedWord, xtea_encrypt_block
from .scheduler import FCFSPolicy, FRFCFSPolicy, make_policy
from .system import MonitorEvent, ProtectedMemorySystem, RunResult
from .transactions import (
    AddressMap,
    DecodedAddress,
    MemoryOp,
    MemoryRequest,
    TraceGenerator,
)

__all__ = [
    "MemoryOp",
    "MemoryRequest",
    "DecodedAddress",
    "AddressMap",
    "TraceGenerator",
    "DRAMTiming",
    "AccessResult",
    "SDRAMDevice",
    "MemoryBus",
    "MemoryController",
    "CompletedRequest",
    "FCFSPolicy",
    "FRFCFSPolicy",
    "make_policy",
    "CounterModeEngine",
    "EncryptedWord",
    "xtea_encrypt_block",
    "ProtectedMemorySystem",
    "MonitorEvent",
    "RunResult",
]
