"""Memory transactions, address mapping, and trace generation.

The protected-memory experiments are trace-driven: a stream of reads and
writes exercises the SDRAM model while DIVOT monitors the bus.  Addresses
decompose into (bank, row, column) through an :class:`AddressMap`, exactly
the split the DRAM timing model cares about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = [
    "MemoryOp",
    "MemoryRequest",
    "DecodedAddress",
    "AddressMap",
    "TraceGenerator",
]


class MemoryOp(enum.Enum):
    """Memory operation type."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryRequest:
    """One memory transaction.

    Attributes:
        op: Read or write.
        address: Flat byte address.
        data: Payload for writes (ignored for reads).
        issue_time_s: When the requester issued it (0 means back-to-back).
    """

    op: MemoryOp
    address: int
    data: Optional[int] = None
    issue_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.op is MemoryOp.WRITE and self.data is None:
            raise ValueError("writes require data")


@dataclass(frozen=True)
class DecodedAddress:
    """(bank, row, column) coordinates of a flat address."""

    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMap:
    """Row-bank-column address interleaving.

    Attributes:
        n_banks: Banks per device.
        n_rows: Rows per bank.
        n_columns: Columns per row.
    """

    n_banks: int = 8
    n_rows: int = 4096
    n_columns: int = 1024

    def __post_init__(self) -> None:
        if min(self.n_banks, self.n_rows, self.n_columns) < 1:
            raise ValueError("dimensions must be positive")

    @property
    def capacity(self) -> int:
        """Total addressable locations."""
        return self.n_banks * self.n_rows * self.n_columns

    def decode(self, address: int) -> DecodedAddress:
        """Flat address -> (bank, row, column), row-major with bank low bits.

        Low bits select the column, middle bits the bank (spreading
        consecutive cache lines across banks, the usual interleave), high
        bits the row.
        """
        if not 0 <= address < self.capacity:
            raise ValueError(
                f"address {address} out of range [0, {self.capacity})"
            )
        column = address % self.n_columns
        bank = (address // self.n_columns) % self.n_banks
        row = address // (self.n_columns * self.n_banks)
        return DecodedAddress(bank=bank, row=row, column=column)

    def encode(self, bank: int, row: int, column: int) -> int:
        """(bank, row, column) -> flat address (inverse of :meth:`decode`)."""
        if not 0 <= bank < self.n_banks:
            raise ValueError("bank out of range")
        if not 0 <= row < self.n_rows:
            raise ValueError("row out of range")
        if not 0 <= column < self.n_columns:
            raise ValueError("column out of range")
        return (row * self.n_banks + bank) * self.n_columns + column


class TraceGenerator:
    """Synthetic request streams with the classic access patterns."""

    def __init__(self, address_map: AddressMap, seed: int = 0) -> None:
        self.address_map = address_map
        self.rng = np.random.default_rng(seed)

    def sequential(
        self, n: int, start: int = 0, write_fraction: float = 0.3
    ) -> List[MemoryRequest]:
        """Streaming access: consecutive addresses (row-buffer friendly)."""
        self._check(n, write_fraction)
        reqs = []
        for i in range(n):
            addr = (start + i) % self.address_map.capacity
            reqs.append(self._request(addr, write_fraction))
        return reqs

    def random(self, n: int, write_fraction: float = 0.3) -> List[MemoryRequest]:
        """Uniform random access: worst case for row locality."""
        self._check(n, write_fraction)
        addrs = self.rng.integers(0, self.address_map.capacity, size=n)
        return [self._request(int(a), write_fraction) for a in addrs]

    def strided(
        self, n: int, stride: int, start: int = 0, write_fraction: float = 0.3
    ) -> List[MemoryRequest]:
        """Fixed-stride access (matrix walks, pointer-chasing proxies)."""
        self._check(n, write_fraction)
        if stride < 1:
            raise ValueError("stride must be >= 1")
        reqs = []
        for i in range(n):
            addr = (start + i * stride) % self.address_map.capacity
            reqs.append(self._request(addr, write_fraction))
        return reqs

    def hotspot(
        self, n: int, hot_rows: int = 4, hot_fraction: float = 0.9,
        write_fraction: float = 0.3,
    ) -> List[MemoryRequest]:
        """Skewed access: most requests hit a few hot rows."""
        self._check(n, write_fraction)
        if hot_rows < 1:
            raise ValueError("hot_rows must be >= 1")
        amap = self.address_map
        reqs = []
        for _ in range(n):
            if self.rng.random() < hot_fraction:
                row = int(self.rng.integers(0, hot_rows))
            else:
                row = int(self.rng.integers(0, amap.n_rows))
            bank = int(self.rng.integers(0, amap.n_banks))
            col = int(self.rng.integers(0, amap.n_columns))
            reqs.append(self._request(amap.encode(bank, row, col), write_fraction))
        return reqs

    # ------------------------------------------------------------------
    def _check(self, n: int, write_fraction: float) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")

    def _request(self, address: int, write_fraction: float) -> MemoryRequest:
        if self.rng.random() < write_fraction:
            return MemoryRequest(
                MemoryOp.WRITE, address, data=int(self.rng.integers(0, 2**32))
            )
        return MemoryRequest(MemoryOp.READ, address)
