"""A behavioural SDRAM device model with bank timing.

The paper's Fig. 6 puts the module-side iTDR "aside the normal address
decoding, sense amplifier, and buffering logic", and gates the *column
access* on the authentication result.  This model provides the substrate:
banks with open-row state, the classic tRCD/tRP/CL timing, a refresh
counter, a sparse data store, and — the DIVOT hook — an authentication gate
evaluated exactly at column-access time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .transactions import AddressMap, DecodedAddress, MemoryOp, MemoryRequest

__all__ = ["DRAMTiming", "AccessResult", "SDRAMDevice"]


@dataclass(frozen=True)
class DRAMTiming:
    """SDRAM timing parameters in bus-clock cycles (DDR4-ish defaults)."""

    t_rcd: int = 14  # row-to-column delay (ACT -> READ/WRITE)
    t_rp: int = 14  # row precharge
    cl: int = 14  # CAS latency (READ -> data)
    cwl: int = 10  # CAS write latency
    t_ras: int = 32  # minimum row-open time
    burst: int = 4  # data burst length in cycles
    t_refi: int = 1170  # refresh interval
    t_rfc: int = 52  # refresh cycle time

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_rp", "cl", "cwl", "t_ras", "burst",
                     "t_refi", "t_rfc"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1 cycle")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one device access.

    Attributes:
        ok: Whether the access was performed.
        latency_cycles: Command-to-completion time in bus cycles (includes
            any precharge/activate the access required, and refresh stalls).
        data: Read payload (None for writes and blocked accesses).
        blocked: True when the authentication gate rejected the access.
        row_hit: Whether the access hit an already-open row.
    """

    ok: bool
    latency_cycles: int
    data: Optional[int] = None
    blocked: bool = False
    row_hit: bool = False


@dataclass
class _BankState:
    open_row: Optional[int] = None
    busy_until: int = 0  # device cycle when the bank is next free


class SDRAMDevice:
    """One SDRAM device (the DIMM of Fig. 6).

    Args:
        address_map: Geometry.
        timing: Timing parameters.
        auth_gate: Callable returning True when column access is currently
            authorised — DIVOT's module-side hook.  None means ungated
            (an unprotected commodity device).
    """

    def __init__(
        self,
        address_map: AddressMap = AddressMap(),
        timing: DRAMTiming = DRAMTiming(),
        auth_gate: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.address_map = address_map
        self.timing = timing
        self.auth_gate = auth_gate
        self._banks = [_BankState() for _ in range(address_map.n_banks)]
        self._cells: Dict[int, int] = {}
        self._cycle = 0
        self._last_refresh = 0
        self.stats = {
            "reads": 0,
            "writes": 0,
            "row_hits": 0,
            "row_misses": 0,
            "blocked": 0,
            "refreshes": 0,
        }

    # ------------------------------------------------------------------
    @property
    def current_cycle(self) -> int:
        """Device-local cycle counter."""
        return self._cycle

    def _maybe_refresh(self) -> int:
        """Advance refresh bookkeeping; returns stall cycles incurred."""
        stall = 0
        while self._cycle - self._last_refresh >= self.timing.t_refi:
            self._last_refresh += self.timing.t_refi
            stall += self.timing.t_rfc
            self.stats["refreshes"] += 1
            # Refresh closes every row.
            for bank in self._banks:
                bank.open_row = None
        return stall

    def _open_row(self, decoded: DecodedAddress) -> tuple:
        """Ensure the target row is open; returns (cycles, row_hit)."""
        bank = self._banks[decoded.bank]
        if bank.open_row == decoded.row:
            return 0, True
        cycles = 0
        if bank.open_row is not None:
            cycles += self.timing.t_rp  # precharge the old row
        cycles += self.timing.t_rcd  # activate the new one
        bank.open_row = decoded.row
        return cycles, False

    # ------------------------------------------------------------------
    def access(self, request: MemoryRequest) -> AccessResult:
        """Perform one read or write, honouring timing and the auth gate.

        The gate is checked at column-access time, after row activation —
        matching the paper: "the column address is gated by the
        authentication result so that only the authorized CPU chip and
        memory bus can access, read or write, the SDRAM."
        """
        decoded = self.address_map.decode(request.address)
        latency = self._maybe_refresh()
        row_cycles, row_hit = self._open_row(decoded)
        latency += row_cycles
        self.stats["row_hits" if row_hit else "row_misses"] += 1

        if self.auth_gate is not None and not self.auth_gate():
            self.stats["blocked"] += 1
            self._cycle += latency + 1
            return AccessResult(
                ok=False,
                latency_cycles=latency + 1,
                blocked=True,
                row_hit=row_hit,
            )

        if request.op is MemoryOp.READ:
            latency += self.timing.cl + self.timing.burst
            data = self._cells.get(request.address, 0)
            self.stats["reads"] += 1
            self._cycle += latency
            return AccessResult(
                ok=True, latency_cycles=latency, data=data, row_hit=row_hit
            )
        latency += self.timing.cwl + self.timing.burst
        self._cells[request.address] = int(request.data)
        self.stats["writes"] += 1
        self._cycle += latency
        return AccessResult(ok=True, latency_cycles=latency, row_hit=row_hit)

    # ------------------------------------------------------------------
    def peek(self, address: int) -> Optional[int]:
        """Read a cell without timing or gating (test/inspection hook)."""
        return self._cells.get(address)

    def occupied_cells(self) -> int:
        """Number of cells ever written."""
        return len(self._cells)
