"""The campaign engine: adaptive adversaries versus the fleet detector.

One :class:`Campaign` pits a set of strategy arms against one protocol:
every arm gets a *twin pair* of buses — a clean line and an electrically
identical line the arm attacks — registered on one per-protocol
:class:`~repro.core.fleet.FleetScanExecutor` built from the spec's own
detector tuning.  Each round every arm proposes its attack state, one
sharded fleet scan judges the whole board, and each arm sees its own
feedback before adapting.  Clean-twin records accumulate the false-alarm
sample; attack records, in round order, the detection/latency sample —
:mod:`repro.analysis.frontier` turns the pair into ROC curves and
detection-latency frontiers per arm.

Determinism is inherited from the fleet layer and sharpened: every seed
stream any operation consumes is derived as
``SeedSequence([seed, proto_key, arm, slot, op])`` — pure coordinates,
no global counters — so a campaign's outcome is byte-identical across
shard counts and backends, *and* a single-arm campaign replays exactly
its slice of a joint campaign (the interleaving-invariance property
``tests/property/test_campaign_guard.py`` pins).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.frontier import (
    LatencyPoint,
    RocPoint,
    detection_latency_frontier,
    roc_auc,
    roc_sweep,
)
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.divot import Action
from ..core.fleet import FleetScanExecutor
from ..core.runtime import MonitorEvent, Telemetry
from ..core.runtime.events import EventLog
from ..protocols import registry
from ..protocols.spec import ProtocolSpec
from .strategies import default_strategies
from .strategy import (
    ArmContext,
    CampaignStrategy,
    RoundFeedback,
    validate_strategies,
)

__all__ = [
    "ArmRound",
    "ArmReport",
    "CampaignOutcome",
    "Campaign",
    "CampaignSuite",
    "campaign_streams",
    "clone_gap",
]

#: Stream slots within one (campaign, protocol, arm) coordinate:
#: the clean twin's measurements, the attack twin's measurements, and
#: the adversary's own randomness.
SLOT_CLEAN, SLOT_ATTACK, SLOT_ADVERSARY = 0, 1, 2

#: Operation index of enrollment; round ``r`` uses ``r + 1``.
OP_ENROLL = 0


def _proto_key(name: str) -> int:
    """A stable 32-bit coordinate for a protocol name.

    Hash-derived rather than positional so adding or removing protocols
    from a suite never shifts another protocol's seed streams.
    """
    digest = hashlib.blake2b(name.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def campaign_streams(
    seed: int, protocol: str, arm: int, slot: int, op: int
) -> np.random.SeedSequence:
    """The seed stream for one campaign coordinate.

    Pure function of ``(seed, protocol, arm, slot, op)`` — the whole
    determinism story: nothing about execution order, shard count, or
    which other arms ran can reach a stream's entropy.
    """
    return np.random.SeedSequence(
        [seed, _proto_key(protocol), arm, slot, op]
    )


@dataclass(frozen=True)
class ArmRound:
    """One round of one arm: the twin pair's judged outcomes.

    ``clean_statistic`` / ``attack_statistic`` are the arm's suspicion
    channel evaluated on the clean and attacked twin — the sample pair
    the frontiers sweep.
    """

    round_index: int
    action: Action
    score: float
    tampered: bool
    peak_error: float
    clean_statistic: float
    attack_statistic: float

    @property
    def detected(self) -> bool:
        """Whether the deployed detector flagged the attacked twin."""
        return self.action is not Action.PROCEED


@dataclass(frozen=True)
class ArmReport:
    """One arm's full campaign result with its frontier analysis."""

    arm: int
    strategy: str
    statistic: str
    rounds: Tuple[ArmRound, ...]
    roc: Tuple[RocPoint, ...]
    auc: float
    latency: Tuple[LatencyPoint, ...]

    @property
    def clean_samples(self) -> List[float]:
        """False-alarm sample: the clean twin's statistic per round."""
        return [r.clean_statistic for r in self.rounds]

    @property
    def attack_samples(self) -> List[float]:
        """Detection sample: the attacked twin's statistic, round order."""
        return [r.attack_statistic for r in self.rounds]

    @property
    def first_detection_round(self) -> Optional[int]:
        """1-based round the deployed detector first fired, if ever."""
        for r in self.rounds:
            if r.detected:
                return r.round_index + 1
        return None

    def telemetry_cell(self, protocol: str) -> dict:
        """The snapshot cell :meth:`Telemetry.record_campaign` stores."""
        return {
            "protocol": protocol,
            "strategy": self.strategy,
            "statistic": self.statistic,
            "rounds": len(self.rounds),
            "auc": self.auc,
            "roc": [(p.threshold, p.fpr, p.tpr) for p in self.roc],
            "latency": [
                (p.threshold, p.fpr, p.rounds_to_detect)
                for p in self.latency
            ],
            "first_detection_round": self.first_detection_round,
            "final_statistic": self.rounds[-1].attack_statistic,
        }


def clone_gap(
    oneshot: ArmReport, adaptive: ArmReport
) -> dict:
    """How much detection the adaptive cloner evades versus one-shot.

    Sweeps every pooled statistic value as a threshold and reports the
    operating point where the detector's true-positive rate against the
    one-shot baseline exceeds its rate against the adaptive arm the
    most.  ``gap > 0`` means the adaptive campaign beats the baseline on
    at least one operating point — the acceptance criterion X-CAMPAIGN
    asserts and telemetry publishes.
    """
    base = np.asarray(oneshot.attack_samples, dtype=float)
    adapt = np.asarray(adaptive.attack_samples, dtype=float)
    thresholds = np.unique(np.concatenate([base, adapt]))
    best = None
    for level in thresholds:
        tpr_base = float(np.mean(base >= level))
        tpr_adapt = float(np.mean(adapt >= level))
        gap = tpr_base - tpr_adapt
        if best is None or gap > best["gap"]:
            best = {
                "gap": gap,
                "threshold": float(level),
                "tpr_oneshot": tpr_base,
                "tpr_adaptive": tpr_adapt,
            }
    best["baseline"] = oneshot.strategy
    best["adaptive"] = adaptive.strategy
    return best


@dataclass(frozen=True)
class CampaignOutcome:
    """One protocol's finished campaign across every arm."""

    protocol: str
    seed: int
    n_rounds: int
    shards: int
    backend: str
    arms: Tuple[ArmReport, ...]

    def arm(self, strategy: str) -> ArmReport:
        """The report of the named strategy arm."""
        for report in self.arms:
            if report.strategy == strategy:
                return report
        raise KeyError(f"no arm named {strategy!r}")

    def merged_events(self) -> EventLog:
        """The campaign's deterministic event stream, round-major.

        One event per (round, arm): time is the round index, side is the
        strategy label — derived purely from the arm rounds, so two
        campaigns that measured the same rounds merge to byte-identical
        logs regardless of how their scans interleaved.
        """
        log = EventLog()
        for round_index in range(self.n_rounds):
            for report in self.arms:
                r = report.rounds[round_index]
                log.emit(
                    MonitorEvent(
                        time_s=float(round_index),
                        side=report.strategy,
                        action=r.action,
                        score=r.score,
                        tampered=r.tampered,
                        location_m=None,
                        bus=f"{self.protocol}/{report.strategy}/attack",
                        protocol=self.protocol,
                    )
                )
        return log

    def canonical_bytes(self) -> bytes:
        """Deterministic serialisation of the execution-independent result.

        Pure measurement content — per-arm rounds and their frontier
        inputs; ``shards``/``backend`` provenance is excluded.  The
        byte-identity contract X-CAMPAIGN and the property suite pin:
        serial and sharded campaigns, and any interleaving of arms onto
        executors, produce identical bytes.
        """
        payload = tuple(
            (
                self.protocol,
                report.strategy,
                report.statistic,
                tuple(
                    (
                        r.round_index,
                        r.action.value,
                        r.score,
                        r.tampered,
                        r.peak_error,
                        r.clean_statistic,
                        r.attack_statistic,
                    )
                    for r in report.rounds
                ),
                tuple((p.threshold, p.fpr, p.tpr) for p in report.roc),
            )
            for report in self.arms
        )
        return pickle.dumps((self.seed, self.n_rounds, payload), protocol=4)


class Campaign:
    """Adaptive adversary arms versus one protocol's tuned detector.

    Args:
        protocol: Registry name or an explicit :class:`ProtocolSpec`.
        strategies: The arms to run (default: every stock strategy).
            ``arm_ids`` may pin each strategy's seed coordinate so a
            sub-campaign replays exactly its slice of a larger one;
            by default arms are numbered by position.
        seed: Campaign seed — with the protocol name and arm ids, the
            complete description of every random draw.
        n_rounds: Adaptive rounds per arm.
        shards / backend / transport: Fleet execution knobs
            (measurement-invisible; ``transport`` selects the shard
            payload path — shared-memory descriptors or the pickle
            reference — and never changes outcome bytes).
        telemetry: Shared sink; pass one across campaigns to aggregate
            a whole suite into a single snapshot.
    """

    def __init__(
        self,
        protocol: Union[str, ProtocolSpec],
        strategies: Optional[Sequence[CampaignStrategy]] = None,
        arm_ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        n_rounds: int = 6,
        shards: int = 1,
        backend: str = "auto",
        transport: str = "auto",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.spec = (
            registry.get(protocol) if isinstance(protocol, str) else protocol
        )
        self.strategies = list(
            strategies if strategies is not None else default_strategies()
        )
        if not self.strategies:
            raise ValueError("need at least one strategy arm")
        validate_strategies(self.strategies)
        if arm_ids is None:
            arm_ids = list(range(len(self.strategies)))
        else:
            arm_ids = [int(a) for a in arm_ids]
            if len(arm_ids) != len(self.strategies):
                raise ValueError("arm_ids must parallel strategies")
            if len(set(arm_ids)) != len(arm_ids):
                raise ValueError("arm_ids must be unique")
        self.arm_ids = arm_ids
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.seed = int(seed)
        self.n_rounds = int(n_rounds)
        self.shards = shards
        self.backend = backend
        self.transport = transport
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    # ------------------------------------------------------------------
    def _stream(self, arm: int, slot: int, op: int) -> np.random.SeedSequence:
        return campaign_streams(self.seed, self.spec.name, arm, slot, op)

    def _adversary_rng(self, arm: int, op: int) -> np.random.Generator:
        return np.random.default_rng(
            self._stream(arm, SLOT_ADVERSARY, op)
        )

    def _bus_streams(self, op: int) -> List[np.random.SeedSequence]:
        streams: List[np.random.SeedSequence] = []
        for arm in self.arm_ids:
            streams.append(self._stream(arm, SLOT_CLEAN, op))
            streams.append(self._stream(arm, SLOT_ATTACK, op))
        return streams

    def _bus_names(self, strategy: CampaignStrategy) -> Tuple[str, str]:
        stem = f"{self.spec.name}/{strategy.name}"
        return f"{stem}/clean", f"{stem}/attack"

    # ------------------------------------------------------------------
    def run(self) -> CampaignOutcome:
        """Play every arm for ``n_rounds`` and analyse the frontiers."""
        spec = self.spec
        executor = FleetScanExecutor(
            spec.authenticator(),
            spec.tamper_detector(prototype_itdr()),
            captures_per_check=spec.captures_per_check,
            shards=self.shards,
            backend=self.backend,
            transport=self.transport,
            seed=self.seed,
            telemetry=self.telemetry,
        )
        factory = prototype_line_factory()
        attack_lines = []
        with executor:
            for arm, strategy in zip(self.arm_ids, self.strategies):
                # Twin lines: same manufacturing seed, so the attacked
                # bus is electrically identical to its clean control —
                # any statistic difference is the attack, nothing else.
                line_seed = spec.line_seed + 101 * arm
                clean_name, attack_name = self._bus_names(strategy)
                clean = factory.manufacture(seed=line_seed, name=clean_name)
                attack = factory.manufacture(seed=line_seed, name=attack_name)
                executor.register(clean, protocol=spec.name)
                executor.register(attack, protocol=spec.name)
                attack_lines.append(attack)
            for arm, strategy, line in zip(
                self.arm_ids, self.strategies, attack_lines
            ):
                strategy.begin(
                    ArmContext(spec=spec, line=line, n_rounds=self.n_rounds),
                    self._adversary_rng(arm, OP_ENROLL),
                )
            executor.enroll(streams=self._bus_streams(OP_ENROLL))
            rounds_by_arm: List[List[ArmRound]] = [
                [] for _ in self.strategies
            ]
            for round_index in range(self.n_rounds):
                op = round_index + 1
                rngs = [
                    self._adversary_rng(arm, op) for arm in self.arm_ids
                ]
                modifiers: Dict[str, Sequence] = {}
                for strategy, rng in zip(self.strategies, rngs):
                    _, attack_name = self._bus_names(strategy)
                    modifiers[attack_name] = strategy.propose(
                        round_index, rng
                    )
                outcome = executor.scan(
                    modifiers_by_bus=modifiers,
                    streams=self._bus_streams(op),
                )
                by_bus = {r.bus: r for r in outcome.records}
                for strategy, rng, rounds in zip(
                    self.strategies, rngs, rounds_by_arm
                ):
                    clean_name, attack_name = self._bus_names(strategy)
                    crec, arec = by_bus[clean_name], by_bus[attack_name]
                    feedback = RoundFeedback(
                        round_index=round_index,
                        action=arec.action,
                        score=arec.score,
                        tampered=arec.tampered,
                        peak_error=arec.peak_error,
                    )
                    strategy.observe(feedback, rng)
                    rounds.append(
                        ArmRound(
                            round_index=round_index,
                            action=arec.action,
                            score=arec.score,
                            tampered=arec.tampered,
                            peak_error=arec.peak_error,
                            clean_statistic=strategy.statistic_of(
                                crec.score, crec.peak_error
                            ),
                            attack_statistic=strategy.statistic_of(
                                arec.score, arec.peak_error
                            ),
                        )
                    )
        reports = []
        for arm, strategy, rounds in zip(
            self.arm_ids, self.strategies, rounds_by_arm
        ):
            clean = [r.clean_statistic for r in rounds]
            attack = [r.attack_statistic for r in rounds]
            roc = tuple(roc_sweep(clean, attack))
            latency = tuple(detection_latency_frontier(clean, attack))
            reports.append(
                ArmReport(
                    arm=arm,
                    strategy=strategy.name,
                    statistic=strategy.statistic,
                    rounds=tuple(rounds),
                    roc=roc,
                    auc=roc_auc(roc),
                    latency=latency,
                )
            )
        outcome = CampaignOutcome(
            protocol=spec.name,
            seed=self.seed,
            n_rounds=self.n_rounds,
            shards=self.shards,
            backend=executor.resolved_backend(),
            arms=tuple(reports),
        )
        self._publish(outcome)
        return outcome

    def _publish(self, outcome: CampaignOutcome) -> None:
        """Fold the outcome's frontier cells into the telemetry sink."""
        for report in outcome.arms:
            self.telemetry.record_campaign(
                f"{outcome.protocol}/{report.strategy}",
                report.telemetry_cell(outcome.protocol),
            )
        by_name = {report.strategy: report for report in outcome.arms}
        if "clone-oneshot" in by_name and "clone-fit" in by_name:
            self.telemetry.record_campaign(
                f"{outcome.protocol}/clone_gap",
                clone_gap(by_name["clone-oneshot"], by_name["clone-fit"]),
            )


class CampaignSuite:
    """One campaign per protocol, aggregated into one telemetry surface.

    The X-CAMPAIGN driver: runs the same strategy roster against every
    named protocol's own tuned detector, sharing a single
    :class:`Telemetry` so ``snapshot()["campaigns"]`` carries every
    ``"<protocol>/<strategy>"`` cell (plus per-protocol ``clone_gap``
    cells) side by side.
    """

    def __init__(
        self,
        protocols: Optional[Sequence[str]] = None,
        seed: int = 0,
        n_rounds: int = 6,
        shards: int = 1,
        backend: str = "auto",
        transport: str = "auto",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.protocols = list(
            protocols if protocols is not None else ("jtag", "spi", "i2c")
        )
        if not self.protocols:
            raise ValueError("need at least one protocol")
        self.seed = int(seed)
        self.n_rounds = int(n_rounds)
        self.shards = shards
        self.backend = backend
        self.transport = transport
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    def run(self) -> Dict[str, CampaignOutcome]:
        """Run every protocol's campaign; outcomes keyed by protocol."""
        outcomes: Dict[str, CampaignOutcome] = {}
        for protocol in self.protocols:
            campaign = Campaign(
                protocol,
                seed=self.seed,
                n_rounds=self.n_rounds,
                shards=self.shards,
                backend=self.backend,
                transport=self.transport,
                telemetry=self.telemetry,
            )
            outcomes[protocol] = campaign.run()
        return outcomes

    @staticmethod
    def canonical_bytes(outcomes: Dict[str, CampaignOutcome]) -> bytes:
        """Deterministic serialisation of a whole suite run."""
        return b"".join(
            outcomes[protocol].canonical_bytes()
            for protocol in sorted(outcomes)
        )
