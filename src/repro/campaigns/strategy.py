"""Campaign strategy contract: how an adaptive adversary plugs in.

A campaign *arm* is one adversary playing repeated rounds against one
protected bus: each round it proposes an attack state (a profile-modifier
chain), the defender's fleet scan judges the bus, and the adversary sees
exactly what a real one would — whether the round was flagged and with
what statistic — before adapting for the next round.  The contract is
deliberately narrow so strategies stay pure adversary logic:

* all adversary randomness flows through the per-round generator the
  engine hands in (derived from the campaign's seed coordinates), so a
  strategy's play is a pure function of ``(campaign seed, protocol,
  arm, round)`` — the invariant the interleaving property test pins;
* strategies never touch the executor or the detector; they see the
  target line (an adversary can always measure the bus it is attacking)
  and the spec (public protocol knowledge), nothing else.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.divot import Action
from ..protocols.spec import ProtocolSpec
from ..txline.line import TransmissionLine

__all__ = ["STATISTIC_CHANNELS", "ArmContext", "RoundFeedback",
           "CampaignStrategy", "validate_strategies"]

#: Suspicion-statistic channels an arm may be judged on: ``"tamper"``
#: reads the detector's peak smoothed error, ``"auth"`` reads
#: ``1 - similarity`` — in both conventions larger means more
#: suspicious.
STATISTIC_CHANNELS = ("tamper", "auth")


@dataclass(frozen=True)
class ArmContext:
    """What one adversary knows when its campaign begins.

    Attributes:
        spec: The protocol under attack (public knowledge: rates,
            cadence, canonical scenarios).
        line: The physical bus the arm attacks — the adversary has bench
            access to the very line it is tapping, so strategies may
            measure it.
        n_rounds: Scheduled campaign length.
    """

    spec: ProtocolSpec
    line: TransmissionLine
    n_rounds: int


@dataclass(frozen=True)
class RoundFeedback:
    """What the adversary observes after one attacked round.

    Attributes:
        round_index: 0-based round number.
        action: The defender's decision on the attacked bus.
        score: Authentication similarity the defender computed.
        tampered: Whether the tamper detector fired.
        peak_error: The tamper detector's decision statistic.
    """

    round_index: int
    action: Action
    score: float
    tampered: bool
    peak_error: float

    @property
    def detected(self) -> bool:
        """Whether the round drew any defender reaction (non-PROCEED)."""
        return self.action is not Action.PROCEED


class CampaignStrategy(ABC):
    """One adaptive adversary: proposes attacks, learns from detection.

    Subclasses set :attr:`name` (the telemetry/arm label) and
    :attr:`statistic` (the channel ROC sweeps judge the arm on) and
    implement the three-phase round loop below.  Instances are single-
    use: one strategy object drives one arm of one campaign.
    """

    #: Arm label, unique within a campaign (telemetry cell key suffix).
    name: str = "strategy"
    #: Channel from :data:`STATISTIC_CHANNELS` this arm is judged on.
    statistic: str = "tamper"

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        """One-time setup before round 0 (default: store the context)."""
        self.ctx = ctx

    @abstractmethod
    def propose(
        self, round_index: int, rng: np.random.Generator
    ) -> List:
        """The modifier chain to mount on the attack bus this round."""

    def observe(
        self, feedback: RoundFeedback, rng: np.random.Generator
    ) -> None:
        """Adapt to one round's outcome (default: no adaptation)."""

    # ------------------------------------------------------------------
    def statistic_of(self, score: float, peak_error: float) -> float:
        """This arm's suspicion statistic from one record's fields."""
        if self.statistic == "tamper":
            return float(peak_error)
        if self.statistic == "auth":
            return 1.0 - float(score)
        raise ValueError(
            f"statistic must be one of {STATISTIC_CHANNELS}, "
            f"got {self.statistic!r}"
        )


def validate_strategies(strategies: Sequence[CampaignStrategy]) -> None:
    """Reject arm sets a campaign cannot label unambiguously."""
    names = [s.name for s in strategies]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate strategy names: {sorted(names)}")
    for strategy in strategies:
        if strategy.statistic not in STATISTIC_CHANNELS:
            raise ValueError(
                f"strategy {strategy.name!r} has unknown statistic "
                f"{strategy.statistic!r}"
            )
