"""Adaptive adversary campaigns against the DIVOT detector.

The campaign layer closes the loop the attack modules leave open: real
adversaries iterate.  A :class:`~repro.campaigns.engine.Campaign` plays
seeded :class:`~repro.campaigns.strategy.CampaignStrategy` arms —
probe-placement search, profile-fitting cloning, chiplet-boundary
implants — through repeated attack/capture rounds against a protocol's
own tuned fleet detector, and reports ROC curves and detection-latency
frontiers per arm through the shared telemetry surface.
"""

from .engine import (
    ArmReport,
    ArmRound,
    Campaign,
    CampaignOutcome,
    CampaignSuite,
    campaign_streams,
    clone_gap,
)
from .strategies import (
    BoundaryImplantSearch,
    CanonicalScenario,
    OneShotCloner,
    ProbePlacementSearch,
    ProfileFittingCloner,
    default_strategies,
)
from .strategy import (
    STATISTIC_CHANNELS,
    ArmContext,
    CampaignStrategy,
    RoundFeedback,
    validate_strategies,
)

__all__ = [
    "ArmContext",
    "ArmReport",
    "ArmRound",
    "BoundaryImplantSearch",
    "Campaign",
    "CampaignOutcome",
    "CampaignStrategy",
    "CampaignSuite",
    "CanonicalScenario",
    "OneShotCloner",
    "ProbePlacementSearch",
    "ProfileFittingCloner",
    "RoundFeedback",
    "STATISTIC_CHANNELS",
    "campaign_streams",
    "clone_gap",
    "default_strategies",
    "validate_strategies",
]
