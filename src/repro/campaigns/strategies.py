"""The stock adaptive adversaries every campaign ships with.

Three adaptive families (plus two baselines) cover the threat classes
the roadmap's chiplet-era scenarios call for:

* **probe-placement search** — a snooper that explores tap positions,
  exploits the least-disturbing one, and titrates its coupling against
  the detector's feedback (Awal & Rahman's probing-attack analysis);
* **profile-fitting cloning** — the strongest PUF attack: layer-peel
  the IIP from bench reflection measurements, fabricate, then trim the
  clone toward the fit round after round (versus the one-shot cloning
  baseline from the unclonability experiment);
* **boundary-implant search** — a chiplet/interposer implant that
  shrinks its parasitic footprint toward the smallest still-functional
  graft (the ChipletQuake verification scenario).

Every strategy draws exclusively from the per-round generator the
engine supplies, so campaign outcomes are pure functions of their seed
coordinates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..attacks.cloning import COMMERCIAL, CloningAttacker, FabCapability
from ..attacks.fitting import AdaptiveCloningAttacker, ProfileSubstitution
from ..attacks.interposer import InterposerImplant
from ..attacks.probe import MagneticProbe
from ..txline.materials import FR4
from .strategy import ArmContext, CampaignStrategy, RoundFeedback

__all__ = [
    "CanonicalScenario",
    "ProbePlacementSearch",
    "OneShotCloner",
    "ProfileFittingCloner",
    "BoundaryImplantSearch",
    "default_strategies",
]


def _line_length_m(ctx: ArmContext) -> float:
    profile = ctx.line.full_profile
    return float(np.sum(profile.tau)) * FR4.velocity_at(FR4.t_ref_c)


class CanonicalScenario(CampaignStrategy):
    """The protocol's registry-default attack, replayed unchanged.

    The non-adaptive control arm: every protocol spec names a canonical
    scenario (debug-pod snoop, MISO wiretap, management-bus load mod);
    replaying it verbatim gives each campaign the static baseline the
    adaptive arms are measured against.
    """

    name = "canonical"
    statistic = "tamper"

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        super().begin(ctx, rng)
        self._attack = ctx.spec.default_attack(ctx.line)

    def propose(self, round_index: int, rng: np.random.Generator) -> List:
        return [self._attack]


class ProbePlacementSearch(CampaignStrategy):
    """A snooper searching for the stealthiest probe placement.

    Explore-then-exploit: the first rounds sweep a position grid along
    the line at the nominal coupling; after exploration the probe parks
    at the position whose measured disturbance was smallest and titrates
    coupling against detection — backing off multiplicatively whenever a
    round is flagged, creeping back up (the snooper wants signal) while
    it survives.  The coupling floor models the weakest probe that still
    recovers data.
    """

    name = "probe-search"
    statistic = "tamper"

    def __init__(
        self,
        n_positions: int = 4,
        coupling: float = 0.018,
        min_coupling: float = 0.002,
        backoff: float = 0.7,
        recovery: float = 1.1,
    ) -> None:
        if n_positions < 1:
            raise ValueError("n_positions must be >= 1")
        if not 0 < min_coupling <= coupling:
            raise ValueError("need 0 < min_coupling <= coupling")
        if not 0 < backoff < 1:
            raise ValueError("backoff must be in (0, 1)")
        if recovery < 1:
            raise ValueError("recovery must be >= 1")
        self.n_positions = n_positions
        self.base_coupling = float(coupling)
        self.min_coupling = float(min_coupling)
        self.backoff = float(backoff)
        self.recovery = float(recovery)

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        super().begin(ctx, rng)
        length = _line_length_m(ctx)
        self._grid = np.linspace(
            0.15 * length, 0.85 * length, self.n_positions
        )
        self._coupling = self.base_coupling
        self._observed: List[float] = []
        self._best_position: Optional[float] = None

    def propose(self, round_index: int, rng: np.random.Generator) -> List:
        if round_index < len(self._grid):
            position = float(self._grid[round_index])
        else:
            position = self._best_position
        self._last_position = position
        return [
            MagneticProbe(position_m=position, coupling=self._coupling)
        ]

    def observe(
        self, feedback: RoundFeedback, rng: np.random.Generator
    ) -> None:
        exploring = feedback.round_index < len(self._grid)
        if exploring:
            self._observed.append(feedback.peak_error)
            if len(self._observed) == len(self._grid):
                best = int(np.argmin(self._observed))
                self._best_position = float(self._grid[best])
        if feedback.detected:
            self._coupling = max(
                self.min_coupling, self._coupling * self.backoff
            )
        elif not exploring:
            self._coupling = min(
                self.base_coupling, self._coupling * self.recovery
            )


class OneShotCloner(CampaignStrategy):
    """The unclonability experiment's attacker, replayed as an arm.

    Fabricates once from perfect knowledge of the target profile (the
    fingerprint ROM dump) at a given fab tier, then presents the same
    counterfeit every round — the PR-era baseline the adaptive cloner
    must beat.
    """

    name = "clone-oneshot"
    statistic = "auth"

    def __init__(self, capability: FabCapability = COMMERCIAL) -> None:
        self.capability = capability

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        super().begin(ctx, rng)
        attacker = CloningAttacker(self.capability, rng)
        clone = attacker.fabricate(ctx.line, name=f"{ctx.line.name}-clone")
        self._substitution = ProfileSubstitution(
            clone.full_profile, label="one-shot"
        )

    def propose(self, round_index: int, rng: np.random.Generator) -> List:
        return [self._substitution]


class ProfileFittingCloner(CampaignStrategy):
    """Layer-peeling cloner that trims its counterfeit every round.

    Each round the adversary takes one more bench reflectometry pass on
    the genuine line, re-fits the profile by inverse scattering
    (:func:`~repro.attacks.fitting.peel_profile`), and laser-trims the
    realised clone toward the fit — converging below the one-shot fab
    floor.  The strongest attack in the suite, and the reason the
    detection-latency frontier exists: early rounds are detectable,
    late rounds may not be.
    """

    name = "clone-fit"
    statistic = "auth"

    def __init__(
        self,
        capability: FabCapability = COMMERCIAL,
        bench_noise: float = 2.0e-4,
    ) -> None:
        self.capability = capability
        self.bench_noise = float(bench_noise)

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        super().begin(ctx, rng)
        self._attacker = AdaptiveCloningAttacker(
            self.capability, bench_noise=self.bench_noise
        )

    def propose(self, round_index: int, rng: np.random.Generator) -> List:
        self._attacker.observe(self.ctx.line, rng)
        profile = self._attacker.advance(rng)
        return [ProfileSubstitution(profile, label=f"fit-r{round_index}")]


class BoundaryImplantSearch(CampaignStrategy):
    """A chiplet-boundary implant minimising its parasitic signature.

    Starts from an off-the-shelf interposer graft and, whenever a round
    is flagged, shrinks its parasitic deltas and footprint toward the
    smallest implant that still functions (the floors) — the
    ChipletQuake question: does boundary impedance sensing still see
    the best implant an adversary can build?
    """

    name = "implant-search"
    statistic = "tamper"

    def __init__(
        self,
        boundary_fraction: float = 0.5,
        delta_shrink: float = 0.75,
        footprint_shrink: float = 0.85,
        min_delta: float = 0.004,
        min_footprint_m: float = 1.0e-3,
    ) -> None:
        if not 0 < boundary_fraction < 1:
            raise ValueError("boundary_fraction must be in (0, 1)")
        if not 0 < delta_shrink < 1 or not 0 < footprint_shrink < 1:
            raise ValueError("shrink factors must be in (0, 1)")
        if min_delta <= 0 or min_footprint_m <= 0:
            raise ValueError("functional floors must be positive")
        self.boundary_fraction = float(boundary_fraction)
        self.delta_shrink = float(delta_shrink)
        self.footprint_shrink = float(footprint_shrink)
        self.min_delta = float(min_delta)
        self.min_footprint_m = float(min_footprint_m)

    def begin(self, ctx: ArmContext, rng: np.random.Generator) -> None:
        super().begin(ctx, rng)
        self._boundary = self.boundary_fraction * _line_length_m(ctx)
        self._series = InterposerImplant(self._boundary).series_delta
        self._shunt = InterposerImplant(self._boundary).shunt_delta
        self._footprint = InterposerImplant(self._boundary).footprint_m

    def propose(self, round_index: int, rng: np.random.Generator) -> List:
        return [
            InterposerImplant(
                boundary_m=self._boundary,
                footprint_m=self._footprint,
                series_delta=self._series,
                shunt_delta=self._shunt,
            )
        ]

    def observe(
        self, feedback: RoundFeedback, rng: np.random.Generator
    ) -> None:
        if feedback.detected:
            self._series = max(
                self.min_delta, self._series * self.delta_shrink
            )
            self._shunt = max(
                self.min_delta, self._shunt * self.delta_shrink
            )
            self._footprint = max(
                self.min_footprint_m,
                self._footprint * self.footprint_shrink,
            )


def default_strategies() -> Sequence[CampaignStrategy]:
    """A fresh instance of every stock arm, in canonical order.

    One control (the spec's canonical scenario), one non-adaptive
    cloning baseline, and the three adaptive families.  Fresh instances
    every call — strategies are stateful and single-use.
    """
    return (
        CanonicalScenario(),
        ProbePlacementSearch(),
        OneShotCloner(),
        ProfileFittingCloner(),
        BoundaryImplantSearch(),
    )
