"""Ablation A-TRIG: why the trigger generator exists (paper section II-E).

On a balanced live-data lane, rising and falling edges occur equally often
with symmetric shapes; an iTDR that averages reflections from *both*
polarities sees them cancel, "making DIVOT unusable".  The trigger
generator gates measurement on one polarity.  This ablation measures the
fingerprint quality with gating on (one polarity) versus off (both
polarities averaged), and verifies the trigger statistics on PRBS traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.trigger import TriggerGenerator
from ..signals.prbs import prbs_bits
from .common import canonical_rows

__all__ = ["TriggerAblationResult", "run"]


@dataclass
class TriggerAblationResult:
    """Fingerprint quality with and without polarity gating."""

    gated_genuine_similarity: float
    ungated_genuine_similarity: float
    ungated_signal_fraction: float
    prbs_trigger_rate: float
    expected_trigger_rate: float

    def cancellation_demonstrated(self) -> bool:
        """Ungated averaging destroys the reflected signal and the match."""
        return (
            self.ungated_signal_fraction < 0.15
            and self.ungated_genuine_similarity
            < self.gated_genuine_similarity - 0.2
        )

    def report(self) -> str:
        """The gating comparison."""
        return format_table(
            ["metric", "value"],
            [
                ["genuine similarity, gated", self.gated_genuine_similarity],
                ["genuine similarity, ungated", self.ungated_genuine_similarity],
                [
                    "ungated residual signal fraction",
                    self.ungated_signal_fraction,
                ],
                ["PRBS-15 trigger rate (per bit)", self.prbs_trigger_rate],
                ["expected rate (random data)", self.expected_trigger_rate],
            ],
            title="Trigger gating ablation (section II-E edge cancellation)",
        )


def run(n_captures: int = 200, seed: int = 7) -> TriggerAblationResult:
    """Compare gated and ungated measurement on the same line."""
    factory = prototype_line_factory()
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))

    # Reference and gated captures: rising edges only (the normal path).
    reference = canonical_rows(
        itdr.capture_batch(line, 16).mean(axis=0, keepdims=True)
    )[0]
    gated = canonical_rows(itdr.capture_batch(line, n_captures))
    gated_sim = float(np.mean((1.0 + gated @ reference) / 2.0))

    # Ungated: the measured waveform is the average of rising-edge and
    # falling-edge responses.  By linearity the falling response is the
    # negation of the rising response's AC part, so the average collapses.
    rising = itdr.true_reflection(line).samples
    falling = -rising
    ungated_true = 0.5 * (rising + falling)
    signal_fraction = float(
        np.linalg.norm(ungated_true) / max(np.linalg.norm(rising), 1e-30)
    )
    ungated_estimates = itdr._estimate_batch(
        np.broadcast_to(ungated_true, (n_captures, len(ungated_true))).copy()
    )
    ungated = canonical_rows(ungated_estimates)
    ungated_sim = float(np.mean((1.0 + ungated @ reference) / 2.0))

    # Trigger statistics on realistic traffic.
    bits = prbs_bits(15, 32767)
    trigger = TriggerGenerator(pattern=(1, 0))
    rate = trigger.count_triggers(bits) / len(bits)

    return TriggerAblationResult(
        gated_genuine_similarity=gated_sim,
        ungated_genuine_similarity=ungated_sim,
        ungated_signal_fraction=signal_fraction,
        prbs_trigger_rate=float(rate),
        expected_trigger_rate=0.25,
    )
