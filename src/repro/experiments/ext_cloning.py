"""Extension experiment X-CLONE: the unclonability curve.

Tests the paper's section-III claim that the fingerprint ROM needs no
secrecy: an attacker holding the complete IIP fabricates counterfeits at
increasing fab capability and submits them for authentication.  Scored
under two deployment policies:

* the **EER-point threshold** — what a benign-environment deployment
  fields (balances false accepts/rejects against ordinary impostors);
* the **strict threshold** — the 1st percentile of genuine scores,
  mirroring the paper's "within +/-0.1%" acceptance rule; the policy a
  cloning-aware deployment uses.

The headline result: no practically buildable counterfeit passes the
strict policy, while a hypothetical beyond-state-of-the-art fab (half the
industry's inhomogeneity floor) quantifies the remaining security margin
for a band-limited fingerprint reader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks.cloning import (
    COMMERCIAL,
    HOBBYIST,
    STATE_OF_THE_ART,
    CloningAttacker,
    FabCapability,
)
from ..core.auth import capture_similarity, equal_error_rate
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fingerprint import Fingerprint
from ..txline.line import TransmissionLine

__all__ = ["CloningResult", "run", "DEFAULT_TIERS"]


def DEFAULT_TIERS() -> List[FabCapability]:
    """The attacker-capability ladder."""
    return [HOBBYIST, COMMERCIAL, STATE_OF_THE_ART]


@dataclass
class CloningResult:
    """Outcome of the cloning study."""

    genuine_scores: np.ndarray
    tier_rows: List[Tuple[str, float, float]]
    # (tier name, best clone score, mean clone score)
    threshold_eer: float
    threshold_strict: float

    def unclonability_holds(self) -> bool:
        """No *practical* counterfeit passes the strict policy.

        Practical means fabs that exist (hobbyist, commercial); an attacker
        cannot buy a process with less inhomogeneity than the industry
        floor.  The hypothetical state-of-the-art tier is the reported
        security margin, not a gate — it marks where the paper's "would
        not be able to use it" claim would eventually erode for a
        band-limited fingerprint reader.
        """
        practical = [
            row for row in self.tier_rows if row[0] != "state-of-the-art"
        ]
        return all(best < self.threshold_strict for _, best, _ in practical)

    def margin(self) -> float:
        """Strict threshold minus the best practical clone score."""
        practical_best = max(
            best for name, best, _ in self.tier_rows
            if name != "state-of-the-art"
        )
        return self.threshold_strict - practical_best

    def report(self) -> str:
        """The unclonability table under both policies."""
        rows = []
        for name, best, mean in self.tier_rows:
            rows.append(
                [
                    name,
                    best,
                    mean,
                    "pass" if best >= self.threshold_eer else "rejected",
                    "PASS" if best >= self.threshold_strict else "rejected",
                ]
            )
        return format_table(
            ["fab capability", "best clone", "mean clone",
             "vs EER policy", "vs strict policy"],
            rows,
            title=(
                "Cloning study — genuine mean "
                f"{self.genuine_scores.mean():.4f}; thresholds: EER-point "
                f"{self.threshold_eer:.4f}, strict (1st pct genuine) "
                f"{self.threshold_strict:.4f}"
            ),
        )


def run(
    tiers: Sequence[FabCapability] = None,
    clones_per_tier: int = 12,
    n_genuine: int = 300,
    seed: int = 0,
) -> CloningResult:
    """Enroll one line; fabricate and score clones at each capability tier."""
    if clones_per_tier < 1 or n_genuine < 10:
        raise ValueError("clones_per_tier >= 1 and n_genuine >= 10 required")
    tiers = list(tiers) if tiers is not None else DEFAULT_TIERS()
    factory = prototype_line_factory()
    target = factory.manufacture(seed=1)
    others = factory.manufacture_batch(4, first_seed=10)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    fingerprint = Fingerprint.from_captures(
        [itdr.capture(target) for _ in range(32)]
    )

    genuine = np.array(
        [
            capture_similarity(itdr.capture(target), fingerprint)
            for _ in range(n_genuine)
        ]
    )
    impostor = np.array(
        [
            capture_similarity(itdr.capture(line), fingerprint)
            for line in others
            for _ in range(n_genuine // 4)
        ]
    )
    _, threshold_eer = equal_error_rate(genuine, impostor)
    threshold_strict = float(np.percentile(genuine, 1.0))

    rng = np.random.default_rng(seed + 1)
    tier_rows = []
    for tier in tiers:
        attacker = CloningAttacker(tier, rng)
        scores = []
        for i in range(clones_per_tier):
            clone = attacker.fabricate(target, name=f"clone-{tier.name}-{i}")
            renamed = TransmissionLine(
                name=target.name,
                board_profile=clone.board_profile,
                material=clone.material,
                receiver=clone.receiver,
            )
            scores.append(
                capture_similarity(itdr.capture(renamed), fingerprint)
            )
        scores = np.array(scores)
        tier_rows.append(
            (tier.name, float(scores.max()), float(scores.mean()))
        )
    return CloningResult(
        genuine_scores=genuine,
        tier_rows=tier_rows,
        threshold_eer=threshold_eer,
        threshold_strict=threshold_strict,
    )
