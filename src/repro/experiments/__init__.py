"""Experiment harness: one module per paper figure/table.

Each module exposes ``run(...)`` returning a result dataclass with
shape-check predicates and a ``report()`` text rendering of the same
rows/series the paper presents.  See DESIGN.md section 4 for the index.
"""

from . import (
    ablation_ets,
    ablation_multiwire,
    ablation_pdm,
    ablation_trigger,
    baseline_comparison,
    env_robustness,
    ext_adaptation,
    ext_cloning,
    ext_enrollment,
    ext_jitter,
    ext_protocols,
    ext_sensitivity,
    ext_sharing,
    ext_stack,
    fig2_apc,
    fig34_pdm,
    fig5_ets,
    fig6_membus,
    fig7_auth,
    fig8_temperature,
    fig9_tamper,
    tab_latency,
    tab_overhead,
)
from .common import FULL, SMALL, ExperimentScale

__all__ = [
    "ExperimentScale",
    "SMALL",
    "FULL",
    "fig2_apc",
    "fig34_pdm",
    "fig5_ets",
    "fig6_membus",
    "fig7_auth",
    "fig8_temperature",
    "fig9_tamper",
    "env_robustness",
    "tab_overhead",
    "tab_latency",
    "baseline_comparison",
    "ablation_multiwire",
    "ablation_pdm",
    "ablation_ets",
    "ablation_trigger",
    "ext_cloning",
    "ext_jitter",
    "ext_sharing",
    "ext_adaptation",
    "ext_stack",
    "ext_enrollment",
    "ext_sensitivity",
]
