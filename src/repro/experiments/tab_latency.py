"""Experiment T-LAT: detection latency (paper sections I and IV).

The paper: "both authentication and tamper detection can be completed
within 50 us" at the prototype's 156.25 MHz, and "with GHz clock speed in
modern computers, DIVOT is able to alert ... within memory operation time
frame".  The latency model regenerates the 50 us point and the GHz scaling
series, plus the data-lane penalty (triggers fire on a specific bit pair,
so a random-data lane yields triggers at a quarter of the clock rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.report import format_table
from ..core.config import prototype_itdr_config
from ..core.latency import LatencyModel, LatencyPoint

__all__ = ["LatencyResult", "run"]

#: The paper's prototype figure.
PAPER_LATENCY_S = 50e-6
PAPER_CLOCK_HZ = 156.25e6

#: Clock sweep: the prototype plus modern memory-bus rates.
DEFAULT_CLOCKS = (156.25e6, 312.5e6, 625e6, 1.2e9, 2.4e9, 3.2e9)


@dataclass
class LatencyResult:
    """Latency at the prototype point plus the scaling sweeps."""

    prototype: LatencyPoint
    clock_sweep: List[LatencyPoint]
    data_lane_sweep: List[LatencyPoint]
    repetition_sweep: List[LatencyPoint]

    def prototype_matches_paper(self, slack: float = 1.5) -> bool:
        """Within ``slack`` x of the 50 us prototype figure."""
        return (
            self.prototype.detection_latency_s
            <= PAPER_LATENCY_S * slack
        )

    def scales_inversely_with_clock(self) -> bool:
        """Doubling the clock halves the capture time (the scaling claim)."""
        times = [p.capture_time_s for p in self.clock_sweep]
        return all(t1 > t2 for t1, t2 in zip(times, times[1:]))

    def report(self) -> str:
        """The latency table the paper's timing claims summarise."""
        rows = [
            [
                f"{p.clock_frequency / 1e6:.2f} MHz",
                p.lane,
                p.n_triggers,
                f"{p.capture_time_s * 1e6:.2f} us",
                f"{p.detection_latency_s * 1e6:.2f} us",
            ]
            for p in [self.prototype] + self.clock_sweep + self.data_lane_sweep
        ]
        main = format_table(
            ["clock", "lane", "triggers", "capture", "detection"],
            rows,
            title=(
                "Detection latency (paper: authentication + tamper detection "
                "within 50 us at 156.25 MHz)"
            ),
        )
        rep_rows = [
            [
                p.repetitions,
                p.n_triggers,
                f"{p.capture_time_s * 1e6:.2f} us",
            ]
            for p in self.repetition_sweep
        ]
        reps = format_table(
            ["repetitions R", "triggers", "capture time"],
            rep_rows,
            title="Accuracy/time trade-off at the prototype clock",
        )
        return main + "\n\n" + reps


def run(
    n_points: int = 341,
    clocks: Sequence[float] = DEFAULT_CLOCKS,
    repetitions_values: Sequence[int] = (6, 12, 24, 48, 96),
) -> LatencyResult:
    """Evaluate the latency model across clocks, lanes, and repetitions.

    ``n_points = 341`` is the prototype record: a 3.8 ns round trip at the
    11.16 ps phase step.  With R = 24 that costs 8184 triggers — the
    paper's "8192 measurements" — i.e. 52 us at 156.25 MHz.
    """
    config = prototype_itdr_config()
    model = LatencyModel(config, n_points=n_points)
    prototype = model.point(PAPER_CLOCK_HZ, clock_lane=True)
    clock_sweep = model.sweep(clocks, clock_lane=True)
    data_lane_sweep = model.sweep(clocks, clock_lane=False)
    repetition_sweep = model.repetition_tradeoff(
        repetitions_values, PAPER_CLOCK_HZ
    )
    return LatencyResult(
        prototype=prototype,
        clock_sweep=clock_sweep,
        data_lane_sweep=data_lane_sweep,
        repetition_sweep=repetition_sweep,
    )
