"""Experiment F7: authentication accuracy (paper Fig. 7a/7b).

Six Tx-lines, 8192 measurements each at full scale; genuine and impostor
similarity distributions, the ROC, and the EER.  Paper result: clearly
separated distributions and an EER below 0.06 % at room temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..analysis.report import format_histogram, format_table
from ..core.config import prototype_itdr, prototype_line_factory
from .common import AuthScores, ExperimentScale, SMALL, score_lines

__all__ = ["Fig7Result", "run"]

#: The paper's headline room-temperature EER bound.
PAPER_EER_BOUND = 0.0006


@dataclass
class Fig7Result:
    """Authentication-experiment outcome."""

    scores: AuthScores
    eer: float
    threshold: float

    def meets_paper_band(self, slack: float = 4.0) -> bool:
        """Whether the EER is within ``slack`` x the paper's 0.06 % bound.

        A simulator will not match the absolute number; the claim to
        preserve is "EER is a small fraction of a percent with clean
        distribution separation".
        """
        return self.eer <= PAPER_EER_BOUND * slack

    def report(self) -> str:
        """The Fig. 7 content as text: distributions, ROC, and the
        separation statistics (d-prime, overlap, DET anchors, bootstrap
        CI on the EER)."""
        from ..analysis.stats import (
            bootstrap_eer,
            d_prime,
            det_points,
            overlap_coefficient,
        )

        s = self.scores.summary()
        ci = bootstrap_eer(
            self.scores.genuine,
            self.scores.impostor,
            n_resamples=60,
            rng=np.random.default_rng(0),
        )
        det = det_points(self.scores.genuine, self.scores.impostor)
        parts = [
            format_table(
                ["metric", "value"],
                [
                    ["genuine mean", s["genuine_mean"]],
                    ["genuine std", s["genuine_std"]],
                    ["genuine min", s["genuine_min"]],
                    ["impostor mean", s["impostor_mean"]],
                    ["impostor std", s["impostor_std"]],
                    ["impostor max", s["impostor_max"]],
                    ["EER", self.eer],
                    [
                        "EER 95% bootstrap CI",
                        f"[{ci.low:.5f}, {ci.high:.5f}]",
                    ],
                    ["EER threshold", self.threshold],
                    ["paper EER bound", PAPER_EER_BOUND],
                    ["d-prime", d_prime(self.scores.genuine, self.scores.impostor)],
                    [
                        "distribution overlap",
                        overlap_coefficient(
                            self.scores.genuine, self.scores.impostor
                        ),
                    ],
                    *[
                        [f"FNR @ FPR={fpr:g}", fnr]
                        for fpr, fnr in det
                    ],
                    ["n genuine / n impostor", f"{s['n_genuine']} / {s['n_impostor']}"],
                ],
                title="Fig. 7 — authentication over prototype Tx-lines",
            ),
            format_histogram(
                self.scores.genuine, title="genuine similarity distribution"
            ),
            format_histogram(
                self.scores.impostor, title="impostor similarity distribution"
            ),
        ]
        return "\n\n".join(parts)


def run(
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    itdr=None,
    engine: str = "born",
) -> Fig7Result:
    """Run the authentication experiment at the given scale.

    ``engine`` selects the physics kernel every capture routes through
    (``"born"`` default, ``"lattice"`` for the exact reference physics).
    """
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(scale.n_lines)
    if itdr is None:
        itdr = prototype_itdr(rng=np.random.default_rng(seed))
    scores = score_lines(
        lines, itdr, scale.n_measurements, n_enroll=scale.n_enroll,
        engine=engine,
    )
    eer, threshold = scores.eer()
    return Fig7Result(scores=scores, eer=eer, threshold=threshold)
