"""Experiment F2: the APC transfer curve (paper Fig. 2).

Sweeps the signal voltage through a single-reference APC and verifies the
paper's claims about Eq. (1)-(3): measured P(Y=1) follows the noise CDF,
the sensitivity is the noise PDF, and the linear/sensitive window spans
about +/-2 sigma of the reference — the dynamic-range limit PDM later
removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_series, format_table
from ..core.apc import APCConverter, apc_sensitivity
from ..core.comparator import Comparator

__all__ = ["Fig2Result", "run"]


@dataclass
class Fig2Result:
    """APC transfer-curve measurement."""

    v_sweep: np.ndarray
    p_measured: np.ndarray
    p_theory: np.ndarray
    v_estimated: np.ndarray
    sensitivity: np.ndarray
    linear_window: tuple
    noise_sigma: float
    repetitions: int

    @property
    def max_probability_error(self) -> float:
        """Largest |measured - theory| probability over the sweep."""
        return float(np.max(np.abs(self.p_measured - self.p_theory)))

    @property
    def max_voltage_error_in_window(self) -> float:
        """Largest reconstruction error inside the linear window."""
        lo, hi = self.linear_window
        mask = (self.v_sweep >= lo) & (self.v_sweep <= hi)
        if not mask.any():
            return float("nan")
        return float(np.max(np.abs(self.v_estimated[mask] - self.v_sweep[mask])))

    def window_is_two_sigma(self, tolerance: float = 0.35) -> bool:
        """The linear window spans roughly +/-2 sigma (paper's claim)."""
        lo, hi = self.linear_window
        width = hi - lo
        return abs(width - 4.0 * self.noise_sigma) <= tolerance * 4.0 * self.noise_sigma

    def report(self) -> str:
        """The transfer curve and headline checks."""
        lo, hi = self.linear_window
        summary = format_table(
            ["metric", "value"],
            [
                ["noise sigma (V)", self.noise_sigma],
                ["repetitions per point", self.repetitions],
                ["max |p_meas - p_theory|", self.max_probability_error],
                ["linear window (V)", f"[{lo:.4g}, {hi:.4g}]"],
                ["window / 4 sigma", (hi - lo) / (4 * self.noise_sigma)],
                ["max |V_est - V| in window", self.max_voltage_error_in_window],
            ],
            title="Fig. 2 — APC transfer curve",
        )
        idx = np.linspace(0, len(self.v_sweep) - 1, 11).astype(int)
        series = format_series(
            "P(Y=1) vs V_sig (sampled rows)",
            [f"{v:.4g}" for v in self.v_sweep[idx]],
            [f"{p:.4f}" for p in self.p_measured[idx]],
            x_label="V_sig",
            y_label="p_hat",
        )
        return summary + "\n\n" + series


def run(
    noise_sigma: float = 3e-3,
    repetitions: int = 4096,
    n_points: int = 121,
    span_sigmas: float = 4.0,
    seed: int = 0,
) -> Fig2Result:
    """Sweep the APC across ``+/-span_sigmas`` of reference."""
    if n_points < 3:
        raise ValueError("n_points must be >= 3")
    rng = np.random.default_rng(seed)
    comparator = Comparator(noise_sigma=noise_sigma)
    apc = APCConverter(comparator, v_ref=0.0)
    v_sweep = np.linspace(
        -span_sigmas * noise_sigma, span_sigmas * noise_sigma, n_points
    )
    p_measured = apc.measure_probability(v_sweep, repetitions, rng)
    p_theory = comparator.probability_of_one(v_sweep, 0.0)
    v_estimated = apc.invert(p_measured)
    sensitivity = apc_sensitivity(v_sweep, 0.0, noise_sigma)
    return Fig2Result(
        v_sweep=v_sweep,
        p_measured=p_measured,
        p_theory=p_theory,
        v_estimated=v_estimated,
        sensitivity=sensitivity,
        linear_window=apc.linear_window(),
        noise_sigma=noise_sigma,
        repetitions=repetitions,
    )
