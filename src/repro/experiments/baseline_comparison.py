"""Experiment A-BASE: DIVOT versus prior countermeasures (paper section V).

Runs the same attack suite against PAD, DC-resistance monitoring, the
input-impedance PUF, the VNA IIP reader, and DIVOT itself, and tabulates
both deployment traits (concurrent? runtime? integrated? cost) and per-
attack detection.  Expected shape: only DIVOT combines concurrent runtime
operation with sensitivity to *every* attack class, including the
non-contact magnetic probe that defeats PAD and DC resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.report import format_table
from ..attacks import (
    Attack,
    CapacitiveSnoop,
    ChipSwap,
    MagneticProbe,
    WireTap,
)
from ..baselines import (
    BaselineDetector,
    DCResistanceMonitor,
    InputImpedancePUF,
    ProbeAttemptDetector,
    VNAIIPReader,
)
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fingerprint import Fingerprint
from ..core.tamper import TamperDetector

__all__ = ["ComparisonResult", "run", "ATTACK_SUITE"]


def ATTACK_SUITE() -> List:
    """The attack set every detector faces."""
    return [
        ("magnetic-probe", MagneticProbe(0.12)),
        ("capacitive-snoop", CapacitiveSnoop(0.12)),
        ("wire-tap", WireTap(0.12)),
        ("chip-swap", ChipSwap(replacement_seed=77)),
    ]


@dataclass
class ComparisonResult:
    """Traits plus detection matrix across detectors and attacks."""

    detection: Dict[str, Dict[str, bool]]  # detector -> attack -> detected
    traits: Dict[str, dict]
    margin: Dict[str, Dict[str, float]]  # detector -> attack -> dev/floor

    def divot_dominates(self) -> bool:
        """DIVOT detects every attack; every baseline misses at least one
        or cannot run concurrently with data."""
        divot_all = all(self.detection["DIVOT"].values())
        others_limited = all(
            (not all(found.values()))
            or (not self.traits[name]["concurrent_with_data"])
            for name, found in self.detection.items()
            if name != "DIVOT"
        )
        return divot_all and others_limited

    def report(self) -> str:
        """The section-V comparison as two tables."""
        attack_names = list(next(iter(self.detection.values())).keys())
        det_rows = []
        for name, found in self.detection.items():
            det_rows.append(
                [name] + ["yes" if found[a] else "no" for a in attack_names]
            )
        detection = format_table(
            ["detector"] + attack_names,
            det_rows,
            title="Detection matrix (same attack suite for all)",
        )
        trait_rows = [
            [
                name,
                "yes" if t["concurrent_with_data"] else "no",
                "yes" if t["runtime_capable"] else "no",
                "yes" if t["integrated"] else "no",
                t["relative_cost"],
            ]
            for name, t in self.traits.items()
        ]
        traits = format_table(
            ["detector", "concurrent", "runtime", "integrated", "rel. cost"],
            trait_rows,
            title="Deployment traits",
        )
        return detection + "\n\n" + traits


def _baseline_detects(
    detector: BaselineDetector, line, attack: Attack, floor_margin: float = 3.0
) -> tuple:
    """(detected, margin) for one baseline against one attack."""
    floor = detector.noise_floor(line, n_measurements=24)
    threshold = floor_margin * max(floor, 1e-12)
    deviation = detector.deviation(line, [attack])
    return deviation > threshold, deviation / max(floor, 1e-12)


def run(seed: int = 0, divot_averaging: int = 256) -> ComparisonResult:
    """Run the comparison on one populated prototype line."""
    factory = prototype_line_factory(attach_receiver=True)
    line = factory.manufacture(seed=1)
    rng = np.random.default_rng(seed)

    baselines = [
        ProbeAttemptDetector(rng=np.random.default_rng(seed + 1)),
        DCResistanceMonitor(rng=np.random.default_rng(seed + 2)),
        InputImpedancePUF(rng=np.random.default_rng(seed + 3)),
        VNAIIPReader(rng=np.random.default_rng(seed + 4)),
    ]
    detection: Dict[str, Dict[str, bool]] = {}
    margin: Dict[str, Dict[str, float]] = {}
    traits: Dict[str, dict] = {}

    for det in baselines:
        det.enroll(line)
        name = det.traits.name
        detection[name] = {}
        margin[name] = {}
        traits[name] = {
            "concurrent_with_data": det.traits.concurrent_with_data,
            "runtime_capable": det.traits.runtime_capable,
            "integrated": det.traits.integrated,
            "relative_cost": det.traits.relative_cost,
        }
        for attack_name, attack in ATTACK_SUITE():
            found, m = _baseline_detects(det, line, attack)
            detection[name][attack_name] = found
            margin[name][attack_name] = m

    # DIVOT itself, through the real capture pipeline.
    itdr = prototype_itdr(rng=rng)
    reference = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(divot_averaging)]
    )
    detector = TamperDetector(
        threshold=1.0,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )
    clean_peaks = [
        float(
            detector.error_profile(
                itdr.capture_averaged(line, divot_averaging), reference
            ).samples.max()
        )
        for _ in range(6)
    ]
    floor = max(clean_peaks)
    threshold = 1.8 * floor
    detection["DIVOT"] = {}
    margin["DIVOT"] = {}
    traits["DIVOT"] = {
        "concurrent_with_data": True,
        "runtime_capable": True,
        "integrated": True,
        "relative_cost": 1.0,
    }
    for attack_name, attack in ATTACK_SUITE():
        capture = itdr.capture_averaged(line, divot_averaging, modifiers=[attack])
        peak = float(detector.error_profile(capture, reference).samples.max())
        detection["DIVOT"][attack_name] = peak > threshold
        margin["DIVOT"][attack_name] = peak / floor

    return ComparisonResult(detection=detection, traits=traits, margin=margin)
