"""Extension experiment X-PROTO: one architecture, every bus protocol.

The paper demonstrates DIVOT on a DDR memory bus and sketches a serial
link as future work; the architecture itself never cared which protocol
rides the copper.  The protocol registry makes that claim executable:
each registered protocol declares its framing, traffic model, cadence
discipline, and canonical attack scenario, and the same generic
``ProtectedLink`` monitors all of them.  This experiment walks the whole
registry — memory bus, 8b/10b serial link, JTAG, SPI, I2C — running a
clean session and the protocol's canonical attack on each, and reports
the detection story on one table: no false alerts on clean traffic, the
attack caught within two sustained check periods everywhere, across
line rates spanning four orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.report import format_table
from ..protocols import ProtectedLink, registry

__all__ = ["ProtocolZooResult", "run"]


@dataclass
class ProtocolZooResult:
    """Per-protocol clean/attack outcomes across the registry."""

    rows: List[Tuple[str, str, float, int, int, float]]
    # (protocol, cadence, bit_rate, clean_checks, clean_alerts,
    #  attack_latency_in_periods; latency is inf when undetected)

    def no_false_alerts(self) -> bool:
        """Every clean session completed checks and raised no alert."""
        return all(
            checks >= 1 and alerts == 0
            for _, _, _, checks, alerts, _ in self.rows
        )

    def every_attack_detected(self) -> bool:
        """Each canonical attack is caught within two check periods."""
        return all(latency <= 2.0 for *_, latency in self.rows)

    def covers_the_registry(self) -> bool:
        """One row per registered protocol — the zoo is complete."""
        return [r[0] for r in self.rows] == registry.load_all()

    def report(self) -> str:
        """The protocol-zoo detection table."""
        body = [
            [name, cadence, f"{rate:.3g}", checks, alerts,
             "MISSED" if latency == float("inf") else f"{latency:.2f}"]
            for name, cadence, rate, checks, alerts, latency in self.rows
        ]
        return format_table(
            ["protocol", "cadence", "bit rate (b/s)", "clean checks",
             "false alerts", "attack latency (periods)"],
            body,
            title=(
                "Protocol zoo (paper: bus-agnostic architecture — "
                "membus Fig. 6, serial link future work, +jtag/spi/i2c)"
            ),
        )


def run(seed: int = 7, n_calibration_captures: int = 8) -> ProtocolZooResult:
    """Clean session + canonical attack for every registered protocol."""
    rows: List[Tuple[str, str, float, int, int, float]] = []
    for name in registry.load_all():
        link = ProtectedLink.from_registry(name, seed=seed)
        link.calibrate(n_captures=n_calibration_captures)

        clean = link.session(seed=1)
        attacked, _ = link.attack_session(onset_s=0.0, seed=1)
        latency_s = attacked.detection_latency(0.0)
        period = link.sustained_check_period_s()
        latency = float("inf") if latency_s is None else latency_s / period

        rows.append((
            name,
            link.spec.cadence,
            link.spec.bit_rate,
            clean.checks_run,
            len(clean.alerts()),
            latency,
        ))
    return ProtocolZooResult(rows=rows)
