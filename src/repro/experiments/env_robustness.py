"""Experiments E-VIB / E-EMI: vibration and EMI robustness (section IV-C text).

Vibration: a piezo chirp (1-50 Hz) strains the board; the paper reports the
EER rising to 0.27 %.  EMI: a high-speed digital circuit placed next to the
bus; because the aggressor is asynchronous to the bus clock, APC's
synchronised averaging rejects it and the EER *stays* at 0.06 %.  We also
run the adversarial ablation the paper does not: a *synchronous* aggressor,
which averaging cannot reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.report import format_table
from ..core.config import prototype_itdr, prototype_line_factory
from ..env.emi import EMIEnvironment, nearby_digital_circuit, synchronous_aggressor
from ..env.vibration import ChirpExcitation, VibrationCondition
from .common import AuthScores, ExperimentScale, SMALL, canonical_rows, score_lines

__all__ = ["RobustnessResult", "run_vibration", "run_emi", "run"]

#: Paper figures for the two conditions.
PAPER_VIBRATION_EER = 0.0027
PAPER_EMI_EER = 0.0006


@dataclass
class RobustnessResult:
    """EERs across environmental conditions."""

    room_eer: float
    vibration_eer: float
    emi_async_eer: float
    emi_sync_eer: Optional[float] = None

    def ordering_holds(self) -> bool:
        """The paper's qualitative ordering.

        Vibration degrades the EER well past room; asynchronous EMI leaves
        it essentially unchanged (within statistical wobble of small-count
        EER estimates).
        """
        emi_ok = self.emi_async_eer <= max(4.0 * self.room_eer, 1e-3)
        return self.vibration_eer > self.room_eer and emi_ok

    def report(self) -> str:
        """The robustness summary table."""
        rows = [
            ["room", self.room_eer, 0.0006],
            ["vibration (1-50 Hz chirp)", self.vibration_eer, PAPER_VIBRATION_EER],
            ["EMI, asynchronous", self.emi_async_eer, PAPER_EMI_EER],
        ]
        if self.emi_sync_eer is not None:
            rows.append(
                ["EMI, synchronous (ablation)", self.emi_sync_eer, "n/a"]
            )
        return format_table(
            ["condition", "EER", "paper EER"],
            rows,
            title="Environmental robustness (section IV-C)",
        )


def run_vibration(scale: ExperimentScale = SMALL, seed: int = 7) -> AuthScores:
    """Genuine/impostor scoring under the piezo chirp."""
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(scale.n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    chirp = ChirpExcitation()
    def batcher(line, n):
        strains = chirp.strain_at(np.linspace(0.0, chirp.sweep_time_s, n))
        return VibrationCondition.batch_fields(line.full_profile, strains)
    return score_lines(
        lines, itdr, scale.n_measurements, scale.n_enroll, state_batcher=batcher
    )


def run_emi(
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    environment: Optional[EMIEnvironment] = None,
) -> AuthScores:
    """Genuine/impostor scoring with an aggressor at the comparator input.

    The interference path needs per-trial sampling, so this runs capture by
    capture rather than through the binomial batch fast path.
    """
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(scale.n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    env = environment or nearby_digital_circuit()
    references = []
    for line in lines:
        enroll = itdr.capture_batch(line, scale.n_enroll)
        references.append(canonical_rows(enroll.mean(axis=0, keepdims=True))[0])
    genuine: List[np.ndarray] = []
    impostor: List[np.ndarray] = []
    for i, line in enumerate(lines):
        caps = np.stack(
            [
                itdr.capture(line, interference=env).waveform.samples
                for _ in range(scale.n_measurements)
            ]
        )
        caps = canonical_rows(caps)
        for j, reference in enumerate(references):
            scores = (1.0 + caps @ reference) / 2.0
            (genuine if i == j else impostor).append(scores)
    return AuthScores(
        genuine=np.concatenate(genuine), impostor=np.concatenate(impostor)
    )


def run(
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    include_synchronous_ablation: bool = True,
) -> RobustnessResult:
    """Full robustness sweep: room, vibration, EMI (async, optionally sync)."""
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(scale.n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    room = score_lines(lines, itdr, scale.n_measurements, scale.n_enroll)
    vibration = run_vibration(scale, seed)
    emi_async = run_emi(scale, seed)
    sync_eer = None
    if include_synchronous_ablation:
        emi_sync = run_emi(
            scale, seed, environment=synchronous_aggressor(amplitude=3e-3)
        )
        sync_eer, _ = emi_sync.eer()
    return RobustnessResult(
        room_eer=room.eer()[0],
        vibration_eer=vibration.eer()[0],
        emi_async_eer=emi_async.eer()[0],
        emi_sync_eer=sync_eer,
    )
