"""Extension experiment X-CAMPAIGN: adaptive adversaries vs the detector.

Every other attack experiment gives the adversary one shot; real
adversaries iterate.  X-CAMPAIGN runs the full campaign suite — the
canonical-scenario control, probe-placement search, one-shot and
profile-fitting cloning, and chiplet-boundary implant search — against
each protocol's own tuned fleet detector, and reports three things per
(protocol, strategy) arm: the ROC area of the suspicion statistic, the
deployed detector's first-detection round, and the best undetected
operating point the adversary reached.  Two suite-level contracts ride
along: the whole campaign is byte-identical between serial and sharded
execution at a fixed seed, and the adaptive profile-fitting cloner
evades the detector strictly better than the one-shot cloning baseline
on at least one operating point (the published ``clone_gap``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.frontier import operating_point
from ..analysis.report import format_table
from ..campaigns import CampaignOutcome, CampaignSuite
from ..core.runtime import Telemetry

__all__ = ["CampaignSweepResult", "run", "DEFAULT_PROTOCOLS"]

#: Protocols the sweep attacks by default — one clock lane and two
#: data-lane disciplines, covering both cadence kinds.
DEFAULT_PROTOCOLS = ("jtag", "spi", "i2c")

#: Strategy names that adapt round over round (the control and the
#: one-shot baseline are deliberately static).
ADAPTIVE_STRATEGIES = ("probe-search", "clone-fit", "implant-search")


@dataclass
class CampaignSweepResult:
    """Campaign frontiers for every (protocol, strategy) arm.

    Attributes:
        rows: One tuple per arm: (protocol, strategy, statistic, auc,
            first detection round or None, TPR at the 0-FPR operating
            point, final-round suspicion statistic).
        outcomes: Full per-protocol campaign outcomes.
        snapshot: The shared telemetry snapshot (carries every
            ``campaigns`` cell, including per-protocol ``clone_gap``).
        byte_identical: Whether the serial re-run of one protocol's
            campaign matched the sharded run byte for byte.
    """

    rows: List[Tuple[str, str, str, float, Optional[int], float, float]]
    outcomes: Dict[str, CampaignOutcome] = field(repr=False)
    snapshot: dict = field(repr=False)
    byte_identical: bool = True

    # -- shape predicates ----------------------------------------------
    def covers_protocols(
        self, protocols: Sequence[str] = DEFAULT_PROTOCOLS
    ) -> bool:
        """Every requested protocol produced a full strategy roster."""
        by_protocol: Dict[str, set] = {}
        for protocol, strategy, *_ in self.rows:
            by_protocol.setdefault(protocol, set()).add(strategy)
        return all(
            set(ADAPTIVE_STRATEGIES) <= by_protocol.get(p, set())
            for p in protocols
        )

    def frontiers_complete(self) -> bool:
        """Each arm has a full ROC (both corners) and a latency curve."""
        for outcome in self.outcomes.values():
            for report in outcome.arms:
                fprs = [p.fpr for p in report.roc]
                if not report.roc or min(fprs) > 0 or max(fprs) < 1:
                    return False
                if len(report.latency) != len(report.roc):
                    return False
        return True

    def adaptive_cloner_beats_baseline(self) -> bool:
        """The fitted clone evades better than one-shot, everywhere."""
        return all(
            self.snapshot["campaigns"][f"{p}/clone_gap"]["gap"] > 0
            for p in self.outcomes
        )

    def sharding_is_invisible(self) -> bool:
        """Serial and sharded campaigns agreed byte for byte."""
        return self.byte_identical

    def adaptation_pays(self) -> bool:
        """Adaptive arms end below their own worst round everywhere.

        The campaign's reason to exist: feedback-driven adaptation
        drives the final-round suspicion statistic strictly under the
        arm's peak (early rounds explore, so the peak rather than the
        opening round is the fair reference) for every adaptive
        strategy on every protocol.
        """
        for outcome in self.outcomes.values():
            for name in ADAPTIVE_STRATEGIES:
                samples = outcome.arm(name).attack_samples
                if samples[-1] >= max(samples[:-1]):
                    return False
        return True

    # -- report ---------------------------------------------------------
    def report(self) -> str:
        """The campaign frontier table plus the clone-gap lines."""
        body = []
        for (protocol, strategy, statistic, auc, first, tpr0, final) in (
            self.rows
        ):
            body.append([
                protocol,
                strategy,
                statistic,
                f"{auc:.3f}",
                "never" if first is None else str(first),
                f"{tpr0:.2f}",
                f"{final:.4g}",
            ])
        table = format_table(
            ["protocol", "strategy", "channel", "ROC AUC",
             "detected @ round", "TPR @ FPR=0", "final statistic"],
            body,
            title=(
                "Adaptive adversary campaigns (paper section III threat "
                "model, extended per ChipletQuake / Awal & Rahman)"
            ),
        )
        gaps = [
            f"  {p}: adaptive-vs-oneshot clone gap = "
            f"{self.snapshot['campaigns'][f'{p}/clone_gap']['gap']:.2f} "
            f"(TPR {self.snapshot['campaigns'][f'{p}/clone_gap']['tpr_oneshot']:.2f}"
            f" -> {self.snapshot['campaigns'][f'{p}/clone_gap']['tpr_adaptive']:.2f})"
            for p in sorted(self.outcomes)
        ]
        determinism = (
            "  serial/sharded byte-identity: "
            + ("OK" if self.byte_identical else "VIOLATED")
        )
        return "\n".join([table, "", *gaps, determinism])


def run(
    seed: int = 7,
    n_rounds: int = 5,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    shards: int = 2,
) -> CampaignSweepResult:
    """The full campaign sweep plus its determinism cross-check.

    Runs the suite sharded, then re-runs the first protocol's campaign
    serially and compares canonical bytes — the sharding-invisibility
    contract, asserted on every invocation rather than trusted.
    """
    telemetry = Telemetry()
    suite = CampaignSuite(
        protocols=protocols,
        seed=seed,
        n_rounds=n_rounds,
        shards=shards,
        backend="auto",
        telemetry=telemetry,
    )
    outcomes = suite.run()

    from ..campaigns import Campaign

    first = suite.protocols[0]
    serial = Campaign(
        first, seed=seed, n_rounds=n_rounds, shards=1, backend="serial"
    ).run()
    byte_identical = (
        serial.canonical_bytes() == outcomes[first].canonical_bytes()
    )

    rows = []
    for protocol in suite.protocols:
        for report in outcomes[protocol].arms:
            tpr0 = operating_point(report.roc, max_fpr=0.0).tpr
            rows.append((
                protocol,
                report.strategy,
                report.statistic,
                report.auc,
                report.first_detection_round,
                tpr0,
                report.rounds[-1].attack_statistic,
            ))
    return CampaignSweepResult(
        rows=rows,
        outcomes=outcomes,
        snapshot=telemetry.snapshot(),
        byte_identical=byte_identical,
    )
