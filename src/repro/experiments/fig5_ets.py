"""Experiment F5: equivalent time sampling (paper Fig. 5 and section II-D).

Demonstrates the ETS numbers the paper quotes — an 11.16 ps phase step
giving an equivalent rate above 80 GSa/s and ~0.84 mm spatial resolution on
FR-4 — and verifies the mechanism: interleaving the M phase-stepped
real-time records reconstructs the dense waveform exactly (the LTI
repeatability argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.ets import ETSSampler, PhaseSteppingPLL
from ..txline.materials import FR4

__all__ = ["Fig5Result", "run"]


@dataclass
class Fig5Result:
    """ETS rate/resolution numbers and the reconstruction check."""

    clock_frequency: float
    phase_step: float
    steps_per_period: int
    equivalent_rate: float
    spatial_resolution_m: float
    reconstruction_error: float
    realtime_points: int
    ets_points: int

    def matches_paper_numbers(self) -> bool:
        """>80 GSa/s equivalent rate and ~0.84 mm resolution."""
        return (
            self.equivalent_rate > 80e9
            and abs(self.spatial_resolution_m - 0.837e-3) < 0.05e-3
        )

    def report(self) -> str:
        """Fig. 5 as a table."""
        return format_table(
            ["metric", "value"],
            [
                ["clock (real-time rate)", f"{self.clock_frequency / 1e6:.2f} MHz"],
                ["phase step tau", f"{self.phase_step * 1e12:.2f} ps"],
                ["M (phases per period)", self.steps_per_period],
                ["equivalent rate", f"{self.equivalent_rate / 1e9:.1f} GSa/s"],
                [
                    "spatial resolution",
                    f"{self.spatial_resolution_m * 1e3:.3f} mm (paper: 0.837 mm)",
                ],
                ["real-time points per record", self.realtime_points],
                ["ETS points per record", self.ets_points],
                ["interleave reconstruction error", self.reconstruction_error],
            ],
            title="Fig. 5 — equivalent time sampling",
        )


def run(seed: int = 0) -> Fig5Result:
    """Measure a real line's reflection via explicit phase stepping."""
    pll = PhaseSteppingPLL()  # prototype numbers
    sampler = ETSSampler(pll)
    factory = prototype_line_factory()
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    dense = itdr.true_reflection(line)

    records = sampler.acquire(dense)
    rebuilt = sampler.interleave(records)
    n = min(len(rebuilt), len(dense))
    error = float(np.max(np.abs(rebuilt.samples[:n] - dense.samples[:n])))

    velocity = FR4.velocity_at(FR4.t_ref_c)
    return Fig5Result(
        clock_frequency=pll.clock_frequency,
        phase_step=pll.phase_step,
        steps_per_period=pll.steps_per_period,
        equivalent_rate=pll.equivalent_sample_rate,
        spatial_resolution_m=pll.spatial_resolution(velocity),
        reconstruction_error=error,
        realtime_points=len(records[0]),
        ets_points=len(dense),
    )
