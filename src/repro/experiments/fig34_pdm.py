"""Experiment F3/F4: probability density modulation (paper Figs. 3-4).

Reproduces the PDM demonstration: with ``5 f_m = 6 f_s`` (the paper's
example), a fixed waveform point meets the triangle wave at evenly spaced
phases, creating a ladder of reference levels whose mixture CDF widens the
linear conversion window far beyond bare APC's +/-2 sigma.  The degenerate
``f_m = f_s`` case — which "completely removes the effectiveness of an
external modulation signal" — is measured too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..core.apc import APCConverter
from ..core.comparator import Comparator
from ..core.pdm import PDMScheme, TriangleWave, VernierRelation

__all__ = ["Fig34Result", "run"]


@dataclass
class Fig34Result:
    """PDM dynamic-range comparison."""

    reference_levels: np.ndarray
    bare_window: tuple
    pdm_window: tuple
    noise_sigma: float
    amplitude: float
    widening_factor: float
    degenerate_is_effective: bool
    max_voltage_error_in_window: float

    def dynamic_range_widened(self, minimum_factor: float = 2.0) -> bool:
        """PDM widens the usable window by at least ``minimum_factor``."""
        return self.widening_factor >= minimum_factor

    def report(self) -> str:
        """Figs. 3-4 as a table."""
        b_lo, b_hi = self.bare_window
        p_lo, p_hi = self.pdm_window
        return format_table(
            ["metric", "value"],
            [
                ["vernier relation", "5 f_m = 6 f_s (paper example)"],
                [
                    "reference levels (V)",
                    ", ".join(f"{v:.4g}" for v in self.reference_levels),
                ],
                ["bare APC window (V)", f"[{b_lo:.4g}, {b_hi:.4g}]"],
                ["PDM window (V)", f"[{p_lo:.4g}, {p_hi:.4g}]"],
                ["widening factor", self.widening_factor],
                [
                    "f_m = f_s effective?",
                    "yes (BUG)" if self.degenerate_is_effective else "no (as paper says)",
                ],
                ["max |V_est - V| in PDM window", self.max_voltage_error_in_window],
            ],
            title="Figs. 3-4 — PDM reference ladder and widened CDF",
        )


def run(
    noise_sigma: float = 3e-3,
    amplitude: float = 18e-3,
    repetitions: int = 4096,
    seed: int = 0,
) -> Fig34Result:
    """Build the paper's 5:6 PDM scheme and measure its window."""
    rng = np.random.default_rng(seed)
    comparator = Comparator(noise_sigma=noise_sigma)
    bare = APCConverter(comparator, v_ref=0.0)
    relation = VernierRelation(5, 6)
    wave = TriangleWave(amplitude=amplitude, frequency=5e6 * 5 / 6)
    pdm = PDMScheme(wave, relation, comparator)

    bare_window = bare.linear_window()
    pdm_window = pdm.linear_window()
    widening = (pdm_window[1] - pdm_window[0]) / (
        bare_window[1] - bare_window[0]
    )

    # Degenerate case: f_m = f_s reduces to ratio 1/1 -> one phase.
    degenerate = VernierRelation(1, 1)

    # End-to-end accuracy across the PDM window.
    lo, hi = pdm_window
    v_sweep = np.linspace(lo, hi, 61)
    v_est = pdm.estimate_voltage(v_sweep, repetitions, rng)
    max_err = float(np.max(np.abs(v_est - v_sweep)))

    return Fig34Result(
        reference_levels=pdm.reference_levels(),
        bare_window=bare_window,
        pdm_window=pdm_window,
        noise_sigma=noise_sigma,
        amplitude=amplitude,
        widening_factor=float(widening),
        degenerate_is_effective=degenerate.is_effective,
        max_voltage_error_in_window=max_err,
    )
