"""Extension experiment X-ENROLL: how much calibration is enough?

The paper says calibration happens "at the manufacturing time or user
installation time" but never sizes it.  Enrollment depth is a real
deployment knob: each additional averaged capture cleans the stored
reference (noise falls as 1/sqrt(K)) but costs installation time.  This
study sweeps the enrollment capture count and reports the genuine-score
statistics and EER at each depth — the knee of the curve is the number a
datasheet would print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..core.auth import equal_error_rate
from ..core.config import prototype_itdr, prototype_line_factory
from .common import canonical_rows

__all__ = ["EnrollmentResult", "run"]


@dataclass
class EnrollmentResult:
    """Per-depth calibration quality."""

    rows: List[Tuple[int, float, float, float]]
    # (n_enroll, genuine mean, genuine std, EER)

    def deeper_is_better(self) -> bool:
        """Genuine mean improves (weakly) with enrollment depth."""
        means = [m for _, m, _, _ in self.rows]
        return means[-1] >= means[0]

    def knee_depth(self, tolerance: float = 0.005) -> int:
        """Smallest depth whose genuine mean is within ``tolerance`` of the
        deepest setting's — the datasheet number."""
        best = self.rows[-1][1]
        for n, mean, _, _ in self.rows:
            if mean >= best - tolerance:
                return n
        return self.rows[-1][0]

    def report(self) -> str:
        """The enrollment-depth table."""
        table = format_table(
            ["enroll captures", "genuine mean", "genuine std", "EER"],
            [list(r) for r in self.rows],
            title="Enrollment-depth study (calibration cost vs quality)",
        )
        return table + f"\nknee of the curve: {self.knee_depth()} captures"


def run(
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
    n_lines: int = 4,
    n_measurements: int = 600,
    seed: int = 7,
) -> EnrollmentResult:
    """Sweep enrollment depth on a fixed line population."""
    depths = sorted(set(int(d) for d in depths))
    if depths[0] < 1:
        raise ValueError("depths must be >= 1")
    if n_lines < 2 or n_measurements < 10:
        raise ValueError("need >= 2 lines and >= 10 measurements")
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))

    # Fresh verification captures, shared across depths for comparability.
    captures = [
        canonical_rows(itdr.capture_batch(line, n_measurements))
        for line in lines
    ]
    # One deep enrollment pool per line; shallower depths use its prefix,
    # mirroring an installer who simply stops earlier.
    pools = [itdr.capture_batch(line, max(depths)) for line in lines]

    rows = []
    for depth in depths:
        references = [
            canonical_rows(pool[:depth].mean(axis=0, keepdims=True))[0]
            for pool in pools
        ]
        genuine, impostor = [], []
        for i in range(n_lines):
            for j in range(n_lines):
                scores = (1.0 + captures[i] @ references[j]) / 2.0
                (genuine if i == j else impostor).append(scores)
        g = np.concatenate(genuine)
        im = np.concatenate(impostor)
        eer, _ = equal_error_rate(g, im)
        rows.append((depth, float(g.mean()), float(g.std()), eer))
    return EnrollmentResult(rows=rows)
