"""Extension experiment X-ADAPT: drift-hardened deployments.

Two studies of reference-management policy against the drift mechanisms
the evaluation exposes:

1. **Temperature compensation** — Fig. 8 shows the hot swing costs EER.
   Enrolling at both temperature extremes and fusing by best-matching
   reference recovers most of it: an honest line always resembles *one*
   of its enrolled selves.

2. **Aging with rolling re-enrollment** — over years of service the IIP
   drifts irreversibly; a static reference decays while an
   :class:`~repro.core.adaptive.AdaptiveReference` tracks the drift from
   strongly-accepted captures.  Security check: the adaptive reference
   must never drift *toward an impostor* (updates only fire above
   threshold, which impostors never reach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.report import format_table
from ..core.adaptive import AdaptiveReference
from ..core.auth import equal_error_rate
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fingerprint import Fingerprint
from ..env.aging import AgingModel
from ..env.temperature import TemperatureCondition, TemperatureSweep
from .common import canonical_rows

__all__ = ["AdaptationResult", "run_temperature_compensation", "run_aging",
           "run"]


@dataclass
class AdaptationResult:
    """Both studies' outcomes."""

    single_ref_hot_eer: float
    dual_ref_hot_eer: float
    aging_rows: List[Tuple[float, float, float]]
    # (years, static score, adaptive score)
    adaptive_updates: int
    impostor_never_updates: bool

    def compensation_helps(self) -> bool:
        """Dual enrollment strictly improves (or matches) the hot EER."""
        return self.dual_ref_hot_eer <= self.single_ref_hot_eer

    def adaptation_tracks_aging(self) -> bool:
        """Static decays with age; the adaptive reference holds."""
        _, static_end, adaptive_end = self.aging_rows[-1]
        _, static_start, adaptive_start = self.aging_rows[0]
        return (
            static_end < static_start - 0.005
            and adaptive_end > static_end
            and adaptive_end > adaptive_start - 0.01
        )

    def report(self) -> str:
        """Both studies as tables."""
        comp = format_table(
            ["policy", "hot-swing EER"],
            [
                ["single reference (room)", self.single_ref_hot_eer],
                ["dual reference (room + hot)", self.dual_ref_hot_eer],
            ],
            title="Temperature compensation (vs Fig. 8's degradation)",
        )
        aging = format_table(
            ["service years", "static-ref score", "adaptive-ref score"],
            [list(r) for r in self.aging_rows],
            title=(
                f"Aging (adaptive reference updated {self.adaptive_updates} "
                "times; impostor-driven updates: "
                f"{'none' if self.impostor_never_updates else 'OCCURRED'})"
            ),
        )
        return comp + "\n\n" + aging


def run_temperature_compensation(
    n_lines: int = 4, n_measurements: int = 800, seed: int = 7
) -> Tuple[float, float]:
    """(single-reference, dual-reference) hot-swing EERs."""
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    sweep = TemperatureSweep(23.0, 75.0)

    # References: room-only, and room + hot.
    room_refs, hot_refs = [], []
    for line in lines:
        room = canonical_rows(itdr.capture_batch(line, 16).mean(
            axis=0, keepdims=True))[0]
        hot_state = TemperatureCondition(75.0).modify(line.full_profile)
        z = np.tile(hot_state.z, (16, 1))
        tau = np.tile(hot_state.tau, (16, 1))
        hot = canonical_rows(
            itdr.capture_batch(line, 16, z_batch=z, tau_batch=tau).mean(
                axis=0, keepdims=True
            )
        )[0]
        room_refs.append(room)
        hot_refs.append(hot)

    single_g, single_i, dual_g, dual_i = [], [], [], []
    for i, line in enumerate(lines):
        z_batch, tau_batch = sweep.batch_fields(
            line.full_profile, n_measurements
        )
        captures = canonical_rows(
            itdr.capture_batch(
                line, n_measurements, z_batch=z_batch, tau_batch=tau_batch
            )
        )
        for j in range(n_lines):
            s_room = (1.0 + captures @ room_refs[j]) / 2.0
            s_hot = (1.0 + captures @ hot_refs[j]) / 2.0
            fused = np.maximum(s_room, s_hot)
            if i == j:
                single_g.append(s_room)
                dual_g.append(fused)
            else:
                single_i.append(s_room)
                dual_i.append(fused)
    single_eer, _ = equal_error_rate(
        np.concatenate(single_g), np.concatenate(single_i)
    )
    dual_eer, _ = equal_error_rate(
        np.concatenate(dual_g), np.concatenate(dual_i)
    )
    return single_eer, dual_eer


def run_aging(
    years: Tuple[float, ...] = tuple(float(y) for y in range(0, 13)),
    checks_per_step: int = 24,
    seed: int = 7,
) -> Tuple[List[Tuple[float, float, float]], int, bool]:
    """(aging rows, adaptive update count, impostor-never-updates flag).

    Drift accumulates gradually (the default fraction-of-a-percent per
    year); the adaptive reference sees the line at every yearly service
    check, so each tracking step is small — the regime rolling
    re-enrollment is designed for.
    """
    factory = prototype_line_factory()
    line = factory.manufacture(seed=1)
    impostor = factory.manufacture(seed=2)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    aging = AgingModel(drift_per_year=0.004)

    static_ref = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(16)]
    )
    adaptive = AdaptiveReference(static_ref, threshold=0.80, alpha=0.08)

    rows = []
    for age in years:
        condition = aging.at_age(line.full_profile, age)
        static_scores, adaptive_scores = [], []
        for _ in range(checks_per_step):
            capture = itdr.capture(line, modifiers=[condition])
            static_scores.append(
                float(
                    (1.0 + np.dot(
                        canonical_rows(
                            capture.waveform.samples[None, :]
                        )[0],
                        static_ref.samples,
                    ))
                    / 2.0
                )
            )
            adaptive_scores.append(adaptive.score(capture))
            adaptive.consider(capture)
        rows.append(
            (age, float(np.mean(static_scores)), float(np.mean(adaptive_scores)))
        )

    # Security: the impostor never triggers updates of the drifted ref.
    updates_before = adaptive.n_updates
    from ..txline.line import TransmissionLine

    renamed = TransmissionLine(
        name=line.name,
        board_profile=impostor.board_profile,
        material=impostor.material,
    )
    for _ in range(32):
        adaptive.consider(itdr.capture(renamed))
    impostor_never_updates = adaptive.n_updates == updates_before
    return rows, adaptive.n_updates, impostor_never_updates


def run(seed: int = 7) -> AdaptationResult:
    """Run both adaptation studies."""
    single_eer, dual_eer = run_temperature_compensation(seed=seed)
    aging_rows, n_updates, impostor_safe = run_aging(seed=seed)
    return AdaptationResult(
        single_ref_hot_eer=single_eer,
        dual_ref_hot_eer=dual_eer,
        aging_rows=aging_rows,
        adaptive_updates=n_updates,
        impostor_never_updates=impostor_safe,
    )
