"""Experiment F6: the protected memory bus in action (paper Fig. 6 / III).

Three trace-driven runs of the protected SDRAM system:

* **clean** — DIVOT monitoring adds *zero* data-path latency (transparency
  claim: measurement rides on existing edges);
* **probe mid-run** — a magnetic probe lands on the bus during traffic;
  the monitors raise an alert within one monitoring period;
* **cold boot** — the module is moved to an attacker's machine; the
  module-side gate blocks every read, so the frozen contents are
  unreadable off the paired bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks import AttackTimeline, CapacitiveSnoop
from ..core.auth import Authenticator
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.tamper import TamperDetector
from ..membus import (
    AddressMap,
    MemoryBus,
    ProtectedMemorySystem,
    RunResult,
    SDRAMDevice,
    TraceGenerator,
)
from ..txline.materials import FR4

__all__ = ["Fig6Result", "build_system", "run"]


def build_system(
    seed: int = 10,
    clock_hz: float = 1.2e9,
    auth_threshold: float = 0.90,
    tamper_threshold: float = 2.5e-3,
    captures_per_check: int = 16,
) -> Tuple[ProtectedMemorySystem, TraceGenerator]:
    """Assemble a calibrated protected memory system.

    The monitoring depth (16 averaged captures per decision) and tamper
    threshold are sized for the bus-snooping attack class this scenario
    exercises; the quieter magnetic probe needs the deeper averaging of
    the Fig. 9 study (see ``fig9_tamper``).
    """
    factory = prototype_line_factory()
    line = factory.manufacture(seed=seed, name="membus-clk")
    bus = MemoryBus(line=line, clock_frequency=clock_hz)
    address_map = AddressMap(n_banks=4, n_rows=256, n_columns=128)
    device = SDRAMDevice(address_map=address_map)
    cpu_itdr = prototype_itdr(rng=np.random.default_rng(seed + 1))
    module_itdr = prototype_itdr(rng=np.random.default_rng(seed + 2))
    detector = TamperDetector(
        threshold=tamper_threshold,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=cpu_itdr.probe_edge().duration,
    )
    system = ProtectedMemorySystem(
        bus,
        device,
        cpu_itdr,
        module_itdr,
        Authenticator(threshold=auth_threshold),
        detector,
        captures_per_check=captures_per_check,
    )
    system.calibrate()
    return system, TraceGenerator(address_map, seed=seed + 3)


@dataclass
class Fig6Result:
    """Outcomes of the three protected-memory scenarios.

    ``telemetry`` holds one runtime telemetry snapshot per scenario —
    the shared structured surface the monitoring metrics below are read
    from (the traffic metrics still come from the run results).
    """

    clean: RunResult
    probed: RunResult
    cold_boot: RunResult
    probe_onset_s: float
    unprotected_mean_latency: float
    telemetry: Dict[str, dict] = field(default_factory=dict)

    @property
    def transparency_holds(self) -> bool:
        """Clean-run mean latency equals the unprotected system's."""
        return np.isclose(
            self.clean.mean_latency_cycles,
            self.unprotected_mean_latency,
            rtol=1e-9,
        )

    @property
    def probe_detected(self) -> bool:
        """The mid-run probe raised an alert after its onset."""
        return self.telemetry["probed"]["detection"]["latency_s"] is not None

    @property
    def cold_boot_blocked(self) -> bool:
        """Every attacker access was rejected by the module gate."""
        attempts = len(self.cold_boot.completed)
        return attempts > 0 and self.cold_boot.n_blocked_accesses == attempts

    def report(self) -> str:
        """The three-scenario summary table (telemetry-surface metrics)."""
        clean, probed = self.telemetry["clean"], self.telemetry["probed"]
        detect = probed["detection"]["latency_s"]
        return format_table(
            ["scenario", "metric", "value"],
            [
                ["clean", "requests completed", len(self.clean.completed)],
                ["clean", "mean latency (cycles)", self.clean.mean_latency_cycles],
                [
                    "clean",
                    "unprotected latency (cycles)",
                    self.unprotected_mean_latency,
                ],
                ["clean", "monitoring checks", clean["totals"]["checks"]],
                ["clean", "false alerts", clean["totals"]["flagged"]],
                ["probe", "alerts", probed["totals"]["flagged"]],
                [
                    "probe",
                    "detection latency",
                    "not detected" if detect is None else f"{detect * 1e6:.1f} us",
                ],
                ["cold boot", "attacker accesses", len(self.cold_boot.completed)],
                ["cold boot", "blocked", self.cold_boot.n_blocked_accesses],
            ],
            title="Fig. 6 — protected memory bus scenarios",
        )


def run(
    n_requests: int = 2000,
    seed: int = 10,
    probe_position_m: float = 0.12,
) -> Fig6Result:
    """Run the clean / probed / cold-boot scenario suite."""
    # Unprotected reference for the transparency check.
    factory = prototype_line_factory()
    address_map = AddressMap(n_banks=4, n_rows=256, n_columns=128)
    plain_device = SDRAMDevice(address_map=address_map)
    gen0 = TraceGenerator(address_map, seed=seed + 3)
    plain_lat = []
    for req in gen0.random(n_requests, write_fraction=0.4):
        plain_lat.append(plain_device.access(req).latency_cycles)
    unprotected_mean = float(np.mean(plain_lat))

    # Clean protected run (same trace seed -> same request stream).
    system, gen = build_system(seed=seed)
    clean = system.run(gen.random(n_requests, write_fraction=0.4))

    # A snooping pod (bus monitor) attaches mid-run.
    system2, gen2 = build_system(seed=seed)
    probe_onset = system2.capture_period_s * 1.2
    timeline = AttackTimeline().add(
        CapacitiveSnoop(probe_position_m), start_s=probe_onset
    )
    probed = system2.run(
        gen2.random(8 * n_requests, write_fraction=0.4), timeline=timeline
    )

    # Cold boot: module moved to a foreign machine.
    system3, gen3 = build_system(seed=seed)
    foreign = factory.manufacture(seed=seed + 100, name="attacker-bus")
    cold = system3.simulate_cold_boot_theft(
        foreign, gen3.random(64, write_fraction=0.0)
    )

    return Fig6Result(
        clean=clean,
        probed=probed,
        cold_boot=cold,
        probe_onset_s=probe_onset,
        unprotected_mean_latency=unprotected_mean,
        telemetry={
            "clean": system.telemetry.snapshot(),
            "probed": system2.telemetry.snapshot(onset_s=probe_onset),
            "cold_boot": system3.telemetry.snapshot(),
        },
    )
