"""Experiment T-OVH: hardware overhead (paper section IV-A utilisation).

The Vivado report for the prototype: 71 registers, 124 LUTs, ~80 % of them
counters, a sliver of the xczu7ev's fabric; and most of the circuit is
shareable across iTDR instances so protecting many buses costs little more
than protecting one.  The structural resource model regenerates those rows
and extends them with the multi-bus scaling the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.report import format_table
from ..core.config import prototype_itdr_config
from ..core.itdr import ITDRConfig
from ..core.resources import ResourceModel, ResourceReport

__all__ = ["OverheadResult", "run"]

#: Paper's Vivado utilisation numbers for the prototype circuit.
PAPER_REGISTERS = 71
PAPER_LUTS = 124
PAPER_COUNTER_FRACTION = 0.80


@dataclass
class OverheadResult:
    """Resource totals, breakdown, and multi-bus scaling."""

    report: ResourceReport
    scaling: List[Tuple[int, int, int]]  # (n_itdrs, registers, luts)

    def matches_paper_totals(self) -> bool:
        """Exact register/LUT totals for the prototype configuration."""
        return (
            self.report.registers == PAPER_REGISTERS
            and self.report.luts == PAPER_LUTS
        )

    def counter_dominated(self, tolerance: float = 0.08) -> bool:
        """Counters hold ~80 % of the registers (paper's remark)."""
        return (
            abs(self.report.counter_register_fraction - PAPER_COUNTER_FRACTION)
            <= tolerance
        )

    def report_text(self) -> str:
        """The overhead table plus scaling rows."""
        block_rows = [
            [name, regs, luts, "counter" if c else "", "shared" if s else "per-bus"]
            for name, regs, luts, c, s in self.report.rows()
        ]
        blocks = format_table(
            ["block", "registers", "LUTs", "class", "scope"],
            block_rows,
            title="DIVOT circuit blocks (prototype configuration)",
        )
        marginal_regs, marginal_luts = self.report.marginal_cost()
        totals = format_table(
            ["metric", "model", "paper"],
            [
                ["registers", self.report.registers, PAPER_REGISTERS],
                ["LUTs", self.report.luts, PAPER_LUTS],
                [
                    "counter register fraction",
                    f"{self.report.counter_register_fraction:.1%}",
                    "~80%",
                ],
                [
                    "shareable fraction",
                    f"{self.report.shared_fraction:.1%}",
                    ">90%",
                ],
                [
                    "LUT utilisation (xczu7ev)",
                    f"{self.report.lut_utilization:.4%}",
                    "(paper: \"~0.8% of available resources\")",
                ],
                [
                    "BRAM (fingerprint + FIFO)",
                    f"{self.report.memory_bits} bits",
                    "not in the paper's FF/LUT figure",
                ],
                ["marginal cost per extra bus", f"{marginal_regs} FF / {marginal_luts} LUT", "-"],
            ],
            title="Totals vs. paper",
        )
        scale_rows = [[n, r, l] for n, r, l in self.scaling]
        scaling = format_table(
            ["protected buses", "registers", "LUTs"],
            scale_rows,
            title="Scaling to many buses (sharing applied)",
        )
        return "\n\n".join([blocks, totals, scaling])


def run(
    config: ITDRConfig = None,
    n_record_points: int = 400,
    bus_counts: Tuple[int, ...] = (1, 4, 16, 64),
) -> OverheadResult:
    """Evaluate the resource model at the prototype operating point."""
    config = config or prototype_itdr_config()
    model = ResourceModel(config, n_record_points=n_record_points)
    report = model.report(n_itdrs=1)
    scaling = []
    for n in bus_counts:
        r = model.report(n_itdrs=n)
        scaling.append((n, r.registers, r.luts))
    return OverheadResult(report=report, scaling=scaling)
