"""Experiment F8: temperature robustness (paper Fig. 8).

The oven swings 23 -> 75 C while captures continue against the
room-temperature enrollment.  Expected shape: the genuine distribution
moves left (lower similarity), the impostor distribution stays put, and the
EER rises from <0.06 % to ~0.14 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import format_table
from ..core.config import prototype_itdr, prototype_line_factory
from ..env.temperature import TemperatureSweep
from .common import AuthScores, ExperimentScale, SMALL, score_lines

__all__ = ["Fig8Result", "run"]

#: The paper's hot-swing EER.
PAPER_HOT_EER = 0.0014


@dataclass
class Fig8Result:
    """Temperature-experiment outcome: room vs swing conditions."""

    room: AuthScores
    hot: AuthScores
    room_eer: float
    hot_eer: float
    genuine_shift: float  # room genuine mean minus hot genuine mean
    impostor_shift: float

    def shape_holds(self) -> bool:
        """The paper's qualitative claims, checkable.

        The genuine distribution moves left and the EER rises.  (Impostor
        scores also drift slightly in this model — hot captures decorrelate
        from the room-temperature references' shared nominal structure — so
        the robust, scale-independent part of the paper's claim is the
        genuine shift plus the EER increase.)
        """
        return self.genuine_shift > 0 and self.hot_eer >= self.room_eer

    def report(self) -> str:
        """Fig. 8 as text: the distribution shift and EER comparison."""
        r, h = self.room.summary(), self.hot.summary()
        return format_table(
            ["metric", "room (23C)", "swing (23-75C)"],
            [
                ["genuine mean", r["genuine_mean"], h["genuine_mean"]],
                ["genuine std", r["genuine_std"], h["genuine_std"]],
                ["impostor mean", r["impostor_mean"], h["impostor_mean"]],
                ["EER", self.room_eer, self.hot_eer],
                ["paper EER", 0.0006, PAPER_HOT_EER],
            ],
            title="Fig. 8 — genuine distribution under temperature swing",
        )


def run(scale: ExperimentScale = SMALL, seed: int = 7) -> Fig8Result:
    """Run the temperature experiment at the given scale."""
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(scale.n_lines)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    room = score_lines(lines, itdr, scale.n_measurements, scale.n_enroll)
    sweep = TemperatureSweep(23.0, 75.0)
    hot = score_lines(
        lines,
        itdr,
        scale.n_measurements,
        scale.n_enroll,
        state_batcher=lambda line, n: sweep.batch_fields(line.full_profile, n),
    )
    room_eer, _ = room.eer()
    hot_eer, _ = hot.eer()
    return Fig8Result(
        room=room,
        hot=hot,
        room_eer=room_eer,
        hot_eer=hot_eer,
        genuine_shift=float(room.genuine.mean() - hot.genuine.mean()),
        impostor_shift=float(room.impostor.mean() - hot.impostor.mean()),
    )
