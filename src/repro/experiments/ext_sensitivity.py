"""Extension experiment X-SENS: averaging depth vs tamper sensitivity.

The quietest attack (the magnetic probe) hides below single-capture noise;
averaging K captures lowers the clean floor as 1/K while the attack's
deterministic signature stands still — but each factor of K multiplies
detection latency.  This study sweeps K and reports floor, signature,
margin, and the resulting worst-case detection latency at the prototype
and at a GHz-class clock: the complete trade the deployment engineer
chooses on, and the quantified version of EXPERIMENTS.md's caveat about
tamper-path averaging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks import MagneticProbe
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fingerprint import Fingerprint
from ..core.tamper import TamperDetector
from ..txline.materials import FR4

__all__ = ["SensitivityResult", "run"]


@dataclass
class SensitivityResult:
    """Per-depth floor/signature/margin/latency rows."""

    rows: List[Tuple[int, float, float, float, float, float]]
    # (K, clean floor, probe peak, margin,
    #  latency_at_prototype_s, latency_at_ghz_s)

    def margin_grows_with_averaging(self) -> bool:
        """Deeper averaging buys margin (the 1/K floor mechanism)."""
        margins = [m for _, _, _, m, _, _ in self.rows]
        return margins[-1] > margins[0]

    def detection_depth(self, required_margin: float = 2.0) -> int:
        """Smallest K whose margin clears ``required_margin`` (0 if none)."""
        for k, _, _, margin, _, _ in self.rows:
            if margin >= required_margin:
                return k
        return 0

    def report(self) -> str:
        """The sensitivity/latency trade table."""
        table = format_table(
            ["K (captures)", "clean floor", "probe peak", "margin",
             "latency @156MHz", "latency @3.2GHz"],
            [
                [k, floor, peak, f"{margin:.1f}x",
                 f"{lat_proto * 1e3:.1f} ms", f"{lat_ghz * 1e6:.0f} us"]
                for k, floor, peak, margin, lat_proto, lat_ghz in self.rows
            ],
            title=(
                "Averaging depth vs magnetic-probe sensitivity (floor falls "
                "~1/K; the signature stands still; latency grows with K)"
            ),
        )
        k = self.detection_depth()
        note = (
            f"\nsmallest depth with >=2x margin: K = {k}"
            if k
            else "\nno swept depth reaches 2x margin"
        )
        return table + note


def run(
    depths: Sequence[int] = (8, 32, 128, 256),
    n_clean: int = 8,
    seed: int = 0,
) -> SensitivityResult:
    """Sweep the tamper-path averaging depth against the magnetic probe."""
    depths = sorted(set(int(k) for k in depths))
    if depths[0] < 1 or n_clean < 2:
        raise ValueError("depths >= 1 and n_clean >= 2 required")
    factory = prototype_line_factory(attach_receiver=True)
    line = factory.manufacture(seed=1)
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    reference = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(max(depths))]
    )
    detector = TamperDetector(
        threshold=1.0,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )
    probe = MagneticProbe(0.12)
    per_capture = itdr.budget(itdr.record_length(line)).duration_s
    per_capture_ghz = itdr.budget(
        itdr.record_length(line), trigger_rate=3.2e9
    ).duration_s

    rows = []
    for k in depths:
        floor = max(
            float(
                detector.error_profile(
                    itdr.capture_averaged(line, k), reference
                ).samples.max()
            )
            for _ in range(n_clean)
        )
        peak = float(
            np.mean(
                [
                    detector.error_profile(
                        itdr.capture_averaged(line, k, modifiers=[probe]),
                        reference,
                    ).samples.max()
                    for _ in range(3)
                ]
            )
        )
        margin = peak / floor if floor > 0 else float("inf")
        rows.append(
            (k, floor, peak, margin, k * per_capture, k * per_capture_ghz)
        )
    return SensitivityResult(rows=rows)
