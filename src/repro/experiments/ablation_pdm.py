"""Ablation A-PDM: what PDM buys, and how the ladder must be sized.

Three design questions from DESIGN.md:

1. **PDM off** — bare APC saturates outside +/-2 sigma; waveforms whose
   peaks exceed the window come back clipped, degrading fingerprints.
2. **Degenerate Vernier** — f_m = f_s pins every trigger to one reference
   voltage (the paper's warning); the scheme silently reduces to bare APC.
3. **Ladder density** — a reproduction finding: with triangle amplitude
   large against sigma, the distinct levels sit several sigma apart and
   the mixture CDF develops plateaus whose low slope *compresses* small
   waveform features (we measured tamper signatures shrinking ~2.5x).
   Level spacing of <= ~2 sigma keeps the response faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.report import format_table
from ..core.apc import APCConverter
from ..core.comparator import Comparator
from ..core.pdm import PDMScheme, TriangleWave, VernierRelation

__all__ = ["PDMAblationResult", "run"]


@dataclass
class PDMAblationResult:
    """Window widths and reconstruction fidelity across PDM settings."""

    bare_window_v: float
    pdm_window_v: float
    bare_rmse_wide: float
    pdm_rmse_wide: float
    ladder_rows: List[Tuple[str, float, float]]  # (label, spacing/sigma, rmse)

    def pdm_wins_on_wide_signals(self) -> bool:
        """PDM reconstructs a wide-swing signal bare APC clips."""
        return self.pdm_rmse_wide < 0.5 * self.bare_rmse_wide

    def dense_ladder_wins(self) -> bool:
        """Finer level spacing reconstructs better than coarse spacing."""
        rmses = [r for _, _, r in self.ladder_rows]
        return rmses[0] <= rmses[-1]

    def report(self) -> str:
        """The ablation tables."""
        summary = format_table(
            ["metric", "bare APC", "PDM"],
            [
                ["linear window (V)", self.bare_window_v, self.pdm_window_v],
                ["RMSE on wide-swing signal (V)", self.bare_rmse_wide, self.pdm_rmse_wide],
            ],
            title="PDM on/off",
        )
        ladder = format_table(
            ["ladder", "level spacing / sigma", "RMSE (V)"],
            [[label, s, r] for label, s, r in self.ladder_rows],
            title="Ladder density (reproduction finding: keep spacing <= 2 sigma)",
        )
        return summary + "\n\n" + ladder


def _reconstruction_rmse(estimator, v_signal, repetitions, rng) -> float:
    est = estimator(v_signal, repetitions, rng)
    return float(np.sqrt(np.mean((est - v_signal) ** 2)))


def run(
    noise_sigma: float = 3e-3,
    repetitions: int = 4800,
    seed: int = 0,
) -> PDMAblationResult:
    """Run the PDM on/off and ladder-density ablations."""
    rng = np.random.default_rng(seed)
    comparator = Comparator(noise_sigma=noise_sigma)
    bare = APCConverter(comparator, v_ref=0.0)

    # A wide-swing test signal: spans +/-4 sigma, beyond bare APC's window.
    v_signal = 4.0 * noise_sigma * np.sin(np.linspace(0.0, 4 * np.pi, 160))

    pdm_standard = PDMScheme(
        TriangleWave(amplitude=6 * noise_sigma, frequency=1e6 * 5 / 6),
        VernierRelation(5, 6),
        comparator,
    )
    bare_rmse = _reconstruction_rmse(
        bare.estimate_voltage, v_signal, repetitions, rng
    )
    pdm_rmse = _reconstruction_rmse(
        pdm_standard.estimate_voltage, v_signal, repetitions, rng
    )

    # Ladder density sweep at fixed span: q levels across the same range.
    ladder_rows = []
    for label, p, q, amp_sigmas in [
        ("dense (5:12, 4 sigma)", 5, 12, 4.0),
        ("standard (5:6, 6 sigma)", 5, 6, 6.0),
        ("coarse (1:2, 6 sigma)", 1, 2, 6.0),
    ]:
        scheme = PDMScheme(
            TriangleWave(
                amplitude=amp_sigmas * noise_sigma, frequency=1e6 * p / q
            ),
            VernierRelation(p, q),
            comparator,
        )
        # Round away float noise so duplicate triangle levels collapse.
        levels = np.unique(np.round(scheme.reference_levels(), 9))
        spacing = (
            float(np.min(np.diff(levels))) / noise_sigma
            if len(levels) > 1
            else float("inf")
        )
        rmse = _reconstruction_rmse(
            scheme.estimate_voltage, v_signal, repetitions, rng
        )
        ladder_rows.append((label, spacing, rmse))

    bare_lo, bare_hi = bare.linear_window()
    pdm_lo, pdm_hi = pdm_standard.linear_window()
    return PDMAblationResult(
        bare_window_v=bare_hi - bare_lo,
        pdm_window_v=pdm_hi - pdm_lo,
        bare_rmse_wide=bare_rmse,
        pdm_rmse_wide=pdm_rmse,
        ladder_rows=ladder_rows,
    )
