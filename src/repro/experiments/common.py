"""Shared setup and scoring machinery for the experiment harness.

Every experiment measures the same prototype: six 25 cm lines, the
156.25 MHz iTDR, 8192 measurements at full scale.  The helpers here build
that setup and run the vectorised genuine/impostor scoring loops the
statistical experiments share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.auth import RocCurve, roc_curve
from ..core.config import PROTOTYPE_N_LINES, PROTOTYPE_N_MEASUREMENTS
from ..core.itdr import ITDR
from ..txline.line import TransmissionLine

__all__ = [
    "ExperimentScale",
    "SMALL",
    "FULL",
    "canonical_rows",
    "AuthScores",
    "score_lines",
]


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run a statistical experiment.

    ``FULL`` matches the paper (6 lines x 8192 measurements); ``SMALL`` is
    the fast setting used by tests and default benchmark runs.
    """

    n_lines: int = PROTOTYPE_N_LINES
    n_measurements: int = PROTOTYPE_N_MEASUREMENTS
    n_enroll: int = 16

    def __post_init__(self) -> None:
        if self.n_lines < 2:
            raise ValueError("need at least 2 lines for impostor scores")
        if self.n_measurements < 1 or self.n_enroll < 1:
            raise ValueError("counts must be >= 1")


SMALL = ExperimentScale(n_lines=4, n_measurements=500, n_enroll=8)
FULL = ExperimentScale()


def canonical_rows(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-norm each row (fingerprint canonical form)."""
    matrix = np.asarray(matrix, dtype=float)
    matrix = matrix - matrix.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


@dataclass
class AuthScores:
    """Genuine/impostor similarity scores plus derived ROC statistics."""

    genuine: np.ndarray
    impostor: np.ndarray

    def roc(self) -> RocCurve:
        """The ROC over these scores."""
        return roc_curve(self.genuine, self.impostor)

    def eer(self) -> Tuple[float, float]:
        """(EER, threshold)."""
        return self.roc().eer()

    def summary(self) -> dict:
        """Headline statistics for reporting."""
        eer, thr = self.eer()
        return {
            "genuine_mean": float(self.genuine.mean()),
            "genuine_std": float(self.genuine.std()),
            "genuine_min": float(self.genuine.min()),
            "impostor_mean": float(self.impostor.mean()),
            "impostor_std": float(self.impostor.std()),
            "impostor_max": float(self.impostor.max()),
            "eer": eer,
            "threshold": thr,
            "n_genuine": int(len(self.genuine)),
            "n_impostor": int(len(self.impostor)),
        }


def score_lines(
    lines: Sequence[TransmissionLine],
    itdr: ITDR,
    n_measurements: int,
    n_enroll: int = 16,
    state_batcher: Optional[
        Callable[[TransmissionLine, int], Tuple[np.ndarray, np.ndarray]]
    ] = None,
    engine: str = "born",
) -> AuthScores:
    """The Fig. 7 scoring loop: every capture against every enrollment.

    Each line is enrolled from ``n_enroll`` averaged captures; then
    ``n_measurements`` fresh captures of every line score against every
    enrolled reference.  Same-line scores are genuine, cross-line scores
    impostor.  ``state_batcher(line, n)`` optionally supplies per-capture
    perturbed ``(z_batch, tau_batch)`` line states — the hook through which
    temperature sweeps and vibration enter.  ``engine`` selects the physics
    kernel every capture routes through (``"born"`` or ``"lattice"``).
    """
    references = []
    for line in lines:
        enroll = itdr.capture_batch(line, n_enroll, engine=engine)
        references.append(canonical_rows(enroll.mean(axis=0, keepdims=True))[0])
    genuine: List[np.ndarray] = []
    impostor: List[np.ndarray] = []
    for i, line in enumerate(lines):
        if state_batcher is None:
            captures = itdr.capture_batch(line, n_measurements, engine=engine)
        else:
            z_batch, tau_batch = state_batcher(line, n_measurements)
            captures = itdr.capture_batch(
                line, n_measurements, z_batch=z_batch, tau_batch=tau_batch,
                engine=engine,
            )
        captures = canonical_rows(captures)
        for j, reference in enumerate(references):
            scores = (1.0 + captures @ reference) / 2.0
            (genuine if i == j else impostor).append(scores)
    return AuthScores(
        genuine=np.concatenate(genuine), impostor=np.concatenate(impostor)
    )
