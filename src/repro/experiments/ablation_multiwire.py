"""Experiment A-MULTI: multi-wire fusion (paper section IV-C future work).

"Theoretical analysis suggests that monitoring multiple wires on a bus can
exponentially increase authentication accuracy."  A bus has many parallel
conductors, each with its own independent IIP; fusing per-wire similarity
scores multiplies independent error probabilities.  This experiment
measures EER versus the number of monitored wires under the harshest
condition we calibrated (vibration), where single-wire EER is largest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..analysis.report import format_table
from ..core.auth import equal_error_rate
from ..core.config import prototype_itdr, prototype_line_factory
from ..env.vibration import ChirpExcitation, VibrationCondition
from .common import ExperimentScale, SMALL, canonical_rows

__all__ = ["MultiwireResult", "run"]


@dataclass
class MultiwireResult:
    """EER versus monitored-wire count."""

    wire_counts: List[int]
    eers: List[float]

    def accuracy_improves(self) -> bool:
        """EER decreases (weakly) as wires are added, and the many-wire
        setting beats single-wire by a wide factor."""
        non_increasing = all(
            a >= b - 1e-9 for a, b in zip(self.eers, self.eers[1:])
        )
        if self.eers[0] == 0:
            return non_increasing
        return non_increasing and (
            self.eers[-1] <= self.eers[0] / 2 or self.eers[-1] == 0
        )

    def report(self) -> str:
        """EER-vs-wires series."""
        rows = [[k, eer] for k, eer in zip(self.wire_counts, self.eers)]
        return format_table(
            ["monitored wires", "EER"],
            rows,
            title="Multi-wire fusion under vibration (score averaging)",
        )


def run(
    wire_counts: Sequence[int] = (1, 2, 4, 8),
    scale: ExperimentScale = SMALL,
    seed: int = 7,
) -> MultiwireResult:
    """Measure fused-score EER for increasing wire counts.

    Each "bus" owns ``max(wire_counts)`` physically independent wires.  A
    fused authentication score for a K-wire check is the mean of the K
    per-wire similarities; genuine buses fuse genuine scores, impostor
    buses fuse impostor scores (the attacker must fake every wire at once).
    """
    wire_counts = sorted(set(int(k) for k in wire_counts))
    if wire_counts[0] < 1:
        raise ValueError("wire counts must be >= 1")
    k_max = wire_counts[-1]
    n_buses = max(3, scale.n_lines)
    factory = prototype_line_factory()
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    # Severe vibration: the single-wire EER must be visibly non-zero for
    # the fusion gain to be measurable at experiment scale, so this
    # ablation doubles the calibrated chirp strain (the regime the paper's
    # future-work remark is about: conditions where one wire struggles).
    chirp = ChirpExcitation(strain_amplitude=3.5e-2)
    n = scale.n_measurements

    # score_matrix[b_cap, b_ref, wire, capture]
    buses = [
        factory.manufacture_batch(k_max, first_seed=1 + 100 * b)
        for b in range(n_buses)
    ]
    references = []
    for bus in buses:
        refs = []
        for wire in bus:
            enroll = itdr.capture_batch(wire, scale.n_enroll)
            refs.append(canonical_rows(enroll.mean(axis=0, keepdims=True))[0])
        references.append(refs)

    scores = np.zeros((n_buses, n_buses, k_max, n))
    for bi, bus in enumerate(buses):
        for wi, wire in enumerate(bus):
            strains = chirp.strain_at(np.linspace(0.0, chirp.sweep_time_s, n))
            z_batch, tau_batch = VibrationCondition.batch_fields(
                wire.full_profile, strains
            )
            caps = canonical_rows(
                itdr.capture_batch(wire, n, z_batch=z_batch, tau_batch=tau_batch)
            )
            for bj in range(n_buses):
                scores[bi, bj, wi] = (1.0 + caps @ references[bj][wi]) / 2.0

    eers = []
    for k in wire_counts:
        genuine, impostor = [], []
        for bi in range(n_buses):
            for bj in range(n_buses):
                fused = scores[bi, bj, :k].mean(axis=0)
                (genuine if bi == bj else impostor).append(fused)
        eer, _ = equal_error_rate(
            np.concatenate(genuine), np.concatenate(impostor)
        )
        eers.append(eer)
    return MultiwireResult(wire_counts=wire_counts, eers=eers)
