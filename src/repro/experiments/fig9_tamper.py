"""Experiment F9: tamper detection and localisation (paper Fig. 9).

Three attack studies, each producing the paper's before/after IIP pair and
error-function profile:

* **F9b/c** — load modification (Trojan chip / cold-boot re-seat): the
  receiver chip is replaced by a same-model-number unit; E_xy spikes at the
  termination (~3.5 ns into the 3.8 ns record).
* **F9e/f** — wire-tapping: a soldered stub; the most invasive signature,
  and permanent — removing the wire leaves the IIP destroyed.
* **F9h/i** — magnetic probing: the smallest signature, still detectable,
  and localisable along the line; its detection margin is what calibrates
  the deployment threshold (the paper's 5e-7 in its units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks import (
    Attack,
    CapacitiveSnoop,
    ChipSwap,
    LoadModification,
    MagneticProbe,
    WireTap,
)
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.fingerprint import Fingerprint
from ..core.itdr import ITDR
from ..core.tamper import TamperDetector, calibrate_threshold
from ..txline.materials import FR4

__all__ = ["AttackStudy", "Fig9Result", "run", "DEFAULT_ATTACKS"]

#: Averaging depth per published IIP (the paper's figures are 8192-
#: measurement products; 256 captures at R=24 reaches a comparable noise
#: floor at a fraction of the compute).
DEFAULT_AVERAGING = 256

#: Position used for the localised attacks, metres from the source.
ATTACK_POSITION_M = 0.12


def DEFAULT_ATTACKS() -> List[Tuple[str, Attack, Optional[float]]]:
    """(name, attack, true position) triplets for the Fig. 9 suite."""
    return [
        ("magnetic-probe", MagneticProbe(ATTACK_POSITION_M), ATTACK_POSITION_M),
        ("capacitive-snoop", CapacitiveSnoop(ATTACK_POSITION_M), ATTACK_POSITION_M),
        ("wire-tap", WireTap(ATTACK_POSITION_M), ATTACK_POSITION_M),
        (
            "wire-tap-residue",
            WireTap(ATTACK_POSITION_M).residue(),
            ATTACK_POSITION_M,
        ),
        ("chip-swap", ChipSwap(replacement_seed=77), None),
        ("load-modification", LoadModification(), None),
    ]


@dataclass
class AttackStudy:
    """One attack's before/after evidence."""

    name: str
    peak_error: float
    clean_peak_error: float
    detected: bool
    location_m: Optional[float]
    true_location_m: Optional[float]
    error_profile: np.ndarray
    iip_before: np.ndarray
    iip_after: np.ndarray

    @property
    def contrast(self) -> float:
        """Attack peak over the clean noise floor (the figure's message)."""
        if self.clean_peak_error == 0:
            return float("inf")
        return self.peak_error / self.clean_peak_error

    @property
    def localisation_error_m(self) -> Optional[float]:
        """|estimated - true| position, when the attack has a position."""
        if self.true_location_m is None or self.location_m is None:
            return None
        return abs(self.location_m - self.true_location_m)


@dataclass
class Fig9Result:
    """The full tamper suite outcome."""

    studies: List[AttackStudy]
    threshold: float
    clean_floor: float

    def all_detected(self) -> bool:
        """Every attack in the suite crossed the calibrated threshold."""
        return all(s.detected for s in self.studies)

    def ordering_holds(self) -> bool:
        """Magnetic probing is the smallest signature; wire-tap the largest."""
        by_name = {s.name: s.peak_error for s in self.studies}
        smallest = min(by_name.values())
        return (
            by_name["magnetic-probe"] == smallest
            and by_name["wire-tap"] == max(by_name.values())
        )

    def report(self) -> str:
        """Fig. 9 as a table: peaks, contrasts, locations."""
        rows = []
        for s in self.studies:
            rows.append(
                [
                    s.name,
                    s.peak_error,
                    f"{s.contrast:.1f}x",
                    "yes" if s.detected else "NO",
                    "-" if s.location_m is None else f"{s.location_m * 100:.1f} cm",
                    "-"
                    if s.true_location_m is None
                    else f"{s.true_location_m * 100:.1f} cm",
                ]
            )
        header = format_table(
            ["attack", "peak E_xy", "contrast", "detected", "located", "true"],
            rows,
            title=(
                f"Fig. 9 — tamper suite (threshold {self.threshold:.2e}, "
                f"clean floor {self.clean_floor:.2e})"
            ),
        )
        return header


def run(
    averaging: int = DEFAULT_AVERAGING,
    seed: int = 0,
    n_clean: int = 8,
    itdr: Optional[ITDR] = None,
) -> Fig9Result:
    """Run the full Fig. 9 attack suite.

    A fresh prototype line with a receiver package is enrolled; each attack
    is applied, the IIP re-measured (averaged), and the error function
    thresholded with a threshold calibrated between the clean floor and the
    quietest attack — the paper's own calibration recipe.
    """
    if averaging < 1 or n_clean < 1:
        raise ValueError("averaging and n_clean must be >= 1")
    factory = prototype_line_factory(attach_receiver=True)
    line = factory.manufacture(seed=1)
    if itdr is None:
        itdr = prototype_itdr(rng=np.random.default_rng(seed))
    reference = Fingerprint.from_captures(
        [itdr.capture(line) for _ in range(averaging)]
    )
    velocity = FR4.velocity_at(FR4.t_ref_c)
    detector = TamperDetector(
        threshold=1.0,  # replaced after calibration below
        velocity=velocity,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )

    clean_peaks = []
    for _ in range(n_clean):
        cap = itdr.capture_averaged(line, averaging)
        clean_peaks.append(float(detector.error_profile(cap, reference).samples.max()))
    clean_floor = max(clean_peaks)

    raw_studies = []
    for name, attack, true_pos in DEFAULT_ATTACKS():
        capture = itdr.capture_averaged(line, averaging, modifiers=[attack])
        profile = detector.error_profile(capture, reference)
        raw_studies.append((name, attack, true_pos, capture, profile))

    quietest = min(float(p.samples.max()) for _, _, _, _, p in raw_studies)
    threshold = calibrate_threshold(
        np.asarray(clean_peaks), np.asarray([quietest])
    )
    detector = TamperDetector(
        threshold=threshold,
        velocity=velocity,
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )

    before = reference.samples
    studies = []
    for name, attack, true_pos, capture, profile in raw_studies:
        verdict = detector.check(capture, reference)
        studies.append(
            AttackStudy(
                name=name,
                peak_error=float(profile.samples.max()),
                clean_peak_error=clean_floor,
                detected=verdict.tampered,
                location_m=verdict.location_m,
                true_location_m=true_pos,
                error_profile=profile.samples,
                iip_before=before,
                iip_after=capture.normalized_samples(),
            )
        )
    return Fig9Result(studies=studies, threshold=threshold, clean_floor=clean_floor)
