"""Ablation A-ETS: phase-step size versus resolution and capture time.

The ETS phase step tau sets both the spatial resolution (v * tau / 2) and
the number of points a record needs — i.e. the measurement time.  Coarser
stepping is faster but blurs the IIP, degrading both authentication margin
and tamper localisation.  This ablation sweeps tau and measures the
similarity margin (genuine minus impostor mean) and the capture budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..core.config import prototype_itdr_config, prototype_line_factory
from ..core.itdr import ITDR
from ..txline.materials import FR4
from .common import canonical_rows

__all__ = ["ETSAblationResult", "run"]


@dataclass
class ETSAblationResult:
    """Per-step-size margin and cost rows."""

    rows: List[Tuple[float, float, int, float, float]]
    # (tau_ps, resolution_mm, n_points, capture_us, margin)

    def finer_is_sharper(self) -> bool:
        """Finer stepping never shrinks the similarity margin meaningfully.

        (Margins saturate once the edge bandwidth, not the grid, limits
        resolution — also visible in the numbers.)
        """
        margins = [m for *_, m in self.rows]
        return margins[0] >= margins[-1] - 0.02

    def report(self) -> str:
        """The tau sweep table."""
        return format_table(
            ["tau (ps)", "resolution (mm)", "points", "capture (us)", "margin"],
            [list(r) for r in self.rows],
            title="ETS phase-step ablation (finer tau: sharper IIP, longer capture)",
        )


def run(
    tau_multipliers: Sequence[int] = (1, 4, 16, 64),
    n_probe: int = 60,
    seed: int = 7,
    engine: str = "born",
) -> ETSAblationResult:
    """Sweep the ETS step across multiples of the prototype's 11.16 ps.

    ``engine`` selects the physics kernel (``"born"`` or ``"lattice"``)
    every enrollment and probe capture routes through.
    """
    base = prototype_itdr_config()
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(4)
    velocity = FR4.velocity_at(FR4.t_ref_c)
    rows = []
    for mult in sorted(tau_multipliers):
        if mult < 1:
            raise ValueError("tau multipliers must be >= 1")
        config = replace(base, phase_step=base.phase_step * mult)
        itdr = ITDR(config, rng=np.random.default_rng(seed))
        refs = []
        for line in lines:
            enroll = itdr.capture_batch(line, 16, engine=engine)
            refs.append(canonical_rows(enroll.mean(axis=0, keepdims=True))[0])
        genuine, impostor = [], []
        for i, line in enumerate(lines):
            caps = canonical_rows(itdr.capture_batch(line, n_probe, engine=engine))
            for j, ref in enumerate(refs):
                scores = (1.0 + caps @ ref) / 2.0
                (genuine if i == j else impostor).append(scores)
        margin = float(
            np.concatenate(genuine).mean() - np.concatenate(impostor).mean()
        )
        n_points = itdr.record_length(lines[0])
        budget = itdr.budget(n_points)
        rows.append(
            (
                config.phase_step * 1e12,
                itdr.pll.spatial_resolution(velocity) * 1e3,
                n_points,
                budget.duration_s * 1e6,
                margin,
            )
        )
    return ETSAblationResult(rows=rows)
