"""One-command reproduction: every experiment, one report.

Usage::

    python -m repro.experiments.run_all            # reduced scale
    python -m repro.experiments.run_all --full     # paper scale (slower)
    python -m repro.experiments.run_all -o report.txt

Runs every figure/table experiment plus the extension studies, prints each
report, and finishes with a pass/fail summary of the shape predicates —
the whole of EXPERIMENTS.md, regenerated live.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from . import (
    ablation_ets,
    ablation_multiwire,
    ablation_pdm,
    ablation_trigger,
    baseline_comparison,
    env_robustness,
    ext_adaptation,
    ext_campaigns,
    ext_cloning,
    ext_enrollment,
    ext_jitter,
    ext_protocols,
    ext_sensitivity,
    ext_sharing,
    ext_stack,
    fig2_apc,
    fig34_pdm,
    fig5_ets,
    fig6_membus,
    fig7_auth,
    fig8_temperature,
    fig9_tamper,
    tab_latency,
    tab_overhead,
)
from .common import FULL, ExperimentScale

__all__ = ["main", "build_suite"]


def build_suite(scale: ExperimentScale) -> List[Tuple[str, Callable]]:
    """(name, runner) pairs; each runner returns (report_text, shape_ok)."""

    def wrap(run, report_attr="report", *checks, **kwargs):
        def runner():
            result = run(**kwargs)
            text = getattr(result, report_attr)()
            ok = all(check(result) for check in checks)
            return text, ok

        return runner

    emi_scale = ExperimentScale(
        n_lines=min(scale.n_lines, 4),
        n_measurements=min(scale.n_measurements, 512),
        n_enroll=scale.n_enroll,
    )
    return [
        ("F2 APC transfer curve",
         wrap(fig2_apc.run, "report", lambda r: r.window_is_two_sigma())),
        ("F3/F4 PDM",
         wrap(fig34_pdm.run, "report", lambda r: r.dynamic_range_widened())),
        ("F5 ETS",
         wrap(fig5_ets.run, "report", lambda r: r.matches_paper_numbers())),
        ("F7 authentication",
         wrap(fig7_auth.run, "report", lambda r: r.meets_paper_band(),
              scale=scale)),
        ("F8 temperature",
         wrap(fig8_temperature.run, "report", lambda r: r.shape_holds(),
              scale=scale)),
        ("E-VIB/E-EMI robustness",
         wrap(env_robustness.run, "report", lambda r: r.ordering_holds(),
              scale=emi_scale)),
        ("F9 tamper suite",
         wrap(fig9_tamper.run, "report",
              lambda r: r.all_detected() and r.ordering_holds())),
        ("F6 protected memory bus",
         wrap(fig6_membus.run, "report",
              lambda r: r.transparency_holds and r.probe_detected
              and r.cold_boot_blocked)),
        ("T-OVH hardware overhead",
         wrap(tab_overhead.run, "report_text",
              lambda r: r.matches_paper_totals())),
        ("T-LAT detection latency",
         wrap(tab_latency.run, "report",
              lambda r: r.prototype_matches_paper())),
        ("A-BASE prior-art comparison",
         wrap(baseline_comparison.run, "report",
              lambda r: r.divot_dominates())),
        ("A-MULTI multi-wire fusion",
         wrap(ablation_multiwire.run, "report",
              lambda r: r.accuracy_improves())),
        ("A-PDM ablation",
         wrap(ablation_pdm.run, "report",
              lambda r: r.pdm_wins_on_wide_signals())),
        ("A-TRIG trigger gating",
         wrap(ablation_trigger.run, "report",
              lambda r: r.cancellation_demonstrated())),
        ("A-ETS phase step",
         wrap(ablation_ets.run, "report", lambda r: r.finer_is_sharper())),
        ("X-CLONE unclonability",
         wrap(ext_cloning.run, "report", lambda r: r.unclonability_holds())),
        ("X-JIT PLL jitter",
         wrap(ext_jitter.run, "report", lambda r: r.clean_is_best())),
        ("X-SHARE datapath sharing",
         wrap(ext_sharing.run, "report",
              lambda r: r.attack_found_in_one_scan)),
        ("X-ADAPT drift hardening",
         wrap(ext_adaptation.run, "report",
              lambda r: r.compensation_helps()
              and r.adaptation_tracks_aging())),
        ("X-STACK encryption composition",
         wrap(ext_stack.run, "report", lambda r: r.composition_wins())),
        ("X-ENROLL enrollment depth",
         wrap(ext_enrollment.run, "report",
              lambda r: r.deeper_is_better())),
        ("X-SENS averaging sensitivity",
         wrap(ext_sensitivity.run, "report",
              lambda r: r.margin_grows_with_averaging())),
        ("X-PROTO protocol zoo",
         wrap(ext_protocols.run, "report",
              lambda r: r.covers_the_registry()
              and r.no_false_alerts()
              and r.every_attack_detected())),
        ("X-CAMPAIGN adaptive campaigns",
         wrap(ext_campaigns.run, "report",
              lambda r: r.covers_protocols()
              and r.frontiers_complete()
              and r.adaptive_cloner_beats_baseline()
              and r.sharding_is_invisible()
              and r.adaptation_pays())),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the full suite; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Regenerate every paper figure/table reproduction."
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper scale (6 lines x 8192 measurements; slower)",
    )
    parser.add_argument(
        "-o", "--output", default=None, help="also write the report here"
    )
    args = parser.parse_args(argv)

    scale = FULL if args.full else ExperimentScale(
        n_lines=6, n_measurements=1024, n_enroll=16
    )
    lines: List[str] = []

    def emit(text: str) -> None:
        print(text)
        lines.append(text)

    emit(
        f"DIVOT reproduction suite — scale: {scale.n_lines} lines x "
        f"{scale.n_measurements} measurements"
    )
    summary = []
    for name, runner in build_suite(scale):
        started = time.perf_counter()
        try:
            text, ok = runner()
        except Exception as exc:  # pragma: no cover - surfaced in summary
            text, ok = f"FAILED with {exc!r}", False
        elapsed = time.perf_counter() - started
        emit("\n" + "=" * 72)
        emit(f"{name}   [{elapsed:.1f}s]   shape: {'OK' if ok else 'FAIL'}")
        emit("=" * 72)
        emit(text)
        summary.append((name, ok, elapsed))

    emit("\n" + "=" * 72)
    emit("SUMMARY")
    emit("=" * 72)
    for name, ok, elapsed in summary:
        emit(f"  {'OK  ' if ok else 'FAIL'}  {name:<36} {elapsed:6.1f}s")
    n_fail = sum(1 for _, ok, _ in summary if not ok)
    emit(f"\n{len(summary) - n_fail}/{len(summary)} experiment shapes hold")

    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n".join(lines) + "\n")
    return 1 if n_fail else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
