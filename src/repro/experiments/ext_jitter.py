"""Extension experiment X-JIT: PLL timing-jitter sensitivity.

The prototype set its clock to 156.25 MHz "only for the sake of timing
stability" — a hint that ETS lives or dies on the phase-stepping PLL's
jitter.  This ablation sweeps RMS jitter from clean to several phase steps
and measures what survives: the genuine/impostor separation margin and the
similarity d-prime.  Expected shape: harmless below ~one phase step
(11.16 ps), degrading steeply beyond — the engineering requirement the
paper's remark encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..analysis.stats import d_prime
from ..core.config import prototype_itdr, prototype_line_factory
from .common import canonical_rows

__all__ = ["JitterResult", "run"]


@dataclass
class JitterResult:
    """Separation metrics across the jitter sweep."""

    rows: List[Tuple[float, float, float]]
    # (jitter_ps, genuine_mean, d_prime)

    def clean_is_best(self) -> bool:
        """No jitter beats any jitter (weakly, within estimation wobble)."""
        dprimes = [d for _, _, d in self.rows]
        return dprimes[0] >= max(dprimes) * 0.9

    def degrades_beyond_phase_step(self) -> bool:
        """Jitter of several phase steps visibly costs separation."""
        dprimes = [d for _, _, d in self.rows]
        return dprimes[-1] < 0.7 * dprimes[0]

    def report(self) -> str:
        """The jitter sweep table."""
        return format_table(
            ["PLL jitter (ps)", "genuine similarity", "d-prime"],
            [list(r) for r in self.rows],
            title=(
                "PLL jitter ablation (phase step 11.16 ps; the prototype "
                "chose its clock 'for the sake of timing stability')"
            ),
        )


def run(
    jitter_values_ps: Sequence[float] = (0.0, 3.0, 11.16, 30.0, 80.0),
    n_captures: int = 300,
    n_lines: int = 4,
    seed: int = 7,
) -> JitterResult:
    """Sweep PLL jitter and measure genuine/impostor separation."""
    if n_captures < 10 or n_lines < 2:
        raise ValueError("n_captures >= 10 and n_lines >= 2 required")
    factory = prototype_line_factory()
    lines = factory.manufacture_batch(n_lines)
    rows = []
    for jitter_ps in sorted(jitter_values_ps):
        if jitter_ps < 0:
            raise ValueError("jitter must be non-negative")
        itdr = prototype_itdr(
            rng=np.random.default_rng(seed),
            phase_jitter_rms=jitter_ps * 1e-12,
        )
        references = []
        for line in lines:
            enroll = itdr.capture_batch(line, 16)
            references.append(
                canonical_rows(enroll.mean(axis=0, keepdims=True))[0]
            )
        genuine, impostor = [], []
        for i, line in enumerate(lines):
            captures = canonical_rows(itdr.capture_batch(line, n_captures))
            for j, reference in enumerate(references):
                scores = (1.0 + captures @ reference) / 2.0
                (genuine if i == j else impostor).append(scores)
        g = np.concatenate(genuine)
        im = np.concatenate(impostor)
        rows.append((jitter_ps, float(g.mean()), d_prime(g, im)))
    return JitterResult(rows=rows)
