"""Extension experiment X-SHARE: the multiplexing trade-off.

The paper's sharing claim gives DIVOT its scalability: one datapath, many
buses, ~4 FF / 5 LUT marginal cost per bus.  The un-quantified flip side is
scan latency — a shared datapath visits each bus once per round-robin, so
worst-case detection latency grows linearly with the protected-bus count.
This experiment sweeps the bus count and reports both curves, then
verifies functionally that an attack on *any* one of the multiplexed buses
is caught within one scan period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks import WireTap
from ..core.auth import Authenticator
from ..core.config import prototype_itdr, prototype_line_factory
from ..core.manager import SharedITDRManager
from ..core.tamper import TamperDetector
from ..txline.materials import FR4

__all__ = ["SharingResult", "run"]


@dataclass
class SharingResult:
    """Resource and latency curves across bus counts."""

    rows: List[Tuple[int, int, int, float]]
    # (n_buses, registers, luts, scan_period_us)
    attacked_bus: str
    attack_found_in_one_scan: bool

    def resources_flat_latency_linear(self) -> bool:
        """The trade-off's shape: LUTs grow ~5/bus, latency ~1 period/bus."""
        (n0, _, l0, t0), *_, (n1, _, l1, t1) = self.rows
        lut_growth = (l1 - l0) / (n1 - n0)
        latency_ratio = t1 / t0
        return lut_growth <= 10 and latency_ratio == float(n1) / n0

    def report(self) -> str:
        """The sharing trade-off table."""
        table = format_table(
            ["protected buses", "registers", "LUTs", "scan period (us)"],
            [list(r) for r in self.rows],
            title=(
                "Shared-datapath scaling (paper: >90% of the detector "
                "multiplexes across buses)"
            ),
        )
        verdict = (
            f"\nattack on {self.attacked_bus!r} caught within one scan: "
            f"{self.attack_found_in_one_scan}"
        )
        return table + verdict


def run(
    bus_counts: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 0,
) -> SharingResult:
    """Sweep the protected-bus count; verify detection on the largest."""
    bus_counts = sorted(set(int(n) for n in bus_counts))
    if bus_counts[0] < 1:
        raise ValueError("bus counts must be >= 1")
    factory = prototype_line_factory()
    itdr = prototype_itdr(rng=np.random.default_rng(seed))
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=itdr.probe_edge().duration,
    )

    rows = []
    manager = None
    for n in bus_counts:
        manager = SharedITDRManager(
            itdr, Authenticator(0.85), detector, captures_per_check=16
        )
        for line in factory.manufacture_batch(n, first_seed=200):
            manager.register(line)
        report = manager.resource_report()
        rows.append(
            (
                n,
                report.registers,
                report.luts,
                manager.scan_period_s() * 1e6,
            )
        )

    # Functional check on the largest deployment: tap one bus, scan once.
    manager.calibrate_all(n_captures=8)
    victim = manager.bus_names()[len(manager.bus_names()) // 2]
    outcome = manager.scan(modifiers_by_bus={victim: [WireTap(0.12)]})
    alerted = [name for name, _ in outcome.alerts()]
    return SharingResult(
        rows=rows,
        attacked_bus=victim,
        attack_found_in_one_scan=(alerted == [victim]),
    )
