"""Extension experiment X-STACK: DIVOT composed with memory encryption.

Section V: prior memory-encryption work is "orthogonal to our work and
these techniques can be integrated in our design to add another layer of
protection".  This experiment builds the 2x2 matrix — {no protection,
DIVOT only, encryption only, both} — and runs two attacks against each
stack:

* **cold-boot theft** — the module is read on a foreign machine.  DIVOT
  blocks the access outright; encryption lets the read happen but yields
  ciphertext; bare systems leak plaintext.
* **passive bus snooping** — an attacker records words crossing the bus.
  Encryption hides content but the probe sits undetected; DIVOT detects
  (and locates) the probe but the words it saw before the alert were
  plaintext.  Only the composed stack both hides and detects.

Plus the cost column: encryption adds pipeline cycles to every access,
DIVOT adds none — the paper's "no performance overhead" claim in context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.report import format_table
from ..attacks import CapacitiveSnoop
from ..core.auth import Authenticator
from ..core.config import prototype_itdr_config, prototype_line_factory
from ..core.fleet import FleetScanExecutor
from ..core.itdr import ITDR
from ..core.tamper import TamperDetector
from ..membus.encryption import CounterModeEngine
from ..txline.materials import FR4

__all__ = ["StackResult", "run"]

#: The four protection stacks.
STACKS = ("none", "divot", "encryption", "divot+encryption")


@dataclass
class StackResult:
    """Per-stack outcomes of both attacks plus cost."""

    rows: List[Tuple[str, str, str, str, int]]
    # (stack, cold-boot outcome, snoop content, snoop detected?, added cycles)

    def composition_wins(self) -> bool:
        """Only the composed stack blocks, hides, and detects."""
        by_stack = {r[0]: r for r in self.rows}
        _, cold, content, detected, _ = by_stack["divot+encryption"]
        full = cold == "blocked" and content == "ciphertext" and detected == "yes"
        _, cold_n, content_n, detected_n, _ = by_stack["none"]
        bare = (
            cold_n == "plaintext leaked"
            and content_n == "plaintext"
            and detected_n == "no"
        )
        return full and bare

    def divot_costs_nothing(self) -> bool:
        """DIVOT's added latency is zero; encryption's is not."""
        by_stack = {r[0]: r[4] for r in self.rows}
        return by_stack["divot"] == 0 and by_stack["encryption"] > 0

    def report(self) -> str:
        """The 2x2 composition matrix."""
        return format_table(
            ["stack", "cold-boot read", "snooped content",
             "probe detected", "added cycles/access"],
            [list(r) for r in self.rows],
            title="Protection-stack composition (paper V: orthogonal layers)",
        )


def _snoop_detected(seed: int, shards: int = 1, retry_policy=None) -> bool:
    """Does the DIVOT layer notice the snooping pod on the bus?

    One fleet scan — a bus per DIVOT-bearing stack — through the sharded
    executor; the verdict is read off the telemetry surface every
    workload shares.  The outcome is a pure function of (fleet, seed):
    per-bus seed streams make any ``shards`` value report identically —
    including a scan that needed worker-failure recovery, since the
    dispatch ladder (``retry_policy``) re-runs shards on the very same
    streams.  A degraded-but-recovered scan is still a valid verdict;
    the recovery itself stays visible in ``snapshot()["health"]``.
    """
    factory = prototype_line_factory()
    config = prototype_itdr_config()
    detector = TamperDetector(
        threshold=2.5e-3,
        velocity=FR4.velocity_at(FR4.t_ref_c),
        smooth_window=7,
        alignment_offset_s=ITDR(config).probe_edge().duration,
    )
    divot_stacks = [s for s in STACKS if "divot" in s]
    with FleetScanExecutor(
        Authenticator(0.85),
        detector,
        itdr_config=config,
        captures_per_check=32,
        shards=shards,
        seed=seed,
        retry_policy=retry_policy,
    ) as executor:
        lines = {}
        for offset, stack in enumerate(divot_stacks):
            line = factory.manufacture(seed=seed + offset, name=stack)
            lines[stack] = line
            executor.register(line)
        executor.enroll(n_captures=32)
        executor.scan(
            modifiers_by_bus={
                stack: [CapacitiveSnoop(0.12)] for stack in divot_stacks
            }
        )
        snapshot = executor.telemetry.snapshot()
    return all(
        snapshot["buses"][stack]["tampered"] > 0 for stack in divot_stacks
    )


def run(
    seed: int = 0, n_words: int = 64, shards: int = 1, retry_policy=None
) -> StackResult:
    """Evaluate all four stacks against both attacks.

    ``shards`` spreads the DIVOT monitoring decisions over a fleet-scan
    process pool; results are identical for any value.  ``retry_policy``
    tunes the executor's worker-failure recovery ladder (default
    :class:`~repro.core.faults.RetryPolicy`), so a long production run
    survives crashed or hung shard workers without changing a bit of
    the verdict.
    """
    if n_words < 1:
        raise ValueError("n_words must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    rng = np.random.default_rng(seed)
    secrets = {int(a): int(rng.integers(1, 2**31)) for a in range(n_words)}

    divot_detects = _snoop_detected(
        seed + 1, shards=shards, retry_policy=retry_policy
    )

    rows = []
    for stack in STACKS:
        has_divot = "divot" in stack
        has_enc = "encryption" in stack

        # --- what the DRAM cells / bus words actually hold ------------
        if has_enc:
            engine = CounterModeEngine()
            stored = {a: engine.encrypt(a, v) for a, v in secrets.items()}
            # An attacker reading cells or snooping the bus sees ciphertext;
            # decrypting without the key fails, and the ciphertext never
            # equals the plaintext for these non-zero words.
            leaked_plaintext = any(
                w.ciphertext == secrets[a] for a, w in stored.items()
            )
            snoop_content = "plaintext" if leaked_plaintext else "ciphertext"
            added_cycles = engine.latency_cycles
        else:
            snoop_content = "plaintext"
            added_cycles = 0

        # --- cold boot: can the attacker read the module at all? ------
        if has_divot:
            cold = "blocked"  # module-side gate (verified in fig6_membus)
        elif has_enc:
            cold = "ciphertext only"
        else:
            cold = "plaintext leaked"

        detected = "yes" if (has_divot and divot_detects) else "no"
        rows.append((stack, cold, snoop_content, detected, added_cycles))
    return StackResult(rows=rows)
