"""PCB laminate material models.

The paper's temperature experiment (Fig. 8) rests on a material fact: the
dielectric constant (Dk) of PCB laminates rises with temperature [Hinaga et
al., IPC APEX 2010], which raises trace capacitance and therefore *lowers*
characteristic impedance while *slowing* propagation.  Crucially the change
is common-mode — every point of the line shifts together — so the impedance
*contrast* (the IIP) survives, with only a small differential residue from
material inhomogeneity.  This module captures those relationships.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Laminate", "FR4", "propagation_velocity"]

#: Speed of light in vacuum, m/s.
_C0 = 299_792_458.0


def propagation_velocity(dk_effective: float) -> float:
    """Signal velocity on a line with effective dielectric constant ``dk``."""
    if dk_effective <= 0:
        raise ValueError("effective Dk must be positive")
    return _C0 / np.sqrt(dk_effective)


@dataclass(frozen=True)
class Laminate:
    """A PCB laminate with temperature-dependent dielectric constant.

    Attributes:
        name: Trade name of the material.
        dk0: Effective dielectric constant at the reference temperature.
        tc_dk: Fractional Dk change per kelvin (thermal coefficient).  FR-4
            class materials sit around +2e-4 /K to +4e-4 /K.
        t_ref_c: Reference temperature in Celsius for ``dk0``.
        loss_db_per_m: Insertion loss per metre at the signalling band,
            used for per-segment attenuation.
        tc_inhomogeneity: Relative spread of the thermal coefficient from
            point to point along a trace.  This is the term that slightly
            degrades a genuine fingerprint when temperature swings: if the
            whole line shifted perfectly uniformly, the normalised IIP would
            be exactly invariant.
    """

    name: str
    dk0: float
    tc_dk: float
    t_ref_c: float = 23.0
    loss_db_per_m: float = 0.6
    tc_inhomogeneity: float = 0.08

    def __post_init__(self) -> None:
        if self.dk0 <= 1.0:
            raise ValueError("dk0 must exceed 1 (vacuum)")
        if self.loss_db_per_m < 0:
            raise ValueError("loss must be non-negative")
        if self.tc_inhomogeneity < 0:
            raise ValueError("tc_inhomogeneity must be non-negative")

    def dk_at(self, temperature_c: float) -> float:
        """Effective dielectric constant at ``temperature_c`` degrees C."""
        return self.dk0 * (1.0 + self.tc_dk * (temperature_c - self.t_ref_c))

    def velocity_at(self, temperature_c: float) -> float:
        """Propagation velocity (m/s) at the given temperature."""
        return propagation_velocity(self.dk_at(temperature_c))

    def impedance_scale_at(self, temperature_c: float) -> float:
        """Common-mode multiplier on characteristic impedance vs. reference.

        Z is proportional to ``1/sqrt(Dk_eff)`` for a microstrip, so a hotter
        (higher-Dk) board presents a uniformly lower impedance.
        """
        return float(np.sqrt(self.dk0 / self.dk_at(temperature_c)))

    def delay_scale_at(self, temperature_c: float) -> float:
        """Common-mode multiplier on per-length delay vs. reference."""
        return float(np.sqrt(self.dk_at(temperature_c) / self.dk0))

    def attenuation_per_m(self) -> float:
        """Amplitude attenuation coefficient per metre (nepers/m)."""
        return self.loss_db_per_m * np.log(10.0) / 20.0


#: The laminate used throughout the prototype experiments.  Velocity at the
#: reference temperature is ~15 cm/ns, the figure the paper quotes.  The
#: thermal coefficient is calibrated so the 23->75 C oven swing reproduces
#: the paper's EER rise (0.06 % -> 0.14 %): ~2.3 % Dk increase over the
#: swing, consistent with the FR-4 class data of Hinaga et al.
FR4 = Laminate(name="FR-4", dk0=3.996, tc_dk=4.5e-4)
