"""Manufacturing model: producing Tx-lines with unclonable fingerprints.

The paper's prototype uses six 25 cm traces on a 6-layer custom PCB; their
IIPs differ because etching, glass weave and copper roughness vary
uncontrollably.  :class:`LineFactory` reproduces that statistical ensemble —
same nominal geometry, independent correlated impedance fluctuation per
line — with an explicit seed standing in for physical identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .line import TransmissionLine
from .materials import FR4, Laminate
from .profile import ImpedanceProfile, correlated_field
from .termination import ReceiverPackage

__all__ = ["LineGeometry", "LineFactory"]


@dataclass(frozen=True)
class LineGeometry:
    """Nominal geometry of a manufactured trace.

    Attributes:
        length_m: Board trace length in metres (0.25 m in the prototype).
        launch_length_m: Connector/launch section length prepended to the
            trace (FMC connector + coupler on the prototype board).
        nominal_impedance: Target characteristic impedance, ohms.
        launch_impedance: Nominal impedance of the launch section; connector
            transitions rarely match the trace exactly.
        segment_length_m: Discretisation pitch.  The default 1.674 mm equals
            the distance light travels on FR-4 in one ETS phase step
            (11.16 ps * 15 cm/ns), aligning the model with the measurement
            grid's spatial resolution of ~0.84 mm round-trip.
        source_impedance: Driver output impedance.
    """

    length_m: float = 0.25
    launch_length_m: float = 0.035
    nominal_impedance: float = 50.0
    launch_impedance: float = 48.0
    segment_length_m: float = 1.674e-3
    source_impedance: float = 45.0

    def __post_init__(self) -> None:
        if self.length_m <= 0 or self.segment_length_m <= 0:
            raise ValueError("lengths must be positive")
        if self.launch_length_m < 0:
            raise ValueError("launch length must be non-negative")
        if min(self.nominal_impedance, self.launch_impedance,
               self.source_impedance) <= 0:
            raise ValueError("impedances must be positive")

    @property
    def n_trace_segments(self) -> int:
        """Segments in the board trace proper."""
        return max(1, int(round(self.length_m / self.segment_length_m)))

    @property
    def n_launch_segments(self) -> int:
        """Segments in the launch/connector section."""
        return int(round(self.launch_length_m / self.segment_length_m))


@dataclass
class LineFactory:
    """Produces statistically independent lines of one nominal design.

    Attributes:
        geometry: Shared nominal geometry.
        material: Laminate (sets velocity, loss, thermal behaviour).
        impedance_sigma: Relative per-segment impedance fluctuation (the IIP
            strength).  PCB fab impedance control is a few percent; the
            fine-grained inhomogeneity is ~1 %.
        correlation_length_m: Spatial correlation of the fluctuation.
        attach_receiver: Whether manufactured lines get a receiver package
            (True models a populated bus; False models the paper's bare
            terminated test traces).
    """

    geometry: LineGeometry = field(default_factory=LineGeometry)
    material: Laminate = FR4
    impedance_sigma: float = 0.010
    correlation_length_m: float = 5.0e-3
    attach_receiver: bool = False

    def __post_init__(self) -> None:
        if self.impedance_sigma < 0:
            raise ValueError("impedance_sigma must be non-negative")
        if self.correlation_length_m <= 0:
            raise ValueError("correlation_length_m must be positive")

    # ------------------------------------------------------------------
    @property
    def segment_delay(self) -> float:
        """One-way delay of one segment at the reference temperature."""
        velocity = self.material.velocity_at(self.material.t_ref_c)
        return self.geometry.segment_length_m / velocity

    def manufacture(self, seed: int, name: Optional[str] = None) -> TransmissionLine:
        """Fabricate one line; ``seed`` is its physical identity.

        Equal seeds give the identical physical line (a re-measurement);
        different seeds give independent fingerprints (different traces).
        """
        rng = np.random.default_rng(seed)
        geo = self.geometry
        n_launch = geo.n_launch_segments
        n_trace = geo.n_trace_segments
        corr_segments = max(
            1, int(round(self.correlation_length_m / geo.segment_length_m))
        )
        nominal = np.concatenate(
            [
                np.full(n_launch, geo.launch_impedance),
                np.full(n_trace, geo.nominal_impedance),
            ]
        )
        fluctuation = correlated_field(
            len(nominal), self.impedance_sigma, corr_segments, rng
        )
        z = nominal * (1.0 + fluctuation)
        tau = np.full(len(nominal), self.segment_delay)
        loss = float(
            np.exp(-self.material.attenuation_per_m() * geo.segment_length_m)
        )
        profile = ImpedanceProfile(
            z=z,
            tau=tau,
            z_source=geo.source_impedance,
            z_load=geo.nominal_impedance,
            loss_per_segment=loss,
        )
        receiver = None
        if self.attach_receiver:
            receiver = ReceiverPackage(seed=seed).instance_variation()
        return TransmissionLine(
            name=name or f"line-{seed}",
            board_profile=profile,
            material=self.material,
            receiver=receiver,
        )

    def manufacture_batch(
        self, n: int, first_seed: int = 1
    ) -> List[TransmissionLine]:
        """Fabricate ``n`` lines with consecutive seeds."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return [
            self.manufacture(seed=first_seed + i, name=f"line-{first_seed + i}")
            for i in range(n)
        ]
