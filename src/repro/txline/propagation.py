"""Time-domain wave propagation on a segmented transmission line.

Two engines compute the back-reflection a TDR sees:

* :class:`LatticeEngine` — an exact discrete Goupillaud-medium simulation.
  Forward and backward travelling waves hop one segment per time step and
  scatter at every interface, capturing *all* multiple reflections.  It
  requires (and enforces) uniform segment delays and is the reference
  implementation used to validate the fast engine.

* :class:`BornEngine` — a first-order (single-scattering) model.  Each
  interface contributes one echo of amplitude ``r_i`` scaled by the two-way
  transmission product, arriving at ``t = 2 * sum(tau[:i+1])``.  For PCB-class
  inhomogeneity (|r| of order 1 %), second-order terms are below 1e-4 and the
  Born model matches the lattice to high accuracy while being fully
  vectorisable across thousands of line states — exactly what the statistical
  authentication experiments need.

Both produce the *reflection sequence*: the dimensionless discrete impulse
response mapping the incident wave sample stream to the backward wave sample
stream observed at the source-side coupler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.signal import fftconvolve

from ..signals.waveform import Waveform
from .profile import ImpedanceProfile

__all__ = ["LatticeEngine", "BornEngine", "reflected_waveform"]


class LatticeEngine:
    """Exact multiple-reflection simulation on equal-delay segments."""

    def __init__(self, round_trips: float = 3.0) -> None:
        if round_trips < 1.0:
            raise ValueError("round_trips must be at least 1")
        self.round_trips = round_trips

    @staticmethod
    def _uniform_tau(profile: ImpedanceProfile) -> float:
        tau = profile.tau
        mean = float(np.mean(tau))
        if np.max(np.abs(tau - mean)) > 1e-9 * mean:
            raise ValueError(
                "LatticeEngine requires uniform segment delays; "
                "use BornEngine for stretched/perturbed geometries"
            )
        return mean

    def impulse_sequence(
        self, profile: ImpedanceProfile, n_steps: Optional[int] = None
    ) -> Waveform:
        """Backward wave at the source for a unit incident sample at t=0.

        The returned waveform is sampled at the segment delay; sample ``k``
        is the reflected amplitude emerging at the source interface at time
        ``k * tau``.
        """
        tau = self._uniform_tau(profile)
        s = profile.n_segments
        if n_steps is None:
            n_steps = int(np.ceil(2 * s * self.round_trips)) + 1
        r = profile.reflection_coefficients()
        r_src = profile.source_reflection()
        r_load = profile.load_reflection()
        loss = profile.loss_per_segment

        # State at integer time k (in units of the segment delay):
        #   fwd[i] — forward wave at the left edge of segment i,
        #   bwd[i] — backward wave at the right edge of segment i.
        # One step propagates each wave across one segment (applying loss)
        # and scatters at the interface it reaches.  The echo from interface
        # i/(i+1) therefore arrives back at the source at step 2*(i+1),
        # matching the BornEngine timing convention.
        fwd = np.zeros(s)
        bwd = np.zeros(s)
        fwd[0] = 1.0
        out = np.zeros(n_steps)
        for k in range(1, n_steps):
            fa = fwd * loss
            ba = bwd * loss
            # The backward wave leaving segment 0 reaches the source now.
            out[k] = ba[0]
            new_f = np.zeros(s)
            new_b = np.zeros(s)
            # Interior interfaces: left input fa[i], right input ba[i+1].
            if s > 1:
                new_f[1:] = (1.0 + r) * fa[:-1] - r * ba[1:]
                new_b[:-1] = r * fa[:-1] + (1.0 - r) * ba[1:]
            # Load end: forward wave reflects off the termination.
            new_b[-1] += r_load * fa[-1]
            # Source end: backward wave re-reflects off the driver.
            new_f[0] += r_src * ba[0]
            fwd, bwd = new_f, new_b
        return Waveform(out, tau)

    def reflection_response(
        self, profile: ImpedanceProfile, incident: Waveform
    ) -> Waveform:
        """Reflected waveform for an arbitrary incident wave.

        The incident waveform must be sampled on the lattice grid (its ``dt``
        must equal the segment delay).
        """
        h = self.impulse_sequence(profile)
        if not np.isclose(incident.dt, h.dt, rtol=1e-6, atol=0.0):
            raise ValueError(
                f"incident dt {incident.dt} must match segment delay {h.dt}"
            )
        out = np.convolve(incident.samples, h.samples)[: len(h)]
        return Waveform(out, h.dt, incident.t0)

    def transmission_sequence(
        self, profile: ImpedanceProfile, n_steps: Optional[int] = None
    ) -> Waveform:
        """Forward wave delivered *into the load* for a unit incident sample.

        The receiver-side counterpart of :meth:`impulse_sequence`: sample
        ``k`` is the voltage-wave amplitude crossing the load interface at
        time ``k * tau``.  The first arrival lands at step ``S`` with
        amplitude ``(1 + rho_load) * prod(1 + rho_i) * loss^S`` (its
        voltage-divider form); later samples are the inter-symbol echoes a
        receiver's eye diagram shows.
        """
        tau = self._uniform_tau(profile)
        s = profile.n_segments
        if n_steps is None:
            n_steps = int(np.ceil(2 * s * self.round_trips)) + 1
        r = profile.reflection_coefficients()
        r_src = profile.source_reflection()
        r_load = profile.load_reflection()
        loss = profile.loss_per_segment

        fwd = np.zeros(s)
        bwd = np.zeros(s)
        fwd[0] = 1.0
        out = np.zeros(n_steps)
        for k in range(1, n_steps):
            fa = fwd * loss
            ba = bwd * loss
            # The wave crossing into the load this step (1 + rho transfer).
            out[k] = (1.0 + r_load) * fa[-1]
            new_f = np.zeros(s)
            new_b = np.zeros(s)
            if s > 1:
                new_f[1:] = (1.0 + r) * fa[:-1] - r * ba[1:]
                new_b[:-1] = r * fa[:-1] + (1.0 - r) * ba[1:]
            new_b[-1] += r_load * fa[-1]
            new_f[0] += r_src * ba[0]
            fwd, bwd = new_f, new_b
        return Waveform(out, tau)

    def transmission_response(
        self, profile: ImpedanceProfile, incident: Waveform
    ) -> Waveform:
        """Waveform arriving at the receiver for an arbitrary incident wave."""
        h = self.transmission_sequence(profile)
        if not np.isclose(incident.dt, h.dt, rtol=1e-6, atol=0.0):
            raise ValueError(
                f"incident dt {incident.dt} must match segment delay {h.dt}"
            )
        out = np.convolve(incident.samples, h.samples)[: len(h)]
        return Waveform(out, h.dt, incident.t0)


class BornEngine:
    """First-order scattering model, vectorised over batches of line states.

    ``grid_dt`` is the analog time grid spacing on which responses are
    rendered — in the DIVOT context this is the ETS phase step (11.16 ps on
    the Ultrascale+ prototype).
    """

    def __init__(self, grid_dt: float, include_load_echo: bool = True) -> None:
        if grid_dt <= 0:
            raise ValueError("grid_dt must be positive")
        self.grid_dt = grid_dt
        self.include_load_echo = include_load_echo

    # ------------------------------------------------------------------
    def echoes(self, profile: ImpedanceProfile):
        """(times, amplitudes) of every first-order echo of one profile."""
        t, a = self._batch_echoes(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
        )
        return t[0], a[0]

    @staticmethod
    def _batch_echoes(z, tau, r_load, loss):
        """Vectorised echo computation.

        Args:
            z: impedances, shape ``(C, S)``.
            tau: per-segment delays, shape ``(C, S)``.
            r_load: load reflection coefficient(s), scalar or ``(C,)``.
            loss: per-segment one-way amplitude factor.
        Returns:
            times ``(C, S)`` and amplitudes ``(C, S)``: the first ``S-1``
            columns are interface echoes, the last column is the load echo.
        """
        c, s = z.shape
        r = (z[:, 1:] - z[:, :-1]) / (z[:, 1:] + z[:, :-1])
        # Round-trip arrival time of the echo from interface i (between
        # segments i and i+1): twice the cumulative delay through segment i.
        cum_tau = np.cumsum(tau, axis=1)
        t_iface = 2.0 * cum_tau[:, :-1]
        # Two-way transmission through all interfaces crossed en route.
        one_minus_r2 = 1.0 - r**2
        trans = np.cumprod(one_minus_r2, axis=1)
        trans_before = np.concatenate([np.ones((c, 1)), trans[:, :-1]], axis=1)
        seg_index = np.arange(1, s)  # segments traversed per interface echo
        loss_factor = loss ** (2.0 * seg_index)
        a_iface = r * trans_before * loss_factor[None, :]
        # Load echo: through every interface, full line both ways.
        t_load = 2.0 * cum_tau[:, -1:]
        r_load_arr = np.broadcast_to(
            np.asarray(r_load, dtype=float), (c,)
        ).reshape(c, 1)
        a_load = r_load_arr * (trans[:, -1:] if s > 1 else np.ones((c, 1)))
        a_load = a_load * loss ** (2.0 * s)
        times = np.concatenate([t_iface, t_load], axis=1)
        amps = np.concatenate([a_iface, a_load], axis=1)
        return times, amps

    # ------------------------------------------------------------------
    def impulse_sequence(
        self, profile: ImpedanceProfile, n_out: Optional[int] = None
    ) -> Waveform:
        """Reflection sequence on the analog grid for a single profile."""
        h = self.batch_impulse_sequences(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            n_out=n_out,
        )
        return Waveform(h[0], self.grid_dt)

    def batch_impulse_sequences(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        n_out: Optional[int] = None,
    ) -> np.ndarray:
        """Reflection sequences for a batch of line states, shape ``(C, N)``.

        Echo amplitudes are deposited onto the analog grid with linear
        interpolation between the two bracketing bins, preserving sub-grid
        timing (the mechanism by which temperature stretch moves echoes).
        """
        z = np.atleast_2d(np.asarray(z, dtype=float))
        tau = np.atleast_2d(np.asarray(tau, dtype=float))
        if z.shape != tau.shape:
            raise ValueError("z and tau batches must share a shape")
        times, amps = self._batch_echoes(z, tau, r_load, loss)
        if not self.include_load_echo:
            times = times[:, :-1]
            amps = amps[:, :-1]
        if n_out is None:
            n_out = int(np.ceil(np.max(times) / self.grid_dt)) + 2
        c = z.shape[0]
        h = np.zeros((c, n_out))
        pos = times / self.grid_dt
        idx0 = np.floor(pos).astype(int)
        frac = pos - idx0
        idx1 = idx0 + 1
        valid0 = (idx0 >= 0) & (idx0 < n_out)
        valid1 = (idx1 >= 0) & (idx1 < n_out)
        rows = np.broadcast_to(np.arange(c)[:, None], idx0.shape)
        np.add.at(
            h,
            (rows[valid0], idx0[valid0]),
            (amps * (1.0 - frac))[valid0],
        )
        np.add.at(h, (rows[valid1], idx1[valid1]), (amps * frac)[valid1])
        return h

    # ------------------------------------------------------------------
    def reflection_response(
        self,
        profile: ImpedanceProfile,
        incident: Waveform,
        n_out: Optional[int] = None,
    ) -> Waveform:
        """Reflected waveform for one profile driven by ``incident``."""
        out = self.batch_reflection_responses(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            incident,
            n_out=n_out,
        )
        return Waveform(out[0], self.grid_dt, incident.t0)

    def batch_reflection_responses(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        incident: Waveform,
        n_out: Optional[int] = None,
    ) -> np.ndarray:
        """Reflected waveforms for a batch of states, shape ``(C, N)``."""
        if not np.isclose(incident.dt, self.grid_dt, rtol=1e-6, atol=0.0):
            raise ValueError(
                f"incident dt {incident.dt} must match grid_dt {self.grid_dt}"
            )
        z2 = np.atleast_2d(np.asarray(z, dtype=float))
        tau2 = np.atleast_2d(np.asarray(tau, dtype=float))
        if n_out is None:
            span = 2.0 * float(np.max(np.sum(tau2, axis=1)))
            n_out = int(np.ceil(span / self.grid_dt)) + len(incident) + 2
        h = self.batch_impulse_sequences(z2, tau2, r_load, loss, n_out=n_out)
        out = fftconvolve(h, incident.samples[None, :], axes=1)
        return out[:, :n_out]


def reflected_waveform(
    profile: ImpedanceProfile,
    incident: Waveform,
    engine: str = "born",
    grid_dt: Optional[float] = None,
) -> Waveform:
    """Convenience dispatcher over the two propagation engines.

    ``grid_dt`` defaults to the incident waveform's grid.
    """
    if engine == "born":
        born = BornEngine(grid_dt or incident.dt)
        return born.reflection_response(profile, incident)
    if engine == "lattice":
        lattice = LatticeEngine()
        return lattice.reflection_response(profile, incident)
    raise ValueError(f"unknown engine {engine!r}; use 'born' or 'lattice'")
