"""Time-domain wave propagation on a segmented transmission line.

Two engines compute the back-reflection a TDR sees:

* :class:`LatticeEngine` — an exact discrete Goupillaud-medium simulation.
  Forward and backward travelling waves hop one segment per time step and
  scatter at every interface, capturing *all* multiple reflections.  It
  requires (and enforces) uniform segment delays per line state and is the
  reference implementation used to validate the fast engine.

* :class:`BornEngine` — a first-order (single-scattering) model.  Each
  interface contributes one echo of amplitude ``r_i`` scaled by the two-way
  transmission product, arriving at ``t = 2 * sum(tau[:i+1])``.  For PCB-class
  inhomogeneity (|r| of order 1 %), second-order terms are below 1e-4 and the
  Born model matches the lattice to high accuracy while being fully
  vectorisable across thousands of line states.

Both produce the *reflection sequence*: the dimensionless discrete impulse
response mapping the incident wave sample stream to the backward wave sample
stream observed at the source-side coupler — and both expose the same batch
API (``batch_impulse_sequences`` / ``batch_reflection_responses`` over
``(C, S)`` state arrays), so every capture path can select either engine.
The lattice time-stepper is vectorised across the capture axis with
preallocated state buffers; per row it performs bit-for-bit the computation
of :meth:`LatticeEngine.scalar_impulse_sequence`, the original per-profile
loop kept as ground truth (pinned in ``tests/property/``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..signals.convolution import batch_convolve_full, convolve_full
from ..signals.waveform import Waveform
from .profile import ImpedanceProfile

__all__ = ["LatticeEngine", "BornEngine", "reflected_waveform"]


def _deposit_impulses(
    times: np.ndarray, amps: np.ndarray, grid_dt: float, n_out: int,
    dtype=float,
) -> np.ndarray:
    """Deposit ``(C, E)`` timed impulses onto the analog grid, ``(C, n_out)``.

    Each impulse's amplitude is split between the two bracketing grid bins
    with linear interpolation, preserving sub-grid timing — the mechanism
    by which temperature stretch moves echoes.  Impulses falling outside
    the record are dropped.  Shared by both engines: Born deposits one
    impulse per echo, the lattice deposits one per output time step.
    ``dtype`` sets the rendered grid's precision (timing/amplitude
    arithmetic stays float64; only the deposit accumulates narrower).
    """
    c = times.shape[0]
    h = np.zeros((c, n_out), dtype=dtype)
    pos = times / grid_dt
    idx0 = np.floor(pos).astype(int)
    frac = pos - idx0
    idx1 = idx0 + 1
    valid0 = (idx0 >= 0) & (idx0 < n_out)
    valid1 = (idx1 >= 0) & (idx1 < n_out)
    rows = np.broadcast_to(np.arange(c)[:, None], idx0.shape)
    np.add.at(h, (rows[valid0], idx0[valid0]), (amps * (1.0 - frac))[valid0])
    np.add.at(h, (rows[valid1], idx1[valid1]), (amps * frac)[valid1])
    return h


class LatticeEngine:
    """Exact multiple-reflection simulation on equal-delay segments.

    ``grid_dt`` selects the output grid.  ``None`` (the default) keeps the
    native lattice grid: sequences are sampled at the segment delay, the
    historical behaviour.  A positive ``grid_dt`` renders sequences onto
    that analog grid instead (the ETS phase step in the iTDR context) by
    depositing each lattice output sample as a timed impulse — which is
    what lets the exact engine drive the same record-length contracts as
    :class:`BornEngine` and hence the whole batch capture path.
    """

    #: Relative tolerance for matching an incident waveform's grid to the
    #: lattice/analog grid.  Floats that went through round-trip arithmetic
    #: (e.g. a delay computed as ``length / velocity``) may differ from the
    #: nominal step in the last ulps; anything beyond this is a real grid
    #: mismatch and raises.
    DT_RTOL = 1e-6

    def __init__(
        self, round_trips: float = 3.0, grid_dt: Optional[float] = None
    ) -> None:
        if round_trips < 1.0:
            raise ValueError("round_trips must be at least 1")
        if grid_dt is not None and grid_dt <= 0:
            raise ValueError("grid_dt must be positive")
        self.round_trips = round_trips
        self.grid_dt = grid_dt

    # ------------------------------------------------------------------
    # grid plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _uniform_tau(profile: ImpedanceProfile) -> float:
        tau = profile.tau
        mean = float(np.mean(tau))
        if np.max(np.abs(tau - mean)) > 1e-9 * mean:
            raise ValueError(
                "LatticeEngine requires uniform segment delays; "
                "use BornEngine for stretched/perturbed geometries"
            )
        return mean

    @staticmethod
    def _batch_uniform_tau(tau2: np.ndarray) -> np.ndarray:
        """Per-row segment delay of a ``(C, S)`` batch, enforcing uniformity.

        Rows may have *different* delays (a uniform temperature stretch
        scales every segment of a row equally) but within one row every
        segment must share the delay — the lattice's defining constraint.
        """
        mean = tau2.mean(axis=1)
        if np.any(np.max(np.abs(tau2 - mean[:, None]), axis=1) > 1e-9 * mean):
            raise ValueError(
                "LatticeEngine requires uniform segment delays within each "
                "batch row; use BornEngine for non-uniformly perturbed "
                "geometries"
            )
        return mean

    def _default_steps(self, n_segments: int) -> int:
        return int(np.ceil(2 * n_segments * self.round_trips)) + 1

    @classmethod
    def _validate_grid(cls, incident_dt: float, expected, label: str) -> None:
        """Tolerance check of the incident grid against the engine grid."""
        expected = np.atleast_1d(np.asarray(expected, dtype=float))
        if not np.all(
            np.isclose(incident_dt, expected, rtol=cls.DT_RTOL, atol=0.0)
        ):
            raise ValueError(
                f"incident waveform dt {incident_dt!r} does not match the "
                f"{label} {float(expected.flat[0])!r} within relative "
                f"tolerance {cls.DT_RTOL}; resample the incident wave onto "
                "the lattice grid (or construct LatticeEngine(grid_dt=...) "
                "to render on an analog grid)"
            )

    # ------------------------------------------------------------------
    # the reference kernel (original scalar loop, kept as ground truth)
    # ------------------------------------------------------------------
    def scalar_impulse_sequence(
        self, profile: ImpedanceProfile, n_steps: Optional[int] = None
    ) -> Waveform:
        """Reference implementation: the per-step scalar Python loop.

        Kept verbatim as the ground truth the vectorised kernel is pinned
        against (``tests/property/test_engine_equivalence.py`` asserts
        bitwise equality per batch row) and as the baseline
        ``benchmarks/bench_physics_kernels.py`` measures speedup from.
        """
        tau = self._uniform_tau(profile)
        s = profile.n_segments
        if n_steps is None:
            n_steps = self._default_steps(s)
        r = profile.reflection_coefficients()
        r_src = profile.source_reflection()
        r_load = profile.load_reflection()
        loss = profile.loss_per_segment

        # State at integer time k (in units of the segment delay):
        #   fwd[i] — forward wave at the left edge of segment i,
        #   bwd[i] — backward wave at the right edge of segment i.
        # One step propagates each wave across one segment (applying loss)
        # and scatters at the interface it reaches.  The echo from interface
        # i/(i+1) therefore arrives back at the source at step 2*(i+1),
        # matching the BornEngine timing convention.
        fwd = np.zeros(s)
        bwd = np.zeros(s)
        fwd[0] = 1.0
        out = np.zeros(n_steps)
        for k in range(1, n_steps):
            fa = fwd * loss
            ba = bwd * loss
            # The backward wave leaving segment 0 reaches the source now.
            out[k] = ba[0]
            new_f = np.zeros(s)
            new_b = np.zeros(s)
            # Interior interfaces: left input fa[i], right input ba[i+1].
            if s > 1:
                new_f[1:] = (1.0 + r) * fa[:-1] - r * ba[1:]
                new_b[:-1] = r * fa[:-1] + (1.0 - r) * ba[1:]
            # Load end: forward wave reflects off the termination.
            new_b[-1] += r_load * fa[-1]
            # Source end: backward wave re-reflects off the driver.
            new_f[0] += r_src * ba[0]
            fwd, bwd = new_f, new_b
        return Waveform(out, tau)

    # ------------------------------------------------------------------
    # the batched kernel
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_lattice_sequences(
        z2: np.ndarray,
        r_load,
        r_src,
        loss: float,
        n_steps: int,
        tap: str,
    ) -> np.ndarray:
        """Vectorised Goupillaud stepper over ``(C, S)`` states, ``(C, N)``.

        The k-loop survives (the recursion is inherently sequential in
        time) but every step is one set of whole-batch array operations
        into preallocated buffers — no per-step allocation.  Per row the
        element-wise operations and their order match
        :meth:`scalar_impulse_sequence` exactly, so each output row is
        bit-for-bit the scalar result (IEEE arithmetic is deterministic;
        ``y + x`` where the scalar computes ``x + y`` is the one reordering
        used, and float addition is commutative).

        ``tap`` selects the observation point: ``"source"`` records the
        backward wave reaching the driver (reflection), ``"load"`` records
        the wave delivered into the termination (transmission).
        """
        c, s = z2.shape
        r = (z2[:, 1:] - z2[:, :-1]) / (z2[:, 1:] + z2[:, :-1])
        one_plus_r = 1.0 + r
        one_minus_r = 1.0 - r
        r_load = np.broadcast_to(np.asarray(r_load, dtype=float), (c,))
        r_src = np.broadcast_to(np.asarray(r_src, dtype=float), (c,))
        gain_load = 1.0 + r_load
        fwd = np.zeros((c, s))
        bwd = np.zeros((c, s))
        fwd[:, 0] = 1.0
        fa = np.empty((c, s))
        ba = np.empty((c, s))
        tmp = np.empty((c, s - 1)) if s > 1 else None
        out = np.zeros((c, n_steps))
        for k in range(1, n_steps):
            np.multiply(fwd, loss, out=fa)
            np.multiply(bwd, loss, out=ba)
            if tap == "source":
                out[:, k] = ba[:, 0]
            else:
                np.multiply(gain_load, fa[:, -1], out=out[:, k])
            if s > 1:
                # fwd[:, 1:] = (1 + r) * fa[:, :-1] - r * ba[:, 1:]
                np.multiply(one_plus_r, fa[:, :-1], out=fwd[:, 1:])
                np.multiply(r, ba[:, 1:], out=tmp)
                fwd[:, 1:] -= tmp
                # bwd[:, :-1] = r * fa[:, :-1] + (1 - r) * ba[:, 1:]
                np.multiply(one_minus_r, ba[:, 1:], out=bwd[:, :-1])
                np.multiply(r, fa[:, :-1], out=tmp)
                bwd[:, :-1] += tmp
            # The scalar loop accumulates these endpoint products into a
            # zeroed array, so a -0.0 product flushes to +0.0; add the
            # same zero here to stay bitwise-identical.
            np.multiply(r_load, fa[:, -1], out=bwd[:, -1])
            bwd[:, -1] += 0.0
            np.multiply(r_src, ba[:, 0], out=fwd[:, 0])
            fwd[:, 0] += 0.0
        return out

    def _batch_states(self, z, tau):
        z2 = np.atleast_2d(np.asarray(z, dtype=float))
        tau2 = np.atleast_2d(np.asarray(tau, dtype=float))
        if z2.shape != tau2.shape:
            raise ValueError("z and tau batches must share a shape")
        return z2, tau2, self._batch_uniform_tau(tau2)

    def batch_impulse_sequences(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        n_out: Optional[int] = None,
        *,
        r_src=0.0,
        n_steps: Optional[int] = None,
        dtype=float,
    ) -> np.ndarray:
        """Lattice reflection sequences for a batch of states, ``(C, N)``.

        API parity with :meth:`BornEngine.batch_impulse_sequences`; extra
        keyword-only knobs expose the lattice-specific inputs (``r_src``
        re-reflection at the driver, explicit step count).  ``dtype``
        narrows only the *rendered* output grid; the time-stepper itself
        always runs float64 so its bitwise pin against the scalar
        reference loop is dtype-independent.

        On the native grid (``grid_dt is None``) all rows must share one
        segment delay (the common output grid) and the result has one
        column per lattice step.  On an analog grid each row may carry its
        own uniform delay; row sequences are deposited as timed impulses
        at ``t = k * tau_row`` with linear interpolation, so stretch moves
        echoes by sub-grid amounts exactly as in the Born engine.
        """
        z2, tau2, taus = self._batch_states(z, tau)
        s = z2.shape[1]
        if self.grid_dt is None:
            if taus.size and (
                np.max(taus) - np.min(taus) > 1e-9 * float(np.mean(taus))
            ):
                raise ValueError(
                    "native-grid batches need one shared segment delay; "
                    "construct LatticeEngine(grid_dt=...) to render "
                    "mixed-delay batches on an analog grid"
                )
            if n_steps is None:
                n_steps = n_out if n_out is not None else self._default_steps(s)
            seq = self._batch_lattice_sequences(
                z2, r_load, r_src, loss, n_steps, tap="source"
            )
            return seq.astype(dtype, copy=False)
        if n_steps is None:
            n_steps = self._default_steps(s)
            if n_out is not None:
                # The record ends at n_out * grid_dt; steps beyond it can
                # only deposit outside the record.  (+2 covers the edge bin.)
                needed = (
                    int(np.ceil(n_out * self.grid_dt / float(np.min(taus))))
                    + 2
                )
                n_steps = min(n_steps, needed)
        if n_out is None:
            span = (n_steps - 1) * float(np.max(taus))
            n_out = int(np.ceil(span / self.grid_dt)) + 2
        seq = self._batch_lattice_sequences(
            z2, r_load, r_src, loss, n_steps, tap="source"
        )
        times = taus[:, None] * np.arange(n_steps)[None, :]
        return _deposit_impulses(times, seq, self.grid_dt, n_out, dtype=dtype)

    def batch_reflection_responses(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        incident: Waveform,
        n_out: Optional[int] = None,
        *,
        r_src=0.0,
        dtype=float,
    ) -> np.ndarray:
        """Reflected waveforms for a batch of states, shape ``(C, N)``."""
        z2, tau2, taus = self._batch_states(z, tau)
        if self.grid_dt is not None:
            self._validate_grid(incident.dt, self.grid_dt, "analog grid_dt")
            if n_out is None:
                span = 2.0 * float(np.max(np.sum(tau2, axis=1)))
                n_out = int(np.ceil(span / self.grid_dt)) + len(incident) + 2
            h = self.batch_impulse_sequences(
                z2, tau2, r_load, loss, n_out=n_out, r_src=r_src, dtype=dtype
            )
            return batch_convolve_full(
                h, incident.samples, dtype=dtype
            )[:, :n_out]
        self._validate_grid(incident.dt, taus, "segment delay")
        h = self.batch_impulse_sequences(
            z2, tau2, r_load, loss, n_out=n_out, r_src=r_src, dtype=dtype
        )
        return batch_convolve_full(
            h, incident.samples, dtype=dtype
        )[:, : h.shape[1]]

    # ------------------------------------------------------------------
    # single-profile surface
    # ------------------------------------------------------------------
    def impulse_sequence(
        self,
        profile: ImpedanceProfile,
        n_steps: Optional[int] = None,
        n_out: Optional[int] = None,
    ) -> Waveform:
        """Backward wave at the source for a unit incident sample at t=0.

        On the native grid the returned waveform is sampled at the segment
        delay; sample ``k`` is the reflected amplitude emerging at the
        source interface at time ``k * tau``.  With ``grid_dt`` set the
        sequence is rendered onto the analog grid (``n_out`` points).
        """
        h = self.batch_impulse_sequences(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            n_out=n_out,
            r_src=profile.source_reflection(),
            n_steps=n_steps,
        )
        dt = self.grid_dt if self.grid_dt is not None else self._uniform_tau(
            profile
        )
        return Waveform(h[0], dt)

    def reflection_response(
        self,
        profile: ImpedanceProfile,
        incident: Waveform,
        n_out: Optional[int] = None,
    ) -> Waveform:
        """Reflected waveform for an arbitrary incident wave.

        The incident waveform must be sampled on the engine's output grid
        (the segment delay natively, ``grid_dt`` otherwise) within
        :attr:`DT_RTOL`.
        """
        out = self.batch_reflection_responses(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            incident,
            n_out=n_out,
            r_src=profile.source_reflection(),
        )
        dt = self.grid_dt if self.grid_dt is not None else self._uniform_tau(
            profile
        )
        return Waveform(out[0], dt, incident.t0)

    def transmission_sequence(
        self, profile: ImpedanceProfile, n_steps: Optional[int] = None
    ) -> Waveform:
        """Forward wave delivered *into the load* for a unit incident sample.

        The receiver-side counterpart of :meth:`impulse_sequence`: sample
        ``k`` is the voltage-wave amplitude crossing the load interface at
        time ``k * tau``.  The first arrival lands at step ``S`` with
        amplitude ``(1 + rho_load) * prod(1 + rho_i) * loss^S`` (its
        voltage-divider form); later samples are the inter-symbol echoes a
        receiver's eye diagram shows.  Always on the native lattice grid.
        """
        tau = self._uniform_tau(profile)
        if n_steps is None:
            n_steps = self._default_steps(profile.n_segments)
        seq = self._batch_lattice_sequences(
            profile.z[None, :],
            profile.load_reflection(),
            profile.source_reflection(),
            profile.loss_per_segment,
            n_steps,
            tap="load",
        )
        return Waveform(seq[0], tau)

    def transmission_response(
        self, profile: ImpedanceProfile, incident: Waveform
    ) -> Waveform:
        """Waveform arriving at the receiver for an arbitrary incident wave."""
        h = self.transmission_sequence(profile)
        self._validate_grid(incident.dt, h.dt, "segment delay")
        out = convolve_full(incident.samples, h.samples)[: len(h)]
        return Waveform(out, h.dt, incident.t0)


class BornEngine:
    """First-order scattering model, vectorised over batches of line states.

    ``grid_dt`` is the analog time grid spacing on which responses are
    rendered — in the DIVOT context this is the ETS phase step (11.16 ps on
    the Ultrascale+ prototype).
    """

    def __init__(self, grid_dt: float, include_load_echo: bool = True) -> None:
        if grid_dt <= 0:
            raise ValueError("grid_dt must be positive")
        self.grid_dt = grid_dt
        self.include_load_echo = include_load_echo

    # ------------------------------------------------------------------
    def echoes(self, profile: ImpedanceProfile):
        """(times, amplitudes) of every first-order echo of one profile."""
        t, a = self._batch_echoes(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
        )
        return t[0], a[0]

    @staticmethod
    def _batch_echoes(z, tau, r_load, loss):
        """Vectorised echo computation.

        Args:
            z: impedances, shape ``(C, S)``.
            tau: per-segment delays, shape ``(C, S)``.
            r_load: load reflection coefficient(s), scalar or ``(C,)``.
            loss: per-segment one-way amplitude factor.
        Returns:
            times ``(C, S)`` and amplitudes ``(C, S)``: the first ``S-1``
            columns are interface echoes, the last column is the load echo.
        """
        c, s = z.shape
        r = (z[:, 1:] - z[:, :-1]) / (z[:, 1:] + z[:, :-1])
        # Round-trip arrival time of the echo from interface i (between
        # segments i and i+1): twice the cumulative delay through segment i.
        cum_tau = np.cumsum(tau, axis=1)
        t_iface = 2.0 * cum_tau[:, :-1]
        # Two-way transmission through all interfaces crossed en route.
        one_minus_r2 = 1.0 - r**2
        trans = np.cumprod(one_minus_r2, axis=1)
        trans_before = np.concatenate([np.ones((c, 1)), trans[:, :-1]], axis=1)
        seg_index = np.arange(1, s)  # segments traversed per interface echo
        loss_factor = loss ** (2.0 * seg_index)
        a_iface = r * trans_before * loss_factor[None, :]
        # Load echo: through every interface, full line both ways.
        t_load = 2.0 * cum_tau[:, -1:]
        r_load_arr = np.broadcast_to(
            np.asarray(r_load, dtype=float), (c,)
        ).reshape(c, 1)
        a_load = r_load_arr * (trans[:, -1:] if s > 1 else np.ones((c, 1)))
        a_load = a_load * loss ** (2.0 * s)
        times = np.concatenate([t_iface, t_load], axis=1)
        amps = np.concatenate([a_iface, a_load], axis=1)
        return times, amps

    # ------------------------------------------------------------------
    def impulse_sequence(
        self, profile: ImpedanceProfile, n_out: Optional[int] = None
    ) -> Waveform:
        """Reflection sequence on the analog grid for a single profile."""
        h = self.batch_impulse_sequences(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            n_out=n_out,
        )
        return Waveform(h[0], self.grid_dt)

    def batch_impulse_sequences(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        n_out: Optional[int] = None,
        dtype=float,
    ) -> np.ndarray:
        """Reflection sequences for a batch of line states, shape ``(C, N)``.

        Echo amplitudes are deposited onto the analog grid with linear
        interpolation between the two bracketing bins, preserving sub-grid
        timing (the mechanism by which temperature stretch moves echoes).
        ``dtype`` narrows only the rendered grid; echo timing/amplitude
        arithmetic stays float64.
        """
        z = np.atleast_2d(np.asarray(z, dtype=float))
        tau = np.atleast_2d(np.asarray(tau, dtype=float))
        if z.shape != tau.shape:
            raise ValueError("z and tau batches must share a shape")
        times, amps = self._batch_echoes(z, tau, r_load, loss)
        if not self.include_load_echo:
            times = times[:, :-1]
            amps = amps[:, :-1]
        if n_out is None:
            n_out = int(np.ceil(np.max(times) / self.grid_dt)) + 2
        return _deposit_impulses(times, amps, self.grid_dt, n_out, dtype=dtype)

    # ------------------------------------------------------------------
    def reflection_response(
        self,
        profile: ImpedanceProfile,
        incident: Waveform,
        n_out: Optional[int] = None,
    ) -> Waveform:
        """Reflected waveform for one profile driven by ``incident``."""
        out = self.batch_reflection_responses(
            profile.z[None, :],
            profile.tau[None, :],
            profile.load_reflection(),
            profile.loss_per_segment,
            incident,
            n_out=n_out,
        )
        return Waveform(out[0], self.grid_dt, incident.t0)

    def batch_reflection_responses(
        self,
        z: np.ndarray,
        tau: np.ndarray,
        r_load,
        loss: float,
        incident: Waveform,
        n_out: Optional[int] = None,
        dtype=float,
    ) -> np.ndarray:
        """Reflected waveforms for a batch of states, shape ``(C, N)``."""
        if not np.isclose(incident.dt, self.grid_dt, rtol=1e-6, atol=0.0):
            raise ValueError(
                f"incident dt {incident.dt} must match grid_dt {self.grid_dt}"
            )
        z2 = np.atleast_2d(np.asarray(z, dtype=float))
        tau2 = np.atleast_2d(np.asarray(tau, dtype=float))
        if n_out is None:
            span = 2.0 * float(np.max(np.sum(tau2, axis=1)))
            n_out = int(np.ceil(span / self.grid_dt)) + len(incident) + 2
        h = self.batch_impulse_sequences(
            z2, tau2, r_load, loss, n_out=n_out, dtype=dtype
        )
        out = batch_convolve_full(h, incident.samples, dtype=dtype)
        return out[:, :n_out]


def reflected_waveform(
    profile: ImpedanceProfile,
    incident: Waveform,
    engine: str = "born",
    grid_dt: Optional[float] = None,
) -> Waveform:
    """Convenience dispatcher over the two propagation engines.

    ``grid_dt`` defaults to the incident waveform's grid for the Born
    engine and to the native lattice grid for the lattice engine (pass it
    explicitly to render the lattice response on an analog grid).
    """
    if engine == "born":
        born = BornEngine(grid_dt or incident.dt)
        return born.reflection_response(profile, incident)
    if engine == "lattice":
        lattice = LatticeEngine(grid_dt=grid_dt)
        return lattice.reflection_response(profile, incident)
    raise ValueError(f"unknown engine {engine!r}; use 'born' or 'lattice'")
