"""Transmission-line physics substrate.

Models the hardware the paper's prototype measures: segmented impedance
profiles (the IIP fingerprint), time-domain wave propagation with multiple
reflections, laminate material behaviour, terminations and receiver
packages, and a manufacturing model that makes fingerprints unclonable.
"""

from .factory import LineFactory, LineGeometry
from .line import ProfileModifier, TransmissionLine
from .materials import FR4, Laminate, propagation_velocity
from .profile import ImpedanceProfile, correlated_field
from .propagation import BornEngine, LatticeEngine, reflected_waveform
from .termination import (
    MATCHED,
    OPEN,
    SHORT,
    ReceiverPackage,
    Termination,
    splice_termination,
)

__all__ = [
    "ImpedanceProfile",
    "correlated_field",
    "BornEngine",
    "LatticeEngine",
    "reflected_waveform",
    "Laminate",
    "FR4",
    "propagation_velocity",
    "Termination",
    "MATCHED",
    "OPEN",
    "SHORT",
    "ReceiverPackage",
    "splice_termination",
    "TransmissionLine",
    "ProfileModifier",
    "LineFactory",
    "LineGeometry",
]
