"""The Tx-line object: identity, physics, and state composition.

A :class:`TransmissionLine` binds together a manufactured impedance profile
(the line's immutable fingerprint), the laminate material, and the far-end
receiver package.  Environmental conditions and physical attacks are applied
as a chain of *profile modifiers*: each takes an
:class:`~repro.txline.profile.ImpedanceProfile` and returns a perturbed copy.
The iTDR asks the line for its reflected waveform under the current state.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from ..signals.waveform import Waveform
from .materials import FR4, Laminate
from .profile import ImpedanceProfile
from .propagation import BornEngine, LatticeEngine
from .termination import ReceiverPackage, splice_termination

__all__ = ["ProfileModifier", "TransmissionLine"]


class ProfileModifier(Protocol):
    """Anything that perturbs a line profile (environment or attack)."""

    def modify(self, profile: ImpedanceProfile) -> ImpedanceProfile:
        """Return the perturbed profile (must not mutate the input)."""
        ...  # pragma: no cover - protocol


class TransmissionLine:
    """A single physical Tx-line with an intrinsic IIP fingerprint.

    Attributes:
        name: Human-readable identity (e.g. ``"lane-3"``).
        board_profile: The bare board-trace impedance profile.
        material: Laminate the trace is etched on.
        receiver: Receiver package at the far end (None for a bare
            terminated line, as on the paper's test PCB).
    """

    def __init__(
        self,
        name: str,
        board_profile: ImpedanceProfile,
        material: Laminate = FR4,
        receiver: Optional[ReceiverPackage] = None,
    ) -> None:
        self.name = name
        self.board_profile = board_profile
        self.material = material
        self.receiver = receiver

    # ------------------------------------------------------------------
    @property
    def full_profile(self) -> ImpedanceProfile:
        """Board trace plus receiver package, the complete electrical path."""
        return splice_termination(self.board_profile, self.receiver)

    def profile_under(
        self, modifiers: Sequence[ProfileModifier] = ()
    ) -> ImpedanceProfile:
        """Apply a modifier chain (environment, attacks) to the full profile."""
        profile = self.full_profile
        for modifier in modifiers:
            profile = modifier.modify(profile)
        return profile

    # ------------------------------------------------------------------
    def reflected_waveform(
        self,
        incident: Waveform,
        modifiers: Sequence[ProfileModifier] = (),
        engine: str = "born",
        n_out: Optional[int] = None,
        profile: Optional[ImpedanceProfile] = None,
    ) -> Waveform:
        """Back-reflection observed at the source-side coupler.

        Args:
            incident: The probe waveform launched into the line (typically a
                data edge), sampled on the analog grid.
            modifiers: Environment/attack chain active during the capture.
            engine: ``"born"`` (fast, first order) or ``"lattice"`` (exact).
                Both render on the incident waveform's grid and honour
                ``n_out``, so either can drive the capture path.
            n_out: Output record length in samples.
            profile: Pre-resolved electrical state; when given, ``modifiers``
                are assumed to be already applied (the iTDR passes the
                profile it hashed for its cache so the chain runs once).
        """
        if profile is None:
            profile = self.profile_under(modifiers)
        if engine == "born":
            born = BornEngine(incident.dt)
            return born.reflection_response(profile, incident, n_out=n_out)
        if engine == "lattice":
            lattice = LatticeEngine(grid_dt=incident.dt)
            return lattice.reflection_response(profile, incident, n_out=n_out)
        raise ValueError(f"unknown engine {engine!r}")

    def batch_reflected_waveforms(
        self,
        incident: Waveform,
        z_batch: np.ndarray,
        tau_batch: np.ndarray,
        n_out: Optional[int] = None,
        engine: str = "born",
        dtype=float,
    ) -> np.ndarray:
        """Responses for many per-capture perturbed states at once.

        ``z_batch``/``tau_batch`` have shape ``(C, S)`` — one row per
        capture.  The load reflection and loss come from the unperturbed full
        profile; per-capture load changes should instead go through
        :meth:`reflected_waveform` with an attack modifier.  Both engines
        share the batch API; the lattice additionally requires each row's
        delays to be uniform (a temperature stretch is, a per-segment
        perturbation is not).  ``dtype`` selects the rendered precision
        (float64 default; float32 for the reduced-bandwidth capture mode).
        """
        profile = self.full_profile
        if engine == "born":
            born = BornEngine(incident.dt)
            return born.batch_reflection_responses(
                z_batch,
                tau_batch,
                profile.load_reflection(),
                profile.loss_per_segment,
                incident,
                n_out=n_out,
                dtype=dtype,
            )
        if engine == "lattice":
            lattice = LatticeEngine(grid_dt=incident.dt)
            return lattice.batch_reflection_responses(
                z_batch,
                tau_batch,
                profile.load_reflection(),
                profile.loss_per_segment,
                incident,
                n_out=n_out,
                r_src=profile.source_reflection(),
                dtype=dtype,
            )
        raise ValueError(f"unknown engine {engine!r}")

    # ------------------------------------------------------------------
    def swap_receiver(self, receiver: Optional[ReceiverPackage]) -> "TransmissionLine":
        """A copy of this line with a different chip at the far end.

        This is the physical operation behind a Trojan-chip insertion or the
        re-seating step of a cold-boot attack.
        """
        return TransmissionLine(
            name=self.name,
            board_profile=self.board_profile,
            material=self.material,
            receiver=receiver,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransmissionLine({self.name!r}, "
            f"{self.board_profile.n_segments} segments, "
            f"{self.board_profile.one_way_delay * 1e9:.2f} ns one-way)"
        )
