"""Termination and receiver-package models.

What sits at the far end of a bus — the receiver chip's input network — is
part of the fingerprint.  A load modification (Trojan chip, module swap, the
receiving end of a cold-boot attack) changes the termination impedance and
the short package/bond-wire section in front of it, producing the large
reflection peak at the end of the record that Fig. 9(b,c) shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .profile import ImpedanceProfile

__all__ = ["Termination", "ReceiverPackage", "splice_termination"]


@dataclass(frozen=True)
class Termination:
    """A lumped resistive termination.

    ``MATCHED`` (50 ohm), ``OPEN`` (very high) and ``SHORT`` (very low) are
    provided as conventional test conditions.
    """

    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")

    def reflection_coefficient(self, z_line: float) -> float:
        """Reflection coefficient against a line of impedance ``z_line``."""
        return (self.resistance - z_line) / (self.resistance + z_line)


#: Conventional terminations.
MATCHED = Termination(50.0)
OPEN = Termination(1e6)
SHORT = Termination(1e-3)


@dataclass(frozen=True)
class ReceiverPackage:
    """A receiver chip's electrical front end as seen by the line.

    Attributes:
        input_resistance: On-die termination resistance, ohms.
        package_impedance: Characteristic impedance of the short
            package/bond-wire section, ohms.  Packages are rarely matched to
            the board; the mismatch is a stable part of the fingerprint.
        package_delay: One-way electrical delay of the package section,
            seconds.
        seed: Identity of this physical chip instance.  Two chips with the
            same model number still differ slightly — the property the
            chip-swap experiment (Fig. 9b) relies on.
    """

    input_resistance: float = 52.0
    package_impedance: float = 45.0
    package_delay: float = 60e-12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.input_resistance <= 0 or self.package_impedance <= 0:
            raise ValueError("impedances must be positive")
        if self.package_delay <= 0:
            raise ValueError("package_delay must be positive")

    def instance_variation(self, spread: float = 0.04) -> "ReceiverPackage":
        """A unit-to-unit varied copy of this package (same model number).

        ``spread`` is the relative standard deviation of the electrical
        parameters across manufactured units.
        """
        rng = np.random.default_rng(self.seed)
        return ReceiverPackage(
            input_resistance=self.input_resistance
            * (1.0 + spread * rng.standard_normal()),
            package_impedance=self.package_impedance
            * (1.0 + spread * rng.standard_normal()),
            package_delay=self.package_delay
            * (1.0 + 0.5 * spread * rng.standard_normal()),
            seed=self.seed,
        )


def splice_termination(
    profile: ImpedanceProfile,
    package: Optional[ReceiverPackage],
    segment_delay: Optional[float] = None,
) -> ImpedanceProfile:
    """Attach a receiver package to the end of a board-level profile.

    The package section is appended as extra segments (quantised to the
    profile's segment delay) and the lumped input resistance becomes the new
    load.  Passing ``package=None`` returns the profile unchanged.
    """
    if package is None:
        return profile
    seg_tau = segment_delay or float(np.mean(profile.tau))
    n_pkg = max(1, int(round(package.package_delay / seg_tau)))
    z = np.concatenate(
        [profile.z, np.full(n_pkg, package.package_impedance)]
    )
    tau = np.concatenate([profile.tau, np.full(n_pkg, seg_tau)])
    return ImpedanceProfile(
        z=z,
        tau=tau,
        z_source=profile.z_source,
        z_load=package.input_resistance,
        loss_per_segment=profile.loss_per_segment,
    )
