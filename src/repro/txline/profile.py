"""Impedance profiles: the IIP as a segmented line model.

A transmission line is discretised into short segments; each segment carries
a characteristic impedance and a one-way propagation delay.  The per-segment
impedance fluctuation — etched-width tolerance, glass-weave effect, copper
roughness — *is* the Impedance Inhomogeneity Pattern the paper exploits as a
fingerprint.  Manufacturing makes it "unpredictable, uncontrollable, and
non-reproducible"; here a seeded correlated Gaussian field plays that role,
with the seed standing in for the physical identity of a specific trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

__all__ = ["ImpedanceProfile", "correlated_field"]


def correlated_field(
    n: int,
    sigma: float,
    correlation_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A zero-mean Gaussian field with short-range spatial correlation.

    White Gaussian noise smoothed with a Gaussian kernel of width
    ``correlation_length`` segments, renormalised so the pointwise standard
    deviation equals ``sigma``.  Physical trace-width variation is smooth at
    the sub-millimetre scale, which is what the correlation models.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if correlation_length < 1:
        raise ValueError("correlation_length must be >= 1")
    white = rng.normal(0.0, 1.0, size=n + 6 * correlation_length)
    x = np.arange(-3 * correlation_length, 3 * correlation_length + 1)
    kernel = np.exp(-0.5 * (x / correlation_length) ** 2)
    kernel /= np.linalg.norm(kernel)
    smooth = np.convolve(white, kernel, mode="same")
    smooth = smooth[3 * correlation_length : 3 * correlation_length + n]
    return sigma * smooth


@dataclass(frozen=True)
class ImpedanceProfile:
    """Per-segment impedance and delay description of one Tx-line.

    Attributes:
        z: Characteristic impedance of each segment, ohms, shape ``(S,)``.
        tau: One-way propagation delay of each segment, seconds, ``(S,)``.
        z_source: Driver output impedance seen looking back into the source.
        z_load: Termination impedance at the far end.
        loss_per_segment: Amplitude attenuation factor applied per one-way
            segment traversal (1.0 means lossless).
    """

    z: np.ndarray
    tau: np.ndarray
    z_source: float = 50.0
    z_load: float = 50.0
    loss_per_segment: float = 1.0

    def __post_init__(self) -> None:
        z = np.asarray(self.z, dtype=float)
        tau = np.asarray(self.tau, dtype=float)
        object.__setattr__(self, "z", z)
        object.__setattr__(self, "tau", tau)
        if z.ndim != 1 or tau.ndim != 1:
            raise ValueError("z and tau must be 1-D")
        if len(z) != len(tau):
            raise ValueError("z and tau must have equal length")
        if len(z) == 0:
            raise ValueError("profile needs at least one segment")
        if np.any(z <= 0):
            raise ValueError("impedances must be positive")
        if np.any(tau <= 0):
            raise ValueError("segment delays must be positive")
        if self.z_source <= 0 or self.z_load <= 0:
            raise ValueError("source/load impedances must be positive")
        if not 0 < self.loss_per_segment <= 1.0:
            raise ValueError("loss_per_segment must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Number of segments in the line model."""
        return len(self.z)

    @property
    def one_way_delay(self) -> float:
        """End-to-end one-way propagation delay in seconds."""
        return float(np.sum(self.tau))

    @property
    def round_trip_delay(self) -> float:
        """Source-to-load-and-back delay in seconds — the TDR record span."""
        return 2.0 * self.one_way_delay

    def content_hash(self) -> str:
        """Digest of the complete electrical state.

        Two profiles with equal segment arrays and boundary conditions are
        physically indistinguishable, whatever objects they live in — this
        digest is the cache key contract the iTDR's reflection memo relies
        on (identity-based keys served stale physics after in-place
        mutation).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(np.ascontiguousarray(self.z, dtype=float).tobytes())
        h.update(np.ascontiguousarray(self.tau, dtype=float).tobytes())
        h.update(
            np.array(
                [self.z_source, self.z_load, self.loss_per_segment],
                dtype=float,
            ).tobytes()
        )
        return h.hexdigest()

    def reflection_coefficients(self) -> np.ndarray:
        """Interior interface reflection coefficients, shape ``(S-1,)``.

        Entry ``i`` is the coefficient for a forward wave crossing from
        segment ``i`` into segment ``i+1``.
        """
        return (self.z[1:] - self.z[:-1]) / (self.z[1:] + self.z[:-1])

    def source_reflection(self) -> float:
        """Reflection coefficient seen by a backward wave hitting the source."""
        return float(
            (self.z_source - self.z[0]) / (self.z_source + self.z[0])
        )

    def load_reflection(self) -> float:
        """Reflection coefficient seen by a forward wave hitting the load."""
        return float((self.z_load - self.z[-1]) / (self.z_load + self.z[-1]))

    def launch_coefficient(self) -> float:
        """Fraction of the source EMF that enters segment 0 (divider ratio)."""
        return float(self.z[0] / (self.z[0] + self.z_source))

    # ------------------------------------------------------------------
    # derived profiles
    # ------------------------------------------------------------------
    def with_impedance(self, z: np.ndarray) -> "ImpedanceProfile":
        """A copy with a replacement impedance array (same geometry)."""
        if len(np.asarray(z)) != self.n_segments:
            raise ValueError("replacement z must keep the segment count")
        return replace(self, z=np.asarray(z, dtype=float))

    def with_load(self, z_load: float) -> "ImpedanceProfile":
        """A copy with a different termination impedance."""
        return replace(self, z_load=float(z_load))

    def scaled(
        self,
        impedance_scale: float = 1.0,
        delay_scale: float = 1.0,
        impedance_field: Optional[np.ndarray] = None,
    ) -> "ImpedanceProfile":
        """Environmental re-scaling of the whole line.

        ``impedance_scale`` and ``delay_scale`` apply common-mode (the
        temperature mechanism); ``impedance_field`` optionally applies an
        extra per-segment multiplicative perturbation ``(1 + field)`` (the
        differential residue and the vibration mechanism).
        """
        if impedance_scale <= 0 or delay_scale <= 0:
            raise ValueError("scales must be positive")
        z = self.z * impedance_scale
        if impedance_field is not None:
            field = np.asarray(impedance_field, dtype=float)
            if field.shape != self.z.shape:
                raise ValueError("impedance_field shape must match z")
            z = z * (1.0 + field)
        return replace(
            self,
            z=z,
            tau=self.tau * delay_scale,
            z_load=self.z_load * impedance_scale,
        )

    def segment_positions(self, velocity: float) -> np.ndarray:
        """Physical start position of each segment along the board, metres."""
        if velocity <= 0:
            raise ValueError("velocity must be positive")
        lengths = self.tau * velocity
        starts = np.concatenate([[0.0], np.cumsum(lengths)[:-1]])
        return starts
