"""repro — a full reproduction of DIVOT (ISCA 2020).

DIVOT (Detecting Impedance Variations Of Transmission-lines) authenticates
buses and detects physical probing by fingerprinting each Tx-line's
Impedance Inhomogeneity Pattern with an integrated time-domain
reflectometer built from analog-to-probability conversion, probability
density modulation, and equivalent-time sampling.

Package layout:

* :mod:`repro.signals` — waveforms, edges, line codes, PRBS, noise.
* :mod:`repro.txline` — transmission-line physics and manufacturing.
* :mod:`repro.env` — temperature, vibration, EMI conditions.
* :mod:`repro.attacks` — probing, wire-tapping, Trojan/cold-boot models.
* :mod:`repro.core` — the iTDR, fingerprints, authentication, DIVOT
  endpoints, overhead and latency models.
* :mod:`repro.membus` — the protected memory-bus example design (Fig. 6).
* :mod:`repro.baselines` — prior-art countermeasures for comparison.
* :mod:`repro.experiments` — one module per paper figure/table.

Quickstart::

    import numpy as np
    from repro.core import prototype_itdr, prototype_line_factory
    from repro.core import Fingerprint, capture_similarity

    factory = prototype_line_factory()
    line_a, line_b = factory.manufacture_batch(2)
    itdr = prototype_itdr(rng=np.random.default_rng(0))
    ref = Fingerprint.from_captures([itdr.capture(line_a)])
    print(capture_similarity(itdr.capture(line_a), ref))  # ~1.0 genuine
    print(capture_similarity(itdr.capture(line_b), ref))  # ~0.5 impostor
"""

__version__ = "1.0.0"

__all__ = [
    "signals",
    "txline",
    "env",
    "attacks",
    "core",
    "membus",
    "iolink",
    "baselines",
    "experiments",
    "analysis",
]
